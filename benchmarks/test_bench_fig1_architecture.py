"""F1 — Figure 1: the proposal's connectivity structure, audited.

Figure 1 is the architecture diagram: customers → LMPs → POC, large CSPs
directly on the POC, POC → external transit ISPs for the rest of the
Internet.  This bench constructs exactly that arrangement on a
provisioned POC and audits every structural property the figure depicts.
"""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.provider import make_external_contract
from repro.core.poc import PublicOptionCore
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo
from repro.topology.zoo import ZooConfig, build_zoo


def build_figure1():
    zoo = build_zoo(ZooConfig.tiny())
    tm = traffic_for_zoo(zoo)
    offers = offers_for_zoo(zoo)
    poc = PublicOptionCore.from_zoo(zoo)
    sites = [s.router_id for s in zoo.sites]
    # External transit ISP attached at two locations (virtual link).
    contract = make_external_contract(
        "transit-isp", [(sites[0], sites[-1])],
        capacity_gbps=400.0, price_per_link=200_000.0,
    )
    poc.add_external_contract(contract)
    poc.provision(offers, tm, constraint=1, method="add-prune")

    # Figure 1's parties.
    poc.attach("lmp-east", sites[0], "lmp")
    poc.attach("lmp-west", sites[-1], "lmp")
    poc.attach("lmp-mid", sites[len(sites) // 2], "lmp")
    poc.attach("big-csp", sites[1], "csp")          # directly attached CSP
    poc.attach("transit-isp", sites[0], "ext-isp")  # the rest of the Internet
    return zoo, poc


def test_bench_fig1_architecture(benchmark, report):
    zoo, poc = benchmark.pedantic(build_figure1, rounds=1, iterations=1)

    lines = ["party          kind     site"]
    for att in poc.attachments:
        lines.append(f"{att.name:<14} {att.kind:<8} {att.site}")
    matrix = poc.reachability()
    reachable = sum(1 for v in matrix.values() if v)
    lines.append(f"\nreachable attachment pairs: {reachable}/{len(matrix)}")
    lines.append(f"backbone links: {poc.backbone.num_links} "
                 f"(from {zoo.num_logical_links} offered)")
    lines.append(f"monthly cost (auction + contracts): {poc.monthly_cost:,.0f}")
    report("\n".join(lines))

    # Figure 1's structural claims:
    # every LMP reaches every other LMP and the direct CSP over the POC;
    assert all(matrix.values())
    # the POC interconnects with at least one traditional ISP;
    assert any(a.kind == "ext-isp" for a in poc.attachments)
    # large CSPs can attach directly;
    assert any(a.kind == "csp" for a in poc.attachments)
    # and the POC acts as a transparent fabric: paths exist pairwise.
    path = poc.transit_path("lmp-east", "big-csp")
    assert path is not None
