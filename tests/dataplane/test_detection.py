"""Tests for probe-based differential-treatment detection."""

import pytest

from repro.exceptions import FlowError
from repro.dataplane.detection import (
    DetectionReport,
    ProbeFinding,
    probe_differential_treatment,
)
from repro.dataplane.shaping import DiscriminatoryEdge, NeutralEdge, QoSEdge
from repro.dataplane.sim import DataplaneSim

from tests.conftest import square_network


def build_sim(behavior):
    s = DataplaneSim(square_network())
    s.attach("flix", "A", access_gbps=8.0)
    s.attach("tube", "B", access_gbps=8.0)
    s.attach("newco", "D", access_gbps=8.0)
    s.attach("eyeballs", "C", access_gbps=6.0, behavior=behavior)
    return s


class TestDetection:
    def test_neutral_edge_is_clean(self):
        sim = build_sim(NeutralEdge())
        report = probe_differential_treatment(
            sim, "eyeballs", ["flix", "tube", "newco"]
        )
        assert report.clean
        assert report.violations == []
        assert "no differential treatment" in report.summary()

    def test_source_throttling_detected(self):
        sim = build_sim(
            DiscriminatoryEdge(throttle_sources=frozenset({"tube"}), factor=0.25)
        )
        report = probe_differential_treatment(
            sim, "eyeballs", ["flix", "tube", "newco"]
        )
        assert not report.clean
        flagged = {v.tested_value for v in report.violations}
        assert flagged == {"tube"}
        worst = min(report.violations, key=lambda f: f.ratio)
        assert worst.ratio == pytest.approx(0.25, rel=0.05)

    def test_blocking_detected_as_zero_ratio(self):
        sim = build_sim(
            DiscriminatoryEdge(blocked_sources=frozenset({"newco"}))
        )
        report = probe_differential_treatment(
            sim, "eyeballs", ["flix", "newco"]
        )
        assert not report.clean
        assert report.violations[0].tested_rate == 0.0

    def test_application_throttling_detected(self):
        sim = build_sim(
            DiscriminatoryEdge(
                throttle_applications=frozenset({"video"}), factor=0.3
            )
        )
        report = probe_differential_treatment(
            sim, "eyeballs", ["flix", "tube"], applications=("web", "video")
        )
        app_violations = [
            v for v in report.violations if v.attribute == "application"
        ]
        assert len(app_violations) == 1
        assert app_violations[0].tested_value == "video"

    def test_open_qos_is_not_flagged(self):
        """The §3.1 distinction, operationally: QoS by class is clean
        under same-class probing."""
        sim = build_sim(QoSEdge())
        report = probe_differential_treatment(
            sim, "eyeballs", ["flix", "tube", "newco"], qos_class="premium"
        )
        assert report.clean

    def test_threshold_sensitivity(self):
        sim = build_sim(
            DiscriminatoryEdge(throttle_sources=frozenset({"tube"}), factor=0.9 - 1e-9)
        )
        strict = probe_differential_treatment(
            sim, "eyeballs", ["flix", "tube"], threshold=0.95
        )
        lax = probe_differential_treatment(
            sim, "eyeballs", ["flix", "tube"], threshold=0.5
        )
        assert not strict.clean
        assert lax.clean

    def test_needs_two_sources(self):
        sim = build_sim(NeutralEdge())
        with pytest.raises(FlowError):
            probe_differential_treatment(sim, "eyeballs", ["flix"])

    def test_finding_ratio_edge_cases(self):
        zero_both = ProbeFinding("d", "source", "a", "b", 0.0, 0.0)
        assert zero_both.ratio == 1.0
        inf_case = ProbeFinding("d", "source", "a", "b", 1.0, 0.0)
        assert inf_case.ratio == float("inf")
