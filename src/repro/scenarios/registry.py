"""Named-pack resolution: from a name to a :class:`ScenarioPack`.

The registry maps pack *names* to pack *files* across a search path, so
``repro run chaos-regional-blackout`` works from anywhere in the repo
(and user studies can shadow committed packs without editing them).

Search order — first directory containing ``<name>.json`` wins:

1. explicit directories (``--packs-dir``, repeatable),
2. the ``REPRO_PACKS`` environment variable (``os.pathsep``-separated),
3. ``./packs`` relative to the current working directory,
4. the repository's committed ``packs/`` library.

A pack file's stem must equal the pack's declared ``name`` — the file
system is the index, and a mismatch would make ``repro packs --list``
lie about what ``repro run`` resolves.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ScenarioError
from repro.scenarios.pack import ScenarioPack, load_pack

#: The committed library, resolved relative to this file:
#: src/repro/scenarios/registry.py -> parents[3] == the repo root.
_BUILTIN_DIR = pathlib.Path(__file__).resolve().parents[3] / "packs"

ENV_VAR = "REPRO_PACKS"


def default_search_dirs(
    extra: Sequence[Union[str, pathlib.Path]] = (),
) -> List[pathlib.Path]:
    """The resolved search path, in precedence order, existing dirs only."""
    candidates: List[pathlib.Path] = [pathlib.Path(d) for d in extra]
    env = os.environ.get(ENV_VAR, "")
    for part in env.split(os.pathsep):
        if part.strip():
            candidates.append(pathlib.Path(part.strip()))
    candidates.append(pathlib.Path.cwd() / "packs")
    candidates.append(_BUILTIN_DIR)
    seen: List[pathlib.Path] = []
    for cand in candidates:
        resolved = cand.resolve()
        if resolved.is_dir() and resolved not in seen:
            seen.append(resolved)
    return seen


class PackRegistry:
    """Resolves pack names to files across the search path."""

    def __init__(self, dirs: Sequence[Union[str, pathlib.Path]] = ()) -> None:
        self.dirs = default_search_dirs(dirs)

    # -- enumeration ----------------------------------------------------------

    def pack_files(self) -> Dict[str, pathlib.Path]:
        """name -> file for every resolvable pack (first dir wins)."""
        out: Dict[str, pathlib.Path] = {}
        for directory in self.dirs:
            for path in sorted(directory.glob("*.json")):
                out.setdefault(path.stem, path)
        return out

    def names(self) -> List[str]:
        return sorted(self.pack_files())

    # -- resolution -----------------------------------------------------------

    def find(self, name: str) -> Optional[pathlib.Path]:
        for directory in self.dirs:
            candidate = directory / f"{name}.json"
            if candidate.is_file():
                return candidate
        return None

    def get(self, name: str) -> ScenarioPack:
        """Load one pack by name; the file stem must match the name."""
        path = self.find(name)
        if path is None:
            known = ", ".join(self.names()) or "(none found)"
            raise ScenarioError(
                f"no pack named {name!r} on the search path "
                f"{[str(d) for d in self.dirs]}; known packs: {known}"
            )
        pack = load_pack(path)
        if pack.name != name:
            raise ScenarioError(
                f"pack file {path} declares name {pack.name!r} but its "
                f"file stem is {name!r}; rename one to match"
            )
        return pack

    def resolve(self, source: str) -> ScenarioPack:
        """The ``repro run`` front door: name, file path, or inline JSON.

        Inline JSON starts with ``{``; an argument naming an existing
        file (or containing a path separator / ``.json`` suffix) loads
        as a file; anything else is looked up as a registered name.
        """
        text = source.strip()
        if text.startswith("{"):
            return load_pack(text)
        path = pathlib.Path(source)
        if path.is_file() or os.sep in source or source.endswith(".json"):
            return load_pack(path)
        return self.get(source)

    # -- validation -----------------------------------------------------------

    def validate_all(self) -> List[Tuple[str, pathlib.Path, Optional[str]]]:
        """Deep-validate every resolvable pack.

        Returns ``(name, path, error)`` rows, ``error=None`` when the
        pack parses, matches its file stem, and resolves against the
        experiment registry.
        """
        rows: List[Tuple[str, pathlib.Path, Optional[str]]] = []
        for name, path in sorted(self.pack_files().items()):
            try:
                pack = load_pack(path)
                if pack.name != name:
                    raise ScenarioError(
                        f"declared name {pack.name!r} != file stem {name!r}"
                    )
                pack.resolve()
            except ScenarioError as exc:
                rows.append((name, path, str(exc)))
            else:
                rows.append((name, path, None))
        return rows
