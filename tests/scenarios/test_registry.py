"""Tests for the pack registry: search path, name resolution, validation."""

import json

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios import PackRegistry, default_search_dirs
from repro.scenarios.registry import ENV_VAR, _BUILTIN_DIR

from tests.scenarios.test_pack import payload


def write_pack(directory, name, **over):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload(name=name, **over)))
    return path


class TestSearchPath:
    def test_builtin_library_always_present(self):
        assert _BUILTIN_DIR in default_search_dirs()

    def test_explicit_dirs_come_first(self, tmp_path):
        write_pack(tmp_path, "t-a")
        dirs = default_search_dirs([tmp_path])
        assert dirs[0] == tmp_path.resolve()

    def test_env_var_dirs_honoured(self, tmp_path, monkeypatch):
        write_pack(tmp_path / "env", "t-e")
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env"))
        assert (tmp_path / "env").resolve() in default_search_dirs()

    def test_missing_dirs_silently_dropped(self, tmp_path):
        dirs = default_search_dirs([tmp_path / "does-not-exist"])
        assert (tmp_path / "does-not-exist") not in dirs


class TestResolution:
    def test_get_by_name(self, tmp_path):
        write_pack(tmp_path, "t-a")
        registry = PackRegistry([tmp_path])
        assert registry.get("t-a").name == "t-a"

    def test_unknown_name_lists_known_packs(self, tmp_path):
        write_pack(tmp_path, "t-a")
        with pytest.raises(ScenarioError, match="t-a"):
            PackRegistry([tmp_path]).get("t-zzz")

    def test_first_dir_shadows_later(self, tmp_path):
        first, second = tmp_path / "first", tmp_path / "second"
        write_pack(first, "t-a", title="from-first")
        write_pack(second, "t-a", title="from-second")
        pack = PackRegistry([first, second]).get("t-a")
        assert pack.title == "from-first"

    def test_stem_name_mismatch_rejected(self, tmp_path):
        path = tmp_path / "wrong-stem.json"
        path.write_text(json.dumps(payload(name="t-a")))
        with pytest.raises(ScenarioError, match="file stem"):
            PackRegistry([tmp_path]).get("wrong-stem")

    def test_resolve_dispatches_inline_file_and_name(self, tmp_path):
        path = write_pack(tmp_path, "t-a")
        registry = PackRegistry([tmp_path])
        assert registry.resolve(json.dumps(payload())).name == "t-micro"
        assert registry.resolve(str(path)).name == "t-a"
        assert registry.resolve("t-a").name == "t-a"


class TestValidateAll:
    def test_reports_good_and_bad(self, tmp_path):
        write_pack(tmp_path, "t-good")
        (tmp_path / "t-bad.json").write_text('{"schema": "nope"}')
        rows = {name: err
                for name, _path, err in PackRegistry([tmp_path]).validate_all()
                if name.startswith("t-")}
        assert rows["t-good"] is None
        assert rows["t-bad"] is not None

    def test_committed_library_all_valid(self):
        """Every pack shipped in packs/ must parse and resolve."""
        rows = PackRegistry([_BUILTIN_DIR]).validate_all()
        failures = [(n, e) for n, _p, e in rows if e is not None]
        assert not failures, failures
        assert len(rows) >= 10  # the acceptance floor for the library
