"""X3 — extension: QoS degradation as an implicit termination fee (§4.1).

"imposing poor QoS on incoming traffic reduces the value of that traffic
to users, so it can be seen as a form of termination fee."

For each quality factor δ, compute the explicit fee t(δ) that inflicts
the same CSP profit loss, and compare the welfare destroyed by each
instrument.
"""

import pytest

from repro.econ.demand import STANDARD_FAMILIES
from repro.econ.qos_equivalence import equivalent_fee
from repro.econ.welfare import social_welfare
from repro.econ.csp import optimal_price

QUALITIES = (1.0, 0.9, 0.75, 0.5, 0.3)


def sweep(demand):
    return {q: equivalent_fee(demand, q) for q in QUALITIES}


def test_bench_x3_qos_fee(benchmark, report):
    demand = STANDARD_FAMILIES["linear"]
    rows = benchmark(lambda: sweep(demand))

    w_nn = social_welfare(demand, optimal_price(demand, 0.0))
    lines = [f"{'quality δ':>10}{'equiv fee':>11}{'W degraded':>12}"
             f"{'W explicit':>12}{'extra waste':>13}"]
    for q in QUALITIES:
        eq = rows[q]
        lines.append(
            f"{q:>10.2f}{eq.equivalent_fee:>11.3f}{eq.degraded_welfare:>12.3f}"
            f"{eq.fee_welfare:>12.3f}{eq.welfare_gap:>13.3f}"
        )
    lines.append(f"\n(NN welfare benchmark: {w_nn:.3f})")
    report("QoS degradation vs the equivalent explicit fee (linear demand):\n"
           + "\n".join(lines))

    # The equivalence is real: each δ maps to a finite fee, increasing
    # as quality falls.
    fees = [rows[q].equivalent_fee for q in QUALITIES]
    assert fees == sorted(fees)
    assert rows[1.0].equivalent_fee == 0.0

    # The §4.1 point, strengthened: for the same CSP harm, degradation
    # destroys weakly MORE welfare than the explicit fee — so a
    # no-termination-fee rule that ignored QoS games would leave a
    # strictly worse loophole open.
    for q in QUALITIES:
        assert rows[q].welfare_gap >= -1e-9
    assert rows[0.5].welfare_gap > 0


def test_bench_x3_across_families(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    lines = []
    for name, demand in STANDARD_FAMILIES.items():
        eq = equivalent_fee(demand, 0.6)
        lines.append(
            f"{name:<13} δ=0.60 -> fee {eq.equivalent_fee:7.3f}, "
            f"extra waste {eq.welfare_gap:7.3f}"
        )
        assert eq.welfare_gap >= -1e-9
    report("Equivalent fee of δ=0.6 degradation, by family:\n" + "\n".join(lines))
