"""Tests for federated POCs (§1.2)."""

import pytest

from repro.exceptions import MarketError, ReproError, UnknownNodeError
from repro.core.federation import GatewayLink, POCFederation
from repro.core.poc import PublicOptionCore
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network, square_offers


def provisioned_poc() -> PublicOptionCore:
    net = square_network()
    poc = PublicOptionCore(offered=net)
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
    poc.provision(square_offers(net), tm, method="milp")
    return poc


@pytest.fixture
def federation():
    east, west = provisioned_poc(), provisioned_poc()
    east.attach("lmp-e", "A", "lmp")
    east.attach("csp-e", "C", "csp")
    west.attach("lmp-w", "A", "lmp")
    fed = POCFederation({"east": east, "west": west})
    fed.interconnect("east", "C", "west", "A",
                     capacity_gbps=100.0, monthly_cost=1_000.0)
    return fed


class TestConstruction:
    def test_needs_two_members(self):
        with pytest.raises(MarketError):
            POCFederation({"solo": provisioned_poc()})

    def test_members_must_be_provisioned(self):
        bare = PublicOptionCore(offered=square_network())
        with pytest.raises(ReproError):
            POCFederation({"a": provisioned_poc(), "b": bare})

    def test_gateway_validation(self, federation):
        with pytest.raises(MarketError):
            federation.interconnect("east", "A", "nowhere", "A",
                                    capacity_gbps=1.0, monthly_cost=1.0)
        with pytest.raises(UnknownNodeError):
            federation.interconnect("east", "Z", "west", "A",
                                    capacity_gbps=1.0, monthly_cost=1.0)
        with pytest.raises(MarketError):
            GatewayLink(id="x", member_a="a", site_a="A", member_b="a",
                        site_b="B", capacity_gbps=1.0, monthly_cost=0.0)


class TestCombinedFabric:
    def test_namespacing_prevents_collisions(self, federation):
        net = federation.combined_backbone()
        # Both members contribute an "A" node; both survive, namespaced.
        assert net.has_node("east/A")
        assert net.has_node("west/A")

    def test_gateway_links_present(self, federation):
        net = federation.combined_backbone()
        gw = federation.gateways[0]
        assert net.has_link(gw.id)

    def test_cross_member_transit(self, federation):
        path = federation.transit_path(("east", "lmp-e"), ("west", "lmp-w"))
        assert path is not None
        # The path must ride the gateway.
        assert any(lid.startswith("gw") for lid in path.link_ids)

    def test_intra_member_transit(self, federation):
        path = federation.transit_path(("east", "lmp-e"), ("east", "csp-e"))
        assert path is not None
        assert all(not lid.startswith("gw") for lid in path.link_ids)

    def test_reachability_is_universal(self, federation):
        """The federation keeps the transparent-fabric property across
        member boundaries — no fragmentation between POCs."""
        parties = [("east", "lmp-e"), ("east", "csp-e"), ("west", "lmp-w")]
        for i, a in enumerate(parties):
            for b in parties[i + 1:]:
                assert federation.reachable(a, b)

    def test_no_gateway_no_cross_reach(self):
        east, west = provisioned_poc(), provisioned_poc()
        east.attach("lmp-e", "A", "lmp")
        west.attach("lmp-w", "A", "lmp")
        fed = POCFederation({"east": east, "west": west})
        assert not fed.reachable(("east", "lmp-e"), ("west", "lmp-w"))


class TestEconomics:
    def test_total_cost_includes_gateways(self, federation):
        member_costs = sum(p.monthly_cost for p in federation.members.values())
        assert federation.monthly_cost == pytest.approx(member_costs + 1_000.0)

    def test_invoices_break_even(self, federation):
        usage = {
            ("east", "lmp-e"): 10.0,
            ("east", "csp-e"): 20.0,
            ("west", "lmp-w"): 10.0,
        }
        invoices = federation.monthly_invoices(usage)
        assert sum(invoices.values()) == pytest.approx(federation.monthly_cost)
        assert invoices[("east", "csp-e")] == pytest.approx(
            2 * invoices[("east", "lmp-e")]
        )

    def test_invoices_validate_attachments(self, federation):
        with pytest.raises(MarketError):
            federation.monthly_invoices({("east", "ghost"): 1.0})
        with pytest.raises(MarketError):
            federation.monthly_invoices({("mars", "lmp-e"): 1.0})
