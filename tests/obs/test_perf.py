"""Sidecar writing (trial_scope) and the perf aggregator end to end."""

import json

import pytest

from repro import obs
from repro.exceptions import ObservabilityError
from repro.obs.perf import (
    aggregate_perf,
    compare_json,
    compare_perf,
    expand_sidecar_set,
    format_compare,
    format_perf,
    load_jsonl,
    load_perf,
    perf_json,
)


def _trial_line(**over):
    line = {
        "kind": "trial",
        "experiment": "exp",
        "key": "k1",
        "index": 0,
        "seed": 7,
        "ok": True,
        "wall_s": 1.0,
        "cpu_s": 0.9,
        "max_rss_kb": 2048,
        "counters": {"mcf.solves": 3},
        "gauges": {},
        "histograms": {},
        "phases": {"overhead": 0.2, "mcf.solve": 0.8},
        "phase_calls": {"overhead": 1, "mcf.solve": 3},
    }
    line.update(over)
    return line


class TestTrialScopeSidecars:
    def test_writes_trial_and_span_lines(self, tmp_path):
        m, t = tmp_path / "m.jsonl", tmp_path / "t.jsonl"
        obs.configure(metrics_path=str(m), trace_path=str(t), propagate=False)
        with obs.trial_scope("exp", key="abc", index=2, seed=11):
            obs.metrics().inc("work.units", 5)
            with obs.span("phase.a"):
                pass
        (trial,) = load_jsonl(m)
        assert trial["kind"] == "trial"
        assert trial["key"] == "abc" and trial["index"] == 2 and trial["seed"] == 11
        assert trial["ok"] is True
        assert trial["counters"] == {"work.units": 5}
        assert set(trial["phases"]) == {"overhead", "phase.a"}
        # Phase self times partition the trial wall time exactly.
        assert sum(trial["phases"].values()) == pytest.approx(
            trial["wall_s"], rel=1e-6
        )
        spans = load_jsonl(t)
        assert [s["name"] for s in spans] == ["trial", "phase.a"]
        assert all(s["kind"] == "span" and s["trial"] == "abc" for s in spans)

    def test_failed_trial_still_writes_sidecar_and_reraises(self, tmp_path):
        m = tmp_path / "m.jsonl"
        obs.configure(metrics_path=str(m), propagate=False)
        with pytest.raises(ValueError, match="boom"):
            with obs.trial_scope("exp", key="bad"):
                with obs.span("phase.a"):
                    raise ValueError("boom")
        (trial,) = load_jsonl(m)
        assert trial["ok"] is False
        assert "phase.a" in trial["phases"]  # span closed despite the raise

    def test_disabled_scope_yields_none_and_writes_nothing(self, tmp_path):
        with obs.trial_scope("exp", key="k") as collector:
            assert collector is None
            obs.metrics().inc("ignored")
        assert not list(tmp_path.iterdir())

    def test_registry_is_fresh_per_trial(self, tmp_path):
        m = tmp_path / "m.jsonl"
        obs.configure(metrics_path=str(m), propagate=False)
        for key in ("k1", "k2"):
            with obs.trial_scope("exp", key=key):
                obs.metrics().inc("n")
        first, second = load_jsonl(m)
        assert first["counters"] == {"n": 1}
        assert second["counters"] == {"n": 1}  # no carry-over between trials

    def test_write_sweep_summary_line(self, tmp_path):
        m = tmp_path / "m.jsonl"
        obs.configure(metrics_path=str(m), propagate=False)
        obs.write_sweep_summary(
            experiment="exp", trials=4, executed=3, cache_hits=1,
            elapsed_s=0.5, workers=2,
        )
        (line,) = load_jsonl(m)
        assert line["kind"] == "sweep"
        assert line["cache_hit_rate"] == pytest.approx(0.25)


class TestLoadJsonl:
    def test_rejects_nan_token(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "trial", "wall_s": NaN}\n')
        with pytest.raises(ObservabilityError, match="non-finite"):
            load_jsonl(p)

    def test_rejects_corrupt_line_with_location(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"ok": true}\n{"torn": \n')
        with pytest.raises(ObservabilityError, match="bad.jsonl:2"):
            load_jsonl(p)

    def test_rejects_non_object_line(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text("[1, 2]\n")
        with pytest.raises(ObservabilityError, match="not an object"):
            load_jsonl(p)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_jsonl(tmp_path / "nope.jsonl")

    def test_skips_blank_lines(self, tmp_path):
        p = tmp_path / "ok.jsonl"
        p.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(load_jsonl(p)) == 2


class TestAggregatePerf:
    def test_phase_breakdown_and_attribution(self):
        report = aggregate_perf([
            _trial_line(key="k1"),
            _trial_line(key="k2", wall_s=2.0,
                        phases={"overhead": 0.5, "mcf.solve": 1.5},
                        phase_calls={"overhead": 1, "mcf.solve": 5}),
        ])
        assert report.total_wall_s == pytest.approx(3.0)
        assert report.attributed_fraction == pytest.approx(1.0)
        solve = next(p for p in report.phases if p.name == "mcf.solve")
        assert solve.total_s == pytest.approx(2.3)
        assert solve.calls == 8 and solve.trials == 2
        assert report.counters["mcf.solves"] == 6
        # Phases sort by total descending.
        assert report.phases[0].name == "mcf.solve"

    def test_span_lines_fill_in_missing_trials_only(self):
        span_lines = [
            {"kind": "span", "experiment": "exp", "trial": "k1", "name": "trial",
             "dur_s": 9.0, "self_s": 9.0, "index": 0},
            {"kind": "span", "experiment": "exp", "trial": "k9", "name": "trial",
             "dur_s": 4.0, "self_s": 3.0, "index": 1},
            {"kind": "span", "experiment": "exp", "trial": "k9", "name": "solve",
             "dur_s": 1.0, "self_s": 1.0, "index": 2},
        ]
        report = aggregate_perf([_trial_line(key="k1")] + span_lines)
        # k1's metrics line wins (wall 1.0, not the trace's 9.0); k9 comes
        # from the trace alone.
        walls = {t.key: t.wall_s for t in report.trials}
        assert walls == {"k1": 1.0, "k9": 4.0}
        overhead = next(p for p in report.phases if p.name == "overhead")
        assert overhead.total_s == pytest.approx(0.2 + 3.0)

    def test_latest_sweep_line_wins(self):
        report = aggregate_perf([
            {"kind": "sweep", "experiment": "exp", "cache_hits": 0},
            {"kind": "sweep", "experiment": "exp", "cache_hits": 5},
        ])
        assert report.sweeps["exp"]["cache_hits"] == 5

    def test_slowest_orders_by_wall(self):
        report = aggregate_perf([
            _trial_line(key="fast", index=0, wall_s=0.1),
            _trial_line(key="slow", index=1, wall_s=5.0),
        ])
        assert [t.key for t in report.slowest(1)] == ["slow"]


class TestFormatting:
    def test_format_perf_empty_raises(self):
        with pytest.raises(ObservabilityError, match="no trial or span"):
            format_perf(aggregate_perf([]))

    def test_format_perf_table(self):
        text = format_perf(aggregate_perf([_trial_line()]))
        assert "attributed 100.0%" in text
        assert "mcf.solve" in text and "overhead" in text
        assert "slowest trials:" in text

    def test_failed_trial_flagged(self):
        text = format_perf(aggregate_perf([_trial_line(ok=False)]))
        assert "[failed]" in text

    def test_perf_json_is_strict_and_sorted(self):
        payload = json.loads(perf_json(aggregate_perf([_trial_line()])))
        assert payload["trials"] == 1
        assert payload["attributed_fraction"] == pytest.approx(1.0)
        assert [p["name"] for p in payload["phases"]] == ["mcf.solve", "overhead"]

    def test_load_perf_merges_files(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps(_trial_line(key="k1")) + "\n")
        b.write_text(json.dumps(_trial_line(key="k2")) + "\n")
        assert len(load_perf([a, b]).trials) == 2


class TestCompare:
    """The A/B sidecar diff behind ``perf --compare``."""

    def _report(self, tmp_path, name, lines):
        path = tmp_path / f"{name}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        return load_perf([path])

    def _pair(self, tmp_path):
        before = self._report(tmp_path, "before", [
            _trial_line(key="k1", wall_s=4.0,
                        phases={"mcf.solve": 3.0, "overhead": 1.0},
                        phase_calls={"mcf.solve": 6, "overhead": 1},
                        counters={"mcf.solves": 6, "mcf.fallback_solves": 6}),
            _trial_line(key="k2", wall_s=4.0,
                        phases={"mcf.solve": 3.0, "overhead": 1.0},
                        phase_calls={"mcf.solve": 6, "overhead": 1},
                        counters={"mcf.solves": 6, "mcf.fallback_solves": 6}),
        ])
        after = self._report(tmp_path, "after", [
            _trial_line(key="k1", wall_s=2.0,
                        phases={"mcf.solve": 1.0, "overhead": 1.0},
                        phase_calls={"mcf.solve": 6, "overhead": 1},
                        counters={"mcf.solves": 6, "mcf.warm_solves": 6}),
            _trial_line(key="k2", wall_s=2.0,
                        phases={"mcf.solve": 1.0, "overhead": 1.0},
                        phase_calls={"mcf.solve": 6, "overhead": 1},
                        counters={"mcf.solves": 6, "mcf.warm_solves": 6}),
        ])
        return before, after

    def test_phase_deltas_and_speedups(self, tmp_path):
        before, after = self._pair(tmp_path)
        comparison = compare_perf(before, after)
        assert comparison.wall_speedup == pytest.approx(2.0)
        by_name = {d.name: d for d in comparison.deltas}
        assert by_name["mcf.solve"].speedup == pytest.approx(3.0)
        assert by_name["overhead"].speedup == pytest.approx(1.0)
        # Ordered by descending wall time on the A (before) side.
        assert [d.name for d in comparison.deltas] == ["mcf.solve", "overhead"]

    def test_phase_only_on_one_side(self, tmp_path):
        before = self._report(tmp_path, "a", [
            _trial_line(phases={"gone": 2.0}, phase_calls={"gone": 4},
                        counters={}),
        ])
        after = self._report(tmp_path, "b", [
            _trial_line(phases={"new": 1.0}, phase_calls={"new": 2},
                        counters={}),
        ])
        by_name = {d.name: d for d in compare_perf(before, after).deltas}
        assert by_name["gone"].b_total_s == 0.0
        assert by_name["gone"].b_calls == 0
        assert by_name["gone"].speedup is None  # nothing to divide by
        assert by_name["new"].a_total_s == 0.0
        assert by_name["new"].speedup == pytest.approx(0.0)

    def test_counter_deltas_cover_union(self, tmp_path):
        before, after = self._pair(tmp_path)
        deltas = dict(
            (name, (va, vb))
            for name, va, vb in compare_perf(before, after).counter_deltas()
        )
        assert deltas["mcf.fallback_solves"] == (12.0, 0.0)
        assert deltas["mcf.warm_solves"] == (0.0, 12.0)
        assert deltas["mcf.solves"] == (12.0, 12.0)

    def test_format_compare_table(self, tmp_path):
        before, after = self._pair(tmp_path)
        text = format_compare(
            compare_perf(before, after), label_a="base", label_b="warm"
        )
        assert "A = base · B = warm" in text
        assert "overall speedup 2.00x" in text
        assert "mcf.solve" in text and "3.00x" in text
        assert "per-trial mean wall" in text
        assert "mcf.fallback_solves: 12 → 0" in text
        # Unchanged counters stay out of the changed section.
        assert "mcf.solves: 12 → 12" not in text

    def test_format_compare_rejects_empty_side(self, tmp_path):
        before, _after = self._pair(tmp_path)
        empty = aggregate_perf([])
        with pytest.raises(ObservabilityError, match="both sides"):
            format_compare(compare_perf(before, empty))

    def test_compare_json_round_trips(self, tmp_path):
        before, after = self._pair(tmp_path)
        payload = json.loads(compare_json(compare_perf(before, after)))
        assert payload["wall_speedup"] == pytest.approx(2.0)
        assert payload["a"]["trials"] == 2 and payload["b"]["trials"] == 2
        names = [p["name"] for p in payload["phases"]]
        assert names == ["mcf.solve", "overhead"]


class TestExpandSidecarSet:
    def test_single_file(self, tmp_path):
        f = tmp_path / "m.jsonl"
        f.write_text("")
        assert expand_sidecar_set(str(f)) == [f]

    def test_directory_globs_sorted(self, tmp_path):
        d = tmp_path / "run"
        d.mkdir()
        for name in ("b.jsonl", "a.jsonl", "ignored.txt"):
            (d / name).write_text("")
        assert expand_sidecar_set(d) == [d / "a.jsonl", d / "b.jsonl"]

    def test_comma_joined_mix(self, tmp_path):
        d = tmp_path / "run"
        d.mkdir()
        (d / "x.jsonl").write_text("")
        lone = tmp_path / "lone.jsonl"
        lone.write_text("")
        got = expand_sidecar_set(f"{lone}, {d}")
        assert got == [lone, d / "x.jsonl"]

    def test_empty_directory_rejected(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(ObservabilityError, match="no .*jsonl"):
            expand_sidecar_set(d)

    def test_empty_spec_rejected(self):
        with pytest.raises(ObservabilityError, match="empty sidecar set"):
            expand_sidecar_set(" , ")
