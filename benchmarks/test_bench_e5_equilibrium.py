"""E5 — §4.5's third model: the price/fee renegotiation equilibrium.

    t = ( p*(t) − ⟨rc⟩ ) / 2

Shape targets: the fixed point exists and is positive; equilibrium
welfare sits strictly below NN and weakly above unilateral-UR.
"""

import pytest

from repro.econ.csp import CSP
from repro.econ.demand import STANDARD_FAMILIES
from repro.econ.equilibrium import bargaining_equilibrium, compare_regimes
from repro.econ.lmp import entrant, incumbent


def run_all():
    lmps = [incumbent(), entrant()]
    return {
        name: compare_regimes(CSP(name=name, demand=d), lmps)
        for name, d in STANDARD_FAMILIES.items()
    }


def test_bench_e5_equilibrium(benchmark, report):
    comparisons = benchmark(run_all)

    header = (f"{'family':<14}{'t_eq':>8}{'p_eq':>8}{'t_uni':>8}{'p_uni':>8}"
              f"{'W_nn':>9}{'W_eq':>9}{'W_uni':>9}")
    lines = [header, "-" * len(header)]
    for name, rc in comparisons.items():
        lines.append(
            f"{name:<14}{rc.bargaining_fee:>8.3f}{rc.bargaining_price:>8.2f}"
            f"{rc.unilateral_fee:>8.3f}{rc.unilateral_price:>8.2f}"
            f"{rc.nn_welfare:>9.3f}{rc.bargaining_welfare:>9.3f}"
            f"{rc.unilateral_welfare:>9.3f}"
        )
    report("Renegotiation equilibrium vs NN and unilateral UR:\n" + "\n".join(lines))

    for name, rc in comparisons.items():
        assert rc.bargaining_fee >= 0
        assert rc.nn_welfare + 1e-9 >= rc.bargaining_welfare
        assert rc.bargaining_welfare + 1e-9 >= rc.unilateral_welfare
        assert rc.bargaining_fee <= rc.unilateral_fee + 1e-9
    # Strictness on the Lemma-1 families.
    for name in ("linear", "exponential", "logit"):
        rc = comparisons[name]
        assert rc.bargaining_loss > 0
        assert rc.unilateral_loss > rc.bargaining_loss


def test_bench_e5_convergence_speed(benchmark):
    """The fixed-point iteration is the hot inner loop of the market
    simulator: keep it fast and convergent."""
    lmps = [incumbent(), entrant()]
    csp = CSP(name="exp", demand=STANDARD_FAMILIES["exponential"])

    eq = benchmark(lambda: bargaining_equilibrium(csp, lmps))
    assert eq.converged
    assert eq.iterations < 200
