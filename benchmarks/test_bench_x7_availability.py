"""X7 — extension: what the survivability premium buys (§3.3).

Figure 2 shows Constraint #2 makes the auction costlier; this bench
measures the operational return: delivered traffic fraction under random
link outages for the constraint-1 vs constraint-2 backbones, plus the
exhaustive single-failure sweep (where C2's guarantee is absolute).
"""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.selection import select_links
from repro.netflow.availability import (
    exhaustive_k_failures,
    monte_carlo_availability,
)

FAILURE_PROBABILITY = 0.02
DRAWS = 60


def build_backbones(zoo, tm, offers):
    out = {}
    for number in (1, 2):
        constraint = make_constraint(number, zoo.offered, tm, engine="greedy")
        selection = select_links(offers, constraint, method="add-prune")
        out[f"constraint-{number}"] = (
            zoo.offered.restricted_to_links(selection.selected),
            selection.total_cost,
        )
    return out


def test_bench_x7_availability(benchmark, report, tiny_workload):
    zoo, tm, offers = tiny_workload
    backbones = benchmark.pedantic(
        lambda: build_backbones(zoo, tm, offers), rounds=1, iterations=1
    )

    lines = [f"{'backbone':<14}{'links':>7}{'cost':>12}"
             f"{'1-fail avail':>14}{'MC avail':>10}{'MC mean':>9}"]
    stats = {}
    for name, (net, cost) in backbones.items():
        single = exhaustive_k_failures(net, tm, k=1)
        mc = monte_carlo_availability(
            net, tm, link_failure_probability=FAILURE_PROBABILITY,
            draws=DRAWS, seed=13,
        )
        stats[name] = (single, mc)
        lines.append(
            f"{name:<14}{net.num_links:>7}{cost:>12,.0f}"
            f"{single.availability():>14.1%}{mc.availability():>10.1%}"
            f"{mc.mean_delivered():>9.1%}"
        )
    report(
        f"Availability under outages (p={FAILURE_PROBABILITY}, "
        f"{DRAWS} draws):\n" + "\n".join(lines)
    )

    c1_single, c1_mc = stats["constraint-1"]
    c2_single, c2_mc = stats["constraint-2"]

    # The absolute guarantee C2 paid for: every single-link failure
    # leaves the full TM deliverable.
    assert c2_single.availability() == 1.0
    # The lean C1 backbone cannot beat that (typically it is strictly
    # vulnerable, being exactly tight).
    assert c1_single.availability() <= c2_single.availability()
    # Under random outages the survivable backbone delivers at least as
    # much on average.
    assert c2_mc.mean_delivered() >= c1_mc.mean_delivered() - 1e-9
