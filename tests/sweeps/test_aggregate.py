"""Tests for the sweep aggregation layer."""

import json
import math

import pytest

from repro.exceptions import SweepError
from repro.sweeps.aggregate import (
    GroupStat,
    MetricStat,
    aggregate,
    format_report,
    percentile,
    report_json,
)


class TestPercentile:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0

    def test_linear_interpolation(self):
        # numpy's default ("linear") on [1..4]: p50 = 2.5, p25 = 1.75.
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile(values, 25.0) == pytest.approx(1.75)

    def test_single_value(self):
        assert percentile([3.5], 95.0) == 3.5

    def test_validation(self):
        with pytest.raises(SweepError):
            percentile([], 50.0)
        with pytest.raises(SweepError):
            percentile([1.0], 101.0)


class TestMetricStat:
    def test_known_values(self):
        stat = MetricStat.from_values([1.0, 2.0, 3.0, 4.0])
        assert stat.n == 4
        assert stat.mean == pytest.approx(2.5)
        # Sample std (ddof=1) of [1,2,3,4].
        assert stat.std == pytest.approx(math.sqrt(5.0 / 3.0))
        assert stat.ci95 == pytest.approx(1.959963984540054 * stat.std / 2.0)
        assert stat.lo == 1.0 and stat.hi == 4.0
        assert stat.p50 == pytest.approx(2.5)

    def test_single_observation(self):
        stat = MetricStat.from_values([7.0])
        assert stat.std == 0.0
        assert stat.ci95 == 0.0
        assert stat.mean == stat.p5 == stat.p95 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(SweepError):
            MetricStat.from_values([])


class TestAggregate:
    ROWS = [
        ({"x": 1, "m": "a"}, {"v": 1.0, "w": 10.0}),
        ({"x": 1, "m": "b"}, {"v": 3.0, "w": 30.0}),
        ({"x": 2, "m": "a"}, {"v": 5.0, "w": 50.0}),
    ]

    def test_single_group_by_default(self):
        groups = aggregate(self.ROWS)
        assert len(groups) == 1
        assert groups[0].label() == "(all)"
        assert groups[0].n == 3
        assert groups[0].metrics["v"].mean == pytest.approx(3.0)

    def test_group_by_axis(self):
        groups = aggregate(self.ROWS, group_by=["x"])
        assert [g.group for g in groups] == [{"x": 1}, {"x": 2}]
        assert groups[0].n == 2
        assert groups[0].metrics["v"].mean == pytest.approx(2.0)
        assert groups[1].metrics["w"].mean == pytest.approx(50.0)

    def test_missing_group_key_is_none(self):
        rows = [({"x": 1}, {"v": 1.0}), ({}, {"v": 2.0})]
        groups = aggregate(rows, group_by=["x"])
        assert {g.group["x"] for g in groups} == {1, None}

    def test_bools_count_as_numeric(self):
        groups = aggregate([({}, {"flag": True}), ({}, {"flag": False})])
        assert groups[0].metrics["flag"].mean == pytest.approx(0.5)

    def test_non_numeric_metrics_skipped(self):
        groups = aggregate([({}, {"v": 1.0, "note": "ok"})])
        assert "note" not in groups[0].metrics

    def test_non_finite_metric_rejected(self):
        with pytest.raises(SweepError):
            aggregate([({}, {"v": float("inf")})])

    def test_no_rows_rejected(self):
        with pytest.raises(SweepError):
            aggregate([])

    def test_order_invariance(self):
        """Byte-stability: shuffled rows give the identical report."""
        forward = aggregate(self.ROWS, group_by=["x"])
        backward = aggregate(list(reversed(self.ROWS)), group_by=["x"])
        assert report_json("t", forward) == report_json("t", backward)


class TestReports:
    def test_format_report_layout(self):
        groups = aggregate(TestAggregate.ROWS, group_by=["x"])
        text = format_report("demo", groups)
        lines = text.splitlines()
        assert lines[0] == "sweep aggregate — experiment=demo"
        assert "v" in lines[1] and "±ci95" in lines[1]
        assert any(line.startswith("x=1") for line in lines)
        assert any(line.startswith("x=2") for line in lines)

    def test_metric_selection_and_order(self):
        groups = aggregate(TestAggregate.ROWS)
        text = format_report("demo", groups, metrics=["w", "v"])
        header = text.splitlines()[1]
        assert header.index("w") < header.index("v")

    def test_unknown_metric_shows_dash(self):
        groups = aggregate(TestAggregate.ROWS)
        text = format_report("demo", groups, metrics=["absent"])
        assert "—" in text.splitlines()[-1]

    def test_empty_groups_rejected(self):
        with pytest.raises(SweepError):
            format_report("demo", [])

    def test_report_json_canonical(self):
        groups = aggregate(TestAggregate.ROWS, group_by=["x"])
        payload = json.loads(report_json("demo", groups))
        assert payload["experiment"] == "demo"
        assert len(payload["groups"]) == 2
        assert payload["groups"][0]["metrics"]["v"]["n"] == 2

    def test_group_stat_to_dict(self):
        stat = GroupStat(
            group={"x": 1}, n=1,
            metrics={"v": MetricStat.from_values([2.0])},
        )
        payload = stat.to_dict()
        assert payload["group"] == {"x": 1}
        assert payload["metrics"]["v"]["mean"] == 2.0


class TestMetricStatEdgeCases:
    def test_single_value_has_zero_spread(self):
        stat = MetricStat.from_values([3.5])
        assert stat.n == 1
        assert stat.mean == 3.5
        assert stat.std == 0.0
        assert stat.ci95 == 0.0
        assert stat.p5 == stat.p50 == stat.p95 == 3.5
        assert stat.lo == stat.hi == 3.5

    def test_all_equal_values_have_exactly_zero_ci(self):
        """CI width must be exactly 0.0 (not NaN or a rounding residue)."""
        import math as _math

        for value in (0.0, 1e-300, 0.1, 1e12):
            stat = MetricStat.from_values([value] * 7)
            assert stat.std == 0.0
            assert stat.ci95 == 0.0
            assert not _math.isnan(stat.std)
            assert stat.mean == pytest.approx(value)

    def test_overflowing_values_raise_not_nan(self):
        with pytest.raises(SweepError, match="overflowed"):
            MetricStat.from_values([1e308, -1e308, 1e308])

    def test_single_value_round_trips_through_json(self):
        groups = [GroupStat(group={}, n=1,
                            metrics={"v": MetricStat.from_values([2.0])})]
        payload = json.loads(report_json("demo", groups))
        metric = payload["groups"][0]["metrics"]["v"]
        assert metric["ci95"] == 0.0 and metric["std"] == 0.0
