"""Tests for archive writing and the integrity audit (tamper detection)."""

import json

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios import (
    ScenarioPack,
    check_archive,
    default_archive_dir,
    load_archive,
    run_pack,
)
from repro.scenarios.archive import (
    AGGREGATES_FILE,
    MANIFEST_FILE,
    RESULTS_FILE,
    SEEDS_FILE,
)

from tests.scenarios.test_pack import payload


@pytest.fixture()
def sealed(tmp_path):
    """One completed demo-pack archive."""
    pack = ScenarioPack.from_dict(payload())
    root = tmp_path / "arch"
    result = run_pack(pack, root)
    return pack, root, result


class TestArchiveWriter:
    def test_layout_and_manifest(self, sealed):
        pack, root, result = sealed
        for name in ("pack.json", MANIFEST_FILE, RESULTS_FILE,
                     AGGREGATES_FILE, SEEDS_FILE, "supervision.txt",
                     "checkpoint.json"):
            assert (root / name).exists(), name
        archive = load_archive(root)
        assert archive.manifest["status"] == "complete"
        assert archive.manifest["pack_fingerprint"] == pack.fingerprint()
        assert archive.manifest["trials"] == len(result.outcomes) == 2
        assert archive.pack.fingerprint() == pack.fingerprint()

    def test_seed_ledger_matches_spec(self, sealed):
        pack, root, result = sealed
        seeds = json.loads((root / SEEDS_FILE).read_text())
        assert seeds["root_seed"] == pack.spec.seed
        by_index = {t.index: t.seed for t in pack.spec.trials()}
        for row in seeds["trials"]:
            assert by_index[row["index"]] == row["seed"]

    def test_rerun_same_pack_resumes_from_cache(self, sealed):
        pack, root, first = sealed
        second = run_pack(pack, root)
        assert second.executed == 0
        assert second.cache_hits == len(first.outcomes)

    def test_different_pack_into_same_dir_refused(self, sealed):
        pack, root, _ = sealed
        other = pack.with_overrides({"scale": 9.0})
        with pytest.raises(ScenarioError, match="refusing"):
            run_pack(other, root)

    def test_default_archive_dir_is_fingerprint_scoped(self):
        pack = ScenarioPack.from_dict(payload())
        path = default_archive_dir(pack, base="archives")
        assert path.name == f"{pack.name}-{pack.fingerprint()[:12]}"
        overridden = pack.with_overrides({"scale": 2.0})
        assert default_archive_dir(overridden) != path


class TestCheckArchive:
    def test_intact_archive_has_no_problems(self, sealed):
        _, root, _ = sealed
        assert check_archive(root) == []

    def test_tampered_param_breaks_key_hash(self, sealed):
        _, root, _ = sealed
        store = root / RESULTS_FILE
        lines = [json.loads(l) for l in store.read_text().splitlines()]
        lines[0]["params"]["scale"] = 777.0
        store.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        problems = check_archive(root)
        assert any("does not hash to its key" in p for p in problems)

    def test_tampered_record_breaks_aggregates(self, sealed):
        _, root, _ = sealed
        store = root / RESULTS_FILE
        lines = [json.loads(l) for l in store.read_text().splitlines()]
        record = lines[0]["record"]
        record[next(iter(record))] = 1e9
        store.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        problems = check_archive(root)
        assert any("not byte-identical" in p for p in problems)

    def test_tampered_aggregates_file_caught_by_pinned_hash(self, sealed):
        _, root, _ = sealed
        path = root / AGGREGATES_FILE
        path.write_text(path.read_text() + " ")
        problems = check_archive(root)
        assert any("aggregates_sha256" in p for p in problems)

    def test_deleted_trial_reported_missing(self, sealed):
        _, root, _ = sealed
        store = root / RESULTS_FILE
        lines = store.read_text().splitlines()
        store.write_text("\n".join(lines[:-1]) + "\n")
        problems = check_archive(root)
        assert any("missing from results.jsonl" in p for p in problems)

    def test_interrupted_manifest_reported(self, sealed):
        _, root, _ = sealed
        manifest_path = root / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["status"] = "running"
        manifest_path.write_text(json.dumps(manifest))
        problems = check_archive(root)
        assert any("not 'complete'" in p for p in problems)

    def test_not_a_directory_is_one_problem(self, tmp_path):
        problems = check_archive(tmp_path / "nope")
        assert len(problems) == 1
