"""Tests for capacity planning and re-auction scheduling."""

import pytest

from repro.exceptions import MarketError
from repro.core.planning import (
    months_of_headroom,
    plan_reprovisioning,
)
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network, square_offers


@pytest.fixture
def setup():
    net = square_network()
    offers = square_offers(net)
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 1.0})
    return net, offers, tm


class TestHeadroom:
    def test_headroom_from_lambda(self, setup):
        net, _offers, tm = setup
        # Total A->C capacity 25 over demand 1: λ = 25; at 10% growth
        # months = floor(ln 25 / ln 1.1) = 33.
        assert months_of_headroom(net, tm, 0.10) == 33

    def test_zero_growth_sentinel(self, setup):
        net, _offers, tm = setup
        assert months_of_headroom(net, tm, 0.0) == 1200

    def test_already_infeasible(self, setup):
        net, _offers, _tm = setup
        heavy = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 100.0})
        assert months_of_headroom(net, heavy, 0.1) == 0

    def test_negative_growth_rejected(self, setup):
        net, _offers, tm = setup
        with pytest.raises(MarketError):
            months_of_headroom(net, tm, -0.1)


class TestPlan:
    def test_month_zero_always_provisions(self, setup):
        net, offers, tm = setup
        plan = plan_reprovisioning(
            net, offers, tm, monthly_growth=0.0, horizon_months=6,
        )
        assert plan.epochs[0].reprovisioned
        assert plan.num_reprovisions == 1  # no growth: never again
        assert len(plan.epochs) == 6

    @staticmethod
    def _with_external(net, offers):
        """Growth scenarios need the external fallback the paper assumes,
        else VCG leave-one-out pricing becomes infeasible mid-horizon."""
        from repro.auction.provider import make_external_contract

        contract = make_external_contract(
            "ext", [("A", "C")], capacity_gbps=50.0, price_per_link=1000.0
        )
        for link in contract.links:
            net.add_link(link)
        return offers + [contract.to_offer()]

    def test_growth_triggers_reprovision(self, setup):
        net, offers, tm = setup
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        all_offers = self._with_external(net, offers)
        plan = plan_reprovisioning(
            net, all_offers, tm, monthly_growth=0.15, horizon_months=10,
            provision_margin=1.5, trigger_headroom=1.1,
        )
        assert plan.num_reprovisions >= 2
        # Headroom never observed below 1 (the plan never runs overloaded).
        assert all(e.headroom >= 1.0 - 1e-6 for e in plan.epochs)

    def test_margin_is_respected_after_each_auction(self, setup):
        net, offers, tm = setup
        plan = plan_reprovisioning(
            net, offers, tm, monthly_growth=0.1, horizon_months=10,
            provision_margin=2.0, trigger_headroom=1.2,
        )
        for epoch in plan.epochs:
            if epoch.reprovisioned:
                assert epoch.headroom >= 2.0 - 1e-6

    def test_costs_weakly_increase_with_growth(self, setup):
        net, offers, tm = setup
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        all_offers = self._with_external(net, offers)
        plan = plan_reprovisioning(
            net, all_offers, tm, monthly_growth=0.15, horizon_months=10,
            provision_margin=1.5, trigger_headroom=1.1,
        )
        costs = [e.monthly_cost for e in plan.epochs if e.reprovisioned]
        assert len(costs) >= 2
        # Bigger TMs can't get cheaper backbones from the same offers.
        for a, b in zip(costs, costs[1:]):
            assert b >= a - 1e-6

    def test_validation(self, setup):
        net, offers, tm = setup
        with pytest.raises(MarketError):
            plan_reprovisioning(net, offers, tm, monthly_growth=0.1,
                                horizon_months=0)
        with pytest.raises(MarketError):
            plan_reprovisioning(net, offers, tm, monthly_growth=0.1,
                                horizon_months=5, trigger_headroom=0.9)
        with pytest.raises(MarketError):
            plan_reprovisioning(net, offers, tm, monthly_growth=0.1,
                                horizon_months=5, provision_margin=1.0,
                                trigger_headroom=1.2)
        with pytest.raises(MarketError):
            plan_reprovisioning(net, offers, tm, monthly_growth=-0.1,
                                horizon_months=5)

    def test_growth_beyond_offer_book_raises(self, setup):
        from repro.exceptions import NoFeasibleSelectionError

        net, offers, tm = setup
        with pytest.raises(NoFeasibleSelectionError):
            plan_reprovisioning(
                net, offers, tm, monthly_growth=1.0, horizon_months=10,
            )
