"""T2 — ROADMAP item 2: the continental-scale substrate.

The paper's workload is one metro market (20 BPs, ~4700 links); this
tier stresses the pipeline two orders of magnitude past it: 100+ BPs,
500+ POC sites, ≥100k logical links.  The build is instrumented through
a ``repro.obs`` trial scope, so wall-clock, CPU and peak RSS land in a
committed metrics sidecar (``results/test_bench_t2_continental.metrics
.jsonl``) alongside the printed report — the regression record for the
substrate's scaling behaviour.

The market itself is cleared region-sharded (see DESIGN.md §15): this
file benchmarks the fan-out bookkeeping at full T2 scale and the
serial-vs-parallel byte-identity contract on the smoke preset; the
engine-level clearing benchmarks stay on T1-sized inputs (AB1/AB2).
"""

import json
import pathlib

import pytest

from repro import obs
from repro.auction.sharded import (
    RegionPartition,
    clear_sharded_spec,
    continental_workload,
    split_offers,
    split_traffic,
)
from repro.netflow.pathmcf import k_diverse_paths
from repro.topology.continental import ContinentalConfig, build_continental
from repro.topology.sparse import SparseTopology

SIDECAR = pathlib.Path(__file__).parent / "results" / (
    "test_bench_t2_continental.metrics.jsonl"
)

T2_SEED = 2026


@pytest.fixture(scope="module")
def t2():
    """The full T2 workload (zoo, offers, tm, partition), built once."""
    return continental_workload("t2", seed=T2_SEED)


def test_bench_t2_continental_scale(benchmark, report):
    """Build the T2 topology under an obs trial scope; assert the floors."""
    SIDECAR.parent.mkdir(exist_ok=True)
    SIDECAR.unlink(missing_ok=True)
    obs.configure(metrics_path=str(SIDECAR), propagate=False)
    try:
        with obs.trial_scope("bench_t2_continental", seed=T2_SEED):
            zoo = benchmark.pedantic(
                lambda: build_continental(ContinentalConfig.t2(T2_SEED)),
                rounds=1, iterations=1,
            )
    finally:
        obs.disable()
    trial = json.loads(SIDECAR.read_text().splitlines()[-1])

    lines = [
        f"BPs:            {len(zoo.bps):>8,}     (floor: 100)",
        f"POC sites:      {len(zoo.sites):>8,}     (floor: 500)",
        f"logical links:  {zoo.num_logical_links:>8,}     (floor: 100,000)",
        f"build wall:     {trial['wall_s']:>8.1f} s",
        f"build cpu:      {trial['cpu_s']:>8.1f} s",
        f"peak RSS:       {trial['max_rss_kb'] / 1024:>8.0f} MB",
    ]
    report("T2 continental build (sidecar: results/*.metrics.jsonl):\n"
           + "\n".join(lines))

    assert len(zoo.bps) >= 100
    assert len(zoo.sites) >= 500
    assert zoo.num_logical_links >= 100_000
    assert trial["ok"] and trial["wall_s"] > 0 and trial["max_rss_kb"] > 0


def test_bench_t2_sparse_substrate(benchmark, report, t2):
    """The arrays-of-structs form must stay compact at 200k+ links."""
    zoo, _offers, _tm, _partition = t2
    sparse = benchmark.pedantic(
        lambda: SparseTopology.from_network(zoo.offered),
        rounds=1, iterations=1,
    )
    per_link = sparse.memory_bytes / sparse.num_links
    lines = [
        f"nodes:          {sparse.num_nodes:>8,}",
        f"links:          {sparse.num_links:>8,}",
        f"resident:       {sparse.memory_bytes / 1e6:>8.1f} MB",
        f"bytes/link:     {per_link:>8.0f}",
    ]
    report("T2 sparse substrate:\n" + "\n".join(lines))

    assert sparse.num_links == zoo.num_logical_links
    assert sparse.total_capacity_gbps() == pytest.approx(
        zoo.offered.total_capacity_gbps()
    )
    # Object-graph storage runs ~1 KB/link; the substrate must stay
    # two orders of magnitude under that.
    assert per_link < 1024


def test_bench_t2_partition_fanout(benchmark, report, t2):
    """Region fan-out must cover every link and every Gbps exactly."""
    zoo, offers, tm, partition = t2

    def fanout():
        return split_offers(offers, partition), split_traffic(tm, partition)

    (by_region, cross_offers), (intra, cross_pairs) = benchmark.pedantic(
        fanout, rounds=1, iterations=1
    )

    region_links = {
        r: sum(len(o.links) for o in subs) for r, subs in by_region.items()
    }
    cross_links = sum(len(o.links) for o in cross_offers)
    lines = [
        f"{r:>6}: {region_links[r]:>7,} links  "
        f"{intra[r].total_gbps():>10,.0f} Gbps intra"
        for r in partition.regions
    ]
    lines.append(
        f" cross: {cross_links:>7,} links  "
        f"{sum(cross_pairs.values()):>10,.0f} Gbps over "
        f"{len(cross_pairs)} region pairs"
    )
    report("T2 region fan-out:\n" + "\n".join(lines))

    assert len(partition.regions) >= 3
    assert sum(region_links.values()) + cross_links == sum(
        len(o.links) for o in offers
    )
    split_total = sum(t.total_gbps() for t in intra.values()) + sum(
        cross_pairs.values()
    )
    assert split_total == pytest.approx(tm.total_gbps())


def test_bench_t2_path_probe(benchmark, report, t2):
    """k-diverse pathfinding stays sub-second on the full T2 graph."""
    zoo, _offers, _tm, _partition = t2
    sparse = SparseTopology.from_network(zoo.offered)
    n = sparse.num_nodes
    pairs = [(0, n - 1), (n // 3, 2 * n // 3), (1, n // 2)]

    def probe():
        return [k_diverse_paths(sparse, s, d, 3) for s, d in pairs]

    found = benchmark.pedantic(probe, rounds=1, iterations=1)
    lines = [
        f"pair {i}: {len(paths)} diverse paths, "
        f"hops {[len(links) for links, _arcs in paths]}"
        for i, paths in enumerate(found)
    ]
    report("T2 k-diverse path probe (k=3):\n" + "\n".join(lines))

    for paths in found:
        assert paths, "T2 offered network must be connected"
        assert len({links for links, _ in paths}) == len(paths)


def test_bench_t2_smoke_clear_byte_identity(benchmark, report):
    """Serial and worker-pool sharded clears agree byte for byte."""
    serial = clear_sharded_spec("smoke", seed=3, workers=0)
    parallel = benchmark.pedantic(
        lambda: clear_sharded_spec("smoke", seed=3, workers=2),
        rounds=1, iterations=1,
    )
    lines = [
        f"regions:        {', '.join(r.label for r in serial.regions)}",
        f"selected links: {len(serial.selected):>6}",
        f"total cost:     {serial.total_cost:>14,.0f}",
        f"stitch links:   {len(serial.stitch.selected):>6}",
        f"byte-identical: {serial.canonical_json() == parallel.canonical_json()}",
    ]
    report("Sharded clear, serial vs 2-worker pool (smoke preset):\n"
           + "\n".join(lines))
    assert serial.canonical_json() == parallel.canonical_json()


def test_bench_t2_geographic_partition(benchmark, t2):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """Longitude banding covers every site with near-equal bands."""
    zoo, _offers, _tm, _partition = t2
    part = RegionPartition.geographic(zoo.sites, 8, catalog=zoo.catalog)
    sizes = [len(part.routers_in(r)) for r in part.regions]
    assert sum(sizes) == len(zoo.sites)
    assert max(sizes) - min(sizes) <= 1
