"""Tests for the continental-scale catalog and topology builder."""

import pytest

from repro.topology.cities import BUILTIN_CATALOG
from repro.topology.continental import (
    REGION_BOXES,
    ContinentalConfig,
    build_continental,
    synthetic_catalog,
)


@pytest.fixture(scope="module")
def smoke_zoo():
    return build_continental(ContinentalConfig.smoke())


class TestSyntheticCatalog:
    def test_size_and_regions(self):
        cfg = ContinentalConfig.smoke()
        catalog = synthetic_catalog(cfg)
        assert len(catalog) == cfg.cities_per_region * len(cfg.regions)
        assert catalog.regions == cfg.regions

    def test_cities_inside_region_boxes(self):
        cfg = ContinentalConfig.smoke()
        for city in synthetic_catalog(cfg).cities:
            lat_min, lat_max, lon_min, lon_max = REGION_BOXES[city.region]
            assert lat_min <= city.lat <= lat_max
            assert lon_min <= city.lon <= lon_max

    def test_names_are_lexicographically_ordered_per_region(self):
        catalog = synthetic_catalog(ContinentalConfig.smoke())
        for region in catalog.regions:
            names = [c.name for c in catalog.in_region(region)]
            assert names == sorted(names)

    def test_populations_positive_and_bounded(self):
        cfg = ContinentalConfig.smoke()
        for city in synthetic_catalog(cfg).cities:
            assert 0.0 < city.population_m <= cfg.population_max_m

    def test_deterministic_per_seed(self):
        a = synthetic_catalog(ContinentalConfig.smoke(seed=5))
        b = synthetic_catalog(ContinentalConfig.smoke(seed=5))
        c = synthetic_catalog(ContinentalConfig.smoke(seed=6))
        assert a.cities == b.cities
        assert a.cities != c.cities

    def test_does_not_collide_with_builtin_names(self):
        catalog = synthetic_catalog(ContinentalConfig.smoke())
        for city in catalog.cities:
            assert city.name not in BUILTIN_CATALOG

    def test_rejects_unknown_region(self):
        with pytest.raises(ValueError):
            ContinentalConfig(regions=("na", "atlantis"))


class TestBuildContinental:
    def test_smoke_shape(self, smoke_zoo):
        cfg = ContinentalConfig.smoke()
        assert len(smoke_zoo.bps) == cfg.num_bps
        assert len(smoke_zoo.sites) >= 2
        assert smoke_zoo.num_logical_links > 0
        assert smoke_zoo.catalog is not None
        assert smoke_zoo.catalog.name.startswith("continental-")

    def test_sites_meet_colocation_threshold(self, smoke_zoo):
        cfg = ContinentalConfig.smoke()
        for site in smoke_zoo.sites:
            assert len(site.bps) >= cfg.min_bps_colocated

    def test_all_cities_resolve_in_catalog(self, smoke_zoo):
        for site in smoke_zoo.sites:
            assert site.city in smoke_zoo.catalog
            for member in site.member_cities:
                assert member in smoke_zoo.catalog

    def test_offered_network_is_site_graph(self, smoke_zoo):
        router_ids = {s.router_id for s in smoke_zoo.sites}
        assert set(smoke_zoo.offered.node_ids) == router_ids
        assert smoke_zoo.offered.num_links == smoke_zoo.num_logical_links

    def test_multi_region_sites_exist(self, smoke_zoo):
        regions = {
            smoke_zoo.catalog.get(s.city).region for s in smoke_zoo.sites
        }
        assert len(regions) >= 2  # the smoke preset spans na and eu

    def test_deterministic_per_seed(self):
        a = build_continental(ContinentalConfig.smoke(seed=9))
        b = build_continental(ContinentalConfig.smoke(seed=9))
        assert [s.city for s in a.sites] == [s.city for s in b.sites]
        assert a.offered.link_ids == b.offered.link_ids
        assert a.num_logical_links == b.num_logical_links

    def test_bp_names_widen_past_99(self):
        # The T2 preset mints 110 BPs; ids must stay lexicographically
        # ordered, so the zoo widens the pad to 3 digits there.
        cfg = ContinentalConfig.t2()
        zoo_cfg = cfg.zoo_config()
        width = max(2, len(str(zoo_cfg.num_bps)))
        assert width == 3
