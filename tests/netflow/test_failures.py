"""Tests for failure-scenario enumeration."""

import pytest

from repro.netflow.failures import (
    node_failures,
    primary_path_failures,
    shared_risk_groups,
    single_link_failures,
)
from repro.topology.graph import Link, Node

from tests.conftest import square_network


class TestSingleLink:
    def test_one_scenario_per_link(self, square):
        scenarios = list(single_link_failures(square.link_ids))
        assert len(scenarios) == square.num_links
        assert all(len(s) == 1 for s in scenarios)

    def test_deterministic_order(self, square):
        a = list(single_link_failures(square.link_ids))
        b = list(single_link_failures(reversed(square.link_ids)))
        assert a == b

    def test_deduplicates(self):
        scenarios = list(single_link_failures(["x", "x", "y"]))
        assert len(scenarios) == 2


class TestPrimaryPath:
    def test_scenarios_are_shortest_paths(self, square):
        scenarios = dict(primary_path_failures(square, square.link_ids))
        # A-C's primary path is the direct diagonal.
        assert scenarios.get(("A", "C")) == frozenset({"AC"})

    def test_one_direction_per_pair(self, square):
        pairs = [pair for pair, _ in primary_path_failures(square, square.link_ids)]
        assert all(src < dst for src, dst in pairs)

    def test_restricted_to_candidate_links(self, square):
        # Without the diagonal, A-C's primary path runs around the ring.
        ring = ["AB", "BC", "CD", "DA"]
        scenarios = dict(primary_path_failures(square, ring))
        ac = scenarios.get(("A", "C"))
        if ac is not None:
            assert "AC" not in ac
            assert len(ac) == 2

    def test_deduplicates_identical_paths(self, square):
        # A-B primary path {AB} appears once even though the pair (A,B)
        # and no other pair shares it; sanity: all scenarios distinct.
        scenario_sets = [s for _, s in primary_path_failures(square, square.link_ids)]
        assert len(scenario_sets) == len(set(scenario_sets))

    def test_first_pair_label_kept_on_duplicate(self, square):
        # Duplicate candidate ids must not duplicate scenarios either.
        doubled = list(square.link_ids) * 2
        a = list(primary_path_failures(square, square.link_ids))
        b = list(primary_path_failures(square, doubled))
        assert a == b

    def test_disconnected_pair_yields_no_scenario(self, square):
        square.add_node(Node(id="Z"))  # stranded site: no incident links
        pairs = {pair for pair, _ in primary_path_failures(square, square.link_ids)}
        assert all("Z" not in pair for pair in pairs)


class TestNodeFailures:
    def test_incident_links(self, square):
        scenarios = dict(node_failures(["A"], square))
        assert scenarios["A"] == frozenset({"AB", "DA", "AC"})

    def test_all_nodes(self, square):
        scenarios = dict(node_failures(square.node_ids, square))
        assert set(scenarios) == set(square.node_ids)

    def test_isolated_node_yields_nothing(self, square):
        # A site with no links has no failure scenario: removing zero
        # links proves nothing, and the constraint layer must not see
        # an empty removal set.
        square.add_node(Node(id="Z"))
        scenarios = dict(node_failures(["Z", "A"], square))
        assert "Z" not in scenarios
        assert "A" in scenarios

    def test_unknown_node_raises(self, square):
        from repro.exceptions import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            list(node_failures(["nope"], square))


class TestSharedRisk:
    def test_parallel_links_grouped(self, square):
        square.add_link(Link(id="AB2", u="A", v="B", capacity_gbps=5.0))
        groups = shared_risk_groups(square)
        assert frozenset({"AB", "AB2"}) in groups

    def test_no_groups_without_parallels(self, square):
        assert shared_risk_groups(square) == []

    def test_corridor_of_parallel_links_is_one_group(self, square):
        # Three conduits in the same A-B corridor: one backhoe, one group.
        square.add_link(Link(id="AB2", u="A", v="B", capacity_gbps=5.0))
        square.add_link(Link(id="AB3", u="B", v="A", capacity_gbps=2.0))
        groups = shared_risk_groups(square)
        assert frozenset({"AB", "AB2", "AB3"}) in groups
        assert len(groups) == 1  # endpoint orientation does not split it

    def test_virtual_links_excluded_by_default(self, square):
        # An external-ISP virtual link rides the ISP's own plant, not the
        # leased conduit: it must not join the corridor's risk group.
        square.add_link(
            Link(id="ABv", u="A", v="B", capacity_gbps=5.0, virtual=True)
        )
        assert shared_risk_groups(square) == []
        groups = shared_risk_groups(square, include_virtual=True)
        assert frozenset({"AB", "ABv"}) in groups

    def test_groups_sorted_and_deterministic(self, square):
        square.add_link(Link(id="CD2", u="C", v="D", capacity_gbps=5.0))
        square.add_link(Link(id="AB2", u="A", v="B", capacity_gbps=5.0))
        groups = shared_risk_groups(square)
        assert groups == [frozenset({"AB", "AB2"}), frozenset({"CD", "CD2"})]
