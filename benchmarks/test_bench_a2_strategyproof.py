"""A2 — §3.3's strategy-proofness: truthful bidding is weakly dominant.

Two measurements:

1. **Exact mechanism** (MILP selection) on a sub-market small enough to
   solve exactly: no shading factor may beat truthful bidding.  This is
   the paper's actual claim — strategy-proofness is a property of the
   VCG payment rule *with an exact optimizer*.
2. **Heuristic mechanism** (add-prune selection, what large instances
   run): overbidding still never helps, but *under*bidding occasionally
   does, because a lower declared price changes the heuristic's selection
   order.  The bench reports this gap rather than hiding it — it is the
   practical price of heuristic clearing, recorded in EXPERIMENTS.md.
"""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.vcg import AuctionConfig, run_auction, utility
from repro.traffic.matrix import TrafficMatrix

FACTORS = (0.85, 1.0, 1.15, 1.4)


def sub_market(zoo, tm, offers, num_sites: int = 4):
    """Restrict the workload to the few best-connected POC sites so the
    exact MILP mechanism is affordable."""
    degree = {n: zoo.offered.degree(n) for n in zoo.offered.node_ids}
    keep_sites = sorted(degree, key=lambda n: -degree[n])[:num_sites]
    keep_links = [
        l.id for l in zoo.offered.iter_links()
        if l.u in keep_sites and l.v in keep_sites
    ]
    net = zoo.offered.restricted_to_links(keep_links, name="sub-market")
    sub_tm = tm.restricted_to(keep_sites)
    from repro.auction.collusion import withhold_offer

    sub_offers = []
    for offer in offers:
        mine = offer.link_ids & set(keep_links)
        if mine:
            sub_offers.append(withhold_offer(offer, mine))
    return net, sub_tm, sub_offers


def shading_sweep(net, tm, offers, bp_name, method):
    utilities = {}
    for factor in FACTORS:
        shaded = [
            o.with_bid(o.bid.scaled(factor)) if o.provider == bp_name else o
            for o in offers
        ]
        engine = "mcf" if method == "milp" else "greedy"
        constraint = make_constraint(1, net, tm, engine=engine)
        result = run_auction(shaded, constraint, config=AuctionConfig(method=method))
        target = next(o for o in shaded if o.provider == bp_name)
        utilities[factor] = utility(target, result)
    return utilities


def test_bench_a2_strategyproof_exact(benchmark, report, tiny_workload):
    zoo, tm, offers = tiny_workload
    net, sub_tm, sub_offers = sub_market(zoo, tm, offers)

    bps = sorted(o.provider for o in sub_offers)
    results = {}
    first = True
    for bp in bps:
        if first:
            results[bp] = benchmark.pedantic(
                lambda: shading_sweep(net, sub_tm, sub_offers, bp, "milp"),
                rounds=1, iterations=1,
            )
            first = False
        else:
            results[bp] = shading_sweep(net, sub_tm, sub_offers, bp, "milp")

    active_sites = sum(1 for n in net.node_ids if net.degree(n) > 0)
    lines = [f"sub-market: {active_sites} sites, {net.num_links} links, "
             f"{len(sub_offers)} BPs  (exact MILP mechanism)"]
    lines.append(f"{'BP':<8}" + "".join(f"  x{f:<7.2f}" for f in FACTORS))
    for bp, utilities in results.items():
        lines.append(f"{bp:<8}" + "".join(f"{utilities[f]:>9,.0f}" for f in FACTORS))
    report("BP utility vs bid shading — exact mechanism:\n" + "\n".join(lines))

    # The paper's claim, asserted exactly: no profitable misreport.
    for bp, utilities in results.items():
        truthful = utilities[1.0]
        assert truthful >= -1e-6
        for factor in FACTORS:
            assert utilities[factor] <= truthful + 1e-6, (bp, factor)


def test_bench_a2_heuristic_gap(benchmark, report, tiny_workload):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    zoo, tm, offers = tiny_workload
    bps = zoo.largest_bps(2)

    results = {bp: shading_sweep(zoo.offered, tm, offers, bp, "add-prune")
               for bp in bps}

    lines = [f"{'BP':<8}" + "".join(f"  x{f:<7.2f}" for f in FACTORS)]
    worst_gain = 0.0
    for bp, utilities in results.items():
        lines.append(f"{bp:<8}" + "".join(f"{utilities[f]:>9,.0f}" for f in FACTORS))
        truthful = utilities[1.0]
        if truthful > 0:
            best = max(utilities.values())
            worst_gain = max(worst_gain, best / truthful - 1.0)
    lines.append(f"\nworst profitable deviation under the heuristic: "
                 f"{worst_gain:+.1%} (exact mechanism: none possible)")
    report("BP utility vs bid shading — heuristic mechanism:\n" + "\n".join(lines))

    for bp, utilities in results.items():
        truthful = utilities[1.0]
        # Individual rationality always holds (payments are clamped).
        assert truthful >= -1e-6
        # Overbidding can only lose ground, heuristic or not: a higher
        # declared price never wins more and never raises the pivot.
        for factor in (1.15, 1.4):
            assert utilities[factor] <= truthful * 1.02 + 1e-6, (bp, factor)
