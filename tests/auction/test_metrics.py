"""Tests for PoB metrics and auction summaries."""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.metrics import (
    PoBRow,
    format_summary_table,
    pob_rows,
    pob_variation,
    summarize,
)
from repro.auction.vcg import AuctionConfig, run_auction
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network, square_offers


@pytest.fixture
def result():
    net = square_network()
    offers = square_offers(net)
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
    constraint = make_constraint(1, net, tm)
    return run_auction(offers, constraint, config=AuctionConfig(method="milp"))


class TestPoBRows:
    def test_rows_for_providers(self, result):
        rows = pob_rows({"constraint-1": result}, ["P", "Q"])
        assert len(rows) == 2
        by_provider = {r.provider: r for r in rows}
        assert by_provider["Q"].pob == pytest.approx(140.0 / 60.0)
        assert by_provider["P"].pob is None  # sold nothing

    def test_missing_provider_na(self, result):
        rows = pob_rows({"constraint-1": result}, ["ghost"])
        assert rows[0].pob is None
        assert rows[0].declared_cost == 0.0

    def test_formatting(self, result):
        rows = pob_rows({"constraint-1": result}, ["P", "Q"])
        text = rows[0].formatted()
        assert "constraint-1" in text
        assert "PoB" in text


class TestVariation:
    def test_spread(self):
        rows = [
            PoBRow("c1", "a", 1.0, 1.5, 0.5),
            PoBRow("c1", "b", 1.0, 1.1, 0.1),
            PoBRow("c1", "c", 1.0, 1.0, None),
        ]
        var = pob_variation(rows)
        assert var["min"] == 0.1
        assert var["max"] == 0.5
        assert var["spread"] == pytest.approx(0.4)

    def test_empty(self):
        assert pob_variation([]) == {"min": 0.0, "max": 0.0, "spread": 0.0}


class TestSummary:
    def test_fields(self, result):
        summary = summarize("constraint-1", 5, result)
        assert summary.links_offered == 5
        assert summary.links_selected == 1
        assert summary.total_declared_cost == pytest.approx(60.0)
        assert summary.total_payments == pytest.approx(200.0)
        assert summary.winners == 1
        assert summary.overpayment_ratio == pytest.approx(200.0 / 60.0)

    def test_table_render(self, result):
        table = format_summary_table([summarize("constraint-1", 5, result)])
        assert "constraint-1" in table
        assert "offered" in table
        assert len(table.splitlines()) == 3
