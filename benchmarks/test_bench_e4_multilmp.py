"""E4 — §4.5's second model: the population-weighted average fee.

    t_avg = (p − ⟨rc⟩)/2,  ⟨rc⟩ = Σ n_l·r_l·c_l / Σ n_l

Regenerated over a heterogeneous LMP population and verified against the
explicit per-LMP schedule.
"""

import pytest

from repro.econ.bargaining import average_fee, fee_schedule
from repro.econ.csp import CSP
from repro.econ.demand import LinearDemand
from repro.econ.lmp import LMP

PRICE = 15.0


def build_population():
    return [
        LMP(name="mega", num_customers=5.0, access_price=55.0, vulnerability=0.04),
        LMP(name="cable", num_customers=2.0, access_price=50.0, vulnerability=0.08),
        LMP(name="regional", num_customers=0.8, access_price=45.0, vulnerability=0.2),
        LMP(name="muni", num_customers=0.3, access_price=35.0, vulnerability=0.35),
        LMP(name="startup", num_customers=0.1, access_price=40.0, vulnerability=0.6),
    ]


def run():
    csp = CSP(name="svc", demand=LinearDemand(v_max=30.0), incumbency=1.0)
    lmps = build_population()
    return csp, lmps, fee_schedule(csp, lmps, price=PRICE), average_fee(
        csp, lmps, price=PRICE
    )


def test_bench_e4_multilmp(benchmark, report):
    csp, lmps, schedule, t_avg = benchmark(run)

    lines = [f"{'LMP':<10}{'n_l':>7}{'c_l':>7}{'gamma':>7}{'r·c':>8}{'fee':>8}"]
    for lmp in lmps:
        rc = lmp.churn_rate(csp) * lmp.access_price
        lines.append(
            f"{lmp.name:<10}{lmp.num_customers:>7.2f}{lmp.access_price:>7.0f}"
            f"{lmp.vulnerability:>7.2f}{rc:>8.2f}{schedule[lmp.name]:>8.3f}"
        )
    lines.append(f"\nweighted average fee t_avg = {t_avg:.4f}")
    report("Per-LMP NBS fees and the aggregate:\n" + "\n".join(lines))

    # The closed-form aggregate equals the population-weighted schedule.
    total_n = sum(l.num_customers for l in lmps)
    weighted = sum(l.num_customers * schedule[l.name] for l in lmps) / total_n
    assert t_avg == pytest.approx(weighted)

    # Fees ordered by incumbency: harder-to-leave LMPs extract more.
    ordered = sorted(lmps, key=lambda l: l.churn_rate(csp) * l.access_price)
    fees = [schedule[l.name] for l in ordered]
    assert fees == sorted(fees, reverse=True)
