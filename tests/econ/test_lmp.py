"""Tests for the LMP model."""

import pytest

from repro.exceptions import EconError
from repro.econ.csp import CSP
from repro.econ.demand import LinearDemand
from repro.econ.lmp import LMP, entrant, incumbent


class TestValidation:
    def test_positive_customers(self):
        with pytest.raises(EconError):
            LMP(name="x", num_customers=0.0, access_price=10.0)

    def test_nonnegative_access_price(self):
        with pytest.raises(EconError):
            LMP(name="x", num_customers=1.0, access_price=-1.0)

    def test_vulnerability_range(self):
        with pytest.raises(EconError):
            LMP(name="x", num_customers=1.0, access_price=10.0, vulnerability=1.5)


class TestChurn:
    def test_factored_form(self):
        lmp = LMP(name="x", num_customers=1.0, access_price=10.0, vulnerability=0.3)
        sticky = CSP(name="s", demand=LinearDemand(), incumbency=1.0)
        fringe = CSP(name="f", demand=LinearDemand(), incumbency=0.2)
        assert lmp.churn_rate(sticky) == pytest.approx(0.3)
        assert lmp.churn_rate(fringe) == pytest.approx(0.06)

    def test_incumbent_lower_than_entrant(self):
        csp = CSP(name="s", demand=LinearDemand(), incumbency=1.0)
        assert incumbent().churn_rate(csp) < entrant().churn_rate(csp)

    def test_bounded_by_one(self):
        lmp = LMP(name="x", num_customers=1.0, access_price=10.0, vulnerability=1.0)
        csp = CSP(name="s", demand=LinearDemand(), incumbency=1.0)
        assert lmp.churn_rate(csp) <= 1.0


class TestRevenue:
    def test_access_revenue(self):
        lmp = LMP(name="x", num_customers=2.5, access_price=40.0)
        assert lmp.access_revenue() == pytest.approx(100.0)

    def test_presets(self):
        assert incumbent().num_customers > entrant().num_customers
        assert incumbent().vulnerability < entrant().vulnerability
