"""Tests for the packaged experiment pipelines."""

import pytest

from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo


class TestTrafficForZoo:
    def test_gravity_default(self, tiny_zoo):
        tm = traffic_for_zoo(tiny_zoo)
        assert tm.total_gbps() == pytest.approx(
            0.02 * tiny_zoo.offered.total_capacity_gbps()
        )

    def test_models(self, tiny_zoo):
        for model in ("gravity", "uniform", "hotspot"):
            tm = traffic_for_zoo(tiny_zoo, model=model, seed=1)
            assert tm.total_gbps() > 0
            tm.validate_against(tiny_zoo.offered.node_ids)

    def test_unknown_model(self, tiny_zoo):
        with pytest.raises(ValueError):
            traffic_for_zoo(tiny_zoo, model="chaos")

    def test_load_fraction(self, tiny_zoo):
        light = traffic_for_zoo(tiny_zoo, load_fraction=0.01)
        heavy = traffic_for_zoo(tiny_zoo, load_fraction=0.04)
        assert heavy.total_gbps() == pytest.approx(4 * light.total_gbps())


class TestOffersForZoo:
    def test_truthful_by_default(self, tiny_zoo):
        offers = offers_for_zoo(tiny_zoo)
        assert all(o.is_truthful() for o in offers)
        assert all(o.in_auction for o in offers)

    def test_covers_all_links(self, tiny_zoo):
        offers = offers_for_zoo(tiny_zoo)
        covered = frozenset().union(*(o.link_ids for o in offers))
        assert covered == frozenset(tiny_zoo.offered.link_ids)

    def test_deterministic(self, tiny_zoo):
        a = offers_for_zoo(tiny_zoo, seed=3)
        b = offers_for_zoo(tiny_zoo, seed=3)
        for offer_a, offer_b in zip(a, b):
            assert offer_a.bid.cost(offer_a.link_ids) == pytest.approx(
                offer_b.bid.cost(offer_b.link_ids)
            )

    def test_margin(self, tiny_zoo):
        offers = offers_for_zoo(tiny_zoo, margin=0.25)
        assert all(not o.is_truthful() for o in offers)

    def test_discount_tiers(self, tiny_zoo):
        from repro.auction.bids import VolumeDiscountCost

        offers = offers_for_zoo(tiny_zoo, discount_tiers=((2, 0.1),))
        assert all(isinstance(o.bid, VolumeDiscountCost) for o in offers)
        # Bundles of >= 2 links cost strictly less than their additive sum.
        offer = max(offers, key=lambda o: len(o.links))
        two = frozenset(sorted(offer.link_ids)[:2])
        additive = sum(offer.bid.prices[lid] for lid in two)
        assert offer.bid.cost(two) == pytest.approx(0.9 * additive)

    def test_discounted_offers_clear_the_auction(self, tiny_zoo):
        from repro.auction.constraints import make_constraint
        from repro.auction.selection import select_links

        offers = offers_for_zoo(tiny_zoo, discount_tiers=((3, 0.08),))
        tm = traffic_for_zoo(tiny_zoo)
        constraint = make_constraint(1, tiny_zoo.offered, tm, engine="greedy")
        outcome = select_links(offers, constraint, method="add-prune")
        assert constraint.satisfied(outcome.selected)


class TestOffersForZooValidation:
    def test_negative_noise_rejected(self, tiny_zoo):
        from repro.exceptions import BidError

        with pytest.raises(BidError):
            offers_for_zoo(tiny_zoo, cost_noise=-0.1)

    def test_inverted_efficiency_range_rejected(self, tiny_zoo):
        from repro.exceptions import BidError

        with pytest.raises(BidError):
            offers_for_zoo(tiny_zoo, efficiency_range=(1.3, 0.8))

    def test_nonpositive_efficiency_rejected(self, tiny_zoo):
        from repro.exceptions import BidError

        with pytest.raises(BidError):
            offers_for_zoo(tiny_zoo, efficiency_range=(0.0, 1.2))
        with pytest.raises(BidError):
            offers_for_zoo(tiny_zoo, efficiency_range=(-0.5, 1.2))

    def test_malformed_range_shape_rejected(self, tiny_zoo):
        from repro.exceptions import BidError

        with pytest.raises(BidError):
            offers_for_zoo(tiny_zoo, efficiency_range=(0.8, 1.0, 1.2))

    def test_degenerate_range_allowed(self, tiny_zoo):
        # lo == hi is a valid (deterministic-efficiency) configuration.
        offers = offers_for_zoo(tiny_zoo, efficiency_range=(1.0, 1.0))
        assert offers


class TestPipelineCheckpoint:
    def test_save_and_resume(self, tmp_path):
        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        ckpt = PipelineCheckpoint(path)
        assert not ckpt.has("stage-a")
        ckpt.save("stage-a", {"rows": [1, 2, 3]})
        ckpt.save("stage-b", "done")

        fresh = PipelineCheckpoint(path)  # a new process resumes
        assert fresh.has("stage-a")
        assert fresh.get("stage-a") == {"rows": [1, 2, 3]}
        assert fresh.stages() == ["stage-a", "stage-b"]

    def test_corrupt_file_treated_as_absent(self, tmp_path):
        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        path.write_text("{this is not json")
        ckpt = PipelineCheckpoint(path)
        assert ckpt.stages() == []

    def test_wrong_version_treated_as_absent(self, tmp_path):
        import json

        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 999, "stages": {"x": 1}}))
        assert not PipelineCheckpoint(path).has("x")

    def test_recovered_flag_round_trip(self, tmp_path):
        """``recovered`` marks data loss exactly once: True on the load
        that discarded an unreadable file, False again after the next
        save round-trips cleanly."""
        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        assert PipelineCheckpoint(path).recovered is False  # absent != lost
        path.write_text("{torn")
        ckpt = PipelineCheckpoint(path)
        assert ckpt.recovered is True
        ckpt.save("stage-a", {"rows": 1})

        fresh = PipelineCheckpoint(path)
        assert fresh.recovered is False
        assert fresh.get("stage-a") == {"rows": 1}

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        ckpt = PipelineCheckpoint(path)
        ckpt.save("s", 1)
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_clear_removes_file(self, tmp_path):
        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        ckpt = PipelineCheckpoint(path)
        ckpt.save("s", 1)
        ckpt.clear()
        assert not path.exists()
        assert not ckpt.has("s")

    def test_get_default(self, tmp_path):
        from repro.experiments.pipeline import PipelineCheckpoint

        ckpt = PipelineCheckpoint(tmp_path / "ckpt.json")
        assert ckpt.get("missing", default=42) == 42


class TestFigure2Pipeline:
    @pytest.fixture(scope="class")
    def result(self):
        # Constraint 1 only: keeps the unit-test suite fast; the full
        # three-constraint run lives in the benchmark.
        return run_figure2(
            Figure2Config(preset="tiny", seed=2020, constraints=(1,))
        )

    def test_rows_shape(self, result):
        assert len(result.rows) == 5
        assert result.largest_bps == result.zoo.largest_bps(5)

    def test_individual_rationality(self, result):
        for row in result.rows:
            if row.pob is not None:
                assert row.pob >= -1e-9

    def test_formatted_output(self, result):
        text = result.formatted()
        assert "PoB margins" in text
        assert "constraint-1" in text

    def test_pob_lookup(self, result):
        bp = result.largest_bps[0]
        assert result.pob("constraint-1", bp) == result.rows[0].pob
        with pytest.raises(KeyError):
            result.pob("constraint-9", bp)

    def test_engine_defaults(self):
        cfg = Figure2Config()
        assert cfg.engine_for(1) == "mcf"
        assert cfg.engine_for(2) == "greedy"
        assert cfg.engine_for(3) == "greedy"
        custom = Figure2Config(engines={1: "greedy"})
        assert custom.engine_for(1) == "greedy"


class TestCheckpointRecovery:
    def test_corrupt_file_sets_recovered_and_warns(self, tmp_path, caplog):
        import logging

        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        path.write_text("{this is not json")
        with caplog.at_level(logging.WARNING,
                             logger="repro.experiments.pipeline"):
            ckpt = PipelineCheckpoint(path)
        assert ckpt.recovered
        assert ckpt.stages() == []
        assert any("checkpoint" in rec.message for rec in caplog.records)

    def test_wrong_version_sets_recovered(self, tmp_path):
        import json

        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 999, "stages": {"x": 1}}))
        assert PipelineCheckpoint(path).recovered

    def test_clean_and_absent_files_not_recovered(self, tmp_path):
        from repro.experiments.pipeline import PipelineCheckpoint

        path = tmp_path / "ckpt.json"
        fresh = PipelineCheckpoint(path)  # no file at all
        assert not fresh.recovered
        fresh.save("s", 1)
        assert not PipelineCheckpoint(path).recovered
