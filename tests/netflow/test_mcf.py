"""Tests for the max-concurrent-flow LP."""

import pytest

from repro.netflow.mcf import LAMBDA_CAP, max_concurrent_flow, mcf_feasible
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import make_node, square_network, square_tm


def line_network(cap_ab=10.0, cap_bc=10.0):
    net = Network(name="line")
    for n in ("A", "B", "C"):
        net.add_node(make_node(n))
    net.add_link(Link(id="AB", u="A", v="B", capacity_gbps=cap_ab, length_km=100))
    net.add_link(Link(id="BC", u="B", v="C", capacity_gbps=cap_bc, length_km=100))
    return net


class TestBasics:
    def test_single_demand_lambda(self):
        net = line_network(cap_ab=10.0)
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 2.0})
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        assert res.lam == pytest.approx(5.0, rel=1e-6)

    def test_bottleneck_lambda(self):
        net = line_network(cap_ab=10.0, cap_bc=4.0)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 2.0})
        res = max_concurrent_flow(net, tm)
        assert res.lam == pytest.approx(2.0, rel=1e-6)

    def test_exactly_tight_is_feasible(self):
        net = line_network(cap_ab=2.0, cap_bc=2.0)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 2.0})
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        assert res.lam == pytest.approx(1.0, rel=1e-6)

    def test_infeasible_when_overloaded(self):
        net = line_network(cap_ab=1.0)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        res = max_concurrent_flow(net, tm)
        assert not res.feasible
        assert res.lam == pytest.approx(1.0 / 3.0, rel=1e-5)

    def test_disconnected_demand_infeasible(self):
        net = line_network()
        net.remove_link("BC")
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 1.0})
        res = max_concurrent_flow(net, tm)
        assert not res.feasible
        assert res.lam == pytest.approx(0.0, abs=1e-9)

    def test_empty_tm_feasible(self):
        net = line_network()
        tm = TrafficMatrix(nodes=["A", "B", "C"])
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        assert res.lam == LAMBDA_CAP

    def test_no_links(self):
        net = Network()
        net.add_node(make_node("A"))
        net.add_node(make_node("B"))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 1.0})
        res = max_concurrent_flow(net, tm)
        assert not res.feasible


class TestSplitting:
    def test_flow_splits_across_parallel_paths(self):
        # A->C demand of 8: direct 5G diagonal + around the ring.
        net = square_network()
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 8.0})
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        # Total A->C capacity: AC (5) + A-B-C (10) + A-D-C (10) = 25.
        assert res.lam == pytest.approx(25.0 / 8.0, rel=1e-6)

    def test_bidirectional_capacity_not_shared(self):
        # Full duplex: A->B and B->A both fit at full capacity.
        net = line_network(cap_ab=10.0)
        tm = TrafficMatrix.from_dict(
            ["A", "B"], {("A", "B"): 10.0, ("B", "A"): 10.0}
        )
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        assert res.lam >= 1.0

    def test_shared_link_capacity_is_shared(self):
        # Two demands both crossing AB in the same direction must share.
        net = line_network(cap_ab=10.0, cap_bc=10.0)
        tm = TrafficMatrix.from_dict(
            ["A", "B", "C"], {("A", "B"): 6.0, ("A", "C"): 6.0}
        )
        res = max_concurrent_flow(net, tm)
        # AB carries 12 total demand over 10 capacity.
        assert res.lam == pytest.approx(10.0 / 12.0, rel=1e-6)
        assert not res.feasible


class TestDiagnostics:
    def test_link_loads_present_when_feasible(self):
        net = line_network()
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 2.0})
        res = max_concurrent_flow(net, tm)
        assert res.link_loads is not None
        assert res.link_loads["AB"] == pytest.approx(2.0, rel=1e-6)
        assert res.link_loads["BC"] == pytest.approx(2.0, rel=1e-6)

    def test_link_loads_scaled_to_tm(self):
        # Even with lam >> 1, reported loads are for the TM itself.
        net = line_network(cap_ab=100.0, cap_bc=100.0)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 1.0})
        res = max_concurrent_flow(net, tm)
        assert res.lam > 10
        assert sum(res.link_loads.values()) == pytest.approx(2.0, rel=1e-5)

    def test_flow_km_positive(self):
        net = line_network()
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 2.0})
        res = max_concurrent_flow(net, tm)
        assert res.flow_km == pytest.approx(2.0 * 200.0, rel=1e-5)

    def test_headroom(self):
        net = line_network()
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 5.0})
        res = max_concurrent_flow(net, tm)
        assert res.utilization_headroom == pytest.approx(1.0, rel=1e-6)


class TestConvenience:
    def test_mcf_feasible_wrapper(self):
        net = line_network()
        ok = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 5.0})
        bad = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 50.0})
        assert mcf_feasible(net, ok)
        assert not mcf_feasible(net, bad)

    def test_zoo_scale_solve(self, tiny_zoo):
        from repro.experiments.pipeline import traffic_for_zoo

        tm = traffic_for_zoo(tiny_zoo)
        res = max_concurrent_flow(tiny_zoo.offered, tm)
        assert res.feasible
        assert res.lam > 1.0
