"""Packaged experiments: the paper's figures/tables as runnable pipelines.

Each module wires the substrates into one experiment from the DESIGN.md
index, shared between the CLI and the benchmark suite so both always run
the same code.
"""

from repro.experiments.figure2 import Figure2Config, Figure2Result, run_figure2
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo

__all__ = [
    "Figure2Config",
    "Figure2Result",
    "run_figure2",
    "offers_for_zoo",
    "traffic_for_zoo",
]
