"""Tests for single-operator network generators."""

import pytest

from repro.topology.cities import get_city, largest_cities
from repro.topology.generators import (
    STANDARD_WAVES_GBPS,
    merge_networks,
    ring_network,
    star_network,
    waxman_network,
)


@pytest.fixture
def ten_cities():
    return largest_cities(10)


class TestWaxman:
    def test_connected(self, ten_cities):
        net = waxman_network(ten_cities, seed=1)
        assert net.is_connected()

    def test_node_count(self, ten_cities):
        net = waxman_network(ten_cities, seed=1)
        assert len(net) == 10

    def test_minimum_links_is_spanning_tree(self, ten_cities):
        # alpha=0 disables all shortcuts: exactly the MST remains.
        net = waxman_network(ten_cities, seed=1, alpha=0.0)
        assert net.num_links == 9
        assert net.is_connected()

    def test_alpha_one_adds_shortcuts(self, ten_cities):
        sparse = waxman_network(ten_cities, seed=1, alpha=0.0)
        dense = waxman_network(ten_cities, seed=1, alpha=1.0, beta=10.0)
        assert dense.num_links > sparse.num_links

    def test_deterministic_under_seed(self, ten_cities):
        a = waxman_network(ten_cities, seed=42)
        b = waxman_network(ten_cities, seed=42)
        assert sorted(a.link_ids) == sorted(b.link_ids)
        assert a.total_capacity_gbps() == b.total_capacity_gbps()

    def test_different_seeds_differ(self, ten_cities):
        a = waxman_network(ten_cities, seed=1, alpha=0.8, beta=1.0)
        b = waxman_network(ten_cities, seed=2, alpha=0.8, beta=1.0)
        # Capacities are drawn randomly, so totals should differ.
        assert a.total_capacity_gbps() != b.total_capacity_gbps()

    def test_capacities_are_standard_waves(self, ten_cities):
        net = waxman_network(ten_cities, seed=3)
        for link in net.iter_links():
            assert link.capacity_gbps in STANDARD_WAVES_GBPS

    def test_capacity_scale(self, ten_cities):
        net = waxman_network(ten_cities, seed=3, capacity_scale=2.0)
        for link in net.iter_links():
            assert link.capacity_gbps / 2.0 in STANDARD_WAVES_GBPS

    def test_lengths_exceed_great_circle(self, ten_cities):
        net = waxman_network(ten_cities, seed=3)
        for link in net.iter_links():
            u, v = net.node(link.u), net.node(link.v)
            assert link.length_km >= u.distance_km(v) - 1e-6

    def test_node_prefix(self, ten_cities):
        net = waxman_network(ten_cities, seed=1, node_prefix="x:")
        assert all(n.id.startswith("x:") for n in net.nodes)
        # City attribution survives prefixing.
        assert all(n.city is not None for n in net.nodes)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            waxman_network([get_city("Tokyo")], seed=1)

    def test_rejects_duplicates(self):
        city = get_city("Tokyo")
        with pytest.raises(ValueError):
            waxman_network([city, city], seed=1)

    def test_rejects_bad_alpha_beta(self, ten_cities):
        with pytest.raises(ValueError):
            waxman_network(ten_cities, alpha=1.5)
        with pytest.raises(ValueError):
            waxman_network(ten_cities, beta=0.0)


class TestRing:
    def test_ring_shape(self, ten_cities):
        net = ring_network(ten_cities, seed=1)
        assert len(net) == 10
        assert net.num_links == 10
        assert net.is_connected()
        assert all(net.degree(n.id) == 2 for n in net.nodes)

    def test_survives_single_failure(self, ten_cities):
        net = ring_network(ten_cities, seed=1)
        lid = net.link_ids[0]
        assert net.without_links([lid]).is_connected()

    def test_rejects_small_input(self):
        with pytest.raises(ValueError):
            ring_network(largest_cities(2), seed=1)


class TestStar:
    def test_star_shape(self):
        cities = largest_cities(6)
        net = star_network(cities[0], cities[1:], seed=1)
        assert net.degree(cities[0].name) == 5
        assert all(net.degree(c.name) == 1 for c in cities[1:])

    def test_rejects_empty_leaves(self):
        with pytest.raises(ValueError):
            star_network(get_city("Tokyo"), [], seed=1)

    def test_rejects_hub_in_leaves(self):
        hub = get_city("Tokyo")
        with pytest.raises(ValueError):
            star_network(hub, [hub], seed=1)


class TestMerge:
    def test_merge_shares_nodes(self, ten_cities):
        a = waxman_network(ten_cities[:6], name="a", seed=1)
        b = waxman_network(ten_cities[4:], name="b", seed=2)
        merged = merge_networks([a, b], name="ab")
        assert len(merged) == 10  # overlap (2 cities) merged
        assert merged.num_links == a.num_links + b.num_links

    def test_merge_rejects_duplicate_link_ids(self, ten_cities):
        a = waxman_network(ten_cities[:5], name="same", seed=1)
        b = waxman_network(ten_cities[:5], name="same", seed=1)
        with pytest.raises(ValueError):
            merge_networks([a, b], name="bad")

    def test_merge_clean_when_shared_node_agrees(self, ten_cities):
        # Two operators built over the same city mint identical Node
        # attributes, so the shared node merges without complaint.
        a = waxman_network(ten_cities[:4], name="a", seed=1)
        b = waxman_network(ten_cities[2:6], name="b", seed=2)
        merged = merge_networks([a, b], name="ab")
        shared = set(n.id for n in a.nodes) & set(n.id for n in b.nodes)
        assert shared  # the overlap actually exercises the merge path
        for node_id in shared:
            assert merged.node(node_id) == a.node(node_id) == b.node(node_id)

    def test_merge_rejects_conflicting_node_attributes(self, ten_cities):
        # Regression: a shared node id with *different* attributes used to
        # silently keep whichever operator came first.
        from repro.exceptions import TopologyError
        from repro.topology.graph import Network, Node
        from repro.topology.geo import GeoPoint

        a = Network(name="a")
        a.add_node(Node(id="X", point=GeoPoint(10.0, 20.0), city="Foo"))
        b = Network(name="b")
        b.add_node(Node(id="X", point=GeoPoint(11.0, 21.0), city="Bar"))
        with pytest.raises(TopologyError, match="conflicting attributes"):
            merge_networks([a, b], name="ab")

    def test_merge_conflict_message_names_both_networks(self, ten_cities):
        from repro.exceptions import TopologyError
        from repro.topology.graph import Network, Node
        from repro.topology.geo import GeoPoint

        a = Network(name="first-op")
        a.add_node(Node(id="X", point=GeoPoint(10.0, 20.0), city="Foo"))
        b = Network(name="second-op")
        b.add_node(Node(id="X", point=GeoPoint(10.0, 20.0), city="Bar"))
        with pytest.raises(TopologyError) as excinfo:
            merge_networks([a, b], name="ab")
        assert "first-op" in str(excinfo.value)
        assert "second-op" in str(excinfo.value)
