"""Tests for the hot standby: journal tailing, promotion, failover runs.

The deterministic failover benchmark is the headline: primary and
standby share one virtual clock, the primary is killed mid-campaign,
and the resulting LoadReport must be byte-identical across runs with
exactly one failover incident and zero unanswered requests.
"""

import asyncio

import pytest

from repro.exceptions import JournalError, ServiceError
from repro.service import (
    FailoverHarness,
    Journal,
    LoadgenConfig,
    PocService,
    ServiceConfig,
    StandbyReplica,
    VirtualClock,
    recover,
    run_failover_benchmark,
    run_virtual,
    standby_handler,
)
from repro.service.journal import encode_record

from tests.service.conftest import service_workload

FAST_CONFIG = ServiceConfig(
    primary_method="greedy-drop", fallback_method="greedy-prune",
    reclear_delay_s=0.3,
)


def make_standby(tmp_path, **kwargs):
    net, offers, tm = service_workload()
    kwargs.setdefault("config", FAST_CONFIG)
    kwargs.setdefault("seed", 5)
    return StandbyReplica(tmp_path / "primary.journal", net, offers, tm,
                          **kwargs)


def run_primary_campaign(tmp_path, *, kill=False, seed=5):
    """A journaled campaign on the square workload; returns the service."""
    net, offers, tm = service_workload()
    service = PocService(
        net, offers, tm, config=FAST_CONFIG, clock=VirtualClock(), seed=seed,
        journal=Journal(tmp_path / "primary.journal", fsync=False),
    )

    async def scenario():
        await service.start()
        await asyncio.gather(*[service.submit("pricing") for _ in range(6)])
        service.inject_link_faults([service.snapshot.selected[0]])
        await service.clock.sleep(1.0)
        if kill:
            await service.kill()
        else:
            await service.drain()

    run_virtual(service.clock, scenario())
    return service


class TestTailing:
    def test_poll_applies_complete_records_only(self, tmp_path):
        path = tmp_path / "primary.journal"
        replica = make_standby(tmp_path)
        with open(path, "w") as handle:
            handle.write(encode_record("start", {"seed": 5}, seq=1, t=0.0) + "\n")
            half = encode_record("stall", {"on": True}, seq=2, t=1.0)
            handle.write(half[: len(half) // 2])
        assert replica.poll() == 1
        assert replica.state.seq == 1
        assert replica.lag_bytes > 0
        # The primary finishes its write: the held-back tail completes.
        with open(path, "a") as handle:
            handle.write(half[len(half) // 2:] + "\n")
        assert replica.poll() == 1
        assert replica.state.seq == 2
        assert replica.state.stalled
        assert replica.lag_bytes == 0

    def test_poll_before_journal_exists_is_noop(self, tmp_path):
        replica = make_standby(tmp_path)
        assert replica.poll() == 0

    def test_out_of_sequence_tail_refused(self, tmp_path):
        path = tmp_path / "primary.journal"
        replica = make_standby(tmp_path)
        with open(path, "w") as handle:
            handle.write(encode_record("start", {"seed": 5}, seq=2, t=0.0) + "\n")
        with pytest.raises(JournalError, match="out of sequence"):
            replica.poll()

    def test_health_summary_reports_replication_position(self, tmp_path):
        run_primary_campaign(tmp_path)
        replica = make_standby(tmp_path)
        replica.poll()
        summary = replica.health_summary()
        assert summary["role"] == "standby"
        assert summary["primary_drained"] is True
        assert summary["has_snapshot"] is True
        assert summary["seq"] == replica.state.seq > 0


class TestPromotion:
    def test_promote_recovers_killed_primary_state(self, tmp_path):
        primary = run_primary_campaign(tmp_path, kill=True)
        replica = make_standby(tmp_path, clock=VirtualClock())

        async def scenario():
            service = await replica.promote()
            resp = await service.submit("health")
            await service.drain()
            return service, resp

        service, resp = run_virtual(replica.clock, scenario())
        assert replica.role == "primary"
        assert resp.status in ("ok", "degraded")
        assert service.snapshot.to_dict() == primary.snapshot.to_dict()
        # Counters continue from the replicated position.
        assert service.stats["ok"] >= 6

    def test_promote_discards_torn_tail(self, tmp_path):
        run_primary_campaign(tmp_path, kill=True)
        path = tmp_path / "primary.journal"
        with open(path, "a") as handle:
            handle.write('{"crc": "de')  # primary died mid-write
        replica = make_standby(tmp_path, clock=VirtualClock())

        async def scenario():
            service = await replica.promote()
            await service.drain()
            return service

        service = run_virtual(replica.clock, scenario())
        assert service.snapshot is not None
        assert replica.lag_bytes == 0

    def test_run_promotes_after_sustained_probe_failure(self, tmp_path):
        run_primary_campaign(tmp_path, kill=True)
        clock = VirtualClock()
        replica = make_standby(tmp_path, clock=clock, probe_failures=3)
        probes = {"n": 0}

        async def probe():
            probes["n"] += 1
            return probes["n"] <= 2  # alive twice, then dark

        replica._probe = probe

        async def scenario():
            service = await replica.run()
            await service.drain()
            return service

        service = run_virtual(clock, scenario())
        assert service is not None
        assert probes["n"] == 5  # 2 alive + 3 consecutive failures
        assert replica.role == "primary"

    def test_run_returns_none_when_primary_drained(self, tmp_path):
        run_primary_campaign(tmp_path, kill=False)
        clock = VirtualClock()
        replica = make_standby(tmp_path, clock=clock)
        replica._probe = lambda: asyncio.sleep(0, result=False)
        result = run_virtual(clock, replica.run())
        assert result is None
        assert replica.role == "standby"

    def test_run_without_probe_refused(self, tmp_path):
        replica = make_standby(tmp_path, clock=VirtualClock())
        with pytest.raises(ServiceError, match="probe"):
            run_virtual(replica.clock, replica.run())


class TestStandbyHandler:
    def test_health_answered_before_promotion(self, tmp_path):
        run_primary_campaign(tmp_path)
        replica = make_standby(tmp_path)
        replica.poll()
        handle = standby_handler(replica)

        async def main():
            health = await handle({"id": 1, "kind": "health"})
            other = await handle({"id": 2, "kind": "pricing"})
            return health, other

        health, other = asyncio.run(main())
        assert health["response"]["payload"]["role"] == "standby"
        assert other["error"] == "standby-not-promoted"
        assert other["retryable"] is True

    def test_delegates_after_promotion(self, tmp_path):
        run_primary_campaign(tmp_path, kill=True)
        replica = make_standby(tmp_path, clock=VirtualClock())
        handle = standby_handler(replica)

        async def scenario():
            await replica.promote()
            reply = await handle(
                {"id": 1, "kind": "health", "deadline_s": 1.0})
            await replica.service.drain()
            return reply

        reply = run_virtual(replica.clock, scenario())
        assert reply["response"]["status"] in ("ok", "degraded")
        # A real daemon answer, not the pre-promotion stub.
        assert "breaker_state" in reply["response"]["payload"]


class TestFailoverBenchmark:
    LOAD = LoadgenConfig(duration_s=3.0, base_rate_qps=40.0)

    def _run(self, tmp_path, label, **kwargs):
        return run_failover_benchmark(
            11, journal_dir=tmp_path / label, load=self.LOAD,
            config=FAST_CONFIG, **kwargs,
        )

    def test_kill_mid_campaign_zero_unanswered_one_incident(self, tmp_path):
        report = self._run(tmp_path, "a", kill_at=1.3)
        assert report.unanswered == 0
        assert report.submitted > 50
        assert len(report.failovers) == 1
        incident = report.failovers[0]
        assert incident["reason"] == "primary-killed"
        assert incident["t_killed"] == pytest.approx(1.3)
        assert incident["t_promoted"] > incident["t_killed"]

    def test_failover_report_byte_identical_across_runs(self, tmp_path):
        first = self._run(tmp_path, "a", kill_at=1.3)
        second = self._run(tmp_path, "b", kill_at=1.3)
        assert first.to_json() == second.to_json()

    def test_no_kill_report_has_no_incidents(self, tmp_path):
        report = self._run(tmp_path, "a")
        assert report.unanswered == 0
        assert report.failovers == ()

    def test_kill_outside_window_refused(self, tmp_path):
        with pytest.raises(ServiceError, match="inside the campaign"):
            self._run(tmp_path, "a", kill_at=99.0)
