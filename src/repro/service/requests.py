"""Request/response envelopes for the online POC service.

Four query kinds, mirroring what BPs and users actually ask a running
public option (admission is the paper's open-attachment property made a
query; allocation and pricing read the frozen clearing; health is the
operator's view):

- ``admission``  — may party X attach at site S?  (Always yes when the
  site exists: §3's neutrality-by-construction.  The *load* answer can
  still be "overloaded" — admission control is about the service
  protecting itself, never about who is asking.)
- ``allocation`` — the frozen max-min rate and path between two sites;
- ``pricing``    — the posted per-link monthly price / clearing totals;
- ``health``     — snapshot version, degradation, breaker state, sheds.

Every submitted request receives exactly one response.  "Shed" is a
*response* (``overloaded`` / ``deadline-exceeded`` / ``draining``), not
a dropped connection: bounded latency with explicit refusals instead of
an unbounded queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.exceptions import ServiceError

#: Queryable request kinds, in a fixed order (metrics iterate this).
REQUEST_KINDS: Tuple[str, ...] = ("admission", "allocation", "pricing", "health")

#: Response statuses.  ``ok`` and ``degraded`` carry real answers;
#: ``shed`` statuses are explicit refusals; ``error`` is a malformed ask.
OK_STATUSES: Tuple[str, ...] = ("ok", "degraded")
SHED_STATUSES: Tuple[str, ...] = ("overloaded", "deadline-exceeded", "draining")
STATUSES: Tuple[str, ...] = OK_STATUSES + SHED_STATUSES + ("error",)


@dataclass(frozen=True)
class Request:
    """One query with its arrival time and absolute deadline."""

    id: int
    kind: str
    arrival_s: float
    deadline_s: float
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {self.kind!r}; expected {REQUEST_KINDS}"
            )
        if self.deadline_s < self.arrival_s:
            raise ServiceError(
                f"request {self.id} has a deadline before its arrival"
            )


@dataclass(frozen=True)
class Response:
    """The service's answer: status, payload, and which snapshot spoke."""

    request_id: int
    kind: str
    status: str
    version: int
    latency_s: float
    payload: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ServiceError(
                f"unknown response status {self.status!r}; expected {STATUSES}"
            )

    @property
    def served(self) -> bool:
        """Did the request get a real answer (possibly degraded)?"""
        return self.status in OK_STATUSES

    @property
    def shed(self) -> bool:
        """Was the request refused to protect latency?"""
        return self.status in SHED_STATUSES

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status,
            "version": self.version,
            "latency_s": round(self.latency_s, 9),
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Response":
        """Rebuild a response from its wire/JSON form (strictly typed)."""
        try:
            return cls(
                request_id=int(payload["request_id"]),  # type: ignore[arg-type]
                kind=str(payload["kind"]),
                status=str(payload["status"]),
                version=int(payload["version"]),  # type: ignore[arg-type]
                latency_s=float(payload["latency_s"]),  # type: ignore[arg-type]
                payload=dict(payload.get("payload", {})),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed response payload: {exc}") from exc
