"""Tests for GraphML import/export."""

import pathlib

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.topology.io import (
    DEFAULT_CAPACITY_GBPS,
    network_from_graphml,
    network_to_graphml,
    roundtrip_check,
)

from tests.conftest import square_network


def write_zoo_style_graphml(path: pathlib.Path) -> None:
    """A file mimicking TopologyZoo conventions."""
    g = nx.Graph()
    g.add_node("0", label="Seattle", Latitude=47.61, Longitude=-122.33)
    g.add_node("1", label="Denver", Latitude=39.74, Longitude=-104.99)
    g.add_node("2", label="Chicago", Latitude=41.88, Longitude=-87.63)
    g.add_node("3")  # no coordinates, as in many zoo files
    g.add_edge("0", "1", LinkSpeedRaw=10_000_000_000.0)
    g.add_edge("1", "2")  # no capacity attribute
    g.add_edge("2", "3", LinkSpeedRaw=40_000_000_000.0)
    g.add_edge("3", "3")  # self-loop, present in some zoo files
    nx.write_graphml(g, path)


class TestImport:
    def test_zoo_style_file(self, tmp_path):
        path = tmp_path / "op.graphml"
        write_zoo_style_graphml(path)
        net = network_from_graphml(path, owner="opX")
        assert len(net) == 4
        assert net.num_links == 3  # self-loop dropped

    def test_capacity_conversion(self, tmp_path):
        path = tmp_path / "op.graphml"
        write_zoo_style_graphml(path)
        net = network_from_graphml(path)
        caps = {l.capacity_gbps for l in net.iter_links()}
        assert 10.0 in caps  # LinkSpeedRaw bits/s -> Gbps
        assert 40.0 in caps
        assert DEFAULT_CAPACITY_GBPS in caps  # missing attribute

    def test_coordinates_and_lengths(self, tmp_path):
        path = tmp_path / "op.graphml"
        write_zoo_style_graphml(path)
        net = network_from_graphml(path)
        assert net.node("0").point is not None
        assert net.node("3").point is None
        sea_den = next(l for l in net.iter_links() if l.joins("0", "1"))
        assert sea_den.length_km == pytest.approx(1641, rel=0.05)
        chi_x = next(l for l in net.iter_links() if l.joins("2", "3"))
        assert chi_x.length_km == 0.0  # endpoint without coordinates

    def test_labels_become_cities(self, tmp_path):
        path = tmp_path / "op.graphml"
        write_zoo_style_graphml(path)
        net = network_from_graphml(path)
        assert net.node("0").city == "Seattle"
        assert net.node("3").city is None

    def test_owner_applied(self, tmp_path):
        path = tmp_path / "op.graphml"
        write_zoo_style_graphml(path)
        net = network_from_graphml(path, owner="opX")
        assert all(l.owner == "opX" for l in net.iter_links())

    def test_missing_file(self, tmp_path):
        with pytest.raises(TopologyError):
            network_from_graphml(tmp_path / "nope.graphml")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.graphml"
        path.write_text("this is not xml")
        with pytest.raises(TopologyError):
            network_from_graphml(path)


class TestExportAndRoundtrip:
    def test_roundtrip_preserves_structure(self, tmp_path):
        net = square_network()
        copy = roundtrip_check(net, tmp_path / "square.graphml")
        assert len(copy) == len(net)
        assert copy.num_links == net.num_links
        assert copy.total_capacity_gbps() == pytest.approx(net.total_capacity_gbps())

    def test_roundtrip_preserves_owners(self, tmp_path):
        net = square_network()
        network_to_graphml(net, tmp_path / "square.graphml")
        copy = network_from_graphml(tmp_path / "square.graphml")
        # Owners are written as attributes; the importer applies its own
        # `owner` argument, so check the file contents via networkx.
        g = nx.read_graphml(tmp_path / "square.graphml")
        owners = {d.get("owner") for _u, _v, d in g.edges(data=True)}
        assert owners == {"P", "Q"}

    def test_roundtrip_preserves_coordinates(self, tmp_path):
        net = square_network()
        network_to_graphml(net, tmp_path / "square.graphml")
        copy = network_from_graphml(tmp_path / "square.graphml")
        for node in net.nodes:
            assert copy.node(node.id).point is not None

    def test_parallel_links_survive(self, tmp_path):
        from repro.topology.graph import Link

        net = square_network()
        net.add_link(Link(id="AB2", u="A", v="B", capacity_gbps=7.0))
        copy = roundtrip_check(net, tmp_path / "multi.graphml")
        assert len(copy.links_between("A", "B")) == 2


class TestLargeImportOrdering:
    """Regression: minted link ids must stay lexicographically ordered
    past 9,999 links (4-digit padding overflowed exactly there)."""

    def test_link_ids_ordered_past_ten_thousand(self, tmp_path):
        g = nx.MultiGraph()
        g.add_node("a", Latitude=1.0, Longitude=1.0)
        g.add_node("b", Latitude=2.0, Longitude=2.0)
        for _ in range(10_500):
            g.add_edge("a", "b")
        path = tmp_path / "big.graphml"
        nx.write_graphml(g, path)

        net = network_from_graphml(path, name="big")
        assert net.num_links == 10_500
        ids = net.link_ids
        # Mint order and lexicographic order must agree, which is what
        # incident_links' sorted output and the sweep determinism story
        # assume.
        assert ids == sorted(ids)
        # And the padding is wide enough that no id is a prefix-length
        # outlier (all numeric suffixes are the same width).
        widths = {len(i.rsplit("E", 1)[1]) for i in ids}
        assert len(widths) == 1

    def test_incident_links_sorted_on_large_import(self, tmp_path):
        g = nx.MultiGraph()
        g.add_node("a")
        g.add_node("b")
        for _ in range(10_050):
            g.add_edge("a", "b")
        path = tmp_path / "big2.graphml"
        nx.write_graphml(g, path)
        net = network_from_graphml(path, name="big2")
        incident = [l.id for l in net.incident_links("a")]
        assert incident == sorted(incident)
        assert len(incident) == 10_050
