"""Tests for the SyntheticZoo pipeline (the §3.3 input)."""

import pytest

from repro.topology.zoo import ZooConfig, build_zoo


class TestZooConfig:
    def test_defaults_are_paper_scale(self):
        cfg = ZooConfig.paper()
        assert cfg.num_bps == 20
        assert cfg.min_bps_colocated == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ZooConfig(num_bps=0)
        with pytest.raises(ValueError):
            ZooConfig(min_cities_per_bp=1)
        with pytest.raises(ValueError):
            ZooConfig(min_cities_per_bp=20, max_cities_per_bp=10)
        with pytest.raises(ValueError):
            ZooConfig(operators_per_bp=(0, 2))
        with pytest.raises(ValueError):
            ZooConfig(operators_per_bp=(3, 2))
        with pytest.raises(ValueError):
            ZooConfig(home_region_bias=1.5)

    def test_with_seed(self):
        cfg = ZooConfig.small().with_seed(99)
        assert cfg.seed == 99
        assert cfg.num_bps == ZooConfig.small().num_bps


class TestTinyZoo:
    def test_bp_count(self, tiny_zoo):
        assert len(tiny_zoo.bps) == 5

    def test_bp_networks_connected(self, tiny_zoo):
        for fp in tiny_zoo.bps.values():
            assert fp.network.is_connected(), fp.name

    def test_bp_footprint_sizes_in_bounds(self, tiny_zoo):
        cfg = tiny_zoo.config
        for fp in tiny_zoo.bps.values():
            assert fp.num_pops >= 2
            assert fp.num_pops <= cfg.max_cities_per_bp

    def test_offered_network_connected(self, tiny_zoo):
        assert tiny_zoo.offered.is_connected()

    def test_offers_reference_real_sites(self, tiny_zoo):
        site_cities = {s.city for s in tiny_zoo.sites}
        for offers in tiny_zoo.offers_by_bp.values():
            for offer in offers:
                assert offer.site_u in site_cities
                assert offer.site_v in site_cities

    def test_offer_ids_unique(self, tiny_zoo):
        ids = [o.id for offers in tiny_zoo.offers_by_bp.values() for o in offers]
        assert len(ids) == len(set(ids))

    def test_largest_bps_ordering(self, tiny_zoo):
        ranked = tiny_zoo.largest_bps(len(tiny_zoo.bps))
        shares = tiny_zoo.link_shares
        values = [shares[bp] for bp in ranked]
        assert values == sorted(values, reverse=True)

    def test_determinism(self, tiny_zoo):
        again = build_zoo(ZooConfig.tiny())
        assert again.num_logical_links == tiny_zoo.num_logical_links
        assert [s.city for s in again.sites] == [s.city for s in tiny_zoo.sites]
        assert again.link_shares == tiny_zoo.link_shares

    def test_seed_changes_output(self):
        a = build_zoo(ZooConfig.tiny(seed=1))
        b = build_zoo(ZooConfig.tiny(seed=2))
        assert (
            a.num_logical_links != b.num_logical_links
            or [s.city for s in a.sites] != [s.city for s in b.sites]
        )


@pytest.mark.slow
class TestPaperScale:
    """The paper-scale preset reproduces §3.3's stated facts."""

    @pytest.fixture(scope="class")
    def paper_zoo(self):
        return build_zoo(ZooConfig.paper())

    def test_twenty_bps(self, paper_zoo):
        assert len(paper_zoo.bps) == 20

    def test_thousands_of_logical_links(self, paper_zoo):
        # Paper: 4674.  Shape target: same order of magnitude.
        assert 3000 <= paper_zoo.num_logical_links <= 7000

    def test_share_range_matches_paper(self, paper_zoo):
        # Paper: "from roughly 2% to roughly 12%".
        shares = sorted(paper_zoo.link_shares.values())
        assert shares[-1] == pytest.approx(0.12, abs=0.04)
        assert shares[0] < 0.04

    def test_many_colocation_sites(self, paper_zoo):
        assert len(paper_zoo.sites) >= 30
