"""Write-ahead intent journal: the service's crash-survivable memory.

Every state transition the daemon makes — start, snapshot publish, shed,
served batch, fault, stall toggle, re-clear, drain, standby promotion —
is appended to a JSONL journal *inside the same synchronous section that
mutates the in-memory state*, so the journal position is always an exact
cut of the service's counters, version, event log, and current snapshot.

Record format (one canonical-JSON line each)::

    {"crc": "9f2a11c4", "event": "publish", "payload": {...},
     "seq": 7, "t": 1.2345}

- ``seq`` is contiguous from 1 within one journal file.
- ``t`` is the service clock (wall or virtual) rounded to 9 places.
- ``crc`` is the CRC-32 of the canonical JSON of the record *without*
  the crc field, hex-encoded.  A torn tail (a partial last line from
  ``kill -9`` mid-write) fails the checksum and is discarded by
  :func:`read_records`; a bad checksum anywhere *else* is corruption and
  raises :class:`~repro.exceptions.JournalError`.

Replay (:func:`replay`) folds records into a :class:`JournalState`:
the stats counters, operational event log, published snapshot payload,
version, and next request id — byte-identical to the live service's
state at the same journal position.  That is the recovery contract the
crash-recovery property suite enforces, and what lets a hot standby
(:mod:`repro.service.replica`) tail the file and take over.

Durability: writes are a single ``os.write`` of the full line to an
``O_APPEND`` descriptor, followed by ``fsync`` unless the journal was
opened with ``fsync=False`` (virtual-clock campaigns skip the syscall
cost; crash *simulation* there cuts the file explicitly instead).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import JournalError

#: Closed set of record kinds; anything else is corruption.
JOURNAL_EVENTS: Tuple[str, ...] = (
    "start",
    "publish",
    "shed",
    "serve",
    "fault",
    "stall",
    "reclear",
    "reclear-failed",
    "checkpoint",
    "drain-start",
    "drain-complete",
    "promote",
)

#: Record kinds that begin a journal (a fresh start, or a standby
#: taking over with recovered state).
_OPENING_EVENTS = ("start", "promote")

_SERVED_STATUSES = ("ok", "degraded", "error")


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def _crc(body: Dict[str, object]) -> str:
    return format(zlib.crc32(_canonical(body).encode("utf-8")), "08x")


def encode_record(event: str, payload: Dict[str, object], *,
                  seq: int, t: float) -> str:
    """One journal line (no trailing newline), checksummed."""
    body: Dict[str, object] = {
        "event": event, "payload": payload, "seq": seq, "t": t,
    }
    body["crc"] = _crc({k: body[k] for k in ("event", "payload", "seq", "t")})
    return _canonical(body)


def decode_record(line: str) -> Dict[str, object]:
    """Parse + checksum-verify one line; raises JournalError if bad."""
    try:
        body = json.loads(line)
    except ValueError as exc:
        raise JournalError(f"unparseable journal line: {exc}") from exc
    if not isinstance(body, dict):
        raise JournalError(f"journal line is not an object: {line[:80]!r}")
    missing = {"crc", "event", "payload", "seq", "t"} - set(body)
    if missing:
        raise JournalError(f"journal record missing fields {sorted(missing)}")
    expect = _crc({k: body[k] for k in ("event", "payload", "seq", "t")})
    if body["crc"] != expect:
        raise JournalError(
            f"journal checksum mismatch at seq={body.get('seq')}: "
            f"recorded {body['crc']} != computed {expect}"
        )
    if body["event"] not in JOURNAL_EVENTS:
        raise JournalError(f"unknown journal event {body['event']!r}")
    return body


class Journal:
    """Append-only, checksummed, optionally-fsynced intent journal."""

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._seq = 0

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._fd is None

    def append(self, event: str, payload: Dict[str, object], *, t: float) -> int:
        """Durably append one record; returns its sequence number."""
        if self._fd is None:
            raise JournalError(f"journal {self.path} is closed")
        if event not in JOURNAL_EVENTS:
            raise JournalError(f"unknown journal event {event!r}")
        self._seq += 1
        line = encode_record(event, payload, seq=self._seq, t=t)
        # One write syscall for the whole line: concurrent writers would
        # interleave, but the daemon journals only from synchronous
        # sections, so a record is torn only by the process dying mid-
        # write — exactly the case the checksum catches on replay.
        os.write(self._fd, (line + "\n").encode("utf-8"))
        if self.fsync:
            os.fsync(self._fd)
        return self._seq

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path) -> Tuple[List[Dict[str, object]], Optional[str]]:
    """Read every intact record; returns ``(records, torn_tail)``.

    A defective *last* line is the expected signature of ``kill -9``
    mid-append: it is returned as ``torn_tail`` (its raw text) rather
    than raised.  A defective line anywhere else, or a sequence gap,
    is corruption and raises :class:`JournalError`.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"journal {path} does not exist")
    raw = path.read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: List[Dict[str, object]] = []
    torn: Optional[str] = None
    for index, line in enumerate(lines):
        try:
            body = decode_record(line)
        except JournalError:
            if index == len(lines) - 1:
                torn = line
                break
            raise
        records.append(body)
    for position, body in enumerate(records, start=1):
        if body["seq"] != position:
            raise JournalError(
                f"journal sequence gap: expected seq={position}, "
                f"found seq={body['seq']}"
            )
    return records, torn


@dataclass
class JournalState:
    """Service state reconstructed by replaying a journal prefix."""

    seq: int = 0
    seed: Optional[int] = None
    version: int = 0
    next_request_id: int = 1
    draining: bool = False
    drained: bool = False
    stalled: bool = False
    promoted_from: Optional[int] = None
    snapshot_payload: Optional[Dict[str, object]] = None
    stats: Dict[str, int] = field(default_factory=dict)
    events: List[Tuple[float, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stats:
            self.stats = {status: 0 for status in
                          ("ok", "degraded", "overloaded",
                           "deadline-exceeded", "draining", "error")}
            self.stats["coalesced_pricing"] = 0
            self.stats["reclears"] = 0
            self.stats["reclear_failures"] = 0
            self.stats["faults_injected"] = 0

    def apply(self, record: Dict[str, object]) -> None:
        """Fold one journal record into the state (in seq order)."""
        event = str(record["event"])
        payload = record["payload"]
        t = float(record["t"])
        self.seq = int(record["seq"])
        if event == "start":
            self.seed = int(payload["seed"])
        elif event == "publish":
            self.version = int(payload["version"])
            self.snapshot_payload = payload["snapshot"]
        elif event == "shed":
            self.stats[str(payload["status"])] += 1
            self.next_request_id = max(
                self.next_request_id, int(payload["id"]) + 1
            )
        elif event == "serve":
            for status, count in payload["served"].items():
                self.stats[status] += int(count)
            self.stats["coalesced_pricing"] += int(payload["coalesced"])
            self.next_request_id = max(
                self.next_request_id, int(payload["last_id"]) + 1
            )
        elif event == "fault":
            self.stats["faults_injected"] += len(payload["links"])
        elif event == "stall":
            self.stalled = bool(payload["on"])
        elif event == "reclear":
            self.stats["reclears"] += 1
        elif event == "reclear-failed":
            self.stats["reclear_failures"] += 1
        elif event == "drain-start":
            self.draining = True
        elif event == "drain-complete":
            self.drained = True
        elif event == "promote":
            self.seed = int(payload["seed"])
            self.version = int(payload["version"])
            self.snapshot_payload = payload["snapshot"]
            self.stats = {k: int(v) for k, v in payload["stats"].items()}
            self.next_request_id = int(payload["next_request_id"])
            self.events = [(float(et), str(ev)) for et, ev in payload["events"]]
            self.promoted_from = int(payload["recovered_seq"])
        if "log" in payload:
            self.events.append((t, str(payload["log"])))

    def failed_links(self) -> Tuple[str, ...]:
        """Failed links per the last published snapshot (empty if none)."""
        if self.snapshot_payload is None:
            return ()
        control = self.snapshot_payload.get("control", {})
        return tuple(str(l) for l in control.get("failed_links", ()))

    def to_dict(self) -> Dict[str, object]:
        """Canonical form, for byte-comparison in the recovery suite."""
        return {
            "seq": self.seq,
            "seed": self.seed,
            "version": self.version,
            "next_request_id": self.next_request_id,
            "draining": self.draining,
            "drained": self.drained,
            "stalled": self.stalled,
            "stats": dict(sorted(self.stats.items())),
            "events": [[t, e] for t, e in self.events],
            "snapshot": self.snapshot_payload,
        }


def replay(records: Iterable[Dict[str, object]]) -> JournalState:
    """Fold a record sequence into the state it implies."""
    state = JournalState()
    for record in records:
        state.apply(record)
    return state


def recover(path) -> Tuple[JournalState, Optional[str]]:
    """Read + replay a journal file; returns ``(state, torn_tail)``."""
    records, torn = read_records(path)
    return replay(records), torn


def served_tally(batch_statuses: Sequence[str]) -> Dict[str, int]:
    """The ``serve`` record's status tally (only answered statuses)."""
    tally = {status: 0 for status in _SERVED_STATUSES}
    for status in batch_statuses:
        if status in tally:
            tally[status] += 1
    return tally
