"""AB1 — ablation: feasibility-oracle engines (DESIGN.md §5.1).

The selection's oracle trades exactness for speed:

- ``mcf``    exact LP (splittable optimal routing),
- ``greedy`` residual multipath heuristic (conservative),
- ``sp``     single shortest path (most conservative).

Measured: selection cost and size under each oracle for Constraint #1.
A more conservative oracle can only keep *more* links (its "feasible" is
rarer), so selected cost is weakly increasing down the list.

Warm-kernel before/after (micro workload, constraint-1 add-prune
selection, 18 oracle evaluations, 1-core container, 2026-08-08;
"before" measured on the pre-warm-kernel tree via git stash):

    mcf-oracle selection        before       after     speedup
    first clear (cold cache)   0.063 s     0.019 s        3.3x
    repeat clear (warm model)  0.062 s    0.0007 s        ~90x
    selection cost/links        identical — byte-equal results

The cold win is the one-time CSC assembly replacing per-call scipy
model building; the warm win is the content-addressed model cache plus
the per-subset solve memo answering repeat queries without the LP.
"""

import time

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.selection import select_links
from repro.exceptions import NoFeasibleSelectionError
from repro.netflow.model import model_cache

ENGINE_ORDER = ("mcf", "greedy", "sp")


def run_engine(zoo, tm, offers, engine):
    constraint = make_constraint(1, zoo.offered, tm, engine=engine)
    try:
        outcome = select_links(offers, constraint, method="add-prune")
    except NoFeasibleSelectionError:
        # The most conservative oracle can reject even the full universe
        # (no flow splitting): report that rather than fail — it IS the
        # ablation's finding about the sp engine.
        outcome = None
    return outcome, constraint.oracle.evaluations


def test_bench_ab1_oracle(benchmark, report, tiny_workload):
    zoo, tm, offers = tiny_workload

    results = {}
    for engine in ENGINE_ORDER:
        if engine == "greedy":
            outcome, evals = benchmark.pedantic(
                lambda: run_engine(zoo, tm, offers, "greedy"),
                rounds=1, iterations=1,
            )
        else:
            outcome, evals = run_engine(zoo, tm, offers, engine)
        results[engine] = (outcome, evals)

    lines = [f"{'oracle':<8}{'links':>7}{'cost':>14}{'oracle solves':>15}"]
    for engine in ENGINE_ORDER:
        outcome, evals = results[engine]
        if outcome is None:
            lines.append(f"{engine:<8}{'—':>7}{'infeasible':>14}{evals:>15}")
        else:
            lines.append(
                f"{engine:<8}{len(outcome.selected):>7}"
                f"{outcome.total_cost:>14,.0f}{evals:>15}"
            )
    report("Selection under each feasibility oracle (constraint-1):\n"
           + "\n".join(lines))

    # The exact and greedy oracles must clear the market.
    assert results["mcf"][0] is not None
    assert results["greedy"][0] is not None

    # Every produced selection must be feasible under the *exact* oracle.
    exact = make_constraint(1, zoo.offered, tm, engine="mcf")
    for engine in ENGINE_ORDER:
        outcome, _ = results[engine]
        if outcome is not None:
            assert exact.satisfied(outcome.selected), engine

    # Conservatism ordering: a more conservative oracle keeps weakly more
    # cost (or cannot clear at all, the extreme of conservatism).
    cost_mcf = results["mcf"][0].total_cost
    cost_greedy = results["greedy"][0].total_cost
    assert cost_greedy >= cost_mcf * 0.98 - 1e-6  # small heuristic slack
    if results["sp"][0] is not None:
        assert results["sp"][0].total_cost >= cost_greedy - 1e-6


def test_bench_ab1_oracle_warm_reuse(report, tiny_workload):
    """Repeat mcf-oracle selections must reuse the warm LP model.

    The first selection pays the one-time model build plus its LP
    solves; an identical follow-up must be answered almost entirely from
    the content-addressed model cache and per-subset solve memo.  The 3x
    floor is the issue's acceptance bar; the measured local ratio is
    one to two orders of magnitude.
    """
    zoo, tm, offers = tiny_workload
    model_cache().clear()

    start = time.perf_counter()
    constraint = make_constraint(1, zoo.offered, tm, engine="mcf")
    first = select_links(offers, constraint, method="add-prune")
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    constraint = make_constraint(1, zoo.offered, tm, engine="mcf")
    second = select_links(offers, constraint, method="add-prune")
    warm_s = time.perf_counter() - start

    ratio = cold_s / warm_s if warm_s > 0 else float("inf")
    report(
        f"mcf-oracle selection: cold {cold_s * 1000:.1f}ms, "
        f"repeat {warm_s * 1000:.1f}ms ({ratio:.1f}x)"
    )
    # Byte-identical outcome, much faster arrival.
    assert second.selected == first.selected
    assert second.total_cost == first.total_cost
    assert ratio >= 3.0
