#!/usr/bin/env python
"""Agent-based ecosystem simulation: NN vs UR with an entrant CSP.

Plays out §4's comparative statics dynamically: the same economy runs for
24 months under network neutrality and under the unregulated regime; an
entrant video service joins at month 4.  All money moves through a
double-entry ledger, and the POC breaks even every month by construction.

Run:  python examples/market_simulation.py
"""

from repro.econ.demand import LinearDemand
from repro.market.entities import CSPAgent, founding_catalogue, founding_lmps
from repro.market.sim import MarketConfig, MarketSim, Regime

EPOCHS = 24
ENTRY = 4


def run(regime: Regime):
    csps = founding_catalogue()
    csps.append(
        CSPAgent(name="entrant", demand=LinearDemand(v_max=25.0),
                 incumbency=0.15, entry_epoch=ENTRY)
    )
    sim = MarketSim(
        MarketConfig(regime=regime, epochs=EPOCHS, poc_monthly_cost=5.0),
        csps, founding_lmps(),
    )
    return sim, sim.run()


def sparkline(values, width: int = 40) -> str:
    """Render a series as a coarse ASCII sparkline."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    picks = values[::step]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in picks)


def main() -> None:
    runs = {regime: run(regime) for regime in (Regime.NN, Regime.UR)}

    print(f"{EPOCHS} months, entrant CSP joins at month {ENTRY}\n")
    print(f"{'metric':<40}{'NN':>12}{'UR':>12}")
    print("-" * 64)
    rows = [
        ("entrant cumulative profit",
         lambda h: h.cumulative_csp_profit("entrant")),
        ("entrant final incumbency",
         lambda h: h.csp_incumbency_series("entrant")[-1]),
        ("incumbent CSP cumulative profit",
         lambda h: h.cumulative_csp_profit("videostream")),
        ("incumbent LMP cumulative profit",
         lambda h: h.cumulative_lmp_profit("metro-cable")),
        ("final monthly social welfare",
         lambda h: h.welfare_series()[-1]),
    ]
    for label, metric in rows:
        nn_val = metric(runs[Regime.NN][1])
        ur_val = metric(runs[Regime.UR][1])
        print(f"{label:<40}{nn_val:>12.2f}{ur_val:>12.2f}")

    print("\nentrant incumbency trajectory (month {} onward):".format(ENTRY))
    for regime in (Regime.NN, Regime.UR):
        series = runs[regime][1].csp_incumbency_series("entrant")
        print(f"  {regime.value.upper():<4} {sparkline(series)}  "
              f"{series[0]:.2f} -> {series[-1]:.2f}")

    print("\nledger audit:")
    for regime, (sim, history) in runs.items():
        sim.ledger.audit()
        print(f"  {regime.value.upper():<4} money conserved "
              f"(imbalance {sim.ledger.total_balance:+.2e}); "
              f"POC surplus each month = "
              f"{max(abs(r.poc_surplus) for r in history.records):.2e}")

    print("\ntakeaway: under UR the entrant both earns less and builds")
    print("incumbency more slowly — the paper's innovation-hindrance claim.")


if __name__ == "__main__":
    main()
