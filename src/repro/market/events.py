"""Per-epoch records emitted by the market simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class CSPSnapshot:
    """One CSP's state at the end of an epoch."""

    name: str
    price: float
    avg_fee: float
    subscribers: float
    revenue: float
    fees_paid: float
    transit_paid: float
    profit: float
    incumbency: float


@dataclass(frozen=True)
class LMPSnapshot:
    """One LMP's state at the end of an epoch."""

    name: str
    customers: float
    access_revenue: float
    fee_revenue: float
    transit_paid: float
    operating_cost: float
    profit: float
    vulnerability: float


@dataclass(frozen=True)
class EpochRecord:
    """Everything observable about one simulated month."""

    epoch: int
    regime: str
    csps: Dict[str, CSPSnapshot]
    lmps: Dict[str, LMPSnapshot]
    social_welfare: float
    consumer_welfare: float
    poc_revenue: float
    poc_cost: float

    @property
    def poc_surplus(self) -> float:
        """Nonprofit invariant: ~0 every epoch."""
        return self.poc_revenue - self.poc_cost


@dataclass
class MarketHistory:
    """The full run: a record per epoch plus convenience accessors."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def welfare_series(self) -> List[float]:
        return [r.social_welfare for r in self.records]

    def csp_profit_series(self, name: str) -> List[float]:
        return [r.csps[name].profit for r in self.records if name in r.csps]

    def csp_incumbency_series(self, name: str) -> List[float]:
        return [r.csps[name].incumbency for r in self.records if name in r.csps]

    def lmp_profit_series(self, name: str) -> List[float]:
        return [r.lmps[name].profit for r in self.records if name in r.lmps]

    def lmp_customer_series(self, name: str) -> List[float]:
        return [r.lmps[name].customers for r in self.records if name in r.lmps]

    def cumulative_csp_profit(self, name: str) -> float:
        return sum(self.csp_profit_series(name))

    def cumulative_lmp_profit(self, name: str) -> float:
        return sum(self.lmp_profit_series(name))
