"""Tests for double-entry bookkeeping."""

import pytest

from repro.exceptions import LedgerError
from repro.market.ledger import Account, Ledger, Transfer


@pytest.fixture
def ledger():
    l = Ledger()
    l.open_account("alice", "consumer")
    l.open_account("netco", "lmp")
    l.open_account("POC", "poc")
    return l


class TestAccounts:
    def test_open_and_lookup(self, ledger):
        assert ledger.has_account("alice")
        assert ledger.account("netco").owner_kind == "lmp"

    def test_duplicate_rejected(self, ledger):
        with pytest.raises(LedgerError):
            ledger.open_account("alice", "consumer")

    def test_unknown_kind_rejected(self, ledger):
        with pytest.raises(LedgerError):
            ledger.open_account("x", "pirate")

    def test_empty_name_rejected(self):
        with pytest.raises(LedgerError):
            Account(name="", owner_kind="poc")


class TestTransfers:
    def test_moves_money(self, ledger):
        ledger.transfer(0, "alice", "netco", 50.0, memo="access")
        assert ledger.balance("alice") == -50.0
        assert ledger.balance("netco") == 50.0

    def test_conservation(self, ledger):
        ledger.transfer(0, "alice", "netco", 50.0, memo="access")
        ledger.transfer(0, "netco", "POC", 20.0, memo="transit")
        assert ledger.total_balance == pytest.approx(0.0)

    def test_positive_amount_required(self, ledger):
        with pytest.raises(LedgerError):
            ledger.transfer(0, "alice", "netco", 0.0, memo="zero")
        with pytest.raises(LedgerError):
            ledger.transfer(0, "alice", "netco", -1.0, memo="neg")

    def test_self_transfer_rejected(self, ledger):
        with pytest.raises(LedgerError):
            ledger.transfer(0, "alice", "alice", 1.0, memo="loop")

    def test_unknown_accounts_rejected(self, ledger):
        with pytest.raises(LedgerError):
            ledger.transfer(0, "nobody", "alice", 1.0, memo="x")
        with pytest.raises(LedgerError):
            ledger.transfer(0, "alice", "nobody", 1.0, memo="x")


class TestJournal:
    def test_filters(self, ledger):
        ledger.transfer(0, "alice", "netco", 50.0, memo="access")
        ledger.transfer(1, "alice", "netco", 50.0, memo="access")
        ledger.transfer(1, "netco", "POC", 30.0, memo="transit:gold")
        assert len(ledger.journal(epoch=1)) == 2
        assert len(ledger.journal(src="alice")) == 2
        assert len(ledger.journal(dst="POC")) == 1
        assert len(ledger.journal(memo_prefix="transit")) == 1

    def test_flows(self, ledger):
        ledger.transfer(0, "alice", "netco", 50.0, memo="access")
        ledger.transfer(0, "netco", "POC", 30.0, memo="transit")
        assert ledger.inflow("netco") == 50.0
        assert ledger.outflow("netco") == 30.0
        assert ledger.net_flow("netco") == 20.0
        assert ledger.net_flow("netco", epoch=1) == 0.0

    def test_balances_by_kind(self, ledger):
        ledger.transfer(0, "alice", "netco", 10.0, memo="x")
        assert ledger.balances_by_kind("lmp") == {"netco": 10.0}
        assert ledger.balances_by_kind("bp") == {}


class TestAudit:
    def test_replay_matches(self, ledger):
        ledger.transfer(0, "alice", "netco", 50.0, memo="a")
        ledger.transfer(1, "netco", "POC", 20.0, memo="b")
        assert ledger.replay_balances() == {
            "alice": -50.0, "netco": 30.0, "POC": 20.0,
        }
        ledger.audit()  # must not raise

    def test_detects_drift(self, ledger):
        ledger.transfer(0, "alice", "netco", 50.0, memo="a")
        ledger._balances["netco"] += 5.0  # simulated corruption
        with pytest.raises(LedgerError):
            ledger.audit()

    def test_transfer_record_immutable_checks(self):
        with pytest.raises(LedgerError):
            Transfer(epoch=0, src="a", dst="a", amount=1.0, memo="m")
        with pytest.raises(LedgerError):
            Transfer(epoch=0, src="a", dst="b", amount=0.0, memo="m")
