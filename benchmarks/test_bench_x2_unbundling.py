"""X2 — extension: loop unbundling × POC complementarity (§2.5).

"the POC and loop unbundling are highly complementary solutions."
The 2×2 of entrant-LMP viability: margin per customer and break-even
scale in each policy quadrant.
"""

import pytest

from repro.econ.unbundling import EntrantCostModel, complementarity, policy_matrix


def test_bench_x2_unbundling(benchmark, report):
    model = EntrantCostModel()
    matrix = benchmark(lambda: policy_matrix(model))

    lines = [f"{'quadrant':<12}{'margin/cust':>13}{'break-even customers':>22}"]
    for key in ("neither", "unbundling", "poc", "both"):
        q = matrix[key]
        be = (f"{q.breakeven_customers:,.0f}"
              if q.viable else "not viable at any scale")
        lines.append(f"{key:<12}{q.margin_per_customer:>13.2f}{be:>22}")
    comp = complementarity(model)
    lines.append(f"\nscale complementarity: {comp:+.2e} "
                 "(positive = levers reinforce)")
    report("Entrant-LMP viability 2x2 (§2.5):\n" + "\n".join(lines))

    # The §2.3 squeeze: neither lever -> unviable.
    assert not matrix["neither"].viable
    # Each lever alone rescues viability in the default calibration.
    assert matrix["unbundling"].viable
    assert matrix["poc"].viable
    # Together they dominate, and the interaction is positive.
    assert matrix["both"].breakeven_customers == min(
        q.breakeven_customers for q in matrix.values()
    )
    assert comp > 0


def test_bench_x2_sensitivity(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """The complementarity conclusion across a grid of transit markups."""
    lines = [f"{'rival rate':>11}{'neither':>10}{'unbundl.':>10}{'poc':>10}{'both':>10}"]
    for rival_rate in (900.0, 1200.0, 1500.0, 2000.0):
        model = EntrantCostModel(rival_transit_rate=rival_rate)
        m = policy_matrix(model)
        row = f"{rival_rate:>11,.0f}"
        for key in ("neither", "unbundling", "poc", "both"):
            margin = m[key].margin_per_customer
            row += f"{margin:>10.2f}"
        lines.append(row)
        # "both" dominates at every markup level.
        assert m["both"].margin_per_customer == max(
            q.margin_per_customer for q in m.values()
        )
    report("Entrant margin/customer vs rival transit rate:\n" + "\n".join(lines))
