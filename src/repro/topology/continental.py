"""Continental-scale synthetic city catalogs and the T2 topology.

The built-in city database (~140 real cities) tops out at paper scale
(bench T1: 20 BPs, 61 sites, ~4.7k logical links).  ROADMAP item 2 grows
the substrate two orders of magnitude, which needs *more cities than
exist in the database* — so this module synthesizes them: each region
gets a jittered grid of cities inside a plausible lat/lon box, with
power-law metro populations (few giants, many small towns), named
``{region}-C{idx:04d}`` so ids stay lexicographically ordered.

The synthetic catalog then drives the *same* §3.3 pipeline as the paper
topology — :class:`~repro.topology.zoo.SyntheticZoo` with a ``catalog``
argument — so every downstream invariant (colocation threshold, logical
links, offered-network shape) holds at T2 exactly as at T1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.rand import derive_seed, make_rng
from repro.topology.cities import City, CityCatalog
from repro.topology.zoo import SyntheticZoo, ZooConfig, ZooResult

#: Plausible (lat_min, lat_max, lon_min, lon_max) boxes per region code.
#: These only shape geography (link lengths, clustering); they are not a
#: claim about borders.
REGION_BOXES: Dict[str, Tuple[float, float, float, float]] = {
    "na": (25.0, 50.0, -125.0, -65.0),
    "eu": (36.0, 60.0, -10.0, 30.0),
    "ap": (-10.0, 45.0, 70.0, 145.0),
    "mea": (-35.0, 40.0, -15.0, 55.0),
    "sa": (-40.0, 12.0, -80.0, -35.0),
}


@dataclass(frozen=True)
class ContinentalConfig:
    """Parameters of a continental-scale run: catalog + zoo in one place.

    The default preset is **T2** (ROADMAP item 2): 110 BPs over 600
    synthetic cities in 5 regions, yielding 500+ colocation sites and
    ≥100k offered logical links.  Use :meth:`smoke` for CI and tests.
    """

    seed: int = 2026
    regions: Tuple[str, ...] = ("na", "eu", "ap", "mea", "sa")
    cities_per_region: int = 120
    num_bps: int = 110
    min_cities_per_bp: int = 40
    max_cities_per_bp: int = 100
    size_skew: float = 1.6
    operators_per_bp: Tuple[int, int] = (1, 2)
    home_region_bias: float = 0.8
    min_bps_colocated: int = 4
    colocation_radius_km: float = 60.0
    waxman_alpha: float = 0.35
    waxman_beta: float = 0.3
    capacity_scale: float = 1.0
    max_detour: float = 2.5
    #: Power-law exponent for metro populations: higher → steeper tail.
    #: Kept fairly flat so population-weighted footprint sampling spreads
    #: BP PoPs wide enough that 500+ cities clear the 4-BP threshold.
    population_skew: float = 0.8
    #: Largest synthetic metro, in millions.
    population_max_m: float = 20.0

    def __post_init__(self) -> None:
        if self.cities_per_region < 2:
            raise ValueError("need at least two cities per region")
        for region in self.regions:
            if region not in REGION_BOXES:
                raise ValueError(
                    f"unknown region {region!r}; expected one of "
                    f"{sorted(REGION_BOXES)}"
                )

    @classmethod
    def t2(cls, seed: int = 2026) -> "ContinentalConfig":
        """The bench-T2 preset (the defaults, spelled out)."""
        return cls(seed=seed)

    @classmethod
    def smoke(cls, seed: int = 2026) -> "ContinentalConfig":
        """A miniature multi-region preset for CI: 2 regions, 8 BPs."""
        return cls(
            seed=seed,
            regions=("na", "eu"),
            cities_per_region=14,
            num_bps=8,
            min_cities_per_bp=6,
            max_cities_per_bp=12,
            operators_per_bp=(1, 1),
            home_region_bias=0.7,
            min_bps_colocated=2,
        )

    def with_seed(self, seed: int) -> "ContinentalConfig":
        return replace(self, seed=seed)

    def zoo_config(self) -> ZooConfig:
        """The ZooConfig half: everything the §3.3 pipeline consumes."""
        return ZooConfig(
            num_bps=self.num_bps,
            seed=self.seed,
            min_cities_per_bp=self.min_cities_per_bp,
            max_cities_per_bp=self.max_cities_per_bp,
            size_skew=self.size_skew,
            operators_per_bp=self.operators_per_bp,
            home_region_bias=self.home_region_bias,
            min_bps_colocated=self.min_bps_colocated,
            colocation_radius_km=self.colocation_radius_km,
            waxman_alpha=self.waxman_alpha,
            waxman_beta=self.waxman_beta,
            capacity_scale=self.capacity_scale,
            max_detour=self.max_detour,
            regions=self.regions,
        )


def synthetic_catalog(config: ContinentalConfig) -> CityCatalog:
    """Generate the continental city catalog deterministically.

    Cities sit on a jittered grid inside each region's box — jitter keeps
    colocation clustering non-trivial without making city pairs collide —
    and populations follow a bounded power law so gravity traffic and
    population-weighted footprint sampling behave like they do on real
    metros.
    """
    cities: List[City] = []
    for region in config.regions:
        lat_min, lat_max, lon_min, lon_max = REGION_BOXES[region]
        rng = make_rng(derive_seed(config.seed, "catalog", region))
        k = config.cities_per_region
        side = int(math.ceil(math.sqrt(k)))
        cell_lat = (lat_max - lat_min) / side
        cell_lon = (lon_max - lon_min) / side
        for idx in range(k):
            row, col = divmod(idx, side)
            lat = lat_min + (row + float(rng.uniform(0.15, 0.85))) * cell_lat
            lon = lon_min + (col + float(rng.uniform(0.15, 0.85))) * cell_lon
            u = float(rng.random())
            population = max(
                0.1, config.population_max_m * (u ** config.population_skew)
            )
            cities.append(
                City(
                    name=f"{region}-C{idx:04d}",
                    country="XX",
                    region=region,
                    lat=round(lat, 4),
                    lon=round(lon, 4),
                    population_m=round(population, 3),
                )
            )
    return CityCatalog(cities, name=f"continental-{config.seed}")


def build_continental(config: ContinentalConfig) -> ZooResult:
    """Build the continental topology: catalog → SyntheticZoo pipeline.

    Returns a standard :class:`~repro.topology.zoo.ZooResult` whose
    ``catalog`` field carries the synthetic catalog, so every downstream
    stage (gravity traffic, hierarchical demand, region sharding) can
    resolve the synthetic city names.
    """
    catalog = synthetic_catalog(config)
    return SyntheticZoo(config.zoo_config(), catalog=catalog).build()
