"""Tests for service_scope and the perf handling of kind="service" lines."""

import json

import pytest

from repro import obs
from repro.obs.perf import aggregate_perf, format_perf, load_perf, perf_json
from repro.obs.registry import SERVICE_LATENCY_BUCKETS


def _read_lines(path):
    return [json.loads(line) for line in open(path, encoding="utf-8")]


class TestServiceScope:
    def test_noop_when_disabled(self):
        with obs.service_scope("x") as collector:
            assert collector is None
        assert not obs.metrics().enabled

    def test_writes_service_sidecar_line(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl"
        obs.configure(metrics_path=str(metrics), trace_path=str(trace),
                      propagate=False)
        with obs.service_scope("campaign-1"):
            obs.metrics().inc("service.requests", 3)
            obs.metrics().observe("service.latency_s", 0.03,
                                  buckets=SERVICE_LATENCY_BUCKETS)
            with obs.span("service.serve", batch=2):
                pass
        lines = _read_lines(metrics)
        assert [l["kind"] for l in lines] == ["service"]
        line = lines[0]
        assert line["name"] == "campaign-1" and line["ok"] is True
        assert line["counters"]["service.requests"] == 3
        hist = line["histograms"]["service.latency_s"]
        assert hist["buckets"] == list(SERVICE_LATENCY_BUCKETS)
        assert hist["count"] == 1
        assert "service.serve" in line["phases"]
        assert "overhead" in line["phases"]  # root self time renamed
        span_lines = _read_lines(trace)
        assert {l["name"] for l in span_lines} == {"service", "service.serve"}
        assert all(l["experiment"] == "service:campaign-1" for l in span_lines)

    def test_failure_still_writes_line(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        obs.configure(metrics_path=str(metrics), propagate=False)
        with pytest.raises(RuntimeError):
            with obs.service_scope("boom"):
                raise RuntimeError("campaign died")
        (line,) = _read_lines(metrics)
        assert line["ok"] is False

    def test_restores_previous_registry(self, tmp_path):
        obs.configure(metrics_path=str(tmp_path / "m.jsonl"), propagate=False)
        before = obs.metrics()
        with obs.service_scope("x"):
            assert obs.metrics() is not before
        assert obs.metrics() is before


def _service_line(name="lg", latency_counts=(3, 1), **over):
    counts = list(latency_counts) + [0] * (
        len(SERVICE_LATENCY_BUCKETS) + 1 - len(latency_counts)
    )
    line = {
        "kind": "service",
        "name": name,
        "ok": True,
        "wall_s": 2.0,
        "cpu_s": 1.5,
        "max_rss_kb": 1000,
        "counters": {"service.requests": 4},
        "gauges": {},
        "histograms": {
            "service.latency_s": {
                "buckets": list(SERVICE_LATENCY_BUCKETS),
                "counts": counts,
                "count": sum(counts),
                "sum": 0.02,
            },
        },
        "phases": {"service.serve": 0.5, "overhead": 1.5},
        "phase_calls": {"service.serve": 10, "overhead": 1},
    }
    line.update(over)
    return line


class TestPerfServiceLines:
    def test_folds_as_pseudo_trial(self):
        report = aggregate_perf([_service_line()])
        (trial,) = report.trials
        assert trial.experiment == "service:lg"
        assert trial.wall_s == 2.0
        assert {p.name for p in report.phases} == {"service.serve", "overhead"}
        assert report.counters["service.requests"] == 4

    def test_histograms_merge_across_campaigns(self):
        report = aggregate_perf([
            _service_line(name="a", latency_counts=(2, 0)),
            _service_line(name="b", latency_counts=(1, 3)),
        ])
        (hist,) = report.histograms
        assert hist.count == 6
        assert hist.counts[0] == 3 and hist.counts[1] == 3

    def test_bucket_mismatch_rejected(self):
        from repro.exceptions import ObservabilityError

        bad = _service_line(name="b")
        bad["histograms"]["service.latency_s"]["buckets"] = [0.1, 0.2]
        bad["histograms"]["service.latency_s"]["counts"] = [1, 0, 0]
        with pytest.raises(ObservabilityError, match="bucket mismatch"):
            aggregate_perf([_service_line(name="a"), bad])

    def test_quantile_interpolation(self):
        report = aggregate_perf([_service_line(latency_counts=(4,))])
        (hist,) = report.histograms
        # All 4 observations in (0, 0.005]: p50 interpolates to half the
        # bucket, p100 to the upper bound.
        assert hist.quantile(50.0) == pytest.approx(0.0025)
        assert hist.quantile(100.0) == pytest.approx(0.005)

    def test_overflow_bin_reports_last_bound(self):
        counts = [0] * len(SERVICE_LATENCY_BUCKETS) + [5]
        line = _service_line()
        line["histograms"]["service.latency_s"]["counts"] = counts
        line["histograms"]["service.latency_s"]["count"] = 5
        report = aggregate_perf([line])
        (hist,) = report.histograms
        assert hist.quantile(99.0) == SERVICE_LATENCY_BUCKETS[-1]

    def test_format_and_json_show_latency_section(self):
        report = aggregate_perf([_service_line()])
        text = format_perf(report)
        assert "latency histograms" in text
        assert "service.latency_s" in text
        payload = json.loads(perf_json(report))
        (hist,) = payload["histograms"]
        assert hist["name"] == "service.latency_s"
        assert hist["p50_s"] > 0

    def test_end_to_end_with_real_scope(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl"
        obs.configure(metrics_path=str(metrics), trace_path=str(trace),
                      propagate=False)
        with obs.service_scope("lg"):
            obs.metrics().observe("service.latency_s", 0.01,
                                  buckets=SERVICE_LATENCY_BUCKETS)
            with obs.span("service.serve"):
                pass
        report = load_perf([metrics, trace])
        # One pseudo-trial, no double counting from the trace file.
        assert len(report.trials) == 1
        serve = [p for p in report.phases if p.name == "service.serve"]
        assert serve[0].calls == 1
