"""Tests for the QoS-degradation-as-termination-fee equivalence."""

import pytest

from repro.exceptions import EconError
from repro.econ.csp import optimal_price, profit
from repro.econ.demand import STANDARD_FAMILIES, LinearDemand
from repro.econ.qos_equivalence import (
    degraded_demand,
    degraded_optimal_price,
    degraded_profit,
    equivalent_fee,
)


class TestDegradedMarket:
    def test_degraded_demand_is_price_inflation(self):
        d = LinearDemand(v_max=30.0)
        assert degraded_demand(d, 10.0, 0.5) == pytest.approx(d.demand(20.0))

    def test_no_degradation_identity(self):
        d = LinearDemand(v_max=30.0)
        assert degraded_demand(d, 10.0, 1.0) == d.demand(10.0)

    def test_optimal_price_scales(self):
        d = LinearDemand(v_max=30.0)
        assert degraded_optimal_price(d, 0.5) == pytest.approx(7.5)  # δ·15

    def test_profit_scales_linearly_in_quality(self):
        d = LinearDemand(v_max=30.0)
        base = profit(d, optimal_price(d, 0.0), 0.0)
        assert degraded_profit(d, 0.6) == pytest.approx(0.6 * base)

    def test_degraded_price_is_really_optimal(self):
        """max_p p·D(p/δ) is achieved at δ·p*(0) — verify numerically."""
        d = STANDARD_FAMILIES["exponential"]
        quality = 0.7
        p_star = degraded_optimal_price(d, quality)
        best = p_star * degraded_demand(d, p_star, quality)
        for p in (p_star * 0.8, p_star * 0.9, p_star * 1.1, p_star * 1.3):
            assert p * degraded_demand(d, p, quality) <= best + 1e-9

    def test_validation(self):
        d = LinearDemand()
        with pytest.raises(EconError):
            degraded_demand(d, 1.0, 0.0)
        with pytest.raises(EconError):
            degraded_demand(d, 1.0, 1.5)
        with pytest.raises(EconError):
            degraded_demand(d, -1.0, 0.5)


class TestEquivalentFee:
    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_fee_reproduces_degraded_profit(self, name, demand):
        for quality in (0.9, 0.6, 0.3):
            eq = equivalent_fee(demand, quality)
            p = optimal_price(demand, eq.equivalent_fee)
            realized = (p - eq.equivalent_fee) * demand.demand(p)
            assert realized == pytest.approx(eq.degraded_csp_profit, rel=1e-6)

    def test_full_quality_zero_fee(self):
        eq = equivalent_fee(LinearDemand(v_max=30.0), 1.0)
        assert eq.equivalent_fee == 0.0
        assert eq.welfare_gap == pytest.approx(0.0)

    def test_fee_increases_as_quality_falls(self):
        d = LinearDemand(v_max=30.0)
        fees = [equivalent_fee(d, q).equivalent_fee for q in (0.9, 0.7, 0.5, 0.3)]
        assert fees == sorted(fees)

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_explicit_fee_wastes_less_welfare(self, name, demand):
        """The §4.1 punchline made quantitative: for the same CSP harm,
        degradation destroys weakly more welfare than an explicit fee."""
        for quality in (0.8, 0.5):
            eq = equivalent_fee(demand, quality)
            assert eq.welfare_gap >= -1e-9

    def test_validation(self):
        with pytest.raises(EconError):
            equivalent_fee(LinearDemand(), 0.0)
