"""Tests for the injectable wall/virtual clocks and the virtual driver."""

import asyncio

import pytest

from repro.exceptions import ServiceError
from repro.service.clock import VirtualClock, WallClock, drive, run_virtual


class TestVirtualClock:
    def test_sleepers_wake_in_deadline_order(self):
        clock = VirtualClock()
        order = []

        async def sleeper(name, delay):
            await clock.sleep(delay)
            order.append((name, clock.now()))

        async def main():
            await asyncio.gather(
                sleeper("late", 3.0), sleeper("early", 1.0), sleeper("mid", 2.0)
            )

        run_virtual(clock, main())
        assert [n for n, _ in order] == ["early", "mid", "late"]
        assert [t for _, t in order] == [1.0, 2.0, 3.0]
        assert clock.now() == 3.0

    def test_ties_break_by_submission_order(self):
        clock = VirtualClock()
        order = []

        async def sleeper(name):
            await clock.sleep(1.0)
            order.append(name)

        async def main():
            await asyncio.gather(*(sleeper(i) for i in range(5)))

        run_virtual(clock, main())
        assert order == [0, 1, 2, 3, 4]

    def test_zero_and_negative_delays_still_park_once(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(0.0)
            await clock.sleep(-5.0)
            return clock.now()

        assert run_virtual(clock, main()) == 0.0

    def test_nested_timers_from_woken_tasks(self):
        clock = VirtualClock()
        trace = []

        async def chain():
            await clock.sleep(1.0)
            trace.append(clock.now())
            await clock.sleep(1.0)
            trace.append(clock.now())

        run_virtual(clock, chain())
        assert trace == [1.0, 2.0]

    def test_deadlock_is_reported_not_hung(self):
        clock = VirtualClock()

        async def stuck():
            await asyncio.get_running_loop().create_future()  # never set

        with pytest.raises(ServiceError, match="deadlock"):
            run_virtual(clock, stuck())

    def test_fire_next_skips_cancelled_sleepers(self):
        clock = VirtualClock()

        async def main():
            task = asyncio.ensure_future(clock.sleep(1.0))
            await asyncio.sleep(0)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            await clock.sleep(2.0)
            return clock.now()

        assert run_virtual(clock, main()) == 2.0

    def test_drive_returns_value_and_propagates_exceptions(self):
        clock = VirtualClock()

        async def ok():
            await clock.sleep(1.0)
            return "done"

        assert run_virtual(clock, ok()) == "done"

        clock2 = VirtualClock()

        async def boom():
            await clock2.sleep(1.0)
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            run_virtual(clock2, boom())


class TestWallClock:
    def test_now_is_monotonic_and_sleep_yields(self):
        clock = WallClock()
        assert clock.virtual is False

        async def main():
            t0 = clock.now()
            await clock.sleep(0.0)
            return clock.now() - t0

        assert asyncio.run(main()) >= 0.0
