"""Tests for the built-in city database."""

import pytest

from repro.topology.cities import (
    ALL_CITIES,
    BY_NAME,
    REGIONS,
    cities_in_region,
    get_city,
    largest_cities,
)


class TestDatabaseIntegrity:
    def test_nonempty_and_sizable(self):
        # The generator needs a rich pool to build 20 BP footprints.
        assert len(ALL_CITIES) >= 100

    def test_unique_names(self):
        names = [c.name for c in ALL_CITIES]
        assert len(names) == len(set(names))

    def test_all_coordinates_valid(self):
        for city in ALL_CITIES:
            assert -90 <= city.lat <= 90, city.name
            assert -180 <= city.lon <= 180, city.name

    def test_all_populations_positive(self):
        assert all(c.population_m > 0 for c in ALL_CITIES)

    def test_all_regions_known(self):
        assert {c.region for c in ALL_CITIES} == set(REGIONS)

    def test_every_region_populated(self):
        for region in REGIONS:
            assert len(cities_in_region(region)) >= 5, region

    def test_by_name_index_consistent(self):
        assert len(BY_NAME) == len(ALL_CITIES)
        for city in ALL_CITIES:
            assert BY_NAME[city.name] is city


class TestLookups:
    def test_get_city(self):
        city = get_city("Frankfurt")
        assert city.country == "DE"
        assert city.region == "eu"

    def test_get_city_unknown(self):
        with pytest.raises(KeyError):
            get_city("Atlantis")

    def test_cities_in_region_unknown(self):
        with pytest.raises(ValueError):
            cities_in_region("antarctica")

    def test_point_property(self):
        city = get_city("Tokyo")
        assert city.point.lat == city.lat
        assert city.point.lon == city.lon


class TestLargestCities:
    def test_ordering(self):
        top = largest_cities(10)
        pops = [c.population_m for c in top]
        assert pops == sorted(pops, reverse=True)

    def test_count(self):
        assert len(largest_cities(3)) == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            largest_cities(0)

    def test_tokyo_is_top(self):
        assert largest_cities(1)[0].name == "Tokyo"
