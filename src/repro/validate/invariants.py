"""Checkable invariants: auction economics, flow physics, record hygiene.

Every checker returns a list of :class:`Violation` records (empty =
clean) instead of raising, so callers choose the enforcement mode:

- the sweep runner consults a :class:`ValidationPolicy`
  (``off | warn | quarantine | strict``) to decide whether an invalid
  trial result is logged, quarantined, or fatal;
- property tests assert the returned list is empty;
- ``poc-repro audit`` aggregates violations across a whole result store.

The checks come in two depths.  *Record-level* checks
(:func:`check_record`) see only the flat metric dict a trial emits, so
they can run over cached results from any process: finiteness and shape
always, plus per-experiment contracts (VCG payments cover declared
costs, NN welfare weakly dominates UR, the POC's surplus is zero,
served fractions are probabilities).  *Object-level* checks
(:func:`check_auction_result`, :func:`check_mcf_result`) see the live
:class:`~repro.auction.vcg.AuctionResult` /
:class:`~repro.netflow.mcf.MCFResult` and verify the §3.3 mechanism and
the LP routing in full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InvariantViolation, SweepError

#: Enforcement modes for invariant-gated caching, mildest first.
VALIDATION_POLICIES: Tuple[str, ...] = ("off", "warn", "quarantine", "strict")

#: Absolute tolerance for economic identities (dollars / welfare units).
ECON_TOL = 1e-6
#: Relative tolerance for LP flow identities (HiGHS default feasibility
#: tolerance is 1e-7; flows scale with demand, so this is relative).
FLOW_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One failed contract: which invariant, where, and the evidence."""

    invariant: str  # e.g. "vcg-individual-rationality"
    detail: str
    value: Optional[float] = None

    def __str__(self) -> str:
        if self.value is None:
            return f"{self.invariant}: {self.detail}"
        return f"{self.invariant}: {self.detail} (value={self.value!r})"

    def to_dict(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "detail": self.detail, "value": self.value}


@dataclass(frozen=True)
class ValidationPolicy:
    """How strictly trial results are held to the invariant suite.

    ``off``         — no checks at all (the pre-PR-4 behaviour);
    ``warn``        — violations are recorded as incidents, results are
                      still cached;
    ``quarantine``  — invalid results never reach the result store; the
                      trial is recorded in ``quarantine.jsonl`` and the
                      sweep continues;
    ``strict``      — the first invalid result aborts the sweep with
                      :class:`~repro.exceptions.InvariantViolation`.
    """

    mode: str = "off"

    def __post_init__(self) -> None:
        if self.mode not in VALIDATION_POLICIES:
            raise SweepError(
                f"unknown validation policy {self.mode!r}; "
                f"expected one of {VALIDATION_POLICIES}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def blocks_cache(self) -> bool:
        """Do invalid results stay out of the result store?"""
        return self.mode in ("quarantine", "strict")


def raise_if_violations(context: str, violations: Sequence[Violation]) -> None:
    """Strict-mode helper: escalate a non-empty violation list."""
    if violations:
        raise InvariantViolation(context, list(violations))


# -- record-level checks ------------------------------------------------------


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_finite_record(record: object) -> List[Violation]:
    """Shape and finiteness: flat str→finite-scalar mapping, non-empty.

    This is the contract every trial function signed up to in
    :mod:`repro.sweeps.registry`; a NaN welfare or an inf payment is a
    broken trial, and caching it would poison every later aggregate.
    """
    out: List[Violation] = []
    if not isinstance(record, Mapping):
        return [Violation("record-shape",
                          f"record is {type(record).__name__}, expected a mapping")]
    if not record:
        return [Violation("record-shape", "record is empty")]
    for key, value in record.items():
        if not isinstance(key, str):
            out.append(Violation("record-shape", f"non-string metric key {key!r}"))
            continue
        if isinstance(value, bool):
            continue  # bools are honest scalars (feasibility flags)
        if not _is_number(value):
            out.append(Violation(
                "record-shape",
                f"metric {key!r} is {type(value).__name__}, expected a scalar",
            ))
        elif not math.isfinite(value):
            out.append(Violation(
                "record-finite", f"metric {key!r} is non-finite", float(value)
            ))
    return out


def _check_figure2_record(record: Mapping[str, object]) -> List[Violation]:
    """§3.3 contracts visible at record level, per cleared constraint."""
    out: List[Violation] = []
    constraints = sorted(
        key[1:-len("_cost")] for key in record
        if key.startswith("c") and key.endswith("_cost")
    )
    for n in constraints:
        cost = record.get(f"c{n}_cost")
        payments = record.get(f"c{n}_payments")
        if _is_number(cost) and _is_number(payments):
            if payments < cost - ECON_TOL:
                out.append(Violation(
                    "vcg-weak-budget-balance",
                    f"constraint #{n} pays {payments!r} < declared cost {cost!r}",
                    float(payments - cost),
                ))
        over = record.get(f"c{n}_overpayment")
        if _is_number(over) and over < -ECON_TOL:
            out.append(Violation(
                "vcg-individual-rationality",
                f"constraint #{n} overpayment ratio is negative", float(over),
            ))
        for metric in (f"c{n}_selected", f"c{n}_winners"):
            count = record.get(metric)
            if _is_number(count) and count < 0:
                out.append(Violation("record-range", f"{metric} is negative",
                                     float(count)))
    return out


def _check_neutrality_record(record: Mapping[str, object]) -> List[Violation]:
    """§4: NN welfare weakly dominates both UR variants."""
    out: List[Violation] = []
    nn = record.get("nn_welfare")
    for regime in ("bargaining", "unilateral"):
        ur = record.get(f"{regime}_welfare")
        if _is_number(nn) and _is_number(ur) and ur > nn + ECON_TOL:
            out.append(Violation(
                "nn-welfare-dominance",
                f"{regime} welfare {ur!r} exceeds NN welfare {nn!r}",
                float(ur - nn),
            ))
        loss = record.get(f"{regime}_loss")
        if _is_number(loss) and loss < -ECON_TOL:
            out.append(Violation(
                "nn-welfare-dominance", f"{regime}_loss is negative", float(loss)
            ))
    return out


def _check_market_record(record: Mapping[str, object]) -> List[Violation]:
    """§3.2: the POC is a nonprofit — it breaks even exactly."""
    surplus = record.get("poc_surplus")
    if _is_number(surplus) and abs(surplus) > ECON_TOL:
        return [Violation("poc-nonprofit-surplus",
                          "POC surplus is not zero", float(surplus))]
    return []


def _check_chaos_record(record: Mapping[str, object]) -> List[Violation]:
    out: List[Violation] = []
    for metric in ("mean_served", "min_served"):
        value = record.get(metric)
        if _is_number(value) and not -ECON_TOL <= value <= 1.0 + ECON_TOL:
            out.append(Violation(
                "served-fraction-range", f"{metric} outside [0, 1]", float(value)
            ))
    for metric in ("fallbacks", "infeasible", "rerouted"):
        value = record.get(metric)
        if _is_number(value) and value < 0:
            out.append(Violation("record-range", f"{metric} is negative",
                                 float(value)))
    return out


def _check_service_record(record: Mapping[str, object]) -> List[Violation]:
    """R3 accounting identities visible at record level."""
    out: List[Violation] = []
    submitted = record.get("submitted")
    served = record.get("served")
    shed = record.get("shed")
    unanswered = record.get("unanswered")
    if all(_is_number(v) for v in (submitted, served, shed, unanswered)):
        # Every request is served, shed, or unanswered — nothing vanishes.
        if served + shed + unanswered > submitted + ECON_TOL:
            out.append(Violation(
                "service-conservation",
                f"served {served!r} + shed {shed!r} + unanswered "
                f"{unanswered!r} exceeds submitted {submitted!r}",
                float(served + shed + unanswered - submitted),
            ))
    rate = record.get("shed_rate")
    if _is_number(rate) and not -ECON_TOL <= rate <= 1.0 + ECON_TOL:
        out.append(Violation(
            "service-shed-range", "shed_rate outside [0, 1]", float(rate)
        ))
    if _is_number(unanswered) and unanswered > 0:
        # A request the daemon never answered at all is a bug, not load.
        out.append(Violation(
            "service-unanswered", "campaign lost requests outright",
            float(unanswered),
        ))
    p50, p99, pmax = (record.get(k) for k in ("p50_ms", "p99_ms", "max_ms"))
    if all(_is_number(v) for v in (p50, p99, pmax)):
        if not p50 <= p99 + ECON_TOL or not p99 <= pmax + ECON_TOL:
            out.append(Violation(
                "service-latency-order",
                f"latency percentiles are not monotone: "
                f"p50={p50!r} p99={p99!r} max={pmax!r}",
            ))
    for metric in ("faults", "reclears", "reclear_failures",
                   "coalesced_pricing", "degraded_served"):
        value = record.get(metric)
        if _is_number(value) and value < 0:
            out.append(Violation("record-range", f"{metric} is negative",
                                 float(value)))
    return out


_RECORD_CHECKS = {
    "figure2": _check_figure2_record,
    "neutrality": _check_neutrality_record,
    "market": _check_market_record,
    "chaos": _check_chaos_record,
    "service": _check_service_record,
}


def check_record(experiment: str, record: object) -> List[Violation]:
    """Full record-level audit: hygiene plus the experiment's contracts.

    Unknown experiment names get the generic finiteness/shape checks
    only — externally-registered experiments are still protected from
    NaN poisoning without having to ship a contract.
    """
    out = check_finite_record(record)
    if not isinstance(record, Mapping):
        return out
    extra = _RECORD_CHECKS.get(experiment)
    if extra is not None:
        out.extend(extra(record))
    return out


# -- object-level checks ------------------------------------------------------


def check_auction_result(
    result,
    *,
    require_nonnegative_pivots: bool = False,
    tol: float = ECON_TOL,
) -> List[Violation]:
    """Audit a live §3.3 :class:`~repro.auction.vcg.AuctionResult`.

    Checks, per participating provider: the payment is finite, covers
    the declared cost (individual rationality — with the IR clamp on
    this is an identity, so a violation means the clamp itself broke),
    and — under an exact selection engine — the Clarke pivot
    C(SL_−α) − C(SL) is non-negative (removing a provider cannot lower
    the optimum).  Globally: total payments cover the selection's
    declared cost (weak budget balance: the nonprofit POC never
    underpays what winners declared).
    """
    out: List[Violation] = []
    for name in sorted(result.providers):
        pr = result.providers[name]
        if not math.isfinite(pr.payment):
            out.append(Violation("payment-finite",
                                 f"provider {name} payment non-finite",
                                 pr.payment))
            continue
        if pr.payment < pr.declared_cost - tol:
            out.append(Violation(
                "vcg-individual-rationality",
                f"provider {name} paid below declared cost",
                float(pr.payment - pr.declared_cost),
            ))
        if require_nonnegative_pivots and pr.pivot_term < -tol:
            out.append(Violation(
                "clarke-pivot-nonnegative",
                f"provider {name} has a negative pivot under an exact engine",
                float(pr.pivot_term),
            ))
    total_declared = result.total_declared_cost
    paid = result.total_payments - result.external_cost
    if paid < total_declared - tol:
        out.append(Violation(
            "vcg-weak-budget-balance",
            "total payments fall short of total declared cost",
            float(paid - total_declared),
        ))
    return out


def check_mcf_result(mcf, tm, *, tol: float = FLOW_TOL) -> List[Violation]:
    """Audit a routing from :func:`repro.netflow.mcf.max_concurrent_flow`.

    With ``keep_flows=True`` detail present, verifies the LP's own
    solution satisfies its physics: per-arc capacity respect, and flow
    conservation at every (node, source) — net outflow equals λ·supply
    at the source, −λ·demand at sinks, zero elsewhere.  Without detail,
    falls back to the aggregate per-link load vs. full-duplex capacity.
    """
    out: List[Violation] = []
    if not math.isfinite(mcf.lam) or mcf.lam < 0:
        out.append(Violation("lambda-range", "λ* is negative or non-finite",
                             mcf.lam))
        return out

    if mcf.arcs is None or mcf.arc_flows is None:
        if mcf.link_loads:
            for lid, load in sorted(mcf.link_loads.items()):
                if not math.isfinite(load) or load < -tol:
                    out.append(Violation("flow-range",
                                         f"link {lid} load invalid", load))
        return out

    demands = [(pair, v) for pair, v in tm.pairs() if v > 0]
    scale = max(1.0, tm.total_gbps())

    # Capacity respect, per directed arc.
    arc_total: Dict[str, float] = {}
    for (aid, source), flow in mcf.arc_flows.items():
        if flow < -tol * scale:
            out.append(Violation("flow-nonnegative",
                                 f"arc {aid} carries negative {source}-flow",
                                 flow))
        arc_total[aid] = arc_total.get(aid, 0.0) + flow
    for aid, tail, head, cap in mcf.arcs:
        total = arc_total.get(aid, 0.0)
        if total > cap + tol * max(1.0, cap):
            out.append(Violation(
                "capacity-respect",
                f"arc {aid} ({tail}->{head}) carries {total:.6g} > cap {cap:.6g}",
                float(total - cap),
            ))

    # Flow conservation at every (node, source).
    ends = {aid: (tail, head) for aid, tail, head, _cap in mcf.arcs}
    net_out: Dict[Tuple[str, str], float] = {}
    for (aid, source), flow in mcf.arc_flows.items():
        if aid not in ends:
            out.append(Violation("flow-shape", f"flow on unknown arc {aid}"))
            continue
        tail, head = ends[aid]
        net_out[(tail, source)] = net_out.get((tail, source), 0.0) + flow
        net_out[(head, source)] = net_out.get((head, source), 0.0) - flow
    supply: Dict[Tuple[str, str], float] = {}
    for (src, dst), value in demands:
        supply[(src, src)] = supply.get((src, src), 0.0) + value
        supply[(dst, src)] = supply.get((dst, src), 0.0) - value
    for key in sorted(set(net_out) | set(supply)):
        node, source = key
        expected = mcf.lam * supply.get(key, 0.0)
        actual = net_out.get(key, 0.0)
        if abs(actual - expected) > tol * scale:
            out.append(Violation(
                "flow-conservation",
                f"node {node}, source {source}: net outflow {actual:.6g} "
                f"!= λ·supply {expected:.6g}",
                float(actual - expected),
            ))
    return out


def check_snapshot(payload: Mapping[str, object], *, tol: float = ECON_TOL) -> List[Violation]:
    """Audit a persisted service snapshot (``poc-repro audit --snapshot``).

    The snapshot is the daemon's word on what it was serving when it
    drained; this replays that word against the paper's invariants:

    - *shape*: required keys, version ≥ 1, a known health state, failed
      links a subset of the selection;
    - *economics*: per-provider payments finite and individually
      rational, the budget identity ``total_payments = Σ payments +
      external_cost``, posted per-link prices decomposing exactly the
      winners' payments;
    - *allocation*: served fraction a probability, per-pair rates finite,
      non-negative, and within demand, and the frozen rate table
      byte-reproducible from the snapshot's own backbone + TM (the
      determinism contract snapshots are built on);
    - *flow physics*: the serviceable backbone re-solved with
      ``max_concurrent_flow(keep_flows=True)`` and pushed through
      :func:`check_mcf_result` — capacity respect and per-node flow
      conservation.
    """
    # Service-layer imports are lazy: this module stays light for the
    # record-level checks, and validate ← service would otherwise be a
    # heavyweight (near-cyclic) import for every sweep worker.
    from repro.exceptions import ReproError
    from repro.dataplane.frozen import freeze_allocation
    from repro.netflow.mcf import max_concurrent_flow
    from repro.service.snapshot import snapshot_network, snapshot_tm
    from repro.traffic.matrix import TrafficMatrix

    out: List[Violation] = []
    required = ("version", "health", "control", "prices", "rates", "tm")
    missing = [key for key in required if key not in payload]
    if missing:
        return [Violation("snapshot-shape", f"missing keys {missing}")]
    try:
        version = int(payload["version"])
    except (TypeError, ValueError):
        return [Violation("snapshot-shape", "version is not an integer")]
    if version < 1:
        out.append(Violation("snapshot-shape", "snapshot versions start at 1",
                             float(version)))
    health = str(payload["health"])
    if health not in ("healthy", "degraded"):
        out.append(Violation("snapshot-shape", f"unknown health {health!r}"))

    control = payload["control"]
    if not isinstance(control, Mapping):
        return out + [Violation("snapshot-shape", "control is not a mapping")]
    selected = set(control.get("selected", ()))
    failed = set(control.get("failed_links", ()))
    if not failed <= selected:
        out.append(Violation(
            "snapshot-failed-subset",
            f"failed links not within the selection: {sorted(failed - selected)[:3]}",
        ))
    if health == "healthy" and failed:
        out.append(Violation(
            "snapshot-health-consistent",
            "healthy snapshot carries failed links",
        ))

    # -- economics -----------------------------------------------------------
    providers = control.get("providers", [])
    payments_sum = 0.0
    winner_payments = 0.0
    for row in providers:
        name = str(row.get("provider", "?"))
        payment = float(row.get("payment", math.nan))
        declared = float(row.get("declared_cost", math.nan))
        if not math.isfinite(payment):
            out.append(Violation("payment-finite",
                                 f"provider {name} payment non-finite", payment))
            continue
        payments_sum += payment
        if row.get("won"):
            winner_payments += payment
        if math.isfinite(declared) and payment < declared - tol:
            out.append(Violation(
                "vcg-individual-rationality",
                f"provider {name} paid below declared cost",
                float(payment - declared),
            ))
    external = float(control.get("external_cost", 0.0))
    totals = float(control.get("total_payments", math.nan))
    if not math.isfinite(totals) or abs(totals - (payments_sum + external)) > tol:
        out.append(Violation(
            "vcg-budget-identity",
            "total_payments != sum of payments + external cost",
            float(totals - (payments_sum + external)),
        ))
    prices = payload["prices"]
    if isinstance(prices, Mapping):
        bad = [k for k, v in prices.items()
               if not math.isfinite(float(v)) or float(v) < -tol]
        if bad:
            out.append(Violation("price-range",
                                 f"non-finite/negative prices on {sorted(bad)[:3]}"))
        unsold = sorted(set(prices) - selected)
        if unsold:
            out.append(Violation(
                "price-on-unsold-link",
                f"posted prices on links outside the selection: {unsold[:3]}",
            ))
        posted = sum(float(v) for v in prices.values())
        if abs(posted - winner_payments) > tol * max(1.0, abs(winner_payments)):
            out.append(Violation(
                "price-decomposition",
                "posted per-link prices do not decompose winner payments",
                float(posted - winner_payments),
            ))
    else:
        out.append(Violation("snapshot-shape", "prices is not a mapping"))

    # -- allocation ----------------------------------------------------------
    served = float(payload.get("served_fraction", math.nan))
    if not math.isfinite(served) or not -tol <= served <= 1.0 + tol:
        out.append(Violation("served-fraction-range",
                             "served fraction is not a probability", served))
    try:
        tm = snapshot_tm(payload)
        network = snapshot_network(control, serviceable_only=True)
    except ReproError as exc:
        return out + [Violation("snapshot-shape", str(exc))]
    demands = {pair: value for pair, value in tm.pairs()}
    rate_rows = payload["rates"]
    seen_rates: Dict[Tuple[str, str], float] = {}
    for row in rate_rows:
        src, dst, rate = str(row[0]), str(row[1]), float(row[2])
        seen_rates[(src, dst)] = rate
        demand = demands.get((src, dst))
        if demand is None:
            out.append(Violation("rate-without-demand",
                                 f"rate for pair {src}->{dst} not in the TM"))
            continue
        if not math.isfinite(rate) or rate < -tol:
            out.append(Violation("rate-range",
                                 f"pair {src}->{dst} rate invalid", rate))
        elif rate > demand + tol * max(1.0, demand):
            out.append(Violation(
                "rate-exceeds-demand",
                f"pair {src}->{dst} allocated above its demand",
                float(rate - demand),
            ))
    # Determinism: the frozen table must reproduce from its own inputs.
    rebuilt = freeze_allocation(network, tm)
    for pair, rate in sorted(seen_rates.items()):
        expect = rebuilt.rate(*pair)
        if abs(rate - expect) > 1e-6 * max(1.0, expect):
            out.append(Violation(
                "rate-determinism",
                f"pair {pair[0]}->{pair[1]} rate {rate:.9g} does not "
                f"reproduce ({expect:.9g})",
                float(rate - expect),
            ))

    # -- flow physics over the serviceable backbone --------------------------
    comp_connected = {
        pair: value for pair, value in tm.pairs()
        if value > 0 and (pair[0], pair[1]) not in _disconnected_pairs(network, tm)
    }
    if comp_connected:
        sub_tm = TrafficMatrix.from_dict(network.node_ids, comp_connected)
        mcf = max_concurrent_flow(network, sub_tm, keep_flows=True)
        out.extend(check_mcf_result(mcf, sub_tm))
    return out


def check_journal(path, *, tol: float = ECON_TOL) -> List[Violation]:
    """Audit a write-ahead service journal (``poc-repro audit --journal``).

    The journal is the daemon's intent log; replaying it must tell one
    coherent story:

    - *parse*: every line CRC-clean and in contiguous ``seq`` order.  A
      defective *last* line is the expected ``kill -9`` signature — it
      is reported, never flagged;
    - *shape*: the log opens with ``start`` or ``promote``, timestamps
      never run backwards, snapshot versions strictly increase across
      ``publish`` records;
    - *accounting*: replayed shed/serve counters are non-negative, and
      when a ``drain-complete`` record closes the log its final stats
      must equal the replayed state exactly (the crash-recovery
      byte-identity contract, checked at rest);
    - *economics*: the last published snapshot is pushed through
      :func:`check_snapshot`, so a journal audit subsumes a snapshot
      audit of whatever the daemon was serving when it stopped.
    """
    # Lazy import, same rationale as check_snapshot: validate must not
    # drag the service layer into every sweep worker.
    from repro.exceptions import JournalError
    from repro.service.journal import read_records, replay

    try:
        records, torn = read_records(path)
    except JournalError as exc:
        return [Violation("journal-parse", str(exc))]
    out: List[Violation] = []
    if not records:
        out.append(Violation("journal-shape", "journal holds no intact records"))
        return out

    opener = str(records[0]["event"])
    if opener not in ("start", "promote"):
        out.append(Violation(
            "journal-shape",
            f"journal opens with {opener!r}, expected 'start' or 'promote'",
        ))
    last_t = None
    last_version = 0
    drain_stats: Optional[Mapping[str, object]] = None
    for record in records:
        t = float(record["t"])
        if last_t is not None and t < last_t:
            out.append(Violation(
                "journal-time-monotone",
                f"seq={record['seq']} timestamp runs backwards",
                float(last_t - t),
            ))
        last_t = t
        event = str(record["event"])
        payload = record["payload"]
        if event in ("publish", "promote"):
            version = int(payload["version"])
            if event == "publish" and version <= last_version:
                out.append(Violation(
                    "journal-version-monotone",
                    f"seq={record['seq']} publishes version {version} "
                    f"after version {last_version}",
                ))
            last_version = max(last_version, version)
        elif event == "drain-complete":
            drain_stats = payload.get("stats")

    state = replay(records)
    for status, count in state.stats.items():
        if int(count) < 0:
            out.append(Violation(
                "journal-counter-range",
                f"replayed counter {status!r} is negative", float(count),
            ))
    if drain_stats is not None:
        replayed = dict(sorted(state.stats.items()))
        recorded = {str(k): int(v) for k, v in drain_stats.items()}
        if replayed != recorded:
            diff = sorted(
                k for k in set(replayed) | set(recorded)
                if replayed.get(k) != recorded.get(k)
            )
            out.append(Violation(
                "journal-drain-consistent",
                f"drain-complete stats disagree with replay on {diff[:4]}",
            ))
    if state.snapshot_payload is not None:
        out.extend(check_snapshot(state.snapshot_payload, tol=tol))
    elif not state.drained:
        out.append(Violation(
            "journal-shape",
            "journal never published a snapshot and never drained",
        ))
    # torn is informational, not a violation: surface it via the return
    # contract of read_records when callers want to report it.
    return out


def _disconnected_pairs(network, tm) -> set:
    """TM pairs with no path over ``network`` (endpoint missing or split)."""
    comp: Dict[str, int] = {}
    index = 0
    for start in network.node_ids:
        if start in comp:
            continue
        stack = [start]
        comp[start] = index
        while stack:
            node = stack.pop()
            for nbr in sorted(network.neighbors(node)):
                if nbr not in comp:
                    comp[nbr] = index
                    stack.append(nbr)
        index += 1
    return {
        (src, dst) for (src, dst), value in tm.pairs()
        if value > 0 and (comp.get(src) is None or comp.get(src) != comp.get(dst))
    }
