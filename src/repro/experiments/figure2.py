"""Figure 2: payment-over-bid margins of the five largest BPs.

The paper's only quantitative figure: run the bandwidth auction over the
(synthetic) zoo under Constraints #1, #2, and #3, and report
PoB = (P_α − C_α)/C_α for the five largest BPs, ordered by decreasing
size.  The reproduction target is the *shape*: PoB ≥ 0 everywhere
(individual rationality), high variation across BPs and constraints, and
weakly higher total cost as constraints tighten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.auction.constraints import make_constraint
from repro.auction.metrics import (
    AuctionSummary,
    PoBRow,
    format_summary_table,
    pob_rows,
    pob_variation,
    summarize,
)
from repro.auction.provider import Offer
from repro.auction.vcg import AuctionConfig, AuctionResult, run_auction
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo
from repro.obs import span
from repro.topology.graph import Network
from repro.topology.zoo import ZooConfig, ZooResult, build_zoo
from repro.traffic.matrix import TrafficMatrix

#: Feasibility engine per constraint: exact LP where affordable, the
#: greedy heuristic where the scenario fan-out makes the LP prohibitive.
DEFAULT_ENGINES = {1: "mcf", 2: "greedy", 3: "greedy"}


@dataclass(frozen=True)
class Figure2Config:
    """Parameters of a Figure 2 run."""

    preset: str = "tiny"
    seed: int = 2020
    constraints: Tuple[int, ...] = (1, 2, 3)
    tm_model: str = "gravity"
    load_fraction: float = 0.02
    method: str = "add-prune"
    top_bps: int = 5
    engines: Optional[Dict[int, str]] = None

    def zoo_config(self) -> ZooConfig:
        presets = {
            "tiny": ZooConfig.tiny,
            "small": ZooConfig.small,
            "paper": ZooConfig.paper,
        }
        return presets[self.preset](seed=self.seed)

    def engine_for(self, constraint: int) -> str:
        return (self.engines or DEFAULT_ENGINES).get(constraint, "greedy")


@dataclass
class Figure2Result:
    """The figure's data plus run diagnostics."""

    config: Figure2Config
    zoo: ZooResult
    largest_bps: List[str]
    results: Dict[str, AuctionResult]
    rows: List[PoBRow]
    summaries: List[AuctionSummary]

    def pob(self, constraint_name: str, bp: str) -> Optional[float]:
        for row in self.rows:
            if row.constraint == constraint_name and row.provider == bp:
                return row.pob
        raise KeyError(f"no row for {constraint_name}/{bp}")

    def variation(self) -> Dict[str, float]:
        return pob_variation(self.rows)

    def formatted(self) -> str:
        lines = [
            f"Figure 2 reproduction — preset={self.config.preset} "
            f"seed={self.config.seed} method={self.config.method}",
            f"zoo: {len(self.zoo.bps)} BPs, {len(self.zoo.sites)} POC sites, "
            f"{self.zoo.num_logical_links} logical links",
            "",
            format_summary_table(self.summaries),
            "",
            f"PoB margins, {len(self.largest_bps)} largest BPs "
            f"(decreasing size: {', '.join(self.largest_bps)}):",
        ]
        lines.extend(row.formatted() for row in self.rows)
        var = self.variation()
        lines.append(
            f"PoB spread: min={var['min']:.3f} max={var['max']:.3f} "
            f"range={var['spread']:.3f}"
        )
        return "\n".join(lines)


def run_constraint_auctions(
    network: Network,
    tm: TrafficMatrix,
    offers: Sequence[Offer],
    *,
    constraints: Sequence[int],
    engines: Optional[Mapping[int, str]] = None,
    method: str = "add-prune",
    links_offered: Optional[int] = None,
) -> Tuple[Dict[str, AuctionResult], List[AuctionSummary]]:
    """Clear one auction per constraint over a fixed workload.

    The shared inner loop of every Figure-2 style experiment: pure (no
    global state, deterministic given its inputs) and module-level, so
    sweep workers can call it from any process.  ``engines`` maps
    constraint number → feasibility engine (:data:`DEFAULT_ENGINES`
    fills the gaps).
    """
    offered_count = (
        links_offered if links_offered is not None else len(network.link_ids)
    )
    results: Dict[str, AuctionResult] = {}
    summaries: List[AuctionSummary] = []
    for number in constraints:
        engine = (engines or DEFAULT_ENGINES).get(number, "greedy")
        constraint = make_constraint(number, network, tm, engine=engine)
        with span("auction.clear", constraint=number, engine=engine):
            result = run_auction(
                offers, constraint, config=AuctionConfig(method=method)
            )
        results[constraint.name] = result
        summaries.append(summarize(constraint.name, offered_count, result))
    return results, summaries


def figure2_workload(
    config: Figure2Config,
) -> Tuple[ZooResult, TrafficMatrix, List[Offer]]:
    """Build the zoo → TM → offers inputs of one Figure 2 point.

    Pure and picklable: everything derives from the config's integers,
    so any process can rebuild the identical workload.
    """
    zoo = build_zoo(config.zoo_config())
    tm = traffic_for_zoo(
        zoo, load_fraction=config.load_fraction, model=config.tm_model,
        seed=config.seed,
    )
    offers = offers_for_zoo(zoo, seed=config.seed + 7)
    return zoo, tm, offers


def run_figure2(config: Figure2Config) -> Figure2Result:
    """Run the full Figure 2 pipeline from one config.

    A thin wrapper over :func:`figure2_workload` +
    :func:`run_constraint_auctions`; parameter sweeps call those pieces
    directly (see :func:`repro.experiments.trials.figure2_trial`).
    """
    zoo, tm, offers = figure2_workload(config)
    largest = zoo.largest_bps(config.top_bps)
    results, summaries = run_constraint_auctions(
        zoo.offered, tm, offers,
        constraints=config.constraints,
        engines=config.engines or DEFAULT_ENGINES,
        method=config.method,
        links_offered=zoo.num_logical_links,
    )
    rows = pob_rows(results, largest)
    return Figure2Result(
        config=config,
        zoo=zoo,
        largest_bps=largest,
        results=results,
        rows=rows,
        summaries=summaries,
    )
