"""M1 — the dynamic incumbency claim, played out in the market simulator.

§2.2/§4.5: "without network neutrality, incumbent LMPs and CSPs have a
significant competitive advantage, which would hinder innovation."
An entrant CSP joins at epoch 4; we compare its trajectory under NN and
UR over 24 months.
"""

import pytest

from repro.econ.demand import LinearDemand
from repro.market.entities import CSPAgent, founding_catalogue, founding_lmps
from repro.market.sim import MarketConfig, MarketSim, Regime

EPOCHS = 24
ENTRY = 4


def run(regime):
    csps = founding_catalogue()
    csps.append(
        CSPAgent(name="entrant", demand=LinearDemand(v_max=25.0),
                 incumbency=0.15, entry_epoch=ENTRY)
    )
    sim = MarketSim(
        MarketConfig(regime=regime, epochs=EPOCHS, poc_monthly_cost=5.0),
        csps, founding_lmps(),
    )
    return sim.run()


def test_bench_m1_market(benchmark, report):
    nn = run(Regime.NN)
    ur = benchmark.pedantic(lambda: run(Regime.UR), rounds=1, iterations=1)

    lines = [
        f"{'metric':<38}{'NN':>12}{'UR':>12}",
        "-" * 62,
        f"{'entrant cumulative profit':<38}"
        f"{nn.cumulative_csp_profit('entrant'):>12.2f}"
        f"{ur.cumulative_csp_profit('entrant'):>12.2f}",
        f"{'entrant final incumbency':<38}"
        f"{nn.csp_incumbency_series('entrant')[-1]:>12.3f}"
        f"{ur.csp_incumbency_series('entrant')[-1]:>12.3f}",
        f"{'incumbent (videostream) cum profit':<38}"
        f"{nn.cumulative_csp_profit('videostream'):>12.2f}"
        f"{ur.cumulative_csp_profit('videostream'):>12.2f}",
        f"{'final social welfare':<38}"
        f"{nn.welfare_series()[-1]:>12.2f}{ur.welfare_series()[-1]:>12.2f}",
        f"{'incumbent LMP fee revenue (last mo.)':<38}"
        f"{nn.records[-1].lmps['metro-cable'].fee_revenue:>12.2f}"
        f"{ur.records[-1].lmps['metro-cable'].fee_revenue:>12.2f}",
    ]
    report(f"NN vs UR over {EPOCHS} months (entrant CSP at epoch {ENTRY}):\n"
           + "\n".join(lines))

    # The paper's comparative claims.
    assert nn.cumulative_csp_profit("entrant") > ur.cumulative_csp_profit("entrant")
    assert (nn.csp_incumbency_series("entrant")[-1]
            > ur.csp_incumbency_series("entrant")[-1])
    assert nn.welfare_series()[-1] > ur.welfare_series()[-1]
    assert ur.records[-1].lmps["metro-cable"].fee_revenue > 0
    assert nn.records[-1].lmps["metro-cable"].fee_revenue == 0.0


def test_bench_m1_relative_disadvantage_under_ur(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """The innovation-hindrance metric must be *relative*: UR shrinks
    everyone's absolute profit (fees and higher prices hit incumbents
    too), so the absolute incumbent−entrant gap narrows.  What widens is
    the entrant's handicap: its profit as a fraction of the incumbent's
    falls, because §4.5's bargaining makes entrants pay higher fees."""
    nn, ur = run(Regime.NN), run(Regime.UR)
    ratio_nn = (nn.cumulative_csp_profit("entrant")
                / nn.cumulative_csp_profit("videostream"))
    ratio_ur = (ur.cumulative_csp_profit("entrant")
                / ur.cumulative_csp_profit("videostream"))
    report(f"entrant/incumbent cumulative profit ratio: "
           f"NN={ratio_nn:.3f} UR={ratio_ur:.3f}")
    assert ratio_ur < ratio_nn
