"""Tests for VCG payments (the Clarke pivot rule of §3.3)."""

import pytest

from repro.exceptions import AuctionError, NoFeasibleSelectionError
from repro.auction.bids import AdditiveCost
from repro.auction.constraints import make_constraint
from repro.auction.provider import Offer, make_external_contract
from repro.auction.vcg import AuctionConfig, run_auction, utility

EXACT = AuctionConfig(method="milp")
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import make_node, square_network, square_offers


def two_path_setup(price_cheap=60.0, price_dear=100.0, demand=3.0):
    """A—C reachable via Q's direct link (cheap) or P's two-hop (dear).

    The textbook VCG instance: Q wins and is paid up to the alternative's
    cost.
    """
    net = Network(name="two-path")
    for n in ("A", "B", "C"):
        net.add_node(make_node(n))
    net.add_link(Link(id="AB", u="A", v="B", capacity_gbps=10.0, owner="P"))
    net.add_link(Link(id="BC", u="B", v="C", capacity_gbps=10.0, owner="P"))
    net.add_link(Link(id="AC", u="A", v="C", capacity_gbps=10.0, owner="Q"))
    p_cost = AdditiveCost({"AB": price_dear / 2, "BC": price_dear / 2})
    q_cost = AdditiveCost({"AC": price_cheap})
    offers = [
        Offer(provider="P", links=[net.link("AB"), net.link("BC")],
              bid=p_cost, true_cost=p_cost),
        Offer(provider="Q", links=[net.link("AC")], bid=q_cost, true_cost=q_cost),
    ]
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): demand})
    constraint = make_constraint(1, net, tm)
    return net, offers, constraint


class TestClarkePivot:
    def test_winner_paid_alternative_cost(self):
        _net, offers, constraint = two_path_setup()
        result = run_auction(offers, constraint, config=EXACT)
        # Q wins at declared 60; without Q the POC would pay 100.
        # P_Q = 60 + (100 - 60) = 100.
        assert result.winners() == ["Q"]
        assert result.payment("Q") == pytest.approx(100.0)
        assert result.pob("Q") == pytest.approx(40.0 / 60.0)

    def test_loser_paid_nothing(self):
        _net, offers, constraint = two_path_setup()
        result = run_auction(offers, constraint, config=EXACT)
        assert result.payment("P") == 0.0
        assert result.pob("P") is None

    def test_pivot_term_recorded(self):
        _net, offers, constraint = two_path_setup()
        result = run_auction(offers, constraint, config=EXACT)
        assert result.providers["Q"].pivot_term == pytest.approx(40.0)
        assert result.leave_one_out_cost["Q"] == pytest.approx(100.0)

    def test_individual_rationality(self):
        _net, offers, constraint = two_path_setup()
        result = run_auction(offers, constraint, config=EXACT)
        for provider, pr in result.providers.items():
            assert pr.payment >= pr.declared_cost - 1e-9

    def test_total_payments_include_externals(self):
        _net, offers, constraint = two_path_setup()
        result = run_auction(offers, constraint, config=EXACT)
        assert result.total_payments == pytest.approx(100.0)
        assert result.external_cost == 0.0

    def test_pivotal_provider_raises(self):
        """If the constraint cannot be met without a BP, pricing fails loudly."""
        net = Network(name="single")
        for n in ("A", "B"):
            net.add_node(make_node(n))
        net.add_link(Link(id="AB", u="A", v="B", capacity_gbps=10.0, owner="P"))
        cost = AdditiveCost({"AB": 10.0})
        offers = [Offer(provider="P", links=[net.link("AB")], bid=cost, true_cost=cost)]
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 1.0})
        constraint = make_constraint(1, net, tm)
        with pytest.raises(NoFeasibleSelectionError):
            run_auction(offers, constraint, config=EXACT)

    def test_duplicate_providers_rejected(self):
        _net, offers, constraint = two_path_setup()
        with pytest.raises(AuctionError):
            run_auction(offers + [offers[0]], constraint, config=EXACT)


class TestStrategyProofness:
    """Truthful bidding is (weakly) dominant for the winning BP."""

    def test_overbidding_cannot_help_winner(self):
        _net, offers, constraint = two_path_setup()
        truthful = run_auction(offers, constraint, config=EXACT)
        base_utility = utility(offers[1], truthful)
        for factor in (1.1, 1.3, 1.6, 2.0):
            shaded = [offers[0], offers[1].with_bid(offers[1].bid.scaled(factor))]
            result = run_auction(shaded, constraint, config=EXACT)
            assert utility(shaded[1], result) <= base_utility + 1e-9

    def test_overbid_beyond_alternative_loses(self):
        _net, offers, constraint = two_path_setup()
        # Bidding 120 > alternative 100 makes Q lose; utility drops to 0.
        shaded = [offers[0], offers[1].with_bid(offers[1].bid.scaled(2.0))]
        result = run_auction(shaded, constraint, config=EXACT)
        assert result.winners() == ["P"]
        assert utility(shaded[1], result) == 0.0

    def test_underbidding_cannot_help(self):
        _net, offers, constraint = two_path_setup()
        truthful = run_auction(offers, constraint, config=EXACT)
        base_utility = utility(offers[1], truthful)
        for factor in (0.5, 0.8, 0.95):
            shaded = [offers[0], offers[1].with_bid(offers[1].bid.scaled(factor))]
            result = run_auction(shaded, constraint, config=EXACT)
            # Same payment (pivot does not depend on own bid); same utility.
            assert utility(shaded[1], result) == pytest.approx(base_utility)

    def test_losers_cannot_profit_by_any_scaling(self):
        _net, offers, constraint = two_path_setup()
        for factor in (0.7, 0.9, 1.2):
            shaded = [offers[0].with_bid(offers[0].bid.scaled(factor)), offers[1]]
            result = run_auction(shaded, constraint, config=EXACT)
            # P's true cost is 100; winning requires bidding < 60, i.e.
            # factor < 0.6, which would pay at most 60 < 100: a loss.
            assert utility(shaded[0], result) <= 1e-9


class TestExternalContracts:
    def test_virtual_links_cap_payments(self):
        net, offers, _ = two_path_setup()
        # An external contract offers A-C at 80: the pivot alternative
        # becomes 80 instead of P's 100.
        contract = make_external_contract(
            "ext", [("A", "C")], capacity_gbps=10.0, price_per_link=80.0
        )
        for link in contract.links:
            net.add_link(link)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        constraint = make_constraint(1, net, tm)
        result = run_auction(offers + [contract.to_offer()], constraint, config=EXACT)
        assert result.payment("Q") == pytest.approx(80.0)

    def test_external_never_gets_vcg_payment(self):
        net, offers, _ = two_path_setup(price_cheap=90.0)
        contract = make_external_contract(
            "ext", [("A", "C")], capacity_gbps=10.0, price_per_link=50.0
        )
        for link in contract.links:
            net.add_link(link)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        constraint = make_constraint(1, net, tm)
        result = run_auction(offers + [contract.to_offer()], constraint, config=EXACT)
        # The external wins on price but is paid contract cost, not VCG.
        assert "ext" not in result.providers
        assert result.external_cost == pytest.approx(50.0)
        assert result.total_payments == pytest.approx(50.0)


class TestOnSquare:
    def test_square_auction(self):
        net = square_network()
        offers = square_offers(net)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        constraint = make_constraint(1, net, tm)
        result = run_auction(offers, constraint, config=EXACT)
        assert result.selected == frozenset({"AC"})
        # Alternative without Q costs 200 (two ring links).
        assert result.payment("Q") == pytest.approx(200.0)
        assert result.pob("Q") == pytest.approx(140.0 / 60.0)
