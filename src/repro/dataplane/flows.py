"""Flows: demands between attached parties with QoS class and labels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import FlowError


@dataclass(frozen=True)
class Flow:
    """One end-to-end flow between two attached parties.

    ``source_party``/``dest_party`` are attachment names (a CSP, an LMP's
    customer aggregate...); the path — including the access links at both
    edges — is assigned by the simulator, not the caller.  ``weight`` is
    the scheduling weight *before* any edge behaviour is applied; QoS
    classes map to weights at the destination edge.
    """

    id: str
    source_party: str
    dest_party: str
    demand_gbps: float
    qos_class: str = "best-effort"
    application: str = "generic"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.id:
            raise FlowError("flow id cannot be empty")
        if self.source_party == self.dest_party:
            raise FlowError(f"flow {self.id} loops back to its source party")
        if self.demand_gbps <= 0:
            raise FlowError(f"flow {self.id} has non-positive demand")
        if self.weight <= 0:
            raise FlowError(f"flow {self.id} has non-positive weight")


@dataclass(frozen=True)
class RoutedFlow:
    """A flow bound to a concrete path (access + backbone link ids)."""

    flow: Flow
    link_ids: Tuple[str, ...]
    #: Effective scheduling weight after edge behaviour multipliers.
    effective_weight: float

    def __post_init__(self) -> None:
        if not self.link_ids:
            raise FlowError(f"routed flow {self.flow.id} has an empty path")
        if self.effective_weight <= 0:
            raise FlowError(
                f"routed flow {self.flow.id} has non-positive effective weight"
            )
