"""Agents of the market simulation.

The model follows §4.2: a unit mass of consumers statically partitioned
across LMPs, a catalogue of independent CSPs, and (in the UR regime)
termination fees from the Nash bargaining solution.  Agents carry the
*state that evolves* (incumbency, subscriber counts, cumulative profit);
the one-shot math stays in :mod:`repro.econ`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import MarketError
from repro.econ.csp import CSP
from repro.econ.demand import DemandCurve
from repro.econ.lmp import LMP


@dataclass
class ConsumerMass:
    """The consumers of one LMP: a mass and a shared demand distribution.

    §4.2 assumes "the distribution of demand for a CSP is the same for
    customers of each LMP", so the mass is the only per-LMP parameter.
    """

    lmp: str
    mass: float

    def __post_init__(self) -> None:
        if self.mass <= 0:
            raise MarketError(f"consumer mass must be positive: {self.mass}")


@dataclass
class CSPAgent:
    """A CSP with evolving incumbency and books."""

    name: str
    demand: DemandCurve
    incumbency: float = 1.0
    #: Epoch the CSP enters the market (0 = founding incumbent).
    entry_epoch: int = 0
    #: Attachment mode: "direct" (on the POC) or the name of a host LMP.
    attachment: str = "direct"
    cumulative_profit: float = field(default=0.0)
    subscriber_history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.incumbency <= 1.0:
            raise MarketError(f"incumbency must be in (0, 1]: {self.incumbency}")

    def as_econ_csp(self) -> CSP:
        return CSP(name=self.name, demand=self.demand, incumbency=self.incumbency)

    def active(self, epoch: int) -> bool:
        return epoch >= self.entry_epoch


@dataclass
class LMPAgent:
    """A last-mile provider with evolving market share and books."""

    name: str
    num_customers: float
    access_price: float
    vulnerability: float
    entry_epoch: int = 0
    cumulative_profit: float = field(default=0.0)
    customer_history: List[float] = field(default_factory=list)
    #: Monthly fixed operating cost (plant, staff) per unit of customers.
    unit_cost: float = 18.0

    def __post_init__(self) -> None:
        if self.num_customers <= 0:
            raise MarketError(f"customer mass must be positive: {self.num_customers}")
        if self.access_price < 0:
            raise MarketError(f"access price cannot be negative: {self.access_price}")
        if not 0.0 <= self.vulnerability <= 1.0:
            raise MarketError(f"vulnerability must be in [0,1]: {self.vulnerability}")
        if self.unit_cost < 0:
            raise MarketError(f"unit cost cannot be negative: {self.unit_cost}")

    def as_econ_lmp(self) -> LMP:
        return LMP(
            name=self.name,
            num_customers=self.num_customers,
            access_price=self.access_price,
            vulnerability=self.vulnerability,
        )

    def active(self, epoch: int) -> bool:
        return epoch >= self.entry_epoch

    def operating_cost(self) -> float:
        return self.unit_cost * self.num_customers


def founding_catalogue() -> List[CSPAgent]:
    """A default CSP catalogue: two incumbents with distinct demand."""
    from repro.econ.demand import ExponentialDemand, LinearDemand

    return [
        CSPAgent(
            name="videostream",
            demand=LinearDemand(v_max=30.0),
            incumbency=1.0,
        ),
        CSPAgent(
            name="cloudsuite",
            demand=ExponentialDemand(scale=12.0),
            incumbency=0.8,
        ),
    ]


def founding_lmps() -> List[LMPAgent]:
    """Default LMPs: one large incumbent, one mid-size regional."""
    return [
        LMPAgent(
            name="metro-cable",
            num_customers=1.0,
            access_price=50.0,
            vulnerability=0.05,
        ),
        LMPAgent(
            name="regional-fiber",
            num_customers=0.4,
            access_price=45.0,
            vulnerability=0.15,
        ),
    ]
