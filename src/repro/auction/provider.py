"""Bandwidth Providers, their cost models, and external-ISP contracts.

The auction distinguishes two kinds of capacity source (Section 3.3):

- **BPs** participate in the auction: they declare a bid (a
  :class:`~repro.auction.bids.CostFunction`) and receive VCG payments.
- **External ISPs** provide *virtual links* between POC attachment
  points "dictated by the long-term contract ... not by the auction":
  their links enter the selection's cost minimization but they are paid
  their contract price, never a VCG payment.

The default monthly-lease cost model follows the wholesale market's
stylized facts (TeleGeography, cited by the paper): cost grows roughly
linearly in distance, concavely in capacity (a 100G wave is far cheaper
per bit than 10 × 10G), with a fixed per-link component for equipment and
cross-connects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence

from repro.exceptions import BidError
from repro.auction.bids import AdditiveCost, CostFunction
from repro.rand import SeedLike, make_rng
from repro.topology.graph import Link
from repro.topology.logical import LogicalLink

#: Default coefficients of the monthly-lease cost model (USD).
COST_FIXED_PER_LINK = 1_500.0
COST_PER_KM = 1.1
COST_PER_GBPS_TO_07_KM = 0.55
CAPACITY_EXPONENT = 0.7


def default_monthly_cost(
    capacity_gbps: float,
    length_km: float,
    *,
    efficiency: float = 1.0,
) -> float:
    """Monthly lease cost of one logical link under the default model.

    ``efficiency`` scales the whole figure: BPs with modern plant or spare
    capacity (the large CSPs of §3.3) have efficiency < 1, legacy carriers
    > 1.

        cost = efficiency · (fixed + km·a + km·b·capacity^0.7)
    """
    if capacity_gbps <= 0:
        raise BidError(f"capacity must be positive, got {capacity_gbps}")
    if length_km < 0:
        raise BidError(f"length cannot be negative: {length_km}")
    if efficiency <= 0:
        raise BidError(f"efficiency must be positive, got {efficiency}")
    variable = length_km * (COST_PER_KM + COST_PER_GBPS_TO_07_KM * capacity_gbps**CAPACITY_EXPONENT)
    return efficiency * (COST_FIXED_PER_LINK + variable)


@dataclass
class Offer:
    """One BP's participation in an auction round."""

    provider: str
    links: List[Link]
    #: The declared bid the auction clears on.
    bid: CostFunction
    #: The BP's private true costs (equals ``bid`` for truthful bidders).
    true_cost: CostFunction
    #: External ISPs are priced by contract, not paid by VCG.
    in_auction: bool = True

    def __post_init__(self) -> None:
        link_ids = frozenset(l.id for l in self.links)
        if len(link_ids) != len(self.links):
            raise BidError(f"duplicate link ids in offer from {self.provider}")
        for link in self.links:
            if link.owner != self.provider:
                raise BidError(
                    f"link {link.id} owner {link.owner!r} != provider {self.provider!r}"
                )
        if self.bid.domain != link_ids:
            raise BidError(
                f"bid domain of {self.provider} does not match its offered links"
            )
        if self.true_cost.domain != link_ids:
            raise BidError(
                f"true-cost domain of {self.provider} does not match its offered links"
            )

    @property
    def link_ids(self) -> FrozenSet[str]:
        return frozenset(l.id for l in self.links)

    def is_truthful(self) -> bool:
        return self.bid is self.true_cost

    def with_bid(self, bid: CostFunction) -> "Offer":
        """The same offer with a different declared bid (misreporting)."""
        return Offer(
            provider=self.provider,
            links=self.links,
            bid=bid,
            true_cost=self.true_cost,
            in_auction=self.in_auction,
        )


def offer_from_logical_links(
    provider: str,
    logical_links: Sequence[LogicalLink],
    *,
    efficiency: float = 1.0,
    margin: float = 0.0,
    cost_noise: float = 0.0,
    seed: SeedLike = None,
) -> Offer:
    """Build a BP's offer from its zoo logical links.

    True per-link costs come from :func:`default_monthly_cost` with the
    BP's ``efficiency`` and optional lognormal noise (idiosyncratic plant
    differences).  The declared bid adds ``margin`` (0 = truthful) — VCG
    makes truthful optimal, and the strategy-proofness benches sweep this.
    """
    if margin < 0:
        raise BidError(f"margin cannot be negative: {margin}")
    if cost_noise < 0:
        raise BidError(f"cost_noise cannot be negative: {cost_noise}")
    rng = make_rng(seed)
    links = [ll.to_link() for ll in logical_links]
    true_prices: Dict[str, float] = {}
    for link in links:
        noise = float(rng.lognormal(mean=0.0, sigma=cost_noise)) if cost_noise else 1.0
        true_prices[link.id] = default_monthly_cost(
            link.capacity_gbps, link.length_km, efficiency=efficiency
        ) * noise
    true_cost = AdditiveCost(true_prices)
    if margin == 0.0:
        bid = true_cost
    else:
        bid = AdditiveCost({lid: p * (1.0 + margin) for lid, p in true_prices.items()})
    return Offer(provider=provider, links=links, bid=bid, true_cost=true_cost)


@dataclass
class ExternalTransitContract:
    """An external ISP's virtual links, priced by long-term contract.

    ``per_link_monthly`` gives the contract price of each virtual link;
    the auction treats these as always-available alternatives whose cost
    C_v(L ∩ VL) enters the minimization (they bound how much any BP can
    extract — see the collusion discussion in §3.3).
    """

    isp: str
    links: List[Link]
    per_link_monthly: Mapping[str, float]

    def __post_init__(self) -> None:
        link_ids = {l.id for l in self.links}
        if set(self.per_link_monthly) != link_ids:
            raise BidError(
                f"contract prices of {self.isp} do not match its virtual links"
            )
        for link in self.links:
            if not link.virtual:
                raise BidError(f"external link {link.id} must be marked virtual")
        for lid, price in self.per_link_monthly.items():
            if price < 0:
                raise BidError(f"negative contract price for {lid}")

    def to_offer(self) -> Offer:
        """Represent the contract as a non-auction offer for the selector."""
        cost = AdditiveCost(dict(self.per_link_monthly))
        return Offer(
            provider=self.isp,
            links=self.links,
            bid=cost,
            true_cost=cost,
            in_auction=False,
        )


def make_external_contract(
    isp: str,
    attachment_pairs: Sequence,
    *,
    capacity_gbps: float,
    price_per_link: float,
    length_km: float = 8000.0,
) -> ExternalTransitContract:
    """Convenience constructor for a mesh of virtual links.

    ``attachment_pairs`` is a sequence of (node_id, node_id) tuples — the
    POC attachment points the ISP interconnects (§3.3: "these ISPs attach
    to the POC in multiple locations and thus they provide virtual links
    between these attachment points").
    """
    links = []
    prices = {}
    for idx, (u, v) in enumerate(attachment_pairs):
        link = Link(
            id=f"{isp}:VL{idx:05d}",
            u=u,
            v=v,
            capacity_gbps=capacity_gbps,
            length_km=length_km,
            owner=isp,
            virtual=True,
        )
        links.append(link)
        prices[link.id] = price_per_link
    return ExternalTransitContract(isp=isp, links=links, per_link_monthly=prices)
