"""Tests for the reproduce engine: byte-identical re-execution."""

import json
import multiprocessing

import pytest

from repro.exceptions import ArchiveError, ReproduceMismatch
from repro.scenarios import ScenarioPack, reproduce_archive, run_pack, verify_archive
from repro.scenarios.archive import AGGREGATES_FILE, MANIFEST_FILE, RESULTS_FILE
from repro.scenarios.archive import _sha256_text

from tests.scenarios.test_pack import payload

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


@pytest.fixture()
def sealed(tmp_path):
    pack = ScenarioPack.from_dict(payload())
    root = tmp_path / "arch"
    run_pack(pack, root)
    return pack, root


class TestReproduce:
    def test_serial_reproduce_byte_identical(self, sealed, tmp_path):
        _, root = sealed
        report = reproduce_archive(root, scratch_dir=tmp_path / "scratch")
        assert report.reproduced
        assert report.trials == 2 and report.executed == 2
        assert not (tmp_path / "scratch").exists()  # scratch cleaned up

    @needs_fork
    def test_pool_reproduce_byte_identical(self, sealed, tmp_path):
        pack, root = sealed
        supervised = ScenarioPack.from_dict(payload(execution={
            "workers": 2, "supervised": True, "start_method": "fork",
        }))
        # Same spec, different execution policy -> different fingerprint,
        # but the reproduce contract is about result bytes, not policy.
        report = reproduce_archive(root, workers=2,
                                   scratch_dir=tmp_path / "scratch2")
        assert report.reproduced and report.workers == 2
        assert supervised.fingerprint() != pack.fingerprint()

    def test_keep_scratch(self, sealed, tmp_path):
        _, root = sealed
        scratch = tmp_path / "kept"
        reproduce_archive(root, scratch_dir=scratch, keep_scratch=True)
        assert (scratch / RESULTS_FILE).exists()

    def test_tampered_archive_fails_preflight(self, sealed):
        _, root = sealed
        store = root / RESULTS_FILE
        lines = [json.loads(l) for l in store.read_text().splitlines()]
        lines[0]["seed"] += 1
        store.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        with pytest.raises(ArchiveError, match="integrity audit"):
            reproduce_archive(root)

    def test_stale_aggregates_raise_mismatch(self, sealed):
        """An archive whose aggregates were (consistently) rewritten to a
        different claim passes self-consistency only if everything is
        rewritten; rewriting aggregates + pinned hash alone still fails
        against the store recomputation — so fake the one gap the audit
        cannot see: a record edit mirrored into aggregates and hash."""
        _, root = sealed
        # Here we take the simpler route: bypass the audit by rewriting
        # aggregates AND manifest hash AND the store record consistently
        # is impossible without re-keying; instead assert the mismatch
        # type surfaces when expected != actual via a doctored expected.
        agg_path = root / AGGREGATES_FILE
        doctored = agg_path.read_text().replace("0.", "1.", 1)
        agg_path.write_text(doctored)
        manifest_path = root / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["aggregates_sha256"] = _sha256_text(doctored)
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        # The store-recompute check catches this first (integrity), which
        # is the designed behaviour: mismatches at rest are tampering.
        with pytest.raises((ArchiveError, ReproduceMismatch)):
            reproduce_archive(root)


class TestVerifyArchive:
    def test_check_only_reports_ok(self, sealed):
        _, root = sealed
        report = verify_archive(root)
        assert report.problems == []
        assert "integrity:   ok" in report.formatted()

    def test_check_only_reports_problems(self, sealed):
        _, root = sealed
        (root / AGGREGATES_FILE).write_text("{}")
        report = verify_archive(root)
        assert report.problems
        assert "INTEGRITY" in report.formatted()
