"""Tests for content-addressed trial keys and the JSONL result store."""

import json

import pytest

from repro.exceptions import SweepError
from repro.sweeps.cache import ResultStore, trial_key


class TestTrialKey:
    def test_deterministic(self):
        a = trial_key("figure2", "1", {"x": 1, "y": "a"}, 7)
        b = trial_key("figure2", "1", {"y": "a", "x": 1}, 7)
        assert a == b
        assert len(a) == 64  # SHA-256 hex

    def test_sensitive_to_every_component(self):
        base = trial_key("figure2", "1", {"x": 1}, 7)
        assert trial_key("chaos", "1", {"x": 1}, 7) != base
        assert trial_key("figure2", "2", {"x": 1}, 7) != base
        assert trial_key("figure2", "1", {"x": 2}, 7) != base
        assert trial_key("figure2", "1", {"x": 1}, 8) != base

    def test_non_canonical_params_rejected(self):
        with pytest.raises(SweepError):
            trial_key("figure2", "1", {"x": float("inf")}, 7)


class TestResultStore:
    def _store(self, tmp_path):
        return ResultStore(tmp_path / "results.jsonl")

    def test_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        key = trial_key("demo", "1", {"x": 1}, 7)
        assert not store.has(key)
        store.append(
            key, experiment="demo", params={"x": 1}, seed=7,
            record={"mean": 0.5},
        )
        assert store.has(key)
        assert key in store
        assert len(store) == 1
        assert store.record(key) == {"mean": 0.5}
        entry = store.get(key)
        assert entry["experiment"] == "demo"
        assert entry["params"] == {"x": 1}
        assert entry["seed"] == 7

    def test_survives_reload(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        key = trial_key("demo", "1", {"x": 1}, 7)
        store.append(
            key, experiment="demo", params={"x": 1}, seed=7,
            record={"mean": 0.5},
        )
        reloaded = ResultStore(path)
        assert reloaded.record(key) == {"mean": 0.5}

    def test_append_idempotent_per_key(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        key = trial_key("demo", "1", {"x": 1}, 7)
        for _ in range(3):
            store.append(
                key, experiment="demo", params={"x": 1}, seed=7,
                record={"mean": 0.5},
            )
        assert len(path.read_text().splitlines()) == 1

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        key = trial_key("demo", "1", {"x": 1}, 7)
        store.append(
            key, experiment="demo", params={"x": 1}, seed=7,
            record={"mean": 0.5},
        )
        # Simulate a crash mid-append: a second line cut off mid-JSON.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "rec')
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.record(key) == {"mean": 0.5}

    def test_duplicate_keys_last_line_wins(self, tmp_path):
        path = tmp_path / "results.jsonl"
        lines = [
            {"key": "k1", "experiment": "demo", "params": {}, "seed": 0,
             "record": {"v": 1.0}},
            {"key": "k1", "experiment": "demo", "params": {}, "seed": 0,
             "record": {"v": 2.0}},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in lines))
        store = ResultStore(path)
        assert len(store) == 1
        assert store.record("k1") == {"v": 2.0}

    def test_malformed_entries_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('[1, 2]\n{"no_key": true}\n\n')
        assert len(ResultStore(path)) == 0

    def test_non_finite_record_rejected(self, tmp_path):
        store = self._store(tmp_path)
        with pytest.raises(SweepError):
            store.append(
                "k" * 64, experiment="demo", params={}, seed=0,
                record={"mean": float("nan")},
            )
        # Nothing was written.
        assert not store.path.exists() or store.path.read_text() == ""

    def test_entries_sorted_by_key(self, tmp_path):
        store = self._store(tmp_path)
        for x in (3, 1, 2):
            store.append(
                trial_key("demo", "1", {"x": x}, x), experiment="demo",
                params={"x": x}, seed=x, record={"v": float(x)},
            )
        keys = [entry["key"] for entry in store.entries()]
        assert keys == sorted(keys) == store.keys()

    def test_missing_key_reads(self, tmp_path):
        store = self._store(tmp_path)
        assert store.get("absent") is None
        assert store.record("absent") is None

    def test_corrupt_lines_counted_and_warned(self, tmp_path, caplog):
        import logging

        path = tmp_path / "results.jsonl"
        good = {"key": "k1", "experiment": "demo", "params": {}, "seed": 0,
                "record": {"v": 1.0}}
        path.write_text(
            json.dumps(good) + "\n"
            + "{broken json\n"
            + '{"no_key": true}\n'
            + json.dumps(dict(good, key="k2")) + "\n"
        )
        with caplog.at_level(logging.WARNING, logger="repro.sweeps.cache"):
            store = ResultStore(path)
        assert len(store) == 2
        assert store.corrupt_lines == 2
        assert any("corrupt" in rec.message for rec in caplog.records)

    def test_clean_store_has_zero_corrupt_lines(self, tmp_path):
        store = self._store(tmp_path)
        assert store.corrupt_lines == 0
        store.append(
            trial_key("demo", "1", {"x": 1}, 7), experiment="demo",
            params={"x": 1}, seed=7, record={"mean": 0.5},
        )
        assert ResultStore(store.path).corrupt_lines == 0

    def test_torn_tail_not_counted_as_corruption(self, tmp_path):
        # A cut-off final line is a normal crash artifact, not corruption
        # worth alarming over -- but it is still counted so the runner can
        # surface it in the incident journal.
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append(
            trial_key("demo", "1", {"x": 1}, 7), experiment="demo",
            params={"x": 1}, seed=7, record={"mean": 0.5},
        )
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "rec')
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.corrupt_lines == 1
