"""Topology substrate: graphs, geography, and synthetic operator networks.

The paper's auction experiment (Section 3.3) starts from the TopologyZoo
dataset, merges operator networks into 20 Bandwidth Providers (BPs), and
places POC routers at cities where four or more BPs are closely colocated.
This package rebuilds that pipeline from scratch on top of a synthetic,
seeded operator-network generator (see DESIGN.md for the substitution
rationale).

Public entry points:

- :class:`repro.topology.graph.Network` — the graph model used everywhere.
- :func:`repro.topology.generators.waxman_network` and friends — single
  operator networks over real city coordinates.
- :class:`repro.topology.zoo.SyntheticZoo` — the full §3.3 input pipeline:
  operators → BPs → POC routers → offered logical links.
"""

from repro.topology.cities import BUILTIN_CATALOG, CityCatalog
from repro.topology.graph import Link, Network, Node
from repro.topology.sparse import SharedTopologyHandle, SparseTopology
from repro.topology.zoo import BPFootprint, SyntheticZoo, ZooConfig

__all__ = [
    "BUILTIN_CATALOG",
    "CityCatalog",
    "Link",
    "Network",
    "Node",
    "SharedTopologyHandle",
    "SparseTopology",
    "BPFootprint",
    "SyntheticZoo",
    "ZooConfig",
]
