"""Self-contained run archives: everything needed to re-prove a result.

An archive is one directory per pack run::

    archives/<name>-<fingerprint[:12]>/
      pack.json          resolved ScenarioPack (canonical form)
      manifest.json      env/version stamp + run accounting + aggregate hash
      results.jsonl      the run's ResultStore (content-addressed trials)
      aggregates.json    byte-stable grouped report (the reproduce target)
      seeds.json         root seed + every trial's derived seed and key
      supervision.txt    incident journal + quarantine summary
      checkpoint.json    PipelineCheckpoint (spec fingerprint pin, resume)
      quarantine.jsonl   poison-trial ledger (present when non-empty)
      metrics.jsonl      obs sidecar (when telemetry was enabled)

The store file's *bytes* depend on worker scheduling (append order), so
integrity never hashes ``results.jsonl`` — instead the verifier
recomputes every entry's content address from its own fields and
recomputes the aggregates from the entries in trial order.  Any edit to
a parameter, seed, or result value breaks one of those equalities.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform
import sys
from dataclasses import dataclass
from typing import Dict, List, Mapping, Union

import repro
from repro.exceptions import ArchiveError, ScenarioError
from repro.scenarios.pack import ScenarioPack
from repro.sweeps.cache import ResultStore, trial_key
from repro.sweeps.registry import get_experiment
from repro.sweeps.runner import SweepResult

ARCHIVE_SCHEMA = "repro.scenarios.archive/1"

PACK_FILE = "pack.json"
MANIFEST_FILE = "manifest.json"
RESULTS_FILE = "results.jsonl"
AGGREGATES_FILE = "aggregates.json"
SEEDS_FILE = "seeds.json"
SUPERVISION_FILE = "supervision.txt"
CHECKPOINT_FILE = "checkpoint.json"
QUARANTINE_FILE = "quarantine.jsonl"
METRICS_FILE = "metrics.jsonl"


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _write_json(path: pathlib.Path, payload: object) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    tmp.replace(path)


def _read_json(path: pathlib.Path, what: str) -> Dict[str, object]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ArchiveError(f"archive is missing its {what} ({path}): {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArchiveError(f"archive {what} {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArchiveError(f"archive {what} {path} must be a JSON object")
    return payload


class ArchiveWriter:
    """Owns one archive directory for the duration of a pack run.

    Opening an empty (or fresh) directory stamps the pack and a
    ``status: running`` manifest; opening a directory that already holds
    a pack requires an identical fingerprint — that is what makes
    re-running the same command a *resume* and running a different pack
    into the same directory an error rather than silent contamination.
    """

    def __init__(self, root: Union[str, pathlib.Path], pack: ScenarioPack) -> None:
        self.root = pathlib.Path(root)
        self.pack = pack
        self.root.mkdir(parents=True, exist_ok=True)
        existing = self.root / PACK_FILE
        if existing.exists():
            recorded = ScenarioPack.from_dict(_read_json(existing, "pack"))
            if recorded.fingerprint() != pack.fingerprint():
                raise ScenarioError(
                    f"archive {self.root} holds pack {recorded.name!r} "
                    f"(fingerprint {recorded.fingerprint()[:12]}…), refusing "
                    f"to run {pack.name!r} ({pack.fingerprint()[:12]}…) into "
                    f"it; pick a fresh --archive directory"
                )
            self.resumed = True
        else:
            _write_json(existing, pack.to_dict())
            self.resumed = False
        self._stamp_manifest(status="running")

    # -- paths the runner plugs into the sweep machinery ----------------------

    @property
    def store_path(self) -> pathlib.Path:
        return self.root / RESULTS_FILE

    @property
    def checkpoint_path(self) -> pathlib.Path:
        return self.root / CHECKPOINT_FILE

    @property
    def quarantine_path(self) -> pathlib.Path:
        return self.root / QUARANTINE_FILE

    @property
    def metrics_path(self) -> pathlib.Path:
        return self.root / METRICS_FILE

    # -- lifecycle ------------------------------------------------------------

    def _stamp_manifest(self, status: str, **extra: object) -> None:
        exp = get_experiment(self.pack.experiment)
        manifest: Dict[str, object] = {
            "schema": ARCHIVE_SCHEMA,
            "status": status,
            "pack": self.pack.name,
            "pack_fingerprint": self.pack.fingerprint(),
            "experiment": exp.name,
            "experiment_version": exp.version,
            "repro_version": repro.__version__,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "group_by": list(self.pack.group_by),
            "root_seed": self.pack.spec.seed,
        }
        manifest.update(extra)
        _write_json(self.root / MANIFEST_FILE, manifest)

    def finalize(self, result: SweepResult) -> pathlib.Path:
        """Seal the archive after a completed run.

        Writes the byte-stable aggregates (the reproduce target), the
        per-trial seed ledger, the supervision report, and flips the
        manifest to ``status: complete`` with the aggregate hash pinned.
        """
        aggregates = result.report_json(self.pack.group_by)
        (self.root / AGGREGATES_FILE).write_text(aggregates, encoding="utf-8")
        seeds = {
            "root_seed": self.pack.spec.seed,
            "trials": [
                {"index": o.index, "seed": o.seed, "key": o.key}
                for o in result.outcomes
            ],
        }
        _write_json(self.root / SEEDS_FILE, seeds)
        (self.root / SUPERVISION_FILE).write_text(
            result.stats_line() + "\n\n" + result.supervision_report() + "\n",
            encoding="utf-8",
        )
        self._stamp_manifest(
            status="complete",
            trials=len(result.outcomes),
            executed=result.executed,
            cache_hits=result.cache_hits,
            quarantined=len(result.quarantined),
            workers=result.workers,
            aggregates_sha256=_sha256_text(aggregates),
        )
        return self.root


@dataclass(frozen=True)
class Archive:
    """A loaded (read-only) archive directory."""

    root: pathlib.Path
    pack: ScenarioPack
    manifest: Mapping[str, object]

    @property
    def aggregates_path(self) -> pathlib.Path:
        return self.root / AGGREGATES_FILE

    def aggregates(self) -> str:
        try:
            return self.aggregates_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ArchiveError(
                f"archive {self.root} has no aggregates ({exc}); "
                f"was the run interrupted? re-run the pack to finalize it"
            ) from exc

    def store(self) -> ResultStore:
        return ResultStore(self.root / RESULTS_FILE)


def load_archive(root: Union[str, pathlib.Path]) -> Archive:
    root = pathlib.Path(root)
    if not root.is_dir():
        raise ArchiveError(f"archive {root} is not a directory")
    pack = ScenarioPack.from_dict(_read_json(root / PACK_FILE, "pack"))
    manifest = _read_json(root / MANIFEST_FILE, "manifest")
    if manifest.get("schema") != ARCHIVE_SCHEMA:
        raise ArchiveError(
            f"archive {root} has schema {manifest.get('schema')!r}, "
            f"expected {ARCHIVE_SCHEMA!r}"
        )
    return Archive(root=root, pack=pack, manifest=manifest)


def check_archive(root: Union[str, pathlib.Path]) -> List[str]:
    """Verify an archive's internal consistency without re-running it.

    Returns a list of problems (empty = intact).  The checks recompute
    everything recomputable: each stored entry's content address from
    its own fields (so an edited parameter, seed, or key is caught), the
    expected key set from the pack spec, the aggregates from the store
    in trial order, and the manifest's pinned aggregate hash.
    """
    problems: List[str] = []
    try:
        archive = load_archive(root)
    except (ArchiveError, ScenarioError) as exc:
        return [str(exc)]
    pack, manifest = archive.pack, archive.manifest

    if manifest.get("pack_fingerprint") != pack.fingerprint():
        problems.append(
            "manifest pack_fingerprint does not match pack.json "
            f"({str(manifest.get('pack_fingerprint'))[:12]}… != "
            f"{pack.fingerprint()[:12]}…)"
        )
    if manifest.get("status") != "complete":
        problems.append(
            f"manifest status is {manifest.get('status')!r}, not 'complete' "
            f"(interrupted run? re-run the pack to finalize)"
        )

    # Version drift: a reproduce against a newer trial function is a
    # different experiment, not a failed archive — but it must be loud.
    try:
        exp = get_experiment(pack.experiment)
        if exp.version != manifest.get("experiment_version"):
            problems.append(
                f"experiment {pack.experiment!r} is now version "
                f"{exp.version!r} but the archive ran version "
                f"{manifest.get('experiment_version')!r}; results are not "
                f"comparable"
            )
    except Exception as exc:  # unknown experiment
        problems.append(str(exc))
        return problems

    store = archive.store()
    if store.corrupt_lines:
        problems.append(f"results.jsonl has {store.corrupt_lines} corrupt line(s)")

    # Every stored entry must hash to its own key.
    version = str(manifest.get("experiment_version", exp.version))
    for entry in store.entries():
        params = entry.get("params")
        seed = entry.get("seed")
        key = str(entry.get("key"))
        if not isinstance(params, dict) or not isinstance(seed, int):
            problems.append(f"store entry {key[:12]}… is malformed")
            continue
        recomputed = trial_key(pack.experiment, version, params, seed)
        if recomputed != key:
            problems.append(
                f"store entry {key[:12]}… does not hash to its key "
                f"(params/seed edited?)"
            )

    # The store must contain exactly the pack's trials (minus quarantined).
    expected: Dict[str, int] = {}
    for trial in pack.spec.trials():
        params = exp.resolved_params(trial.params)
        expected[trial_key(pack.experiment, version, params, trial.seed)] = trial.index
    quarantined = _quarantined_keys(archive.root)
    stored = set(store.keys())
    missing = sorted(set(expected) - stored - quarantined)
    foreign = sorted(stored - set(expected))
    if missing:
        problems.append(
            f"{len(missing)} expected trial(s) missing from results.jsonl "
            f"(first: {missing[0][:12]}…)"
        )
    if foreign:
        problems.append(
            f"{len(foreign)} stored trial(s) do not belong to this pack "
            f"(first: {foreign[0][:12]}…)"
        )

    # The aggregates must be recomputable byte-identically from the store.
    try:
        stored_aggregates = archive.aggregates()
    except ArchiveError as exc:
        problems.append(str(exc))
        return problems
    rows = []
    for key, index in sorted(expected.items(), key=lambda kv: kv[1]):
        entry = store.get(key)
        if entry is None:
            continue
        rows.append((entry.get("params", {}), entry.get("record", {})))
    from repro.sweeps.aggregate import aggregate, report_json

    try:
        recomputed_aggregates = report_json(
            pack.experiment, aggregate(rows, group_by=pack.group_by)
        )
    except Exception as exc:
        problems.append(f"aggregates are not recomputable from the store: {exc}")
        recomputed_aggregates = None
    if (recomputed_aggregates is not None
            and recomputed_aggregates != stored_aggregates):
        problems.append(
            "aggregates.json is not byte-identical to the aggregates "
            "recomputed from results.jsonl (result record edited?)"
        )
    pinned = manifest.get("aggregates_sha256")
    if pinned is not None and pinned != _sha256_text(stored_aggregates):
        problems.append(
            "manifest aggregates_sha256 does not match aggregates.json"
        )

    # The seed ledger must match the spec's derived seeds.
    seeds_path = archive.root / SEEDS_FILE
    if seeds_path.exists():
        seeds = _read_json(seeds_path, "seed ledger")
        ledger = {
            str(row.get("key")): row.get("seed")
            for row in seeds.get("trials", ())
            if isinstance(row, dict)
        }
        by_key = {
            trial_key(pack.experiment, version,
                      exp.resolved_params(t.params), t.seed): t.seed
            for t in pack.spec.trials()
        }
        for key, seed in ledger.items():
            if key in by_key and by_key[key] != seed:
                problems.append(
                    f"seed ledger entry {key[:12]}… records seed {seed}, "
                    f"spec derives {by_key[key]}"
                )
    return problems


def _quarantined_keys(root: pathlib.Path) -> set:
    path = root / QUARANTINE_FILE
    keys = set()
    if not path.exists():
        return keys
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(entry.get("key"), str):
            keys.add(entry["key"])
    return keys
