"""Min-cost acceptable link-set selection: SL = argmin C(L), L ∈ A(OL).

Exact minimization is NP-hard (set cover reduces to it), and the paper
does not specify its optimizer, so we ship three deterministic engines:

- ``greedy-drop`` — start from all offered links, repeatedly drop the
  link with the largest marginal declared cost whose removal keeps the
  set acceptable.  The workhorse.
- ``add-prune`` — binary-search the cheapest prefix of links (ascending
  standalone cost) that is acceptable — feasibility is monotone in the
  link set, so the prefix property holds — then run a drop pass.
- ``prefix`` — the binary-searched prefix alone, no drop pass.  O(log n)
  oracle calls instead of the drop pass's O(n²); coarser selections than
  add-prune, but the only engine whose call count is tractable on the
  continental (T2) universe of ≥100k offered links.
- ``local-search`` — greedy-drop followed by bounded 1-swap improvement.

What matters for the VCG stage is that one *fixed* engine is used for the
full run and every leave-one-provider-out run, so payments are computed
against a consistent allocation rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import AuctionError, NoFeasibleSelectionError
from repro.auction.constraints import Constraint
from repro.auction.provider import Offer

LinkSet = FrozenSet[str]

#: Engines accepted by :func:`select_links`.  ``milp`` is exact but only
#: supports additive bids under Constraint #1 (see repro.auction.milp).
ENGINES = ("greedy-drop", "add-prune", "prefix", "local-search", "milp")


@dataclass(frozen=True)
class SelectionOutcome:
    """A selected link set and its declared-cost breakdown."""

    selected: LinkSet
    total_cost: float
    per_provider_cost: Dict[str, float]
    engine: str
    oracle_evaluations: int

    def provider_links(self, offers: Sequence[Offer]) -> Dict[str, LinkSet]:
        """SL ∩ L_α for each provider."""
        return {
            offer.provider: self.selected & offer.link_ids for offer in offers
        }


def _owner_index(offers: Sequence[Offer]) -> Dict[str, Offer]:
    index: Dict[str, Offer] = {}
    for offer in offers:
        for lid in offer.link_ids:
            if lid in index:
                raise AuctionError(f"link {lid} offered by two providers")
            index[lid] = offer
    return index


def total_declared_cost(offers: Sequence[Offer], link_ids: Iterable[str]) -> float:
    """C(L) = Σ_α C_α(L ∩ L_α) over all offers (BPs and external)."""
    links = frozenset(link_ids)
    total = 0.0
    for offer in offers:
        mine = links & offer.link_ids
        if mine:
            total += offer.bid.cost(mine)
    leftovers = links - frozenset().union(*(o.link_ids for o in offers)) if offers else links
    if leftovers:
        raise AuctionError(f"links without an offering provider: {sorted(leftovers)[:3]}")
    return total


def per_provider_cost(offers: Sequence[Offer], link_ids: Iterable[str]) -> Dict[str, float]:
    links = frozenset(link_ids)
    return {
        offer.provider: offer.bid.cost(links & offer.link_ids)
        for offer in offers
        if links & offer.link_ids
    }


def _marginals(
    offers_by_link: Dict[str, Offer], current: LinkSet
) -> List[Tuple[float, str]]:
    """(marginal declared cost, link id) for each selected link, desc order."""
    items: List[Tuple[float, str]] = []
    for lid in current:
        offer = offers_by_link[lid]
        mine = current & offer.link_ids
        items.append((offer.bid.marginal(mine, lid), lid))
    items.sort(key=lambda t: (-t[0], t[1]))
    return items


def _greedy_drop(
    offers: Sequence[Offer],
    constraint: Constraint,
    start: LinkSet,
) -> LinkSet:
    offers_by_link = _owner_index(offers)
    current = start
    if not constraint.satisfied(current):
        raise NoFeasibleSelectionError(
            "the full offered link set does not satisfy the constraint; "
            "add capacity or external transit contracts"
        )
    improved = True
    while improved:
        improved = False
        for _marginal, lid in _marginals(offers_by_link, current):
            if lid not in current:
                continue
            candidate = current - {lid}
            if constraint.satisfied(candidate):
                current = candidate
                improved = True
    return current


def _cheapest_prefix(
    offers: Sequence[Offer],
    constraint: Constraint,
    universe: LinkSet,
) -> LinkSet:
    """Smallest acceptable prefix of the cost-ranked link ordering.

    Feasibility is monotone in the set, so binary search applies; the
    whole selection costs O(log n) oracle calls.
    """
    offers_by_link = _owner_index(offers)
    ranked = sorted(
        universe,
        key=lambda lid: (offers_by_link[lid].bid.cost(frozenset((lid,))), lid),
    )
    if not constraint.satisfied(frozenset(ranked)):
        raise NoFeasibleSelectionError(
            "the full offered link set does not satisfy the constraint"
        )
    lo, hi = 1, len(ranked)
    while lo < hi:
        mid = (lo + hi) // 2
        if constraint.satisfied(frozenset(ranked[:mid])):
            hi = mid
        else:
            lo = mid + 1
    return frozenset(ranked[:lo])


def _add_prune(
    offers: Sequence[Offer],
    constraint: Constraint,
    universe: LinkSet,
) -> LinkSet:
    prefix = _cheapest_prefix(offers, constraint, universe)
    return _greedy_drop(offers, constraint, prefix)


def _local_search(
    offers: Sequence[Offer],
    constraint: Constraint,
    universe: LinkSet,
    *,
    max_rounds: int = 3,
    max_swaps_per_round: int = 50,
) -> LinkSet:
    offers_by_link = _owner_index(offers)
    current = _greedy_drop(offers, constraint, universe)

    def cost(links: LinkSet) -> float:
        return total_declared_cost(offers, links)

    current_cost = cost(current)
    for _ in range(max_rounds):
        improved = False
        outside = sorted(
            universe - current,
            key=lambda lid: (offers_by_link[lid].bid.cost(frozenset((lid,))), lid),
        )
        swaps = 0
        for add_lid in outside:
            if swaps >= max_swaps_per_round:
                break
            with_add = current | {add_lid}
            # Try to drop up to two expensive links in exchange.
            for _m, drop_lid in _marginals(offers_by_link, current)[:10]:
                candidate = with_add - {drop_lid}
                cand_cost = cost(candidate)
                if cand_cost < current_cost - 1e-9 and constraint.satisfied(candidate):
                    current, current_cost = frozenset(candidate), cand_cost
                    improved = True
                    swaps += 1
                    break
        if not improved:
            break
    # A final drop pass cleans up anything the swaps made redundant.
    return _greedy_drop(offers, constraint, current)


def select_links(
    offers: Sequence[Offer],
    constraint: Constraint,
    *,
    method: str = "greedy-drop",
    exclude_providers: Iterable[str] = (),
    milp_time_limit_s: Optional[float] = None,
) -> SelectionOutcome:
    """Select a min-cost acceptable link set from the given offers.

    ``exclude_providers`` implements the VCG leave-one-out runs: those
    providers' links are removed from the offered universe entirely.
    Raises :class:`NoFeasibleSelectionError` when no acceptable set exists
    (the paper assumes A(OL − L_α) is nonempty for every α; external-ISP
    virtual links are how a real POC guarantees that).
    """
    excluded = set(exclude_providers)
    active = [o for o in offers if o.provider not in excluded]
    if not active:
        raise NoFeasibleSelectionError("no offers remain after exclusions")
    universe: LinkSet = frozenset().union(*(o.link_ids for o in active))
    if not universe:
        raise NoFeasibleSelectionError("no links offered")

    before = constraint.oracle_evaluations
    if method == "greedy-drop":
        selected = _greedy_drop(active, constraint, universe)
    elif method == "add-prune":
        selected = _add_prune(active, constraint, universe)
    elif method == "prefix":
        selected = _cheapest_prefix(active, constraint, universe)
    elif method == "local-search":
        selected = _local_search(active, constraint, universe)
    elif method == "milp":
        from repro.auction.constraints import TrafficConstraint
        from repro.auction.milp import exact_selection

        if type(constraint) is not TrafficConstraint:
            raise AuctionError(
                "the milp engine supports only Constraint #1 "
                "(survivability needs scenario-expanded models)"
            )
        selected, _cost = exact_selection(
            active, constraint.network, constraint.tm,
            time_limit_s=milp_time_limit_s,
        )
    else:
        raise AuctionError(f"unknown selection method {method!r}; expected {ENGINES}")

    return SelectionOutcome(
        selected=selected,
        total_cost=total_declared_cost(active, selected),
        per_provider_cost=per_provider_cost(active, selected),
        engine=method,
        oracle_evaluations=constraint.oracle_evaluations - before,
    )
