"""Physical and monetary units used throughout the library.

Bandwidth is always carried internally in **gigabits per second (Gbps)**
and money in **dollars per month** unless a function documents otherwise.
These helpers exist so code that interfaces with humans (CLI, benchmarks,
reports) never has to hand-roll conversion factors.
"""

from __future__ import annotations

import math

#: Gigabits per second in one megabit per second.
GBPS_PER_MBPS = 1e-3
#: Gigabits per second in one terabit per second.
GBPS_PER_TBPS = 1e3

#: Months per year, used when annualizing monthly lease prices.
MONTHS_PER_YEAR = 12


def mbps(value: float) -> float:
    """Convert a bandwidth expressed in Mbps to the internal Gbps unit."""
    return value * GBPS_PER_MBPS


def gbps(value: float) -> float:
    """Identity helper for readability: bandwidth already in Gbps."""
    return float(value)


def tbps(value: float) -> float:
    """Convert a bandwidth expressed in Tbps to the internal Gbps unit."""
    return value * GBPS_PER_TBPS


def per_year(monthly: float) -> float:
    """Annualize a monthly price."""
    return monthly * MONTHS_PER_YEAR


def per_month(yearly: float) -> float:
    """Convert an annual price to a monthly one."""
    return yearly / MONTHS_PER_YEAR


def fmt_bandwidth(value_gbps: float) -> str:
    """Render a bandwidth in the most natural unit.

    >>> fmt_bandwidth(0.25)
    '250.0 Mbps'
    >>> fmt_bandwidth(40)
    '40.0 Gbps'
    >>> fmt_bandwidth(2500)
    '2.5 Tbps'
    """
    if value_gbps < 0:
        raise ValueError(f"bandwidth cannot be negative: {value_gbps}")
    if value_gbps >= GBPS_PER_TBPS:
        return f"{value_gbps / GBPS_PER_TBPS:g} Tbps"
    if value_gbps < 1.0:
        return f"{value_gbps / GBPS_PER_MBPS:g} Mbps"
    return f"{value_gbps:g} Gbps"


def fmt_money(value: float) -> str:
    """Render a dollar amount with thousands separators.

    >>> fmt_money(1234567.891)
    '$1,234,567.89'
    """
    if value < 0:
        return f"-{fmt_money(-value)}"
    return f"${value:,.2f}"


def fmt_pct(fraction: float, digits: int = 1) -> str:
    """Render a fraction (0..1) as a percentage string."""
    return f"{100.0 * fraction:.{digits}f}%"


def close(a: float, b: float, rel: float = 1e-9, abs_: float = 1e-12) -> bool:
    """Tolerant float comparison used by accounting invariants."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
