"""A built-in database of world cities used to anchor synthetic topologies.

TopologyZoo networks are real operator maps whose nodes are cities; since
the dataset is not available offline, our synthetic generator draws from
this database instead.  Coordinates are decimal degrees; populations are
metro-area estimates in millions (rounded — they only drive gravity-model
traffic weights and operator footprint sampling, not any exact claim).

The set is intentionally biased toward cities that actually host major
carrier hotels and IXPs, because POC routers are placed where many BPs
colocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.geo import GeoPoint


@dataclass(frozen=True)
class City:
    """A city that can host network PoPs."""

    name: str
    country: str
    region: str
    lat: float
    lon: float
    population_m: float

    @property
    def point(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)


# name, country, region, lat, lon, metro population (millions)
_RAW: List[Tuple[str, str, str, float, float, float]] = [
    # --- North America ---
    ("New York", "US", "na", 40.71, -74.01, 19.8),
    ("Ashburn", "US", "na", 39.04, -77.49, 6.3),
    ("Chicago", "US", "na", 41.88, -87.63, 9.5),
    ("Dallas", "US", "na", 32.78, -96.80, 7.6),
    ("Los Angeles", "US", "na", 34.05, -118.24, 13.2),
    ("San Jose", "US", "na", 37.34, -121.89, 2.0),
    ("Palo Alto", "US", "na", 37.44, -122.14, 1.9),
    ("Seattle", "US", "na", 47.61, -122.33, 4.0),
    ("Miami", "US", "na", 25.76, -80.19, 6.1),
    ("Atlanta", "US", "na", 33.75, -84.39, 6.1),
    ("Denver", "US", "na", 39.74, -104.99, 3.0),
    ("Phoenix", "US", "na", 33.45, -112.07, 4.9),
    ("Houston", "US", "na", 29.76, -95.37, 7.1),
    ("Boston", "US", "na", 42.36, -71.06, 4.9),
    ("Philadelphia", "US", "na", 39.95, -75.17, 6.2),
    ("Washington", "US", "na", 38.91, -77.04, 6.4),
    ("Minneapolis", "US", "na", 44.98, -93.27, 3.7),
    ("St Louis", "US", "na", 38.63, -90.20, 2.8),
    ("Kansas City", "US", "na", 39.10, -94.58, 2.2),
    ("Salt Lake City", "US", "na", 40.76, -111.89, 1.3),
    ("Portland", "US", "na", 45.52, -122.68, 2.5),
    ("Sacramento", "US", "na", 38.58, -121.49, 2.4),
    ("Las Vegas", "US", "na", 36.17, -115.14, 2.3),
    ("San Diego", "US", "na", 32.72, -117.16, 3.3),
    ("Albuquerque", "US", "na", 35.08, -106.65, 0.9),
    ("El Paso", "US", "na", 31.76, -106.49, 0.9),
    ("Nashville", "US", "na", 36.16, -86.78, 2.0),
    ("Charlotte", "US", "na", 35.23, -80.84, 2.7),
    ("Raleigh", "US", "na", 35.78, -78.64, 1.4),
    ("Jacksonville", "US", "na", 30.33, -81.66, 1.6),
    ("Tampa", "US", "na", 27.95, -82.46, 3.2),
    ("Orlando", "US", "na", 28.54, -81.38, 2.7),
    ("New Orleans", "US", "na", 29.95, -90.07, 1.3),
    ("Memphis", "US", "na", 35.15, -90.05, 1.3),
    ("Indianapolis", "US", "na", 39.77, -86.16, 2.1),
    ("Columbus", "US", "na", 39.96, -82.10, 2.1),
    ("Cleveland", "US", "na", 41.50, -81.69, 2.1),
    ("Detroit", "US", "na", 42.33, -83.05, 4.3),
    ("Pittsburgh", "US", "na", 40.44, -80.00, 2.3),
    ("Buffalo", "US", "na", 42.89, -78.88, 1.1),
    ("Toronto", "CA", "na", 43.65, -79.38, 6.2),
    ("Montreal", "CA", "na", 45.50, -73.57, 4.3),
    ("Vancouver", "CA", "na", 49.28, -123.12, 2.6),
    ("Calgary", "CA", "na", 51.05, -114.07, 1.5),
    ("Winnipeg", "CA", "na", 49.90, -97.14, 0.8),
    ("Ottawa", "CA", "na", 45.42, -75.70, 1.4),
    ("Mexico City", "MX", "na", 19.43, -99.13, 21.8),
    ("Monterrey", "MX", "na", 25.69, -100.32, 5.3),
    ("Guadalajara", "MX", "na", 20.66, -103.35, 5.2),
    # --- Europe ---
    ("London", "GB", "eu", 51.51, -0.13, 14.3),
    ("Slough", "GB", "eu", 51.51, -0.59, 0.2),
    ("Manchester", "GB", "eu", 53.48, -2.24, 2.8),
    ("Dublin", "IE", "eu", 53.35, -6.26, 1.4),
    ("Amsterdam", "NL", "eu", 52.37, 4.90, 2.5),
    ("Rotterdam", "NL", "eu", 51.92, 4.48, 1.0),
    ("Brussels", "BE", "eu", 50.85, 4.35, 2.1),
    ("Paris", "FR", "eu", 48.86, 2.35, 11.1),
    ("Marseille", "FR", "eu", 43.30, 5.37, 1.9),
    ("Lyon", "FR", "eu", 45.76, 4.84, 2.3),
    ("Frankfurt", "DE", "eu", 50.11, 8.68, 2.7),
    ("Berlin", "DE", "eu", 52.52, 13.41, 4.5),
    ("Munich", "DE", "eu", 48.14, 11.58, 2.9),
    ("Hamburg", "DE", "eu", 53.55, 9.99, 3.1),
    ("Dusseldorf", "DE", "eu", 51.23, 6.77, 1.6),
    ("Zurich", "CH", "eu", 47.37, 8.54, 1.4),
    ("Geneva", "CH", "eu", 46.20, 6.14, 0.6),
    ("Vienna", "AT", "eu", 48.21, 16.37, 2.9),
    ("Milan", "IT", "eu", 45.46, 9.19, 4.3),
    ("Rome", "IT", "eu", 41.90, 12.50, 4.3),
    ("Madrid", "ES", "eu", 40.42, -3.70, 6.7),
    ("Barcelona", "ES", "eu", 41.39, 2.17, 5.6),
    ("Lisbon", "PT", "eu", 38.72, -9.14, 2.9),
    ("Copenhagen", "DK", "eu", 55.68, 12.57, 2.1),
    ("Stockholm", "SE", "eu", 59.33, 18.07, 2.4),
    ("Oslo", "NO", "eu", 59.91, 10.75, 1.6),
    ("Helsinki", "FI", "eu", 60.17, 24.94, 1.5),
    ("Warsaw", "PL", "eu", 52.23, 21.01, 3.1),
    ("Prague", "CZ", "eu", 50.08, 14.44, 2.7),
    ("Budapest", "HU", "eu", 47.50, 19.04, 3.0),
    ("Bucharest", "RO", "eu", 44.43, 26.10, 2.3),
    ("Sofia", "BG", "eu", 42.70, 23.32, 1.7),
    ("Athens", "GR", "eu", 37.98, 23.73, 3.6),
    ("Istanbul", "TR", "eu", 41.01, 28.98, 15.6),
    ("Kyiv", "UA", "eu", 50.45, 30.52, 3.0),
    ("Moscow", "RU", "eu", 55.76, 37.62, 12.6),
    ("St Petersburg", "RU", "eu", 59.93, 30.34, 5.4),
    # --- Asia-Pacific ---
    ("Tokyo", "JP", "ap", 35.68, 139.69, 37.3),
    ("Osaka", "JP", "ap", 34.69, 135.50, 18.9),
    ("Seoul", "KR", "ap", 37.57, 126.98, 25.5),
    ("Busan", "KR", "ap", 35.18, 129.08, 3.4),
    ("Beijing", "CN", "ap", 39.90, 116.41, 20.9),
    ("Shanghai", "CN", "ap", 31.23, 121.47, 26.3),
    ("Shenzhen", "CN", "ap", 22.54, 114.06, 12.6),
    ("Guangzhou", "CN", "ap", 23.13, 113.26, 13.9),
    ("Hong Kong", "HK", "ap", 22.32, 114.17, 7.5),
    ("Taipei", "TW", "ap", 25.03, 121.57, 7.0),
    ("Singapore", "SG", "ap", 1.35, 103.82, 5.9),
    ("Kuala Lumpur", "MY", "ap", 3.14, 101.69, 8.0),
    ("Jakarta", "ID", "ap", -6.21, 106.85, 33.4),
    ("Bangkok", "TH", "ap", 13.76, 100.50, 10.7),
    ("Manila", "PH", "ap", 14.60, 120.98, 13.9),
    ("Hanoi", "VN", "ap", 21.03, 105.85, 8.1),
    ("Ho Chi Minh City", "VN", "ap", 10.82, 106.63, 9.3),
    ("Mumbai", "IN", "ap", 19.08, 72.88, 20.7),
    ("Delhi", "IN", "ap", 28.70, 77.10, 31.2),
    ("Bangalore", "IN", "ap", 12.97, 77.59, 12.8),
    ("Chennai", "IN", "ap", 13.08, 80.27, 11.2),
    ("Hyderabad", "IN", "ap", 17.38, 78.49, 10.3),
    ("Karachi", "PK", "ap", 24.86, 67.01, 16.8),
    ("Dhaka", "BD", "ap", 23.81, 90.41, 22.5),
    ("Colombo", "LK", "ap", 6.93, 79.85, 2.3),
    ("Sydney", "AU", "ap", -33.87, 151.21, 5.4),
    ("Melbourne", "AU", "ap", -37.81, 144.96, 5.2),
    ("Brisbane", "AU", "ap", -27.47, 153.03, 2.6),
    ("Perth", "AU", "ap", -31.95, 115.86, 2.1),
    ("Auckland", "NZ", "ap", -36.85, 174.76, 1.7),
    # --- Middle East & Africa ---
    ("Dubai", "AE", "mea", 25.20, 55.27, 3.6),
    ("Tel Aviv", "IL", "mea", 32.09, 34.78, 4.2),
    ("Riyadh", "SA", "mea", 24.71, 46.68, 7.7),
    ("Doha", "QA", "mea", 25.29, 51.53, 2.4),
    ("Cairo", "EG", "mea", 30.04, 31.24, 21.3),
    ("Casablanca", "MA", "mea", 33.57, -7.59, 3.8),
    ("Lagos", "NG", "mea", 6.52, 3.38, 15.4),
    ("Accra", "GH", "mea", 5.60, -0.19, 2.6),
    ("Nairobi", "KE", "mea", -1.29, 36.82, 5.1),
    ("Johannesburg", "ZA", "mea", -26.20, 28.05, 10.1),
    ("Cape Town", "ZA", "mea", -33.92, 18.42, 4.8),
    # --- South America ---
    ("Sao Paulo", "BR", "sa", -23.55, -46.63, 22.4),
    ("Rio de Janeiro", "BR", "sa", -22.91, -43.17, 13.6),
    ("Fortaleza", "BR", "sa", -3.72, -38.54, 4.1),
    ("Brasilia", "BR", "sa", -15.79, -47.88, 4.8),
    ("Buenos Aires", "AR", "sa", -34.60, -58.38, 15.4),
    ("Santiago", "CL", "sa", -33.45, -70.67, 6.9),
    ("Lima", "PE", "sa", -12.05, -77.04, 11.0),
    ("Bogota", "CO", "sa", 4.71, -74.07, 11.3),
    ("Caracas", "VE", "sa", 10.48, -66.90, 2.9),
    ("Quito", "EC", "sa", -0.18, -78.47, 2.0),
]

#: All cities in the database, ordered as declared.
ALL_CITIES: List[City] = [City(*row) for row in _RAW]

#: Lookup by city name.
BY_NAME: Dict[str, City] = {c.name: c for c in ALL_CITIES}

#: Region codes present in the database.
REGIONS: Tuple[str, ...] = ("na", "eu", "ap", "mea", "sa")


class CityCatalog:
    """An immutable city database with name lookup.

    The built-in world-city list is one catalog (:data:`BUILTIN_CATALOG`);
    the continental-scale generator (:mod:`repro.topology.continental`)
    synthesizes much larger ones.  Pipeline stages that resolve city names
    (colocation clustering, logical-link anchoring, gravity traffic) accept
    an optional catalog and default to the built-in database, so existing
    callers are unaffected.
    """

    def __init__(self, cities: Sequence[City], name: str = "catalog") -> None:
        self.name = name
        self.cities: Tuple[City, ...] = tuple(cities)
        by_name: Dict[str, City] = {}
        for city in self.cities:
            if city.name in by_name:
                raise ValueError(
                    f"duplicate city name {city.name!r} in catalog {name!r}"
                )
            by_name[city.name] = city
        self.by_name: Dict[str, City] = by_name
        regions: List[str] = []
        for city in self.cities:
            if city.region not in regions:
                regions.append(city.region)
        self.regions: Tuple[str, ...] = tuple(regions)

    def __len__(self) -> int:
        return len(self.cities)

    def __contains__(self, name: object) -> bool:
        return name in self.by_name

    def get(self, name: str) -> City:
        try:
            return self.by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown city {name!r} (catalog {self.name!r})"
            ) from None

    def in_region(self, region: str) -> List[City]:
        if region not in self.regions:
            raise ValueError(
                f"unknown region {region!r}; expected one of {self.regions}"
            )
        return [c for c in self.cities if c.region == region]

    def largest(self, count: int) -> List[City]:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return sorted(self.cities, key=lambda c: -c.population_m)[:count]


#: The built-in world-city database as a catalog.
BUILTIN_CATALOG = CityCatalog(ALL_CITIES, name="builtin")


def cities_in_region(region: str, catalog: Optional[CityCatalog] = None) -> List[City]:
    """All cities in one region code (see :data:`REGIONS`)."""
    return (catalog or BUILTIN_CATALOG).in_region(region)


def get_city(name: str, catalog: Optional[CityCatalog] = None) -> City:
    """Look up a city by exact name, in ``catalog`` or the built-in database."""
    return (catalog or BUILTIN_CATALOG).get(name)


def largest_cities(count: int, catalog: Optional[CityCatalog] = None) -> List[City]:
    """The ``count`` most populous cities, useful for small demo topologies."""
    return (catalog or BUILTIN_CATALOG).largest(count)
