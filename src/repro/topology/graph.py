"""The graph model shared by every subsystem.

A :class:`Network` is an undirected multigraph of :class:`Node` and
:class:`Link` objects.  It is deliberately small: capacity, geography, and
ownership live on links; everything else (traffic, bids, prices) lives in
the subsystem that owns that concern.  ``networkx`` views are available for
algorithms but the canonical store is this class, so invariants (unique
ids, endpoint existence, positive capacity) are enforced in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.exceptions import (
    DuplicateIdError,
    TopologyError,
    UnknownLinkError,
    UnknownNodeError,
)
from repro.topology.geo import GeoPoint, haversine_km


@dataclass(frozen=True)
class Node:
    """A network location (PoP, router site, attachment point)."""

    id: str
    point: Optional[GeoPoint] = None
    city: Optional[str] = None
    kind: str = "router"

    def distance_km(self, other: "Node") -> float:
        """Great-circle distance to another node (requires coordinates)."""
        if self.point is None or other.point is None:
            raise TopologyError(
                f"cannot compute distance between {self.id} and {other.id}: "
                "one of them has no coordinates"
            )
        return haversine_km(self.point, other.point)


@dataclass(frozen=True)
class Link:
    """An undirected capacity between two nodes.

    ``capacity_gbps`` is the usable bandwidth in each direction (full
    duplex, as leased waves are).  ``owner`` names the Bandwidth Provider
    offering the link, or ``None`` for links the network itself owns (e.g.
    external-ISP virtual links carry owner ``None`` and a contract cost).
    """

    id: str
    u: str
    v: str
    capacity_gbps: float
    length_km: float = 0.0
    owner: Optional[str] = None
    virtual: bool = False

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise TopologyError(f"link {self.id} is a self-loop at {self.u}")
        if self.capacity_gbps <= 0:
            raise TopologyError(
                f"link {self.id} has non-positive capacity {self.capacity_gbps}"
            )
        if self.length_km < 0:
            raise TopologyError(f"link {self.id} has negative length {self.length_km}")

    @property
    def ends(self) -> Tuple[str, str]:
        return (self.u, self.v)

    def other(self, node_id: str) -> str:
        """The endpoint opposite ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise TopologyError(f"node {node_id} is not an endpoint of link {self.id}")

    def joins(self, a: str, b: str) -> bool:
        """True if this link connects nodes ``a`` and ``b`` (either order)."""
        return {self.u, self.v} == {a, b}


@dataclass
class Network:
    """An undirected multigraph with O(1) id lookups.

    Multiple parallel links between the same node pair are allowed — in the
    auction, different BPs routinely offer competing logical links between
    the same pair of POC routers.
    """

    name: str = "network"
    _nodes: Dict[str, Node] = field(default_factory=dict)
    _links: Dict[str, Link] = field(default_factory=dict)
    _adj: Dict[str, Set[str]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add a node; raises :class:`DuplicateIdError` on id reuse."""
        if node.id in self._nodes:
            raise DuplicateIdError(f"node id already present: {node.id}")
        self._nodes[node.id] = node
        self._adj[node.id] = set()
        return node

    def ensure_node(self, node: Node) -> Node:
        """Add a node if absent; returns the stored node either way."""
        existing = self._nodes.get(node.id)
        if existing is not None:
            return existing
        return self.add_node(node)

    def add_link(self, link: Link) -> Link:
        """Add a link; both endpoints must already exist."""
        if link.id in self._links:
            raise DuplicateIdError(f"link id already present: {link.id}")
        for end in link.ends:
            if end not in self._nodes:
                raise UnknownNodeError(end)
        self._links[link.id] = link
        self._adj[link.u].add(link.id)
        self._adj[link.v].add(link.id)
        return link

    def remove_link(self, link_id: str) -> Link:
        """Remove and return a link."""
        link = self._links.pop(link_id, None)
        if link is None:
            raise UnknownLinkError(link_id)
        self._adj[link.u].discard(link_id)
        self._adj[link.v].discard(link_id)
        return link

    # -- lookups -----------------------------------------------------------

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def link(self, link_id: str) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise UnknownLinkError(link_id) from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_link(self, link_id: str) -> bool:
        return link_id in self._links

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes.keys())

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    @property
    def link_ids(self) -> List[str]:
        return list(self._links.keys())

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    # -- topology queries ----------------------------------------------------

    def incident_links(self, node_id: str) -> List[Link]:
        """All links touching ``node_id``."""
        if node_id not in self._adj:
            raise UnknownNodeError(node_id)
        return [self._links[lid] for lid in sorted(self._adj[node_id])]

    def neighbors(self, node_id: str) -> Set[str]:
        """Node ids adjacent to ``node_id``."""
        return {link.other(node_id) for link in self.incident_links(node_id)}

    def degree(self, node_id: str) -> int:
        """Number of incident links (parallel links each count)."""
        if node_id not in self._adj:
            raise UnknownNodeError(node_id)
        return len(self._adj[node_id])

    def links_between(self, a: str, b: str) -> List[Link]:
        """All parallel links joining nodes ``a`` and ``b``."""
        if a not in self._adj:
            raise UnknownNodeError(a)
        if b not in self._adj:
            raise UnknownNodeError(b)
        return [self._links[lid] for lid in sorted(self._adj[a]) if self._links[lid].joins(a, b)]

    def is_connected(self) -> bool:
        """True if every node can reach every other node."""
        if not self._nodes:
            return True
        seen: Set[str] = set()
        stack = [next(iter(self._nodes))]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.neighbors(current) - seen)
        return len(seen) == len(self._nodes)

    def total_capacity_gbps(self) -> float:
        """Sum of capacities over all links."""
        return sum(link.capacity_gbps for link in self._links.values())

    # -- derived views -------------------------------------------------------

    def restricted_to_links(self, link_ids: Iterable[str], name: Optional[str] = None) -> "Network":
        """A copy keeping all nodes but only the given links.

        This is the operation the auction performs constantly: evaluate
        feasibility of a candidate *subset* of the offered links.
        """
        keep = set(link_ids)
        missing = keep - set(self._links)
        if missing:
            raise UnknownLinkError(sorted(missing)[0])
        out = Network(name=name or f"{self.name}|restricted")
        for node in self._nodes.values():
            out.add_node(node)
        for lid in sorted(keep):
            out.add_link(self._links[lid])
        return out

    def without_links(self, link_ids: Iterable[str], name: Optional[str] = None) -> "Network":
        """A copy with the given links removed (failure scenarios)."""
        drop = set(link_ids)
        keep = [lid for lid in self._links if lid not in drop]
        return self.restricted_to_links(keep, name=name or f"{self.name}|failed")

    def to_networkx(self) -> nx.MultiGraph:
        """A networkx MultiGraph view (copies; mutations do not write back)."""
        g = nx.MultiGraph(name=self.name)
        for node in self._nodes.values():
            g.add_node(node.id, obj=node)
        for link in self._links.values():
            g.add_edge(
                link.u,
                link.v,
                key=link.id,
                capacity=link.capacity_gbps,
                length=link.length_km,
                owner=link.owner,
                obj=link,
            )
        return g

    def iter_links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )
