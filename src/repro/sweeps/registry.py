"""The experiment registry: names → pure per-trial functions.

Sweep workers never receive pickled callables; they receive an
experiment *name* and look the trial function up here.  That keeps every
trial spawn-safe (a fresh interpreter can resolve the name after
importing this module) and makes the registry the natural home for the
code-version tag that participates in content-addressed trial keys.

A trial function has the signature::

    trial(params: Mapping[str, object], seed: int) -> Mapping[str, float]

It must be a module-level function (picklable by reference), must not
mutate global state, must derive all randomness from ``seed`` via
:mod:`repro.rand`, and must return a flat mapping of metric name →
scalar — the record the aggregation layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import SweepError

TrialFn = Callable[[Mapping[str, object], int], Mapping[str, object]]
PrewarmFn = Callable[[Mapping[str, object]], None]


@dataclass(frozen=True)
class Experiment:
    """One sweepable experiment."""

    name: str
    trial: TrialFn
    #: Bump whenever the trial function's observable behaviour changes;
    #: it participates in trial keys, so old cached results stop matching.
    version: str
    description: str = ""
    #: Parameters merged under every sweep point unless overridden.
    defaults: Mapping[str, object] = field(default_factory=dict)
    #: Optional cache warmer, called with resolved params before trials
    #: execute: once in the parent before a worker pool starts (so
    #: fork-started workers inherit the warmed read-only state — e.g.
    #: the :mod:`repro.netflow.model` LP model for the sweep's shared
    #: topology) and once per spawn-started worker.  Must be a pure
    #: cache population: results are required to be byte-identical with
    #: and without it, and any failure is swallowed (prewarming is an
    #: optimization, never a correctness dependency).
    prewarm: Optional[PrewarmFn] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("experiment name cannot be empty")
        if not callable(self.trial):
            raise SweepError(f"trial for {self.name!r} is not callable")
        if not self.version:
            raise SweepError(f"experiment {self.name!r} needs a version tag")
        object.__setattr__(self, "defaults", dict(self.defaults))

    def resolved_params(self, params: Mapping[str, object]) -> Dict[str, object]:
        merged = dict(self.defaults)
        merged.update(params)
        return merged


_REGISTRY: Dict[str, Experiment] = {}
_BUILTINS_LOADED = False


def register(experiment: Experiment, *, replace: bool = False) -> Experiment:
    """Add an experiment to the registry (``replace=True`` to redefine)."""
    if experiment.name in _REGISTRY and not replace:
        raise SweepError(f"experiment {experiment.name!r} is already registered")
    _REGISTRY[experiment.name] = experiment
    return experiment


def _load_builtins() -> None:
    # Imported lazily: trials.py imports heavyweight experiment modules,
    # and it registers itself through this module, so a top-level import
    # here would cycle.
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.experiments.trials  # noqa: F401  (registers on import)


def get_experiment(name: str) -> Experiment:
    """Look an experiment up by name, loading built-ins on first use."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SweepError(
            f"unknown experiment {name!r}; registered: {registered_names()}"
        ) from None


def registered_names() -> Tuple[str, ...]:
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def describe_all() -> List[str]:
    """One line per registered experiment, for ``--help`` style listings."""
    _load_builtins()
    return [
        f"{exp.name:<12} v{exp.version:<4} {exp.description}"
        for exp in (_REGISTRY[name] for name in sorted(_REGISTRY))
    ]
