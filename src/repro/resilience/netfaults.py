"""Seeded network-fault injection at the TCP layer.

The chaos harness breaks *links and solvers*; this module breaks the
*wire*.  :class:`FaultProxy` sits between a transport client and the
service's socket server and, per forwarded chunk, draws one decision
from a seeded rng: forward, drop, delay, truncate, duplicate — or reset
the whole connection.  That exercises every failure branch of the
client (timeout, short frame, connection reset, stale duplicate reply)
without patching any code under test.

Fault decisions are a deterministic function of ``(seed, connection,
direction, chunk index)`` via :func:`repro.rand.derive_rng`.  TCP chunk
*boundaries* are up to the OS, so a wall-clock campaign through the
proxy is not byte-reproducible — the proxy is chaos gear for semantic
assertions (every request still gets a terminal answer), not a
determinism vehicle.  Its decision *schedule* for a given chunk
sequence is reproducible, which is what the unit tests pin.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ServiceError
from repro.rand import SeedLike, derive_rng

#: Forwarding verdicts, in the order probability mass is assigned.
FAULT_KINDS: Tuple[str, ...] = ("reset", "drop", "truncate", "duplicate", "delay")


@dataclass(frozen=True)
class NetFaultConfig:
    """Per-chunk fault probabilities (the rest of the mass forwards)."""

    reset_p: float = 0.0
    drop_p: float = 0.0
    truncate_p: float = 0.0
    duplicate_p: float = 0.0
    delay_p: float = 0.0
    #: Uniform delay bound applied when a ``delay`` verdict fires.
    delay_max_s: float = 0.05

    def __post_init__(self) -> None:
        probs = (self.reset_p, self.drop_p, self.truncate_p,
                 self.duplicate_p, self.delay_p)
        if any(p < 0 for p in probs) or sum(probs) > 1.0:
            raise ServiceError(
                "fault probabilities must be non-negative and sum to <= 1"
            )
        if self.delay_max_s < 0:
            raise ServiceError("delay_max_s cannot be negative")

    def verdict(self, u: float) -> str:
        """Map one uniform draw to a verdict ('forward' if no fault)."""
        edge = 0.0
        for kind, p in zip(FAULT_KINDS, (self.reset_p, self.drop_p,
                                         self.truncate_p, self.duplicate_p,
                                         self.delay_p)):
            edge += p
            if u < edge:
                return kind
        return "forward"


class FaultProxy:
    """A TCP proxy that forwards both directions through the fault dice."""

    def __init__(
        self,
        upstream: Tuple[str, int],
        config: NetFaultConfig,
        *,
        seed: SeedLike = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (str(upstream[0]), int(upstream[1]))
        self.config = config
        self.seed = seed
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_count = 0
        self._tasks: "set[asyncio.Task]" = set()
        #: Verdict tally across the proxy's lifetime.
        self.stats: Dict[str, int] = {k: 0 for k in FAULT_KINDS + ("forward",)}

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ServiceError("fault proxy is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise ServiceError("fault proxy is already started")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self._conn_count += 1
        conn = self._conn_count
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except (ConnectionError, OSError):
            writer.close()
            return
        reset = asyncio.Event()
        pumps = [
            asyncio.ensure_future(
                self._pump(reader, up_writer, conn, "c2s", reset)
            ),
            asyncio.ensure_future(
                self._pump(up_reader, writer, conn, "s2c", reset)
            ),
        ]
        for pump in pumps:
            self._tasks.add(pump)
            pump.add_done_callback(self._tasks.discard)
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        except asyncio.CancelledError:
            for pump in pumps:
                pump.cancel()
        for w in (writer, up_writer):
            try:
                w.close()
            except Exception:
                pass

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: int,
        direction: str,
        reset: asyncio.Event,
    ) -> None:
        """Forward one direction chunk-by-chunk through the fault dice."""
        chunk_index = 0
        try:
            while not reset.is_set():
                chunk = await reader.read(65536)
                if not chunk:
                    break
                rng = derive_rng(self.seed, "netfault", conn, direction,
                                 chunk_index)
                chunk_index += 1
                verdict = self.config.verdict(float(rng.uniform()))
                self.stats[verdict] += 1
                if verdict == "reset":
                    # Kill both directions abruptly — RST, not FIN.
                    reset.set()
                    break
                if verdict == "drop":
                    continue
                if verdict == "truncate":
                    half = max(1, len(chunk) // 2)
                    writer.write(chunk[:half])
                    await writer.drain()
                    reset.set()
                    break
                if verdict == "delay":
                    await asyncio.sleep(
                        float(rng.uniform(0.0, self.config.delay_max_s))
                    )
                    writer.write(chunk)
                    await writer.drain()
                    continue
                if verdict == "duplicate":
                    writer.write(chunk + chunk)
                    await writer.drain()
                    continue
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass
