"""Tests for CSP pricing — including Lemma 1's monotonicity."""

import pytest

from repro.exceptions import EconError
from repro.econ.csp import CSP, optimal_price, profit
from repro.econ.demand import (
    STANDARD_FAMILIES,
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ParetoDemand,
)


class TestClosedForms:
    def test_linear(self):
        d = LinearDemand(v_max=10.0)
        assert optimal_price(d, 0.0) == pytest.approx(5.0)
        assert optimal_price(d, 4.0) == pytest.approx(7.0)

    def test_linear_capped_at_vmax(self):
        d = LinearDemand(v_max=10.0)
        # Approaching the dead-market boundary, the cap binds...
        assert optimal_price(d, 9.99) < 10.0
        assert optimal_price(d, 10.0) == 10.0
        # ...and beyond it, the convention is price-at-cost, zero sales.
        assert optimal_price(d, 100.0) == 100.0
        assert d.demand(optimal_price(d, 100.0)) == 0.0

    def test_exponential(self):
        d = ExponentialDemand(scale=3.0)
        assert optimal_price(d, 0.0) == pytest.approx(3.0)
        assert optimal_price(d, 2.0) == pytest.approx(5.0)

    def test_pareto_corner_then_interior(self):
        d = ParetoDemand(p_min=2.0, alpha=2.0)
        # Corner until t = p_min(a-1)/a = 1.
        assert optimal_price(d, 0.0) == 2.0
        assert optimal_price(d, 0.5) == 2.0
        # Interior beyond: p* = 2t.
        assert optimal_price(d, 3.0) == pytest.approx(6.0)

    def test_logit_numeric(self):
        d = LogitDemand(mid=10.0, spread=2.0)
        p0 = optimal_price(d, 0.0)
        assert 0 < p0 < d.price_ceiling
        # First-order condition: D + p·D' ≈ 0 at the optimum.
        foc = d.demand(p0) + p0 * d.demand_prime(p0)
        assert foc == pytest.approx(0.0, abs=1e-4)

    def test_negative_fee_rejected(self):
        with pytest.raises(EconError):
            optimal_price(LinearDemand(), -1.0)


class TestClosedFormsMatchNumeric:
    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    @pytest.mark.parametrize("fee", [0.0, 1.0, 4.0])
    def test_optimum_is_actually_optimal(self, name, demand, fee):
        p_star = optimal_price(demand, fee)
        best = profit(demand, p_star, fee)
        for p in [p_star * f for f in (0.8, 0.9, 1.1, 1.25)]:
            assert profit(demand, p, fee) <= best + 1e-9


class TestLemma1:
    """p*(t) is monotonically increasing in t (strictly, off corners)."""

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_monotone_in_fee(self, name, demand):
        fees = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]
        prices = [optimal_price(demand, t) for t in fees]
        for a, b in zip(prices, prices[1:]):
            assert b >= a - 1e-9

    def test_strict_on_lemma_family(self):
        # Exponential satisfies every Lemma 1 hypothesis: strictness holds.
        d = ExponentialDemand(scale=5.0)
        fees = [0.0, 1.0, 2.0, 3.0]
        prices = [optimal_price(d, t) for t in fees]
        for a, b in zip(prices, prices[1:]):
            assert b > a

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_margin_never_negative(self, name, demand):
        for t in (0.0, 1.0, 5.0):
            assert optimal_price(demand, t) >= t - 1e-9


class TestCSPObject:
    def test_price_and_profit(self):
        csp = CSP(name="svc", demand=LinearDemand(v_max=10.0))
        assert csp.price() == pytest.approx(5.0)
        assert csp.profit() == pytest.approx(2.5)
        assert csp.subscribers() == pytest.approx(0.5)

    def test_fee_cuts_profit(self):
        csp = CSP(name="svc", demand=LinearDemand(v_max=10.0))
        assert csp.profit(fee=2.0) < csp.profit(fee=0.0)

    def test_incumbency_validation(self):
        with pytest.raises(EconError):
            CSP(name="x", demand=LinearDemand(), incumbency=0.0)
        with pytest.raises(EconError):
            CSP(name="x", demand=LinearDemand(), incumbency=1.5)

    def test_profit_validation(self):
        with pytest.raises(EconError):
            profit(LinearDemand(), price=-1.0)
