"""Edge-case flow tests: parallel links, asymmetric demands, degenerates."""

import pytest

from repro.netflow.mcf import max_concurrent_flow
from repro.netflow.routing import route_greedy_multipath, route_shortest_path
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import make_node


def parallel_net(caps=(3.0, 7.0)):
    net = Network(name="parallel")
    net.add_node(make_node("A"))
    net.add_node(make_node("B"))
    for i, cap in enumerate(caps):
        net.add_link(Link(id=f"P{i}", u="A", v="B", capacity_gbps=cap,
                          length_km=100.0 + i))
    return net


class TestParallelLinks:
    def test_mcf_aggregates_parallel_capacity(self):
        net = parallel_net((3.0, 7.0))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 10.0})
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        assert res.lam == pytest.approx(1.0, rel=1e-6)

    def test_greedy_uses_both_parallels(self):
        net = parallel_net((3.0, 7.0))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 9.0})
        out = route_greedy_multipath(net, tm)
        assert out.feasible
        assert len(out.link_load_gbps) == 2

    def test_sp_uses_single_best_parallel(self):
        net = parallel_net((3.0, 7.0))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 5.0})
        out = route_shortest_path(net, tm)
        # SP picks the shortest parallel (P0, 100 km) which has only 3G.
        assert not out.feasible

    def test_mcf_loads_split_across_parallels(self):
        net = parallel_net((5.0, 5.0))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 10.0})
        res = max_concurrent_flow(net, tm)
        assert res.feasible
        assert res.link_loads is not None
        assert sum(res.link_loads.values()) == pytest.approx(10.0, rel=1e-5)


class TestAsymmetricDemands:
    def test_directions_independent(self):
        net = parallel_net((10.0,))
        tm = TrafficMatrix.from_dict(
            ["A", "B"], {("A", "B"): 10.0, ("B", "A"): 2.0}
        )
        res = max_concurrent_flow(net, tm)
        # Full duplex: each direction has its own 10G.
        assert res.feasible
        assert res.lam == pytest.approx(1.0, rel=1e-6)

    def test_heaviest_direction_binds(self):
        net = parallel_net((10.0,))
        tm = TrafficMatrix.from_dict(
            ["A", "B"], {("A", "B"): 20.0, ("B", "A"): 1.0}
        )
        res = max_concurrent_flow(net, tm)
        assert res.lam == pytest.approx(0.5, rel=1e-6)


class TestDegenerates:
    def test_zero_tm_on_any_engine(self):
        net = parallel_net()
        tm = TrafficMatrix(nodes=["A", "B"])
        assert max_concurrent_flow(net, tm).feasible
        assert route_shortest_path(net, tm).feasible
        assert route_greedy_multipath(net, tm).feasible

    def test_single_node_network(self):
        net = Network()
        net.add_node(make_node("A"))
        tm = TrafficMatrix(nodes=["A"])
        assert max_concurrent_flow(net, tm).feasible

    def test_tiny_demand_numerical_stability(self):
        net = parallel_net((10.0,))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 1e-9})
        res = max_concurrent_flow(net, tm)
        assert res.feasible

    def test_huge_demand(self):
        net = parallel_net((10.0,))
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 1e9})
        res = max_concurrent_flow(net, tm)
        assert not res.feasible
        assert res.lam == pytest.approx(10.0 / 1e9, rel=1e-4)
