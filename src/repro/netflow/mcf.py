"""Exact multi-commodity-flow computations via linear programming.

The central quantity is the *max concurrent flow* λ*: the largest uniform
scaling of the traffic matrix the network can carry with splittable
routing.  A link set is feasible for a TM exactly when λ* >= 1.

Formulation (node-arc, commodities aggregated by source):

- each undirected link becomes two directed arcs, each with the link's
  full-duplex capacity;
- for each source ``s`` with positive egress, variables x[a, s] >= 0 give
  the flow of s-sourced traffic on arc ``a``;
- flow conservation at every node v:  out(v,s) - in(v,s) = λ · b(s, v)
  where b(s, s) = Σ_t d(s,t), b(s, t) = -d(s,t);
- capacity:  Σ_s x[a, s] <= cap(a);
- maximize λ.

Aggregating by source keeps the variable count at |arcs| × |sources|
instead of |arcs| × |pairs|, which is what makes exact feasibility
affordable for the auction's inner loop at benchmark scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.exceptions import FlowError
from repro.obs import metrics, span
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix

#: λ is capped at this value so the LP stays bounded even for tiny TMs.
LAMBDA_CAP = 64.0


@dataclass(frozen=True)
class MCFResult:
    """Outcome of a max-concurrent-flow solve."""

    lam: float
    feasible: bool
    status: int
    message: str
    #: Total flow·km routed at λ = min(lam, 1) — a cost-of-carriage proxy.
    flow_km: float = 0.0
    #: Per-link load (Gbps, both directions summed) of a routing of the TM
    #: itself (flows rescaled to λ = 1 when λ* > 1).  None when infeasible.
    link_loads: Optional[Dict[str, float]] = None
    #: Raw routing detail for invariant audits, populated only when
    #: ``keep_flows=True``: ``arcs`` lists (arc_id, tail, head, capacity)
    #: and ``arc_flows[(arc_id, source)]`` the *unscaled* flow of
    #: source-sourced traffic on that arc at the solved λ.
    arcs: Optional[Tuple[Tuple[str, str, str, float], ...]] = None
    arc_flows: Optional[Dict[Tuple[str, str], float]] = None

    @property
    def utilization_headroom(self) -> float:
        """How much the TM could grow before saturating (λ* − 1)."""
        return self.lam - 1.0


def _directed_arcs(network: Network) -> List[Tuple[str, str, str, float, float]]:
    """Expand undirected links to directed arcs.

    Returns tuples (arc_id, tail, head, capacity, length).
    """
    arcs = []
    for link in network.iter_links():
        arcs.append((f"{link.id}>f", link.u, link.v, link.capacity_gbps, link.length_km))
        arcs.append((f"{link.id}>r", link.v, link.u, link.capacity_gbps, link.length_km))
    return arcs


def max_concurrent_flow(
    network: Network,
    tm: TrafficMatrix,
    *,
    lambda_cap: float = LAMBDA_CAP,
    keep_flows: bool = False,
) -> MCFResult:
    """Solve for the max concurrent flow λ* of ``tm`` on ``network``.

    Raises :class:`FlowError` only on solver breakdown; an unreachable
    demand simply yields λ* = 0 (infeasible).  ``keep_flows=True``
    retains the per-arc, per-source routing on the result so the
    invariant suite (:mod:`repro.validate.invariants`) can audit flow
    conservation and capacity respect against the LP's own solution.
    """
    tm.validate_against(network.node_ids)
    demands = [(pair, v) for pair, v in tm.pairs() if v > 0]
    if not demands:
        return MCFResult(lam=lambda_cap, feasible=True, status=0, message="empty TM")

    sources = sorted({src for (src, _), _ in demands})
    nodes = network.node_ids
    node_idx = {n: i for i, n in enumerate(nodes)}
    src_idx = {s: i for i, s in enumerate(sources)}
    arcs = _directed_arcs(network)
    n_arcs, n_src, n_nodes = len(arcs), len(sources), len(nodes)
    if n_arcs == 0:
        return MCFResult(lam=0.0, feasible=False, status=2, message="no links")

    with span("mcf.build", arcs=n_arcs, sources=n_src, nodes=n_nodes):
        # Net supply b(s, v).
        b = np.zeros((n_src, n_nodes))
        for (src, dst), value in demands:
            b[src_idx[src], node_idx[src]] += value
            b[src_idx[src], node_idx[dst]] -= value

        # Variable layout: x[a, s] at index a * n_src + s; λ last.
        n_x = n_arcs * n_src
        lam_col = n_x

        eq_rows: List[int] = []
        eq_cols: List[int] = []
        eq_vals: List[float] = []
        # Conservation row index: s * n_nodes + v.
        for a, (_aid, tail, head, _cap, _len) in enumerate(arcs):
            ti, hi = node_idx[tail], node_idx[head]
            for s in range(n_src):
                col = a * n_src + s
                eq_rows.append(s * n_nodes + ti)
                eq_cols.append(col)
                eq_vals.append(1.0)
                eq_rows.append(s * n_nodes + hi)
                eq_cols.append(col)
                eq_vals.append(-1.0)
        # -λ·b term.
        for s in range(n_src):
            for v in range(n_nodes):
                if b[s, v] != 0.0:
                    eq_rows.append(s * n_nodes + v)
                    eq_cols.append(lam_col)
                    eq_vals.append(-b[s, v])
        a_eq = coo_matrix(
            (eq_vals, (eq_rows, eq_cols)), shape=(n_src * n_nodes, n_x + 1)
        ).tocsr()
        b_eq = np.zeros(n_src * n_nodes)

        ub_rows: List[int] = []
        ub_cols: List[int] = []
        ub_vals: List[float] = []
        caps = np.empty(n_arcs)
        for a, (_aid, _t, _h, cap, _len) in enumerate(arcs):
            caps[a] = cap
            for s in range(n_src):
                ub_rows.append(a)
                ub_cols.append(a * n_src + s)
                ub_vals.append(1.0)
        a_ub = coo_matrix((ub_vals, (ub_rows, ub_cols)), shape=(n_arcs, n_x + 1)).tocsr()

        c = np.zeros(n_x + 1)
        c[lam_col] = -1.0
        bounds = [(0, None)] * n_x + [(0, lambda_cap)]

    with span("mcf.solve", variables=n_x + 1):
        metrics().inc("mcf.solves")
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=caps,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
    return _finish_result(res.x, res.status, res.message, arcs, sources, keep_flows)


def _finish_result(
    x,
    status: int,
    message: str,
    arcs: List[Tuple[str, str, str, float, float]],
    sources: List[str],
    keep_flows: bool,
) -> MCFResult:
    """Turn a raw LP solution into an :class:`MCFResult`.

    Shared by the from-scratch path above and the warm-started
    :class:`repro.netflow.model.McfModel` so both produce bit-identical
    results from identical solver outputs.
    """
    if status not in (0, 3):  # 3 = unbounded cannot happen with the cap
        metrics().inc("mcf.failures")
        raise FlowError(f"MCF solver failed: status={status} {message}")
    n_arcs, n_src = len(arcs), len(sources)
    n_x = n_arcs * n_src
    lam_col = n_x
    lam = float(x[lam_col]) if x is not None else 0.0

    # Numerical tolerance: HiGHS returns e.g. 0.9999999997 for exactly-tight
    # instances.
    feasible = lam >= 1.0 - 1e-7

    flow_km = 0.0
    link_loads: Optional[Dict[str, float]] = None
    arcs_out: Optional[Tuple[Tuple[str, str, str, float], ...]] = None
    arc_flows: Optional[Dict[Tuple[str, str], float]] = None
    with span("mcf.extract"):
        if keep_flows and x is not None:
            arcs_out = tuple((aid, tail, head, cap) for aid, tail, head, cap, _l in arcs)
            arc_flows = {}
            for a, (aid, _t, _h, _c, _l) in enumerate(arcs):
                for s, source in enumerate(sources):
                    value = float(x[a * n_src + s])
                    if value > 1e-12:
                        arc_flows[(aid, source)] = value
        if x is not None:
            lengths = np.repeat([arc[4] for arc in arcs], n_src)
            flow_km = float(np.dot(x[:n_x], lengths))
            if lam > 1.0:
                flow_km /= lam  # report at the TM's own scale
            if feasible:
                scale = 1.0 / lam if lam > 1.0 else 1.0
                per_arc = x[:n_x].reshape(n_arcs, n_src).sum(axis=1) * scale
                link_loads = {}
                for a, (aid, _t, _h, _c, _l) in enumerate(arcs):
                    if per_arc[a] > 1e-9:
                        lid = aid[:-2]  # strip the ">f"/">r" direction suffix
                        link_loads[lid] = link_loads.get(lid, 0.0) + float(per_arc[a])

    return MCFResult(
        lam=lam,
        feasible=feasible,
        status=status,
        message=message,
        flow_km=flow_km,
        link_loads=link_loads,
        arcs=arcs_out,
        arc_flows=arc_flows,
    )


def mcf_feasible(network: Network, tm: TrafficMatrix) -> bool:
    """Convenience wrapper: can ``network`` carry ``tm``?

    Routed through the warm-started model cache
    (:func:`repro.netflow.model.get_model`) so repeated yes/no queries on
    the same (topology, TM) never rebuild the LP, and trivially
    infeasible demand (egress/ingress exceeding a node's incident cut
    capacity) is answered without any solve at all.
    """
    from repro.netflow.model import get_model

    return get_model(network, tm).feasible()
