"""Last-Mile Providers in the economic model.

§4.2 assumes competition has settled into a short-term static partition:
each consumer has exactly one LMP, so each LMP is the monopoly path to
its own customers.  What differentiates LMPs in the bargaining model is

- ``num_customers`` (market share, the weights n_l of the averaging
  formula), and
- ``vulnerability`` γ_l — the rate at which the LMP loses customers when
  a CSP is blocked on its network.  §4.5: r will "presumably be smaller
  if l is a well-established incumbent than if it is a newly established
  LMP"; we factor r_l^s = γ_l · β_s with β_s the CSP's stickiness
  (derived from its incumbency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EconError
from repro.econ.csp import CSP


@dataclass
class LMP:
    """An eyeball network attached to the POC."""

    name: str
    num_customers: float
    access_price: float
    #: γ_l ∈ [0, 1]: fraction of a blocked CSP's subscribers who leave
    #: this LMP over the bargaining horizon.  Incumbents are low.
    vulnerability: float = 0.2

    def __post_init__(self) -> None:
        if self.num_customers <= 0:
            raise EconError(f"num_customers must be positive: {self.num_customers}")
        if self.access_price < 0:
            raise EconError(f"access price cannot be negative: {self.access_price}")
        if not 0.0 <= self.vulnerability <= 1.0:
            raise EconError(
                f"vulnerability must be in [0, 1], got {self.vulnerability}"
            )

    def churn_rate(self, csp: CSP) -> float:
        """r_l^s: customers lost per blocked subscriber of CSP s.

        Factored as γ_l · β_s: an entrant LMP blocking a beloved incumbent
        CSP bleeds customers; an incumbent LMP blocking a fringe CSP loses
        almost none.  β_s equals the CSP's incumbency.
        """
        return self.vulnerability * csp.incumbency

    def access_revenue(self) -> float:
        """Monthly access revenue from its own customers, n_l · c_l."""
        return self.num_customers * self.access_price


def incumbent(name: str = "incumbent-lmp", *, num_customers: float = 1.0,
              access_price: float = 50.0) -> LMP:
    """A stylized incumbent: large, hard to leave (low vulnerability)."""
    return LMP(
        name=name,
        num_customers=num_customers,
        access_price=access_price,
        vulnerability=0.05,
    )


def entrant(name: str = "entrant-lmp", *, num_customers: float = 0.1,
            access_price: float = 40.0) -> LMP:
    """A stylized entrant: small, easy to leave (high vulnerability)."""
    return LMP(
        name=name,
        num_customers=num_customers,
        access_price=access_price,
        vulnerability=0.5,
    )
