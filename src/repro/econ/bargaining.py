"""Nash-bargaining termination fees (§4.5).

One CSP s and one LMP l bargain over the fee t (price p held fixed during
the bilateral negotiation).  On agreement: s earns D(p)(p − t), l earns
D(p)·t.  On disagreement: s earns nothing from l's customers and l loses
a fraction r = r_l^s of those customers, each worth the access price c_l.
The Nash product

    [D(p)(p − t)] · [D(p)(t + r·c)]

is maximized at the paper's closed form

    t = (p − r·c) / 2

The multi-LMP aggregate (the paper's second bargaining model) is

    t_avg = (p − ⟨rc⟩) / 2,   ⟨rc⟩ = Σ_l n_l r_l c_l / Σ_l n_l.

Fees can come out negative when the disagreement loss of the LMP exceeds
the CSP's (a must-carry CSP); the paper restricts attention to the
positive regime, and callers can clamp via ``max(0, t)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from repro.exceptions import BargainingError, EconError
from repro.econ.csp import CSP
from repro.econ.lmp import LMP


def nbs_fee(price: float, churn_rate: float, access_price: float) -> float:
    """The closed-form Nash-bargaining fee t = (p − r·c)/2."""
    if price < 0:
        raise EconError(f"price cannot be negative: {price}")
    if not 0.0 <= churn_rate <= 1.0:
        raise BargainingError(f"churn rate must be in [0, 1], got {churn_rate}")
    if access_price < 0:
        raise EconError(f"access price cannot be negative: {access_price}")
    return (price - churn_rate * access_price) / 2.0


def nash_product(
    fee: float, price: float, demand_at_price: float, churn_rate: float, access_price: float
) -> float:
    """The objective the NBS maximizes (for verification and tests)."""
    csp_gain = demand_at_price * (price - fee)
    lmp_gain = demand_at_price * (fee + churn_rate * access_price)
    return csp_gain * lmp_gain


def nbs_fee_numeric(
    price: float, churn_rate: float, access_price: float, demand_at_price: float = 1.0
) -> float:
    """Maximize the Nash product directly (cross-checks the closed form)."""
    if demand_at_price <= 0:
        raise BargainingError("demand at the posted price must be positive")

    def neg(t: float) -> float:
        return -nash_product(t, price, demand_at_price, churn_rate, access_price)

    lo = -churn_rate * access_price  # below this the LMP prefers disagreement
    hi = price  # above this the CSP prefers disagreement
    if hi <= lo:
        raise BargainingError("empty agreement region: price <= -r*c")
    result = minimize_scalar(neg, bounds=(lo, hi), method="bounded")
    return float(result.x)


def bilateral_fee(csp: CSP, lmp: LMP, *, price: float) -> float:
    """The NBS fee between one CSP and one LMP at a fixed posted price."""
    return nbs_fee(price, lmp.churn_rate(csp), lmp.access_price)


def average_fee(csp: CSP, lmps: Sequence[LMP], *, price: float) -> float:
    """The population-weighted average fee t_avg = (p − ⟨rc⟩)/2."""
    if not lmps:
        raise BargainingError("need at least one LMP")
    total_n = sum(l.num_customers for l in lmps)
    avg_rc = sum(
        l.num_customers * l.churn_rate(csp) * l.access_price for l in lmps
    ) / total_n
    return (price - avg_rc) / 2.0


def fee_schedule(csp: CSP, lmps: Sequence[LMP], *, price: float) -> Dict[str, float]:
    """Per-LMP NBS fees at a fixed price (before renegotiation)."""
    return {l.name: bilateral_fee(csp, l, price=price) for l in lmps}


@dataclass(frozen=True)
class IncumbencyComparison:
    """§4.5's competitive-advantage observation, quantified.

    ``lmp_fee_gap``: how much more an incumbent LMP extracts from the same
    CSP than an entrant LMP does (positive = incumbent advantage).
    ``csp_fee_gap``: how much more an entrant CSP pays the same LMP than
    an incumbent CSP does (positive = incumbent advantage).
    """

    incumbent_lmp_fee: float
    entrant_lmp_fee: float
    incumbent_csp_fee: float
    entrant_csp_fee: float

    @property
    def lmp_fee_gap(self) -> float:
        return self.incumbent_lmp_fee - self.entrant_lmp_fee

    @property
    def csp_fee_gap(self) -> float:
        return self.entrant_csp_fee - self.incumbent_csp_fee


def incumbency_comparison(
    incumbent_lmp: LMP,
    entrant_lmp: LMP,
    incumbent_csp: CSP,
    entrant_csp: CSP,
    *,
    price: float,
) -> IncumbencyComparison:
    """Fees across the incumbency 2×2 at a common posted price.

    The LMP comparison holds the CSP fixed (the incumbent CSP); the CSP
    comparison holds the LMP fixed (the incumbent LMP).
    """
    return IncumbencyComparison(
        incumbent_lmp_fee=bilateral_fee(incumbent_csp, incumbent_lmp, price=price),
        entrant_lmp_fee=bilateral_fee(incumbent_csp, entrant_lmp, price=price),
        incumbent_csp_fee=bilateral_fee(incumbent_csp, incumbent_lmp, price=price),
        entrant_csp_fee=bilateral_fee(entrant_csp, incumbent_lmp, price=price),
    )
