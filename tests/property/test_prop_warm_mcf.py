"""Property tests: warm-started MCF solves are byte-identical to cold ones.

The contract of :class:`repro.netflow.model.McfModel` is absolute: for
any (topology, TM, dropped-link subset), the warm path must return the
*same floats* as building the LP from scratch with
:func:`repro.netflow.mcf.max_concurrent_flow` on the restricted network
— not approximately, bit for bit.  These tests sweep 200 seeded cases
(random topologies, random TMs, random surviving-link subsets) and
compare every field of the result with ``==``.
"""

import numpy as np
import pytest

from repro.netflow.mcf import max_concurrent_flow
from repro.netflow.model import McfModel
from repro.topology.graph import Link, Network, Node
from repro.traffic.matrix import TrafficMatrix

N_CASES = 200


def _random_case(seed: int):
    """One seeded (network, tm, surviving-subset) instance."""
    rng = np.random.default_rng(seed)
    n_nodes = int(rng.integers(3, 8))
    nodes = [f"n{i}" for i in range(n_nodes)]
    net = Network(name=f"prop-{seed}")
    for node in nodes:
        net.add_node(Node(id=node))
    # A ring for connectivity plus random chords (parallels allowed).
    link_no = 0
    for i in range(n_nodes):
        u, v = nodes[i], nodes[(i + 1) % n_nodes]
        net.add_link(Link(
            id=f"L{link_no}", u=u, v=v,
            capacity_gbps=float(np.round(rng.uniform(1.0, 30.0), 3)),
            length_km=float(np.round(rng.uniform(10.0, 500.0), 1)),
        ))
        link_no += 1
    for _ in range(int(rng.integers(0, n_nodes))):
        u, v = rng.choice(n_nodes, size=2, replace=False)
        net.add_link(Link(
            id=f"L{link_no}", u=nodes[int(u)], v=nodes[int(v)],
            capacity_gbps=float(np.round(rng.uniform(1.0, 30.0), 3)),
            length_km=float(np.round(rng.uniform(10.0, 500.0), 1)),
        ))
        link_no += 1

    demands = {}
    for _ in range(int(rng.integers(1, 2 * n_nodes))):
        s, t = rng.choice(n_nodes, size=2, replace=False)
        demands[(nodes[int(s)], nodes[int(t)])] = float(
            np.round(rng.uniform(0.1, 12.0), 3)
        )
    tm = TrafficMatrix.from_dict(nodes, demands)

    link_ids = sorted(net.link_ids)
    n_drop = int(rng.integers(0, len(link_ids)))
    dropped = set(
        str(x) for x in rng.choice(link_ids, size=n_drop, replace=False)
    )
    subset = frozenset(lid for lid in link_ids if lid not in dropped)
    return net, tm, subset


def _assert_identical(warm, cold):
    """Every MCFResult field equal with ``==`` — no tolerances."""
    assert warm.lam == cold.lam
    assert warm.feasible == cold.feasible
    assert warm.status == cold.status
    assert warm.message == cold.message
    assert warm.flow_km == cold.flow_km
    assert warm.link_loads == cold.link_loads
    assert warm.arcs == cold.arcs
    assert warm.arc_flows == cold.arc_flows


class TestWarmColdByteIdentity:
    @pytest.mark.parametrize("seed", range(N_CASES))
    def test_warm_equals_cold(self, seed):
        net, tm, subset = _random_case(seed)
        model = McfModel(net, tm)
        keep_flows = seed % 5 == 0  # routing detail on every fifth case
        warm = model.solve(subset, keep_flows=keep_flows)
        cold = max_concurrent_flow(
            net.restricted_to_links(subset), tm, keep_flows=keep_flows
        )
        _assert_identical(warm, cold)

    @pytest.mark.parametrize("seed", range(0, N_CASES, 10))
    def test_memo_hit_identical_to_first_solve(self, seed):
        """A cache hit returns the same object-level floats as the miss."""
        net, tm, subset = _random_case(seed)
        model = McfModel(net, tm)
        first = model.solve(subset)
        again = model.solve(subset)
        assert model.memo_hits >= 1
        _assert_identical(again, first)

    @pytest.mark.parametrize("seed", range(0, N_CASES, 10))
    def test_feasible_matches_full_solve(self, seed):
        """feasible() (with short-circuit) agrees with the exact verdict."""
        net, tm, subset = _random_case(seed)
        model = McfModel(net, tm)
        verdict = model.feasible(subset)
        exact = max_concurrent_flow(net.restricted_to_links(subset), tm)
        assert verdict == exact.feasible


class TestNoStateLeaksBetweenSubsets:
    @pytest.mark.parametrize("seed", range(0, N_CASES, 20))
    def test_interleaved_subsets_match_dedicated_models(self, seed):
        """Solving A, B, A again leaks nothing from B into A (or back).

        Every answer from one shared model must equal the answer from a
        fresh model that only ever saw that one subset.
        """
        net, tm, _subset = _random_case(seed)
        rng = np.random.default_rng(seed + 10_000)
        link_ids = sorted(net.link_ids)
        subsets = []
        for _ in range(4):
            n_drop = int(rng.integers(0, len(link_ids)))
            dropped = set(
                str(x) for x in rng.choice(link_ids, size=n_drop, replace=False)
            )
            subsets.append(frozenset(l for l in link_ids if l not in dropped))

        shared = McfModel(net, tm)
        order = subsets + subsets[::-1]  # revisit everything after the others
        for subset in order:
            from_shared = shared.solve(subset)
            dedicated = McfModel(net, tm).solve(subset)
            _assert_identical(from_shared, dedicated)
