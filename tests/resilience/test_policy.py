"""Tests for the retry/circuit-breaker/fallback policy layer."""

import pytest

from repro.exceptions import (
    AuctionError,
    NoFeasibleSelectionError,
    ReproError,
    SolverTimeoutError,
)
from repro.auction.constraints import make_constraint
from repro.resilience.policy import (
    CircuitBreaker,
    ResilientAuctioneer,
    RetryPolicy,
    call_with_retry,
)

from tests.conftest import square_network, square_offers, square_tm


class TestRetryPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows_and_caps(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=3.0, jitter=0.0)
        rng = make_rng(0)
        assert pol.delay_s(0, rng) == pytest.approx(1.0)
        assert pol.delay_s(1, rng) == pytest.approx(2.0)
        assert pol.delay_s(2, rng) == pytest.approx(3.0)  # capped
        assert pol.delay_s(9, rng) == pytest.approx(3.0)

    def test_jitter_bounds(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        rng = make_rng(42)
        delays = [pol.delay_s(0, rng) for _ in range(100)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies

    def test_delay_for_is_a_pure_function_of_seed_and_parts(self):
        """Stateless jitter: no shared rng stream, so concurrent callers
        can't perturb each other's backoff schedules."""
        pol = RetryPolicy(max_attempts=8, base_delay_s=0.02, max_delay_s=0.5)
        first = [pol.delay_for(a, 2020, "transport", 1) for a in range(4)]
        again = [pol.delay_for(a, 2020, "transport", 1) for a in range(4)]
        assert first == again
        # Different serial or seed → a different (still pinned) schedule.
        assert first != [pol.delay_for(a, 2020, "transport", 2)
                         for a in range(4)]
        assert first != [pol.delay_for(a, 2021, "transport", 1)
                         for a in range(4)]

    def test_delay_for_pinned_sequence(self):
        """Regression pin: the derive_rng("retry-delay", ...) schedule.

        If this moves, every byte-reproducible transport campaign
        re-times — bump it knowingly or not at all.
        """
        pol = RetryPolicy(max_attempts=8, base_delay_s=0.02, max_delay_s=0.5)
        expect = [0.01594677, 0.042437607, 0.064254811,
                  0.177291247, 0.258064695, 0.531289353]
        got = [pol.delay_for(a, 2020, "transport", 1) for a in range(6)]
        assert got == pytest.approx(expect, abs=1e-9)
        # Jittered, but never negative and never past cap*(1+jitter).
        assert all(0.0 <= d <= 0.5 * (1 + pol.jitter) for d in got)


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise SolverTimeoutError("milp", 1.0)
            return "ok"

        slept = []
        out = call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=3, jitter=0.0, base_delay_s=0.5),
            retry_on=(SolverTimeoutError,),
            sleep=slept.append,
        )
        assert out == "ok"
        assert calls["n"] == 3
        assert slept == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise SolverTimeoutError("milp", 1.0)

        with pytest.raises(SolverTimeoutError):
            call_with_retry(
                always, policy=RetryPolicy(max_attempts=2), retry_on=(SolverTimeoutError,)
            )

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def wrong():
            calls["n"] += 1
            raise NoFeasibleSelectionError("nope")

        with pytest.raises(NoFeasibleSelectionError):
            call_with_retry(
                wrong,
                policy=RetryPolicy(max_attempts=5),
                retry_on=(SolverTimeoutError,),
            )
        assert calls["n"] == 1

    def test_on_retry_callback(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise SolverTimeoutError("milp", 1.0)
            return 1

        call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=2),
            retry_on=(SolverTimeoutError,),
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc).__name__)),
        )
        assert seen == [(0, "SolverTimeoutError")]


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        br = CircuitBreaker(failure_threshold=2, cooldown_calls=3)
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()

    def test_cooldown_then_half_open_probe(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=2)
        br.record_failure()
        assert not br.allow()
        assert not br.allow()  # cooldown expires on this call
        assert br.state == "half-open"
        assert br.allow()  # the probe

    def test_probe_success_closes(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        br.record_failure()
        assert not br.allow()
        assert br.allow()
        br.record_success()
        assert br.state == "closed"

    def test_probe_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_calls=1)
        br.record_failure()
        br.record_failure()
        br.record_failure()
        assert not br.allow()
        assert br.allow()  # half-open probe
        br.record_failure()  # one failure re-opens while half-open
        assert br.state == "open"

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2, cooldown_calls=1)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"


@pytest.fixture
def workload():
    # A square plus an external shadow ring so every BP's leave-one-out
    # selection stays feasible (the paper's external-transit assumption).
    from repro.auction.provider import make_external_contract

    net = square_network()
    offers = square_offers(net)
    contract = make_external_contract(
        "ext", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")],
        capacity_gbps=10.0, price_per_link=500.0, length_km=100.0,
    )
    for link in contract.links:
        net.add_link(link)
    offers = list(offers) + [contract.to_offer()]
    return net, offers, square_tm(load=1.0)


class TestResilientAuctioneer:
    def test_primary_success_records_provenance(self, workload):
        net, offers, tm = workload
        cons = make_constraint(1, net, tm, engine="mcf")
        auc = ResilientAuctioneer(primary_method="milp", seed=0)
        result, prov = auc.clear(offers, cons)
        assert result.selected
        assert prov.engine == "milp"
        assert not prov.fallback
        assert prov.attempts == 1
        assert auc.fallback_rate == 0.0

    def test_stall_falls_back_to_heuristic(self, workload):
        net, offers, tm = workload
        cons = make_constraint(1, net, tm, engine="mcf")

        def stall():
            raise SolverTimeoutError("milp", 0.001)

        auc = ResilientAuctioneer(
            primary_method="milp", fallback_method="greedy-drop",
            retry=RetryPolicy(max_attempts=2), seed=0, before_primary=stall,
        )
        result, prov = auc.clear(offers, cons)
        assert result.selected
        assert prov.engine == "greedy-drop"
        assert prov.fallback
        assert prov.attempts == 2  # retried before giving up
        assert "SolverTimeoutError" in prov.failure
        assert auc.fallback_rate == 1.0

    def test_breaker_opens_after_repeated_stalls(self, workload):
        net, offers, tm = workload
        cons = make_constraint(1, net, tm, engine="mcf")

        def stall():
            raise SolverTimeoutError("milp", 0.001)

        auc = ResilientAuctioneer(
            primary_method="milp",
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_calls=10),
            seed=0,
            before_primary=stall,
        )
        auc.clear(offers, cons)
        auc.clear(offers, cons)  # second failure trips the breaker
        _result, prov = auc.clear(offers, cons)
        # Circuit open: the primary is not even attempted.
        assert prov.attempts == 0
        assert prov.fallback
        assert prov.breaker_state == "open"

    def test_infeasibility_is_not_masked(self, workload):
        net, offers, tm = workload
        heavy = tm.scaled(1000.0)
        cons = make_constraint(1, net, heavy, engine="mcf")
        auc = ResilientAuctioneer(primary_method="milp", seed=0)
        with pytest.raises(NoFeasibleSelectionError):
            auc.clear(offers, cons)

    def test_nonadditive_bids_fall_back_without_breaker_penalty(self, workload):
        from repro.auction.bids import VolumeDiscountCost

        net, offers, tm = workload
        p = offers[0]
        discounted = p.with_bid(
            VolumeDiscountCost(
                {lid: 100.0 for lid in p.link_ids}, tiers=((2, 0.1),)
            )
        )
        cons = make_constraint(1, net, tm, engine="mcf")
        auc = ResilientAuctioneer(primary_method="milp", seed=0)
        result, prov = auc.clear([discounted] + list(offers[1:]), cons)
        assert result.selected
        assert prov.fallback
        assert auc.breaker.state == "closed"  # deterministic, not transient

    def test_same_engines_rejected(self):
        with pytest.raises(AuctionError):
            ResilientAuctioneer(primary_method="milp", fallback_method="milp")


class TestCircuitBreakerPeek:
    def test_peek_matches_allow_without_mutating(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=3)
        assert br.peek() is True
        br.record_failure()
        assert br.state == "open"
        # A metrics scrape polling peek() must not march the breaker
        # toward half-open: cooldown is spent only by allow().
        for _ in range(50):
            assert br.peek() is False
        assert br.cooldown_remaining == 3
        assert br.state == "open"
        # allow(), by contrast, spends cooldown ticks.
        assert br.allow() is False
        assert br.cooldown_remaining == 2
        assert br.peek() is False
        br.allow()
        br.allow()
        assert br.cooldown_remaining == 0
        assert br.state == "half-open"
        # Half-open: the probe call may run, and peek agrees — still
        # without consuming the probe.
        assert br.peek() is True
        assert br.state == "half-open"
        assert br.allow() is True

    def test_peek_on_closed_breaker(self):
        br = CircuitBreaker()
        for _ in range(10):
            assert br.peek() is True
        assert br.state == "closed"


class TestRetryPolicyOverflow:
    def test_huge_attempt_does_not_overflow(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=0.05, multiplier=2.0, max_delay_s=2.0, jitter=0.0)
        rng = make_rng(0)
        # multiplier**attempt overflows a float near attempt ~ 1000; the
        # clamp must kick in before exponentiation.
        for attempt in (10, 1000, 10_000, 2_000_000):
            assert pol.delay_s(attempt, rng) == pytest.approx(2.0)

    def test_huge_attempt_with_jitter_stays_bounded(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=0.05, multiplier=2.0, max_delay_s=2.0, jitter=0.25)
        rng = make_rng(1)
        delays = [pol.delay_s(100_000, rng) for _ in range(20)]
        assert all(1.5 <= d <= 2.5 for d in delays)

    def test_zero_base_delay(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=0.0, multiplier=2.0, jitter=0.0)
        assert pol.delay_s(10_000, make_rng(0)) == 0.0

    def test_multiplier_one_never_grows(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=0.5, multiplier=1.0, max_delay_s=2.0, jitter=0.0)
        assert pol.delay_s(5_000_000, make_rng(0)) == pytest.approx(0.5)

    def test_base_above_cap_clamps_to_cap(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=5.0, multiplier=2.0, max_delay_s=2.0, jitter=0.0)
        assert pol.delay_s(0, make_rng(0)) == pytest.approx(2.0)
        assert pol.delay_s(1_000_000, make_rng(0)) == pytest.approx(2.0)

    def test_boundary_against_exact_formula(self):
        from repro.rand import make_rng

        pol = RetryPolicy(base_delay_s=0.05, multiplier=2.0, max_delay_s=2.0, jitter=0.0)
        rng = make_rng(0)
        # Around the crossover (0.05 * 2**k >= 2.0 at k >= ~5.32) the
        # clamped path and the raw formula must agree exactly.
        for attempt in range(0, 12):
            exact = min(0.05 * 2.0**attempt, 2.0)
            assert pol.delay_s(attempt, rng) == pytest.approx(exact)


class TestFallbackAlsoFails:
    def test_original_error_surfaces_with_provenance(self, workload, monkeypatch):
        net, offers, tm = workload
        cons = make_constraint(1, net, tm, engine="mcf")

        def stall():
            raise SolverTimeoutError("milp", 0.001, detail="primary down")

        auc = ResilientAuctioneer(
            primary_method="milp", fallback_method="greedy-drop",
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=1, cooldown_calls=5),
            seed=0, before_primary=stall,
        )
        real_run = auc._run

        def run(offers_, cons_, method):
            if method == "greedy-drop":
                raise AuctionError("fallback engine also down")
            return real_run(offers_, cons_, method)

        monkeypatch.setattr(auc, "_run", run)
        with pytest.raises(SolverTimeoutError) as excinfo:
            auc.clear(offers, cons)
        # The *primary* error (the root cause) surfaces, chained to the
        # fallback's own failure ...
        exc = excinfo.value
        assert isinstance(exc.__cause__, AuctionError)
        # ... with full provenance attached and kept in the history.
        prov = exc.provenance
        assert prov.fallback is True
        assert prov.engine == "greedy-drop"
        assert prov.attempts == 1
        assert "primary down" in prov.failure
        assert auc.history and auc.history[-1] is prov
        # The primary's failure opened the breaker; the fallback failing
        # must neither advance nor reset it.
        assert auc.breaker.state == "open"
        assert prov.breaker_state == "open"
        assert auc.breaker.cooldown_remaining == 5

    def test_fallback_failure_without_primary_attempt(self, workload, monkeypatch):
        # Breaker already open: primary never runs, fallback fails — the
        # fallback's own error is all there is to raise.
        net, offers, tm = workload
        cons = make_constraint(1, net, tm, engine="mcf")
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=50)
        br.record_failure()
        assert br.state == "open"
        auc = ResilientAuctioneer(
            primary_method="milp", fallback_method="greedy-drop",
            breaker=br, seed=0,
        )
        monkeypatch.setattr(
            auc, "_run",
            lambda *_a, **_k: (_ for _ in ()).throw(AuctionError("engines down")),
        )
        with pytest.raises(AuctionError) as excinfo:
            auc.clear(offers, cons)
        assert excinfo.value.provenance.attempts == 0
        assert excinfo.value.provenance.fallback is True

    def test_infeasible_fallback_still_propagates(self, workload):
        # NoFeasibleSelectionError from the fallback is not wrapped: no
        # engine can conjure capacity that was never offered.
        net, offers, tm = workload
        heavy = tm.scaled(1000.0)
        cons = make_constraint(1, net, heavy, engine="mcf")

        def stall():
            raise SolverTimeoutError("milp", 0.001)

        auc = ResilientAuctioneer(
            primary_method="milp", retry=RetryPolicy(max_attempts=1),
            seed=0, before_primary=stall,
        )
        with pytest.raises(NoFeasibleSelectionError):
            auc.clear(offers, cons)
