"""Tests for latency/stretch metrics."""

import pytest

from repro.exceptions import FlowError
from repro.netflow.latency import compare_backbones, latency_report
from repro.topology.graph import Link

from tests.conftest import square_network


class TestLatencyReport:
    def test_all_pairs_covered(self, square):
        report = latency_report(square)
        n = len(square)
        assert report.num_pairs == n * (n - 1) // 2
        assert report.unreachable == ()

    def test_rtt_positive_and_scaled(self, square):
        report = latency_report(square)
        for pair in report.pairs.values():
            assert pair.rtt_ms > 0
            # RTT = 2 × one-way over the path.
            assert pair.rtt_ms == pytest.approx(2 * pair.path_km / 204.19, rel=1e-6)

    def test_stretch_at_least_geometry(self, square):
        report = latency_report(square)
        # All links in the square fixture are 100 km regardless of node
        # geometry, so stretch can land below 1; it must still be finite
        # and positive.
        for pair in report.pairs.values():
            assert pair.stretch > 0

    def test_unreachable_tracked(self, square):
        sub = square.restricted_to_links(["AB"])
        report = latency_report(sub)
        assert len(report.unreachable) > 0
        assert report.num_pairs == 1

    def test_summaries(self, square):
        report = latency_report(square)
        assert 0 < report.mean_rtt_ms() <= report.worst_rtt_ms()
        assert 0 < report.mean_stretch() <= report.worst_stretch()
        assert report.percentile_rtt_ms(100.0) == pytest.approx(report.worst_rtt_ms())
        assert report.percentile_rtt_ms(50.0) <= report.worst_rtt_ms()

    def test_percentile_validation(self, square):
        report = latency_report(square)
        with pytest.raises(FlowError):
            report.percentile_rtt_ms(0.0)

    def test_empty_network(self):
        from repro.topology.graph import Network

        report = latency_report(Network())
        assert report.num_pairs == 0
        assert report.mean_rtt_ms() == 0.0


class TestCompareBackbones:
    def test_shortcut_lowers_latency(self, square):
        without_diagonal = square.without_links(["AC"])
        delta = compare_backbones(square, without_diagonal)
        assert delta["mean_rtt_delta_ms"] <= 0  # square (with AC) is faster

    def test_identity(self, square):
        delta = compare_backbones(square, square)
        assert delta["mean_rtt_delta_ms"] == pytest.approx(0.0)
        assert delta["mean_stretch_delta"] == pytest.approx(0.0)

    def test_on_provisioned_zoo(self, tiny_zoo):
        """Tighter survivability buys redundancy, not latency: C2's
        backbone should be no slower on average than C1's (extra links
        can only shorten shortest paths)."""
        from repro.auction.constraints import make_constraint
        from repro.auction.selection import select_links
        from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo

        tm = traffic_for_zoo(tiny_zoo)
        offers = offers_for_zoo(tiny_zoo)
        c1 = make_constraint(1, tiny_zoo.offered, tm, engine="greedy")
        sel1 = select_links(offers, c1, method="add-prune")
        backbone1 = tiny_zoo.offered.restricted_to_links(sel1.selected)
        report = latency_report(backbone1)
        assert report.num_pairs > 0
        assert report.mean_stretch() >= 1.0  # zoo links have real geometry


class TestEmptyRTTSet:
    def test_percentile_of_empty_rtt_set_raises(self):
        """Regression: an empty report must not claim a 0.0ms RTT — the
        (0, 100] percentile contract requires at least one value."""
        from repro.topology.graph import Network

        report = latency_report(Network())
        assert report.num_pairs == 0
        with pytest.raises(FlowError, match="empty RTT set"):
            report.percentile_rtt_ms(95.0)
