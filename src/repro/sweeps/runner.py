"""Process-pool sweep execution with deterministic sharding and caching.

The runner turns a :class:`~repro.sweeps.spec.SweepSpec` into trial
results through four steps:

1. resolve every trial's parameters (experiment defaults ∪ grid point)
   and its content-addressed key;
2. partition the trials *not* already in the result store into
   round-robin shards (trial ``i`` → shard ``i mod workers``) — a pure
   function of the pending list, never of scheduling;
3. execute each shard, serially in-process (``workers <= 1``) or on a
   ``ProcessPoolExecutor``; workers receive the experiment *name* and
   look the trial function up in the registry, so both fork and spawn
   start methods work; each trial is wrapped in the bounded-retry policy
   from :mod:`repro.resilience.policy`;
4. append each result to the store as it lands in the parent (single
   writer by construction, so an interrupted sweep keeps everything that
   finished) and reassemble all results in trial order, so aggregates
   are byte-identical however the work was spread.

Because every trial's seed is derived content-addressably (see
:meth:`SweepSpec.trials`) and results are keyed by content, a sweep
interrupted at any point re-executes only the missing trials on the
next run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import obs
from repro.exceptions import InvariantViolation, ReproError, SweepError
from repro.experiments.pipeline import PipelineCheckpoint
from repro.rand import derive_seed
from repro.resilience.policy import RetryPolicy, call_with_retry
from repro.resilience.supervisor import (
    IncidentRecord,
    QuarantineLog,
    TrialSupervisor,
    _seed_worker_globals,
    format_incidents,
)
from repro.sweeps.aggregate import GroupStat, aggregate, format_report, report_json
from repro.sweeps.cache import ResultStore, trial_key
from repro.sweeps.registry import get_experiment
from repro.sweeps.spec import SweepSpec
from repro.validate.invariants import ValidationPolicy, check_record

#: (index, resolved params, seed, key) — everything a worker needs.
TrialTask = Tuple[int, Dict[str, object], int, str]


@dataclass(frozen=True)
class SweepProgress:
    """One progress beat: how far along the sweep is and the ETA."""

    done: int  # trials finished this run (executed, not cached)
    pending: int  # trials this run must execute in total
    cached: int  # trials served from the result store
    total: int  # trials in the spec
    elapsed_s: float

    @property
    def eta_s(self) -> Optional[float]:
        if self.done == 0 or self.pending == 0:
            return None
        remaining = self.pending - self.done
        return self.elapsed_s / self.done * remaining

    def formatted(self) -> str:
        eta = self.eta_s
        eta_text = f"eta {eta:5.1f}s" if eta is not None else "eta   —  "
        return (
            f"sweep: {self.done}/{self.pending} executed "
            f"(+{self.cached} cached of {self.total})  "
            f"{self.elapsed_s:6.1f}s elapsed  {eta_text}"
        )


@dataclass(frozen=True)
class TrialOutcome:
    """One trial's result and where it came from."""

    index: int
    params: Mapping[str, object]
    seed: int
    key: str
    record: Mapping[str, object]
    cached: bool


@dataclass
class SweepResult:
    """Everything a sweep produced, in trial order."""

    experiment: str
    spec: SweepSpec
    outcomes: List[TrialOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0
    workers: int = 0
    #: Supervision journal: every timeout, crash, respawn, quarantine,
    #: validation failure, … this run endured (empty when nothing happened).
    incidents: List[IncidentRecord] = field(default_factory=list)
    #: Trials this run quarantined (poison or invariant-invalid); they are
    #: excluded from ``outcomes`` so aggregates match a sweep that never
    #: contained them.
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    #: Workers replaced after crashes/hang-kills.
    respawns: int = 0

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cache_hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    def rows(self) -> List[Tuple[Mapping[str, object], Mapping[str, object]]]:
        return [(o.params, o.record) for o in self.outcomes]

    def aggregate(self, group_by: Sequence[str] = ()) -> List[GroupStat]:
        return aggregate(self.rows(), group_by=group_by)

    def format_report(
        self,
        group_by: Sequence[str] = (),
        metrics: Optional[Sequence[str]] = None,
    ) -> str:
        return format_report(
            self.experiment, self.aggregate(group_by), metrics=metrics
        )

    def report_json(self, group_by: Sequence[str] = ()) -> str:
        return report_json(self.experiment, self.aggregate(group_by))

    def stats_line(self) -> str:
        """Run accounting (kept out of the byte-stable report)."""
        line = (
            f"sweep {self.experiment}: trials={len(self.outcomes)} "
            f"executed={self.executed} cached={self.cache_hits} "
            f"workers={self.workers}"
        )
        if self.quarantined:
            line += f" quarantined={len(self.quarantined)}"
        if self.respawns:
            line += f" respawns={self.respawns}"
        return line

    def supervision_report(self) -> str:
        """The incident journal and quarantine ledger as text (``--report``)."""
        lines = [format_incidents(self.incidents)]
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} trial(s):")
            for entry in self.quarantined:
                lines.append(
                    f"  {str(entry.get('key', ''))[:12]}… "
                    f"kind={entry.get('kind')} attempts={entry.get('attempts')} "
                    f"seed={entry.get('seed')} params={entry.get('params')}"
                )
        if self.respawns:
            lines.append(f"worker respawns: {self.respawns}")
        return "\n".join(lines)


def _run_trial_with_retry(
    experiment_name: str, task: TrialTask, retry: RetryPolicy
) -> Tuple[int, Dict[str, object]]:
    """Execute one trial under the bounded-retry policy.

    Runs in the worker process.  Failures that survive the retries are
    re-raised as :class:`SweepError` (always picklable) naming the trial,
    so the parent can report which grid point is broken.
    """
    index, params, seed, key = task
    exp = get_experiment(experiment_name)

    def attempt() -> Mapping[str, object]:
        # Pin the *global* RNG streams per attempt so a trial re-run on a
        # respawned worker (or retried in place) is byte-identical to its
        # first-worker execution even if experiment code leaks global
        # randomness.
        obs.metrics().inc("trial.attempts")
        _seed_worker_globals(seed)
        return exp.trial(params, seed)

    try:
        with obs.trial_scope(experiment_name, key=key, index=index, seed=seed):
            record = call_with_retry(
                attempt,
                policy=retry,
                retry_on=(ReproError,),
                # Jitter is seeded from the trial so backoff is reproducible.
                seed=derive_seed(seed, "retry-jitter"),
            )
    except Exception as exc:
        raise SweepError(
            f"trial {index} (params={params!r}, seed={seed}) failed after "
            f"{retry.max_attempts} attempt(s): {exc!r}"
        ) from None
    if not isinstance(record, Mapping):
        raise SweepError(
            f"trial {index} of experiment {experiment_name!r} returned "
            f"{type(record).__name__}, expected a mapping of metrics"
        )
    return index, dict(record)


def _execute_shard(
    experiment_name: str, shard: List[TrialTask], retry: RetryPolicy
) -> List[Tuple[int, Dict[str, object]]]:
    """Worker entry point: run one shard's trials sequentially."""
    return [_run_trial_with_retry(experiment_name, task, retry) for task in shard]


def _prewarm_worker(
    experiment_name: str, param_sets: List[Dict[str, object]]
) -> None:
    """Pool initializer: warm per-process caches in a fresh worker.

    Spawn-started workers begin with cold caches (fork-started ones
    inherit the parent's warm state, and re-warming is then a cheap
    cache hit).  Prewarming is an optimization, never a correctness
    dependency, so any failure is swallowed — the trial itself will
    rebuild whatever is missing.
    """
    try:
        exp = get_experiment(experiment_name)
        if exp.prewarm is None:
            return
        for params in param_sets:
            exp.prewarm(params)
    except Exception:
        pass


class SweepRunner:
    """Executes sweeps for one registered experiment.

    ``workers <= 1`` runs serially in-process (bit-for-bit the reference
    execution); ``workers > 1`` uses a process pool with the given
    multiprocessing start method (``None`` = platform default).  A
    :class:`ResultStore` (or a path to one) enables content-addressed
    caching; a :class:`PipelineCheckpoint` pins the sweep's spec
    fingerprint so a resumed run cannot silently mix results from a
    different grid.

    Supervision (``supervised=True``, implied by ``trial_timeout_s``)
    routes execution through :class:`TrialSupervisor`: per-trial
    deadlines, crashed-worker respawn, and poison-trial quarantine —
    see :mod:`repro.resilience.supervisor`.  ``validation`` runs the
    invariant suite (:mod:`repro.validate.invariants`) over every fresh
    *and* cached record: ``warn`` journals violations, ``quarantine``
    additionally keeps invalid results out of the store and the
    outcomes, ``strict`` aborts the sweep with
    :class:`InvariantViolation`.
    """

    def __init__(
        self,
        experiment: str,
        *,
        workers: int = 0,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        store: Union[ResultStore, str, None] = None,
        checkpoint: Optional[PipelineCheckpoint] = None,
        on_progress: Optional[Callable[[SweepProgress], None]] = None,
        trial_timeout_s: Optional[float] = None,
        supervised: Optional[bool] = None,
        validation: Union[str, ValidationPolicy] = "off",
        quarantine: Union[QuarantineLog, str, None] = None,
        max_trial_attempts: int = 2,
        respawn_budget: int = 8,
    ) -> None:
        if workers < 0:
            raise SweepError(f"workers must be >= 0, got {workers}")
        self.experiment = get_experiment(experiment)
        self.workers = workers
        self.start_method = start_method
        # Backoff delays default to zero: trial failures here are
        # deterministic bugs or solver hiccups, not remote throttling.
        self.retry = retry or RetryPolicy(
            max_attempts=2, base_delay_s=0.0, max_delay_s=0.0, jitter=0.0
        )
        self.store = ResultStore(store) if isinstance(store, str) else store
        self.checkpoint = checkpoint
        self.on_progress = on_progress
        self.trial_timeout_s = trial_timeout_s
        self.supervised = (
            supervised if supervised is not None else trial_timeout_s is not None
        )
        self.validation = (
            ValidationPolicy(validation) if isinstance(validation, str) else validation
        )
        self.max_trial_attempts = max_trial_attempts
        self.respawn_budget = respawn_budget
        if isinstance(quarantine, QuarantineLog):
            self.quarantine = quarantine
        elif quarantine is not None:
            self.quarantine = QuarantineLog(quarantine)
        elif (self.supervised or self.validation.blocks_cache) and self.store is not None:
            # Default the ledger next to the store so re-runs see it.
            self.quarantine = QuarantineLog(
                self.store.path.parent / "quarantine.jsonl"
            )
        else:
            self.quarantine = QuarantineLog(None)
        # Per-run supervision state, reset by run().
        self._incidents: List[IncidentRecord] = []
        self._quarantined: List[Dict[str, object]] = []
        self._respawns = 0

    # -- internals ------------------------------------------------------------

    def _tasks(self, spec: SweepSpec) -> List[TrialTask]:
        tasks: List[TrialTask] = []
        for trial in spec.trials():
            params = self.experiment.resolved_params(trial.params)
            key = trial_key(
                self.experiment.name, self.experiment.version, params, trial.seed
            )
            tasks.append((trial.index, params, trial.seed, key))
        return tasks

    def _check_checkpoint(self, spec: SweepSpec) -> None:
        if self.checkpoint is None:
            return
        fingerprint = spec.fingerprint()
        recorded = self.checkpoint.get("sweep-spec")
        if recorded is not None and recorded.get("fingerprint") != fingerprint:
            raise SweepError(
                "checkpoint belongs to a different sweep "
                f"(fingerprint {recorded.get('fingerprint', '?')[:12]}… != "
                f"{fingerprint[:12]}…); use a fresh checkpoint path"
            )
        if recorded is None:
            self.checkpoint.save(
                "sweep-spec",
                {
                    "experiment": self.experiment.name,
                    "version": self.experiment.version,
                    "fingerprint": fingerprint,
                },
            )

    def _progress(self, beat: SweepProgress) -> None:
        if self.on_progress is not None:
            self.on_progress(beat)

    def _persist(self, task: TrialTask, record: Dict[str, object]) -> None:
        """Append one finished trial to the store as soon as it lands.

        Persisting per-trial (not at sweep end) is what makes an
        interrupted sweep resumable: whatever completed before the crash
        is already on disk.
        """
        if self.store is None:
            return
        index, params, seed, key = task
        self.store.append(
            key,
            experiment=self.experiment.name,
            params=params,
            seed=seed,
            record=record,
        )

    def _admit(self, task: TrialTask, record: Mapping[str, object]) -> bool:
        """Gate one result through the invariant suite.

        Returns True when the record may be persisted and reported.
        Under ``warn`` a violating record is journaled but kept; under
        ``quarantine`` it is ledgered and dropped; ``strict`` raises.
        """
        if not self.validation.enabled:
            return True
        index, params, seed, key = task
        violations = check_record(self.experiment.name, record)
        if not violations:
            return True
        detail = "; ".join(str(v) for v in violations)
        if self.validation.mode == "strict":
            raise InvariantViolation(f"trial {index} ({key[:12]}…)", violations)
        if self.validation.mode == "warn":
            self._incidents.append(IncidentRecord(
                kind="invalid", index=index, key=key, attempt=0,
                wall_time_s=0.0, disposition="warned", detail=detail,
            ))
            return True
        self._incidents.append(IncidentRecord(
            kind="invalid", index=index, key=key, attempt=0,
            wall_time_s=0.0, disposition="quarantined", detail=detail,
        ))
        entry = {
            "key": key,
            "experiment": self.experiment.name,
            "index": index,
            "params": dict(params),
            "seed": seed,
            "kind": "invalid",
            "attempts": 1,
            "wall_time_s": 0.0,
            "traceback": detail,
        }
        self.quarantine.append(entry)
        self._quarantined.append(entry)
        return False

    def _admit_cached(self, task: TrialTask, record: Mapping[str, object]) -> bool:
        """Validate a record served from the store.

        The store is append-only, so an invalid cached record cannot be
        deleted here — under ``quarantine`` it is journaled and excluded
        from this run's outcomes (``poc-repro audit`` finds and reports
        it); ``strict`` refuses to build on a poisoned cache at all.
        """
        if not self.validation.enabled:
            return True
        index, _params, _seed, key = task
        violations = check_record(self.experiment.name, record)
        if not violations:
            return True
        detail = "; ".join(str(v) for v in violations)
        if self.validation.mode == "strict":
            raise InvariantViolation(
                f"cached trial {index} ({key[:12]}…)", violations
            )
        disposition = "warned" if self.validation.mode == "warn" else "quarantined"
        self._incidents.append(IncidentRecord(
            kind="invalid", index=index, key=key, attempt=0,
            wall_time_s=0.0, disposition=disposition,
            detail=f"cached record: {detail}",
        ))
        return self.validation.mode == "warn"

    def _prewarm_param_sets(self, pending: List[TrialTask]) -> List[Dict[str, object]]:
        """Distinct resolved-param sets to warm caches for (bounded).

        Grids typically share one workload across many (seed, method)
        points, so a handful of distinct param sets covers the whole
        sweep; the bound keeps pathological grids from turning the warm
        pass into a second sweep.
        """
        if self.experiment.prewarm is None:
            return []
        seen = set()
        out: List[Dict[str, object]] = []
        for _index, params, _seed, _key in pending:
            marker = repr(sorted(params.items(), key=lambda kv: kv[0]))
            if marker in seen:
                continue
            seen.add(marker)
            out.append(params)
            if len(out) >= 8:
                break
        return out

    def _prewarm_parent(self, param_sets: List[Dict[str, object]]) -> None:
        """Warm this process's caches before trials execute.

        With ``workers <= 1`` this just front-loads the first trial's
        build work; with a fork-started pool the workers inherit the
        warmed read-only state (LP model templates, the memoized micro
        workload) at no per-worker cost.  Failures are swallowed: the
        prewarm contract (:class:`repro.sweeps.registry.Experiment`)
        makes it a pure optimization.
        """
        prewarm = self.experiment.prewarm
        if prewarm is None:
            return
        for params in param_sets:
            try:
                prewarm(params)
            except Exception:
                continue

    def _execute_pending(
        self, pending: List[TrialTask], cached: int, total: int, started: float
    ) -> Dict[int, Dict[str, object]]:
        name = self.experiment.name
        records: Dict[int, Dict[str, object]] = {}
        prewarm_params = self._prewarm_param_sets(pending)
        self._prewarm_parent(prewarm_params)
        if self.workers <= 1:
            for done, task in enumerate(pending, start=1):
                index, record = _run_trial_with_retry(name, task, self.retry)
                if self._admit(task, record):
                    records[index] = record
                    self._persist(task, record)
                self._progress(SweepProgress(
                    done=done, pending=len(pending), cached=cached,
                    total=total, elapsed_s=time.monotonic() - started,
                ))
            return records

        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        n_shards = min(self.workers, len(pending))
        shards = [pending[k::n_shards] for k in range(n_shards)]
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else None
        )
        by_index = {task[0]: task for task in pending}
        done = 0
        # Spawn-started workers warm their own caches on startup; with
        # fork the initializer is a no-op-cheap cache hit on inherited
        # state.
        init_kwargs = (
            {"initializer": _prewarm_worker, "initargs": (name, prewarm_params)}
            if prewarm_params
            else {}
        )
        try:
            with ProcessPoolExecutor(
                max_workers=n_shards, mp_context=context, **init_kwargs
            ) as pool:
                futures = [
                    pool.submit(_execute_shard, name, shard, self.retry)
                    for shard in shards
                ]
                for future in as_completed(futures):
                    for index, record in future.result():
                        if self._admit(by_index[index], record):
                            records[index] = record
                            self._persist(by_index[index], record)
                        done += 1
                    self._progress(SweepProgress(
                        done=done, pending=len(pending), cached=cached,
                        total=total, elapsed_s=time.monotonic() - started,
                    ))
        except BrokenProcessPool as exc:
            raise SweepError(
                f"worker pool died mid-sweep ({exc}); completed trials are "
                "in the result store — re-run to resume from them"
            ) from exc
        return records

    def _execute_supervised(
        self, pending: List[TrialTask], cached: int, total: int, started: float
    ) -> Dict[int, Dict[str, object]]:
        """Run the pending trials under the :class:`TrialSupervisor`.

        The supervisor owns execution (deadlines, respawn, quarantine);
        the runner keeps validation, persistence, progress, and the
        checkpoint via callbacks.  Even an interrupted run's incident
        journal is folded into the runner's state before the
        :class:`~repro.exceptions.SweepInterrupted` propagates.
        """
        # Fork-started supervisor workers inherit the warmed caches;
        # spawn-started ones simply rebuild in the first trial.
        self._prewarm_parent(self._prewarm_param_sets(pending))
        progress = {"done": 0}

        def on_result(
            task: TrialTask, record: Dict[str, object], _elapsed: float
        ) -> bool:
            keep = self._admit(task, record)
            if keep:
                self._persist(task, record)
            progress["done"] += 1
            self._progress(SweepProgress(
                done=progress["done"], pending=len(pending), cached=cached,
                total=total, elapsed_s=time.monotonic() - started,
            ))
            return keep

        def on_interrupt(remaining: int) -> None:
            if self.checkpoint is not None:
                self.checkpoint.save(
                    "sweep-interrupted",
                    {
                        "remaining": remaining,
                        "executed": progress["done"],
                        "quarantined": len(self._quarantined),
                    },
                )

        supervisor = TrialSupervisor(
            self.experiment.name,
            workers=self.workers,
            start_method=self.start_method,
            retry=self.retry,
            trial_timeout_s=self.trial_timeout_s,
            max_trial_attempts=self.max_trial_attempts,
            respawn_budget=self.respawn_budget,
            quarantine=self.quarantine,
            on_result=on_result,
            on_interrupt=on_interrupt,
        )
        try:
            outcome = supervisor.run(pending)
        finally:
            last = supervisor.last_outcome
            if last is not None:
                self._incidents.extend(last.incidents)
                self._quarantined.extend(last.quarantined)
                self._respawns += last.respawns
        return outcome.records

    # -- the public entry point -----------------------------------------------

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute (or resume) a sweep and return results in trial order.

        Quarantined trials (from this run or a previous one) and
        validation-rejected records are *excluded* from the outcomes, so
        aggregates equal those of a sweep that never contained them.
        """
        started = time.monotonic()
        self._incidents = []
        self._quarantined = []
        self._respawns = 0
        if self.store is not None and self.store.corrupt_lines:
            self._incidents.append(IncidentRecord(
                kind="store-corruption", index=-1, key="", attempt=0,
                wall_time_s=0.0, disposition="recovered",
                detail=f"{self.store.corrupt_lines} corrupt line(s) skipped "
                       f"loading {self.store.path}; lost trials re-execute",
            ))
        if self.checkpoint is not None and self.checkpoint.recovered:
            self._incidents.append(IncidentRecord(
                kind="store-corruption", index=-1, key="", attempt=0,
                wall_time_s=0.0, disposition="recovered",
                detail=f"checkpoint {self.checkpoint.path} was unreadable; "
                       "started fresh",
            ))
        self._check_checkpoint(spec)
        tasks = self._tasks(spec)
        keys = [key for _, _, _, key in tasks]
        if len(set(keys)) != len(keys):
            raise SweepError(
                "spec produces duplicate trials (same params and seed); "
                "use repeats= or a seed axis to distinguish them"
            )

        cached_records: Dict[int, Mapping[str, object]] = {}
        pending: List[TrialTask] = []
        for task in tasks:
            index, _params, _seed, key = task
            if self.quarantine.has(key):
                self._incidents.append(IncidentRecord(
                    kind="quarantine-skip", index=index, key=key, attempt=0,
                    wall_time_s=0.0, disposition="skipped",
                    detail="already quarantined; clear the quarantine "
                           "ledger to retry",
                ))
                continue
            record = self.store.record(key) if self.store is not None else None
            if record is not None:
                if self._admit_cached(task, record):
                    cached_records[index] = record
            else:
                pending.append(task)

        self._progress(SweepProgress(
            done=0, pending=len(pending), cached=len(cached_records),
            total=len(tasks), elapsed_s=time.monotonic() - started,
        ))
        if not pending:
            executed: Dict[int, Dict[str, object]] = {}
        elif self.supervised:
            executed = self._execute_supervised(
                pending, len(cached_records), len(tasks), started
            )
        else:
            executed = self._execute_pending(
                pending, len(cached_records), len(tasks), started
            )

        outcomes: List[TrialOutcome] = []
        for index, params, seed, key in tasks:
            if index in cached_records:
                outcomes.append(TrialOutcome(
                    index=index, params=params, seed=seed, key=key,
                    record=cached_records[index], cached=True,
                ))
                continue
            record = executed.get(index)
            if record is None:
                continue  # quarantined or validation-rejected this run
            outcomes.append(TrialOutcome(
                index=index, params=params, seed=seed, key=key,
                record=record, cached=False,
            ))

        result = SweepResult(
            experiment=self.experiment.name,
            spec=spec,
            outcomes=outcomes,
            elapsed_s=time.monotonic() - started,
            workers=self.workers,
            incidents=list(self._incidents),
            quarantined=list(self._quarantined),
            respawns=self._respawns,
        )
        if self.checkpoint is not None:
            self.checkpoint.save(
                "sweep-complete",
                {
                    "trials": len(outcomes),
                    "executed": result.executed,
                    "cache_hits": result.cache_hits,
                },
            )
        if obs.is_enabled():
            obs.write_sweep_summary(
                experiment=result.experiment,
                trials=len(outcomes),
                executed=result.executed,
                cache_hits=result.cache_hits,
                elapsed_s=result.elapsed_s,
                workers=result.workers,
                quarantined=len(result.quarantined),
                respawns=result.respawns,
            )
        return result


def run_sweep(
    experiment: str,
    spec: SweepSpec,
    *,
    workers: int = 0,
    start_method: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    store: Union[ResultStore, str, None] = None,
    checkpoint: Optional[PipelineCheckpoint] = None,
    on_progress: Optional[Callable[[SweepProgress], None]] = None,
    trial_timeout_s: Optional[float] = None,
    supervised: Optional[bool] = None,
    validation: Union[str, ValidationPolicy] = "off",
    quarantine: Union[QuarantineLog, str, None] = None,
    max_trial_attempts: int = 2,
    respawn_budget: int = 8,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        experiment,
        workers=workers,
        start_method=start_method,
        retry=retry,
        store=store,
        checkpoint=checkpoint,
        on_progress=on_progress,
        trial_timeout_s=trial_timeout_s,
        supervised=supervised,
        validation=validation,
        quarantine=quarantine,
        max_trial_attempts=max_trial_attempts,
        respawn_budget=respawn_budget,
    )
    return runner.run(spec)
