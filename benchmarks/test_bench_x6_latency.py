"""X6 — extension: the performance of the auctioned backbone (§1.2).

"it is essential that the public Internet continues to offer
high-performance transit."  Min-cost selection optimizes dollars, not
milliseconds; this bench measures what that costs: per-pair RTT and
geographic stretch of the constraint-1 backbone vs the full offer book,
and the latency effect of buying survivability (constraint-2).
"""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.selection import select_links
from repro.netflow.latency import latency_report


def backbones(zoo, tm, offers):
    out = {"offer-book": zoo.offered}
    for number in (1, 2):
        constraint = make_constraint(number, zoo.offered, tm, engine="greedy")
        selection = select_links(offers, constraint, method="add-prune")
        out[f"constraint-{number}"] = zoo.offered.restricted_to_links(
            selection.selected
        )
    return out


def test_bench_x6_latency(benchmark, report, tiny_workload):
    zoo, tm, offers = tiny_workload
    nets = benchmark.pedantic(
        lambda: backbones(zoo, tm, offers), rounds=1, iterations=1
    )
    reports = {name: latency_report(net) for name, net in nets.items()}

    lines = [f"{'backbone':<14}{'links':>7}{'mean RTT':>10}{'p95 RTT':>10}"
             f"{'mean stretch':>14}{'unreachable':>13}"]
    for name, rep in reports.items():
        lines.append(
            f"{name:<14}{nets[name].num_links:>7}{rep.mean_rtt_ms():>10.1f}"
            f"{rep.percentile_rtt_ms(95):>10.1f}{rep.mean_stretch():>14.2f}"
            f"{len(rep.unreachable):>13}"
        )
    report("Backbone latency vs selection (ms, round-trip):\n" + "\n".join(lines))

    book = reports["offer-book"]
    c1 = reports["constraint-1"]
    c2 = reports["constraint-2"]

    # Every backbone keeps all sites mutually reachable.
    for rep in reports.values():
        assert rep.unreachable == ()

    # Min-cost pruning cannot *improve* on the full book's shortest paths.
    assert c1.mean_rtt_ms() >= book.mean_rtt_ms() - 1e-9

    # Survivability buys extra links, which can only shorten paths
    # relative to the leaner constraint-1 backbone... on average the
    # richer backbone should be at least as fast.
    assert nets["constraint-2"].num_links >= nets["constraint-1"].num_links
    assert c2.mean_rtt_ms() <= c1.mean_rtt_ms() * 1.25 + 1e-9

    # Geographic sanity: real fibre routes detour; stretch above 1.
    assert book.mean_stretch() >= 1.0
