"""Pack execution: one call from a :class:`ScenarioPack` to a sealed archive.

``run_pack`` is deliberately a thin seam over the existing sweep
machinery — the pack *names* the policy, :class:`SweepRunner` and
:class:`TrialSupervisor` *enforce* it — plus the archive bookkeeping:
the store, checkpoint, quarantine ledger, and obs sidecar all live
inside the archive directory, so the directory alone is the experiment.

Interrupts are first-class: a SIGTERM mid-run propagates
:class:`~repro.exceptions.SweepInterrupted` after the supervisor drains
in-flight trials, leaving the archive at ``status: running`` with every
finished trial persisted; re-running the same command resumes from the
store (cache hits) and finalizes.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Callable, Iterator, Optional, Union

from repro import obs
from repro.scenarios.archive import ArchiveWriter
from repro.scenarios.pack import ScenarioPack
from repro.sweeps.runner import SweepProgress, SweepResult, SweepRunner


@contextlib.contextmanager
def _archive_telemetry(archive: ArchiveWriter) -> Iterator[None]:
    """Route the obs metrics sidecar into the archive for this run.

    Only when the user has not already configured observability — an
    explicit ``--metrics`` destination wins over the archive default, so
    existing workflows keep their sidecar where they asked for it.
    """
    if obs.is_enabled():
        yield
        return
    obs.configure(metrics_path=str(archive.metrics_path))
    try:
        yield
    finally:
        obs.disable()


def run_pack(
    pack: ScenarioPack,
    archive_dir: Union[str, pathlib.Path],
    *,
    workers: Optional[int] = None,
    store_path: Union[str, pathlib.Path, None] = None,
    on_progress: Optional[Callable[[SweepProgress], None]] = None,
) -> SweepResult:
    """Execute (or resume) a pack into an archive directory.

    ``workers`` overrides the pack's execution policy for this run only
    — worker count is *not* part of the pack fingerprint, because the
    whole point of content-addressed trials is that results are
    independent of how the work was spread.  ``store_path`` substitutes
    an external result store (the reproduce engine uses a fresh one to
    forbid cache reuse); the archive's own store is the default.
    """
    archive = ArchiveWriter(archive_dir, pack)
    runner = SweepRunner(
        pack.experiment,
        workers=pack.workers if workers is None else workers,
        start_method=pack.start_method,
        store=str(store_path if store_path is not None else archive.store_path),
        checkpoint=None,
        on_progress=on_progress,
        trial_timeout_s=pack.trial_timeout_s,
        supervised=True if pack.supervised else None,
        validation=pack.validation,
        quarantine=str(archive.quarantine_path),
        max_trial_attempts=pack.max_trial_attempts,
        respawn_budget=pack.respawn_budget,
    )
    from repro.experiments.pipeline import PipelineCheckpoint

    runner.checkpoint = PipelineCheckpoint(archive.checkpoint_path)
    with _archive_telemetry(archive):
        result = runner.run(pack.spec)
    archive.finalize(result)
    return result


def default_archive_dir(
    pack: ScenarioPack, base: Union[str, pathlib.Path] = "archives"
) -> pathlib.Path:
    """``archives/<name>-<fingerprint[:12]>`` — stable across resumes,
    distinct across override variants."""
    return pathlib.Path(base) / f"{pack.name}-{pack.fingerprint()[:12]}"
