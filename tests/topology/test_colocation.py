"""Tests for POC router placement at colocation sites."""

import pytest

from repro.topology.colocation import (
    ColocationSite,
    find_colocation_sites,
    place_poc_routers,
)


class TestFindSites:
    def test_threshold_respected(self):
        bp_cities = {
            "BP1": {"New York", "Chicago"},
            "BP2": {"New York", "Dallas"},
            "BP3": {"New York"},
            "BP4": {"Chicago"},
        }
        sites = find_colocation_sites(bp_cities, min_bps=3)
        assert [s.city for s in sites] == ["New York"]
        assert sites[0].bps == frozenset({"BP1", "BP2", "BP3"})

    def test_no_sites_when_threshold_unmet(self):
        bp_cities = {"BP1": {"New York"}, "BP2": {"Chicago"}}
        assert find_colocation_sites(bp_cities, min_bps=2) == []

    def test_min_bps_one_gives_all_cities(self):
        bp_cities = {"BP1": {"New York"}, "BP2": {"Chicago"}}
        sites = find_colocation_sites(bp_cities, min_bps=1, radius_km=1.0)
        assert {s.city for s in sites} == {"New York", "Chicago"}

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            find_colocation_sites({}, min_bps=0)

    def test_nearby_cities_cluster(self):
        # Washington and Ashburn are ~50 km apart: one site within 60 km.
        bp_cities = {
            "BP1": {"Washington"},
            "BP2": {"Ashburn"},
            "BP3": {"Washington"},
        }
        sites = find_colocation_sites(bp_cities, min_bps=3, radius_km=60.0)
        assert len(sites) == 1
        assert sites[0].bps == frozenset({"BP1", "BP2", "BP3"})
        assert sites[0].member_cities == frozenset({"Washington", "Ashburn"})
        # Representative is the more populous member.
        assert sites[0].city == "Washington"

    def test_distant_cities_do_not_cluster(self):
        bp_cities = {
            "BP1": {"Washington"},
            "BP2": {"Ashburn"},
        }
        sites = find_colocation_sites(bp_cities, min_bps=2, radius_km=10.0)
        assert sites == []

    def test_ordering_by_bp_count(self):
        bp_cities = {
            "BP1": {"New York", "Tokyo"},
            "BP2": {"New York", "Tokyo"},
            "BP3": {"New York"},
        }
        sites = find_colocation_sites(bp_cities, min_bps=2)
        assert sites[0].city == "New York"  # 3 BPs before Tokyo's 2

    def test_router_id_format(self):
        site = ColocationSite(
            city="Paris", member_cities=frozenset({"Paris"}), bps=frozenset({"a"})
        )
        assert site.router_id == "POC:Paris"


class TestPlacementReport:
    def test_report_fields(self):
        bp_cities = {
            "BP1": {"New York", "Chicago", "Dallas"},
            "BP2": {"New York", "Chicago"},
            "BP3": {"New York"},
        }
        report = place_poc_routers(bp_cities, min_bps=2)
        assert report.cities_considered == 3
        assert report.min_bps == 2
        assert report.num_sites == 2
        assert report.per_site_bp_count["New York"] == 3
        assert report.per_site_bp_count["Chicago"] == 2

    def test_zoo_sites_meet_threshold(self, tiny_zoo):
        cfg = tiny_zoo.config
        for site in tiny_zoo.sites:
            assert len(site.bps) >= cfg.min_bps_colocated


class TestSingleLinkage:
    """Regression: clustering must be true single-linkage, not first-fit.

    The old implementation attached each city to the *first* existing
    cluster within radius and stopped, so a city bridging two clusters
    never merged them and the outcome depended on iteration order.
    """

    def _bridge_catalog(self):
        from repro.topology.cities import City, CityCatalog

        # Alpha—Middle and Middle—Beta are ~56 km apart on the equator;
        # Alpha—Beta is ~111 km, past the 60 km radius.  Names are chosen
        # so the bridge ("Middle") sorts *after* both endpoints: the old
        # first-fit scan formed {Alpha} and {Beta} first, then attached
        # Middle to Alpha's cluster and left Beta stranded.
        return CityCatalog(
            [
                City("Alpha", "XX", "na", 0.0, 0.0, 1.0),
                City("Beta", "XX", "na", 0.0, 1.0, 2.0),
                City("Middle", "XX", "na", 0.0, 0.5, 0.5),
            ],
            name="bridge",
        )

    def test_bridge_city_merges_two_clusters(self):
        catalog = self._bridge_catalog()
        bp_cities = {"BP1": {"Alpha"}, "BP2": {"Beta"}, "BP3": {"Middle"}}
        sites = find_colocation_sites(
            bp_cities, min_bps=3, radius_km=60.0, catalog=catalog
        )
        assert len(sites) == 1
        site = sites[0]
        assert site.member_cities == frozenset({"Alpha", "Beta", "Middle"})
        assert site.bps == frozenset({"BP1", "BP2", "BP3"})
        assert site.city == "Beta"  # most populous member represents

    def test_no_merge_without_the_bridge(self):
        catalog = self._bridge_catalog()
        bp_cities = {"BP1": {"Alpha", "Beta"}}
        sites = find_colocation_sites(
            bp_cities, min_bps=1, radius_km=60.0, catalog=catalog
        )
        assert {s.city for s in sites} == {"Alpha", "Beta"}

    def test_result_is_order_independent(self):
        catalog = self._bridge_catalog()
        forward = {"BP1": {"Alpha"}, "BP2": {"Beta"}, "BP3": {"Middle"}}
        backward = {"BP3": {"Middle"}, "BP2": {"Beta"}, "BP1": {"Alpha"}}
        a = find_colocation_sites(forward, min_bps=1, radius_km=60.0, catalog=catalog)
        b = find_colocation_sites(backward, min_bps=1, radius_km=60.0, catalog=catalog)
        assert [(s.city, s.member_cities) for s in a] == [
            (s.city, s.member_cities) for s in b
        ]

    def test_builtin_chain_merges(self):
        # Washington—Ashburn—... real chain from the built-in database:
        # Washington and Ashburn are ~50 km apart.  New York is far from
        # both, so it stays its own cluster.
        bp_cities = {
            "BP1": {"Washington"},
            "BP2": {"Ashburn"},
            "BP3": {"New York"},
        }
        sites = find_colocation_sites(bp_cities, min_bps=1, radius_km=60.0)
        merged = [s for s in sites if s.member_cities == {"Ashburn", "Washington"}]
        assert len(merged) == 1
        assert merged[0].bps == frozenset({"BP1", "BP2"})
