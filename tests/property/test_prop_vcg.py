"""Property tests for the VCG auction on random small instances.

A brute-force optimal selection (exhaustive subset enumeration, feasible
for ≤ 10 links) provides ground truth, letting us check on *random*
instances that:

- the MILP engine finds true optima,
- Clarke-pivot payments are individually rational,
- truthful bidding weakly dominates uniform shading (with exact
  selection), for every provider.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.auction.bids import AdditiveCost
from repro.auction.constraints import TrafficConstraint, make_constraint
from repro.auction.milp import exact_selection
from repro.auction.provider import Offer
from repro.auction.vcg import AuctionConfig, run_auction, utility
from repro.exceptions import NoFeasibleSelectionError
from repro.topology.geo import GeoPoint
from repro.topology.graph import Link, Network, Node
from repro.traffic.matrix import TrafficMatrix

EXACT = AuctionConfig(method="milp")


@st.composite
def auction_instances(draw):
    """3-4 nodes, 3-7 links across 2-3 providers, one demand."""
    n_nodes = draw(st.integers(min_value=3, max_value=4))
    names = [f"n{i}" for i in range(n_nodes)]
    n_links = draw(st.integers(min_value=3, max_value=7))
    providers = ["P", "Q", "R"][: draw(st.integers(min_value=2, max_value=3))]

    net = Network(name="prop")
    for i, name in enumerate(names):
        net.add_node(Node(id=name, point=GeoPoint(0.0, float(i))))
    links_by_provider = {p: [] for p in providers}
    prices_by_provider = {p: {} for p in providers}
    # A guaranteed backbone path so feasibility is common: n0-n1-...-nk
    # owned round-robin, plus random extra links.
    specs = list(zip(names, names[1:]))
    for _ in range(n_links - len(specs)):
        i = draw(st.integers(0, n_nodes - 1))
        j = draw(st.integers(0, n_nodes - 1))
        if i != j:
            specs.append((names[i], names[j]))
    for idx, (u, v) in enumerate(specs):
        provider = providers[idx % len(providers)]
        cap = draw(st.floats(min_value=2.0, max_value=20.0))
        price = draw(st.floats(min_value=1.0, max_value=100.0))
        link = Link(id=f"L{idx}", u=u, v=v, capacity_gbps=cap, owner=provider)
        net.add_link(link)
        links_by_provider[provider].append(link)
        prices_by_provider[provider][link.id] = price

    offers = []
    for provider in providers:
        if not links_by_provider[provider]:
            continue
        cost = AdditiveCost(prices_by_provider[provider])
        offers.append(
            Offer(provider=provider, links=links_by_provider[provider],
                  bid=cost, true_cost=cost)
        )
    demand = draw(st.floats(min_value=0.5, max_value=1.5))
    tm = TrafficMatrix.from_dict(names, {(names[0], names[-1]): demand})
    return net, offers, tm


def brute_force_cost(net, offers, tm):
    """Optimal selection cost by exhaustive subset enumeration."""
    from repro.netflow.mcf import mcf_feasible

    prices = {}
    for offer in offers:
        for lid in offer.link_ids:
            prices[lid] = offer.bid.cost(frozenset((lid,)))
    link_ids = sorted(prices)
    best = None
    for r in range(len(link_ids) + 1):
        for subset in itertools.combinations(link_ids, r):
            cost = sum(prices[lid] for lid in subset)
            if best is not None and cost >= best:
                continue
            if mcf_feasible(net.restricted_to_links(subset), tm):
                best = cost
    return best


class TestExactOptimality:
    @given(auction_instances())
    @settings(max_examples=30, deadline=None)
    def test_milp_matches_brute_force(self, instance):
        net, offers, tm = instance
        truth = brute_force_cost(net, offers, tm)
        if truth is None:
            with pytest.raises(NoFeasibleSelectionError):
                exact_selection(offers, net, tm)
            return
        _links, cost = exact_selection(offers, net, tm)
        assert cost == pytest.approx(truth, rel=1e-6, abs=1e-6)


class TestVCGProperties:
    def _run(self, net, offers, tm):
        constraint = make_constraint(1, net, tm)
        try:
            return run_auction(offers, constraint, config=EXACT)
        except NoFeasibleSelectionError:
            return None

    @given(auction_instances())
    @settings(max_examples=25, deadline=None)
    def test_individual_rationality(self, instance):
        net, offers, tm = instance
        result = self._run(net, offers, tm)
        assume(result is not None)
        for offer in offers:
            assert utility(offer, result) >= -1e-6

    @given(auction_instances(), st.sampled_from([0.7, 0.9, 1.2, 1.6]))
    @settings(max_examples=25, deadline=None)
    def test_truthful_weakly_dominates_shading(self, instance, factor):
        net, offers, tm = instance
        truthful = self._run(net, offers, tm)
        assume(truthful is not None)
        for idx, offer in enumerate(offers):
            shaded_offers = [
                o.with_bid(o.bid.scaled(factor)) if i == idx else o
                for i, o in enumerate(offers)
            ]
            shaded = self._run(net, shaded_offers, tm)
            assume(shaded is not None)
            assert utility(shaded_offers[idx], shaded) <= (
                utility(offer, truthful) + 1e-6
            )
