"""Property tests: the invariant suite holds on random instances.

Plain seeded ``random.Random`` generators (not hypothesis) so the
corpus is fixed: every seed in ``range(N)`` builds one instance, and a
failure report names the seed that broke.  Instances are constructed
with two disjoint provider-owned paths so the leave-one-out VCG pricing
is always feasible — every generated auction actually clears.

Together with :mod:`repro.validate.invariants` this is the §3.3
contract, checked mechanically: Clarke payments are individually
rational, weakly budget-balanced, and have non-negative pivots under an
exact engine; the LP routing conserves flow and respects capacity.
"""

import random

import pytest

from repro.auction.bids import AdditiveCost
from repro.auction.constraints import make_constraint
from repro.auction.provider import Offer
from repro.auction.vcg import AuctionConfig, run_auction
from repro.netflow.mcf import max_concurrent_flow
from repro.topology.geo import GeoPoint
from repro.topology.graph import Link, Network, Node
from repro.traffic.matrix import TrafficMatrix
from repro.validate import check_auction_result, check_mcf_result

N_AUCTIONS = 200
N_TOPOLOGIES = 200

EXACT = AuctionConfig(method="milp")


def _random_auction(seed):
    """3-5 nodes; providers P and Q each own a complete n0->nlast path.

    Either provider alone can satisfy the demand, so leave-one-out
    pricing never goes infeasible.  A third provider R adds random
    (removable) links on top.
    """
    rng = random.Random(seed)
    n_nodes = rng.randint(3, 5)
    names = [f"n{i}" for i in range(n_nodes)]
    net = Network(name=f"prop{seed}")
    for i, name in enumerate(names):
        net.add_node(Node(id=name, point=GeoPoint(0.0, float(i))))

    links = {"P": [], "Q": [], "R": []}
    prices = {"P": {}, "Q": {}, "R": {}}
    idx = 0

    def add(owner, u, v):
        nonlocal idx
        link = Link(id=f"L{idx}", u=u, v=v,
                    capacity_gbps=rng.uniform(2.0, 20.0), owner=owner)
        net.add_link(link)
        links[owner].append(link)
        prices[owner][link.id] = rng.uniform(1.0, 100.0)
        idx += 1

    for u, v in zip(names, names[1:]):  # P's backbone path
        add("P", u, v)
    add("Q", names[0], names[-1])  # Q's parallel direct route
    for _ in range(rng.randint(0, 3)):  # R: decorative extras
        u, v = rng.sample(names, 2)
        add("R", u, v)

    offers = []
    for owner in ("P", "Q", "R"):
        if links[owner]:
            cost = AdditiveCost(prices[owner])
            offers.append(Offer(provider=owner, links=links[owner],
                                bid=cost, true_cost=cost))
    demand = rng.uniform(0.5, 1.5)
    tm = TrafficMatrix.from_dict(names, {(names[0], names[-1]): demand})
    return net, offers, tm


def _random_topology(seed):
    """3-6 nodes, backbone path plus extras, 1-3 random demands."""
    rng = random.Random(seed)
    n_nodes = rng.randint(3, 6)
    names = [f"n{i}" for i in range(n_nodes)]
    net = Network(name=f"flow{seed}")
    for i, name in enumerate(names):
        net.add_node(Node(id=name, point=GeoPoint(0.0, float(i))))
    specs = list(zip(names, names[1:]))
    for _ in range(rng.randint(0, 4)):
        u, v = rng.sample(names, 2)
        specs.append((u, v))
    for i, (u, v) in enumerate(specs):
        net.add_link(Link(id=f"L{i}", u=u, v=v,
                          capacity_gbps=rng.uniform(1.0, 15.0), owner="P"))
    demands = {}
    for _ in range(rng.randint(1, 3)):
        u, v = rng.sample(names, 2)
        demands[(u, v)] = demands.get((u, v), 0.0) + rng.uniform(0.2, 3.0)
    return net, TrafficMatrix.from_dict(names, demands)


class TestAuctionInvariants:
    def test_random_auctions_pass_full_audit(self):
        checked = 0
        for seed in range(N_AUCTIONS):
            net, offers, tm = _random_auction(seed)
            constraint = make_constraint(1, net, tm)
            result = run_auction(offers, constraint, config=EXACT)
            violations = check_auction_result(
                result, require_nonnegative_pivots=True)
            assert not violations, (
                f"seed {seed}: " + "; ".join(str(v) for v in violations))
            checked += 1
        assert checked == N_AUCTIONS

    def test_audit_method_agrees(self):
        net, offers, tm = _random_auction(7)
        constraint = make_constraint(1, net, tm)
        result = run_auction(offers, constraint, config=EXACT)
        assert result.audit(require_nonnegative_pivots=True) == (
            check_auction_result(result, require_nonnegative_pivots=True))


class TestFlowInvariants:
    def test_random_topologies_conserve_flow(self):
        solved = 0
        for seed in range(N_TOPOLOGIES):
            net, tm = _random_topology(seed)
            mcf = max_concurrent_flow(net, tm, keep_flows=True)
            violations = check_mcf_result(mcf, tm)
            assert not violations, (
                f"seed {seed}: " + "; ".join(str(v) for v in violations))
            if mcf.lam > 0:
                assert mcf.arcs is not None and mcf.arc_flows is not None
                solved += 1
        # The backbone path guarantees most instances route something.
        assert solved > N_TOPOLOGIES // 2

    def test_detail_absent_without_keep_flows(self):
        net, tm = _random_topology(3)
        mcf = max_concurrent_flow(net, tm)
        assert mcf.arcs is None and mcf.arc_flows is None
        assert check_mcf_result(mcf, tm) == []
