"""Tests for the renegotiation equilibrium (§4.5's third model)."""

import pytest

from repro.exceptions import BargainingError
from repro.econ.bargaining import average_fee
from repro.econ.csp import CSP, optimal_price
from repro.econ.demand import STANDARD_FAMILIES, ExponentialDemand, LinearDemand
from repro.econ.equilibrium import bargaining_equilibrium, compare_regimes
from repro.econ.lmp import LMP, entrant, incumbent


@pytest.fixture
def lmps():
    return [incumbent(), entrant()]


class TestFixedPoint:
    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_converges(self, name, demand, lmps):
        eq = bargaining_equilibrium(CSP(name=name, demand=demand), lmps)
        assert eq.converged
        assert eq.iterations < 500

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_fixed_point_equation_holds(self, name, demand, lmps):
        """t = (p*(t) − <rc>)/2 at the reported equilibrium."""
        csp = CSP(name=name, demand=demand)
        eq = bargaining_equilibrium(csp, lmps)
        implied = max(0.0, average_fee(csp, [l for l in lmps], price=eq.price))
        assert eq.fee == pytest.approx(implied, abs=1e-6)

    def test_linear_closed_form(self, lmps):
        """Linear demand admits a hand-derivable fixed point."""
        csp = CSP(name="lin", demand=LinearDemand(v_max=30.0), incumbency=1.0)
        # <rc> with incumbent (n=1, rc=2.5) and entrant (n=0.1, rc=20):
        avg_rc = (1.0 * 2.5 + 0.1 * 20.0) / 1.1
        # p*(t) = (30+t)/2; t = (p−avg_rc)/2 => t = (30 − 2·avg_rc)/3 ... solve:
        # t = ((30+t)/2 − avg_rc)/2 = (30 + t − 2·avg_rc)/4 => 3t = 30 − 2·avg_rc.
        t_expected = (30.0 - 2.0 * avg_rc) / 3.0
        eq = bargaining_equilibrium(csp, lmps)
        assert eq.fee == pytest.approx(t_expected, abs=1e-6)
        assert eq.price == pytest.approx((30.0 + t_expected) / 2.0, abs=1e-6)

    def test_damping_validation(self, lmps):
        csp = CSP(name="x", demand=LinearDemand())
        with pytest.raises(BargainingError):
            bargaining_equilibrium(csp, lmps, damping=0.0)

    def test_empty_lmps_rejected(self):
        with pytest.raises(BargainingError):
            bargaining_equilibrium(CSP(name="x", demand=LinearDemand()), [])

    def test_zero_fee_when_rc_dominates(self):
        """Clamped regime: high churn·access forces the fee to zero."""
        csp = CSP(name="x", demand=LinearDemand(v_max=5.0), incumbency=1.0)
        sticky = [LMP(name="l", num_customers=1.0, access_price=100.0, vulnerability=0.9)]
        eq = bargaining_equilibrium(csp, sticky)
        assert eq.fee == 0.0
        assert eq.price == pytest.approx(optimal_price(csp.demand, 0.0))


class TestRegimeOrdering:
    """W(NN) >= W(bargaining) >= W(unilateral) across families."""

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_welfare_ordering(self, name, demand, lmps):
        rc = compare_regimes(CSP(name=name, demand=demand), lmps)
        assert rc.nn_welfare + 1e-9 >= rc.bargaining_welfare
        assert rc.bargaining_welfare + 1e-9 >= rc.unilateral_welfare

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_bargained_fee_below_unilateral(self, name, demand, lmps):
        """Bargaining moderates fees: the LMP has something to lose."""
        rc = compare_regimes(CSP(name=name, demand=demand), lmps)
        assert rc.bargaining_fee <= rc.unilateral_fee + 1e-9

    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_price_ordering(self, name, demand, lmps):
        rc = compare_regimes(CSP(name=name, demand=demand), lmps)
        assert rc.nn_price <= rc.bargaining_price + 1e-9
        assert rc.bargaining_price <= rc.unilateral_price + 1e-9

    def test_strict_loss_for_smooth_family(self, lmps):
        rc = compare_regimes(
            CSP(name="exp", demand=ExponentialDemand(scale=12.0)), lmps
        )
        assert rc.bargaining_loss > 0
        assert rc.unilateral_loss > rc.bargaining_loss


class TestEntrantDisadvantage:
    def test_entrant_lmp_earns_less_fee_revenue(self):
        """An entrant LMP extracts lower fees from the same CSP."""
        csp = CSP(name="vid", demand=LinearDemand(v_max=30.0), incumbency=1.0)
        eq_inc = bargaining_equilibrium(csp, [incumbent()])
        eq_ent = bargaining_equilibrium(csp, [entrant()])
        assert eq_inc.fee > eq_ent.fee
        assert eq_inc.lmp_fee_revenue > eq_ent.lmp_fee_revenue

    def test_entrant_csp_keeps_less_revenue(self, lmps):
        """An entrant CSP pays more and nets less than an incumbent."""
        inc_csp = CSP(name="big", demand=LinearDemand(v_max=30.0), incumbency=1.0)
        ent_csp = CSP(name="new", demand=LinearDemand(v_max=30.0), incumbency=0.1)
        eq_inc = bargaining_equilibrium(inc_csp, lmps)
        eq_ent = bargaining_equilibrium(ent_csp, lmps)
        assert eq_ent.fee > eq_inc.fee
        assert eq_ent.csp_revenue < eq_inc.csp_revenue
