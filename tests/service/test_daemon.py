"""Tests for the PocService daemon: lifecycle, shedding, faults, drain.

Every test drives the daemon on a virtual clock, so "time" is exact and
free: a 20-second drain scenario runs in milliseconds and reproduces
identically.
"""

import asyncio

import pytest

from repro.exceptions import ReproError, ServiceError
from repro.experiments.pipeline import PipelineCheckpoint
from repro.resilience.policy import CircuitBreaker
from repro.service import (
    PocService,
    ServiceConfig,
    VirtualClock,
    load_snapshot,
    run_virtual,
)

from tests.service.conftest import make_service


def drive_service(service, scenario):
    """Run ``scenario(service)`` to completion on the service's clock."""

    async def main():
        await service.start()
        try:
            return await scenario(service)
        finally:
            if service.running:
                await service.drain()

    return run_virtual(service.clock, main())


class TestConfig:
    def test_rejects_nonsense(self):
        for bad in (
            dict(queue_limit=0),
            dict(batch_max=0),
            dict(workers=0),
            dict(default_deadline_s=0.0),
            dict(batch_overhead_s=-1.0),
            dict(reclear_delay_s=-0.1),
        ):
            with pytest.raises(ServiceError):
                ServiceConfig(**bad)


class TestLifecycle:
    def test_start_publishes_version_one(self):
        service = make_service()

        async def scenario(svc):
            return svc.snapshot

        snap = drive_service(service, scenario)
        assert snap.version == 1
        assert snap.health == "healthy"
        assert not service.running  # drained by the driver

    def test_all_kinds_answer_ok(self):
        service = make_service()

        async def scenario(svc):
            futs = [
                svc.submit("admission", {"party": "lmp-1", "site": "A"}),
                svc.submit("allocation", {"src": "A", "dst": "C"}),
                svc.submit("pricing", {}),
                svc.submit("health", {}),
            ]
            return await asyncio.gather(*futs)

        responses = drive_service(service, scenario)
        assert [r.status for r in responses] == ["ok"] * 4
        assert responses[0].payload["admitted"] is True
        assert responses[1].payload["rate_gbps"] > 0
        assert responses[2].payload["total_payments"] > 0
        health = responses[3].payload
        assert health["health"] == "healthy"
        assert health["breaker_allow"] is True
        assert all(r.version == 1 for r in responses)

    def test_malformed_params_are_an_error_response_not_a_crash(self):
        service = make_service()

        async def scenario(svc):
            return await svc.submit("allocation", {"src": "A"})  # no dst

        resp = drive_service(service, scenario)
        assert resp.status == "error"
        assert "dst" in resp.payload["error"]

    def test_unknown_kind_raises_at_submit(self):
        service = make_service()

        async def scenario(svc):
            with pytest.raises(ServiceError):
                svc.submit("divination", {})
            return True

        assert drive_service(service, scenario)

    def test_submit_before_start_and_after_drain_raise(self):
        service = make_service()
        with pytest.raises(ServiceError):
            service.submit("health")

        async def scenario(svc):
            await svc.drain()
            with pytest.raises(ServiceError):
                svc.submit("health")
            return True

        assert drive_service(service, scenario)

    def test_double_start_rejected(self):
        service = make_service()

        async def scenario(svc):
            with pytest.raises(ServiceError):
                await svc.start()
            return True

        assert drive_service(service, scenario)


class TestAdmissionControl:
    def test_full_queue_sheds_overloaded_immediately(self):
        service = make_service(config=ServiceConfig(queue_limit=4, batch_max=2))

        async def scenario(svc):
            futs = [svc.submit("health") for _ in range(10)]
            return await asyncio.gather(*futs)

        responses = drive_service(service, scenario)
        shed = [r for r in responses if r.status == "overloaded"]
        served = [r for r in responses if r.served]
        assert len(shed) == 6  # queue held 4 of 10
        assert len(served) == 4
        # Sheds answer instantly (no queueing), at zero virtual latency.
        assert all(r.latency_s == 0.0 for r in shed)
        assert service.stats["overloaded"] == 6

    def test_expired_deadline_sheds_instead_of_serving_stale(self):
        # Batch service time (0.1s) exceeds the 0.05s budget: every
        # request times out in queue and is answered as such.
        service = make_service(
            config=ServiceConfig(batch_overhead_s=0.1, default_deadline_s=0.05)
        )

        async def scenario(svc):
            return await svc.submit("health")

        resp = drive_service(service, scenario)
        assert resp.status == "deadline-exceeded"
        # Waited exactly one batch service time (overhead + 1 request).
        assert resp.latency_s == pytest.approx(0.1005)

    def test_draining_service_refuses_new_work(self):
        service = make_service()

        async def scenario(svc):
            ongoing = svc.submit("allocation", {"src": "A", "dst": "B"})
            drain_task = asyncio.ensure_future(svc.drain())
            await asyncio.sleep(0)  # let drain flip the flag
            late = svc.submit("health")
            await drain_task
            return await ongoing, await late

        ongoing, late = drive_service(service, scenario)
        # In-flight work finishes; late arrivals get an explicit refusal.
        assert ongoing.status == "ok"
        assert late.status == "draining"

    def test_pricing_lookups_coalesce_within_a_batch(self):
        service = make_service(config=ServiceConfig(batch_max=8))

        async def scenario(svc):
            futs = [svc.submit("pricing", {}) for _ in range(6)]
            return await asyncio.gather(*futs)

        responses = drive_service(service, scenario)
        assert all(r.status == "ok" for r in responses)
        assert service.stats["coalesced_pricing"] == 5


class TestFaultsAndRecovery:
    def test_fault_degrades_then_background_reclear_heals(self):
        service = make_service(config=ServiceConfig(reclear_delay_s=0.5))

        async def scenario(svc):
            victim = svc.snapshot.serviceable_links[0]
            assert svc.inject_link_faults([victim]) == 1
            during = await svc.submit("allocation", {"src": "A", "dst": "C"})
            await svc.clock.sleep(1.0)  # ride out the re-clear
            after = await svc.submit("health")
            return victim, during, after

        victim, during, after = drive_service(service, scenario)
        # Mid-outage answers are real but flagged degraded, from the
        # degraded snapshot version.
        assert during.status == "degraded"
        assert during.version == 2
        # The background re-clear published a healthy next version.
        assert after.status == "ok"
        assert after.payload["health"] == "healthy"
        assert after.version == 3
        assert service.stats["reclears"] == 1
        assert victim not in service.snapshot.failed_links

    def test_fault_on_unselected_link_is_free(self):
        service = make_service()

        async def scenario(svc):
            assert svc.inject_link_faults(["no-such-link"]) == 0
            return svc.snapshot.version

        assert drive_service(service, scenario) == 1

    def test_stalled_solver_falls_back_and_opens_breaker(self):
        service = make_service(
            config=ServiceConfig(reclear_delay_s=0.5),
            breaker=CircuitBreaker(failure_threshold=1, cooldown_calls=10),
        )

        async def scenario(svc):
            svc.set_solver_stall(True)
            svc.inject_link_faults([svc.snapshot.serviceable_links[0]])
            await svc.clock.sleep(1.0)
            return await svc.submit("health")

        health = drive_service(service, scenario)
        # The fallback engine cleared while the primary stalled: healthy
        # again, explicitly marked as fallback-produced, breaker open.
        assert health.status == "ok"
        assert health.payload["health"] == "healthy"
        assert health.payload["fallback"] is True
        assert health.payload["breaker_state"] == "open"
        assert health.payload["breaker_allow"] is False

    def test_reclear_failure_stays_degraded_without_crashing(self, monkeypatch):
        service = make_service(config=ServiceConfig(reclear_delay_s=0.5))

        async def scenario(svc):
            await asyncio.sleep(0)
            monkeypatch.setattr(
                svc.controller, "reprovision",
                lambda *a, **k: (_ for _ in ()).throw(ReproError("all engines down")),
            )
            svc.inject_link_faults([svc.snapshot.serviceable_links[0]])
            await svc.clock.sleep(1.0)
            still_degraded = await svc.submit("allocation", {"src": "A", "dst": "C"})
            return still_degraded

        resp = drive_service(service, scenario)
        # Service of last resort: residual answers keep flowing.
        assert resp.status == "degraded"
        assert service.stats["reclear_failures"] == 1
        assert service.snapshot.health == "degraded"

    def test_second_fault_folds_into_pending_reclear(self):
        service = make_service(config=ServiceConfig(reclear_delay_s=1.0))

        async def scenario(svc):
            links = list(svc.snapshot.serviceable_links)
            svc.inject_link_faults([links[0]])
            await svc.clock.sleep(0.2)  # re-clear still pending
            svc.inject_link_faults([links[1]])
            await svc.clock.sleep(2.0)
            return await svc.submit("health")

        health = drive_service(service, scenario)
        assert health.payload["health"] == "healthy"
        assert service.stats["faults_injected"] == 2
        # One re-clear healed both faults.
        assert service.stats["reclears"] == 1


class TestDrain:
    def test_drain_persists_resumable_snapshot(self, tmp_path):
        path = tmp_path / "service.json"
        service = make_service(checkpoint=PipelineCheckpoint(path), seed=5)

        async def scenario(svc):
            await asyncio.gather(*(
                svc.submit("allocation", {"src": "A", "dst": "C"})
                for _ in range(3)
            ))
            await svc.drain()
            return True

        assert drive_service(service, scenario)
        restored = load_snapshot(path)
        assert restored.version == 1
        assert restored.seed == 5
        assert restored.allocate("A", "C")["connected"] is True

    def test_drain_is_idempotent(self):
        service = make_service()

        async def scenario(svc):
            snap1 = await svc.drain()
            snap2 = await svc.drain()
            return snap1.version, snap2.version

        assert drive_service(service, scenario) == (1, 1)

    def test_every_submitted_request_is_answered(self):
        service = make_service(config=ServiceConfig(queue_limit=8, batch_max=4))

        async def scenario(svc):
            futs = [svc.submit("health") for _ in range(30)]
            responses = await asyncio.gather(*futs)
            await svc.drain()
            return responses

        responses = drive_service(service, scenario)
        assert len(responses) == 30
        assert all(r is not None for r in responses)
        statuses = {r.status for r in responses}
        assert statuses <= {"ok", "overloaded"}
