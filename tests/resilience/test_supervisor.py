"""Tests for supervised trial execution: deadlines, crash recovery, quarantine.

Fault-injecting test experiments are registered at import time and run
with fork workers (which inherit the registration) or in-process.  The
hard cases — a worker killed mid-trial, a hang that ignores its alarm,
SIGTERM mid-sweep — each get an end-to-end test.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.exceptions import SweepError
from repro.resilience.supervisor import (
    IncidentRecord,
    QuarantineLog,
    TrialSupervisor,
    format_incidents,
)
from repro.sweeps.cache import ResultStore, trial_key
from repro.sweeps.registry import Experiment, register
from repro.sweeps.runner import run_sweep
from repro.sweeps.spec import Axis, SweepSpec

START_METHODS = multiprocessing.get_all_start_methods()
HAS_ALARM = hasattr(signal, "SIGALRM")
needs_fork = pytest.mark.skipif(
    "fork" not in START_METHODS, reason="fork start method unavailable"
)
needs_alarm = pytest.mark.skipif(not HAS_ALARM, reason="no SIGALRM on platform")


def _log_invocation(params):
    if params.get("log"):
        with open(params["log"], "a", encoding="utf-8") as handle:
            handle.write(f"{params['x']}\n")


def _crash_once_trial(params, seed):
    """Kills its own worker process the first time a given x runs."""
    _log_invocation(params)
    marker = f"{params['marker']}.{params['x']}"
    if params["x"] == params["crash_x"] and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(42)  # no exception, no cleanup: a genuine worker death
    return {"value": float(params["x"]) * 2.0, "seed_mod": float(seed % 1000)}


def _sleep_trial(params, seed):
    """Sleeps (interruptible by SIGALRM) then returns."""
    _log_invocation(params)
    if params["x"] == params.get("slow_x", -1):
        time.sleep(float(params.get("sleep_s", 30.0)))
    return {"value": float(params["x"])}


def _deaf_hang_trial(params, seed):
    """Hangs AND disables the worker's alarm — only the watchdog can help."""
    _log_invocation(params)
    if params["x"] == params["hang_x"]:
        if HAS_ALARM:
            signal.signal(signal.SIGALRM, signal.SIG_IGN)
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        time.sleep(60.0)
    return {"value": float(params["x"])}


def _boom_trial(params, seed):
    """Deterministic failure for one grid point."""
    _log_invocation(params)
    if params["x"] == params["boom_x"]:
        raise ValueError(f"injected deterministic failure at x={params['x']}")
    return {"value": float(params["x"])}


for _exp in (
    Experiment(name="_sup_crash_once", trial=_crash_once_trial, version="1"),
    Experiment(name="_sup_sleep", trial=_sleep_trial, version="1"),
    Experiment(name="_sup_deaf_hang", trial=_deaf_hang_trial, version="1"),
    Experiment(name="_sup_boom", trial=_boom_trial, version="1"),
):
    register(_exp, replace=True)


def _read_log(path):
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


class TestIncidentRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SweepError, match="unknown incident kind"):
            IncidentRecord(kind="meteor", index=0, key="k", attempt=1,
                           wall_time_s=0.0, disposition="retried")

    def test_round_trip_and_format(self):
        rec = IncidentRecord(kind="timeout", index=3, key="abc123def456XYZ",
                             attempt=2, wall_time_s=1.5,
                             disposition="quarantined", detail="alarm")
        assert rec.to_dict()["kind"] == "timeout"
        line = rec.format_line()
        assert "trial 3" in line and "quarantined" in line and "attempt 2" in line

    def test_format_incidents_summarizes_by_kind(self):
        recs = [
            IncidentRecord(kind="timeout", index=i, key="", attempt=1,
                           wall_time_s=0.0, disposition="retried")
            for i in range(3)
        ]
        text = format_incidents(recs)
        assert "3 incident(s)" in text
        assert "timeout=3" in text
        assert format_incidents([]) == "supervision: no incidents"


class TestQuarantineLog:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "q.jsonl"
        log = QuarantineLog(path)
        log.append({"key": "k1", "kind": "timeout", "params": {"x": 1}})
        log.append({"key": "k2", "kind": "invalid", "params": {"x": 2}})
        assert log.has("k1") and len(log) == 2

        reloaded = QuarantineLog(path)
        assert reloaded.has("k1") and reloaded.has("k2")
        assert reloaded.get("k2")["kind"] == "invalid"

    def test_tolerates_corrupt_lines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        log = QuarantineLog(path)
        log.append({"key": "good", "kind": "timeout"})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "torn', )
        reloaded = QuarantineLog(path)
        assert reloaded.has("good")
        assert reloaded.corrupt_lines == 1

    def test_memory_only_log(self):
        log = QuarantineLog(None)
        log.append({"key": "k", "kind": "crash"})
        assert log.has("k") and len(log) == 1

    def test_rejects_keyless_entry(self, tmp_path):
        log = QuarantineLog(tmp_path / "q.jsonl")
        with pytest.raises(SweepError, match="string 'key'"):
            log.append({"kind": "timeout"})


def _spec(n=4, **base):
    return SweepSpec(
        axes=(Axis("x", tuple(float(i) for i in range(n))),),
        base=base,
        seed=5,
    )


@needs_alarm
class TestSerialSupervision:
    def test_timeout_quarantined_after_two_attempts(self, tmp_path):
        log = str(tmp_path / "log.txt")
        spec = _spec(n=3, slow_x=1.0, sleep_s=30.0, log=log)
        result = run_sweep(
            "_sup_sleep", spec, workers=0, trial_timeout_s=0.3,
            quarantine=str(tmp_path / "q.jsonl"),
        )
        # The two fast trials finish; the slow one is quarantined.
        assert [o.record["value"] for o in result.outcomes] == [0.0, 2.0]
        assert len(result.quarantined) == 1
        assert result.quarantined[0]["kind"] == "timeout"
        assert result.quarantined[0]["attempts"] == 2
        # 2 attempts at the slow trial + 2 clean trials = 4 invocations.
        assert len(_read_log(log)) == 4
        kinds = [i.kind for i in result.incidents]
        assert kinds.count("timeout") == 2
        assert "quarantine" in kinds

    def test_deterministic_failure_quarantines_immediately(self, tmp_path):
        log = str(tmp_path / "log.txt")
        spec = _spec(n=3, boom_x=1.0, log=log)
        result = run_sweep(
            "_sup_boom", spec, workers=0, supervised=True,
            quarantine=str(tmp_path / "q.jsonl"),
        )
        assert [o.record["value"] for o in result.outcomes] == [0.0, 2.0]
        assert len(result.quarantined) == 1
        entry = result.quarantined[0]
        assert entry["kind"] == "failure"
        assert "injected deterministic failure" in entry["traceback"]
        # A non-ReproError is not retried in-worker, and the supervisor
        # does not retry a deterministic failure either: one invocation
        # of the poison trial, one each for the clean ones.
        assert len(_read_log(log)) == 3

    def test_quarantined_trials_skipped_on_resume(self, tmp_path):
        log = str(tmp_path / "log.txt")
        qpath = str(tmp_path / "q.jsonl")
        spec = _spec(n=3, boom_x=1.0, log=log)
        store = str(tmp_path / "store.jsonl")
        first = run_sweep("_sup_boom", spec, workers=0, supervised=True,
                          quarantine=qpath, store=store)
        assert len(first.quarantined) == 1
        os.unlink(log)
        second = run_sweep("_sup_boom", spec, workers=0, supervised=True,
                           quarantine=qpath, store=store)
        # Nothing re-executes: good trials are cached, poison is skipped.
        assert _read_log(log) == []
        assert second.executed == 0 and second.cache_hits == 2
        assert [i.kind for i in second.incidents] == ["quarantine-skip"]
        assert not second.quarantined  # skip is not a fresh quarantine


@needs_fork
class TestPoolSupervision:
    def test_worker_crash_respawn_and_byte_identical_aggregates(self, tmp_path):
        """A killed worker is replaced and the retried trial's record is
        byte-identical to a serial run's — the satellite-2 regression."""
        log = str(tmp_path / "log.txt")
        marker = str(tmp_path / "crash")
        spec = _spec(n=4, crash_x=2.0, marker=marker, log=log)

        # Reference: serial, no crash (marker pre-created disarms it).
        with open(f"{marker}.2.0", "w", encoding="utf-8"):
            pass
        serial_store = str(tmp_path / "serial.jsonl")
        serial = run_sweep("_sup_crash_once", spec, workers=0,
                           store=serial_store)
        assert serial.executed == 4

        # Supervised pool: the crash is armed; worker 2 dies mid-trial.
        os.unlink(f"{marker}.2.0")
        os.unlink(log)
        pool_store = str(tmp_path / "pool.jsonl")
        result = run_sweep(
            "_sup_crash_once", spec, workers=2, start_method="fork",
            supervised=True, store=pool_store,
            quarantine=str(tmp_path / "q.jsonl"),
        )
        assert result.respawns == 1
        assert not result.quarantined
        kinds = [i.kind for i in result.incidents]
        assert "crash" in kinds and "respawn" in kinds
        # The crashed trial ran twice (once to death, once to completion).
        assert len(_read_log(log)) == 5

        serial_entries = sorted(
            json.dumps(json.loads(line), sort_keys=True)
            for line in open(serial_store, encoding="utf-8")
        )
        pool_entries = sorted(
            json.dumps(json.loads(line), sort_keys=True)
            for line in open(pool_store, encoding="utf-8")
        )
        assert serial_entries == pool_entries

    @needs_alarm
    def test_pool_timeout_quarantine(self, tmp_path):
        spec = _spec(n=4, slow_x=1.0, sleep_s=30.0,
                     log=str(tmp_path / "log.txt"))
        result = run_sweep(
            "_sup_sleep", spec, workers=2, start_method="fork",
            trial_timeout_s=0.5, quarantine=str(tmp_path / "q.jsonl"),
        )
        assert len(result.quarantined) == 1
        assert result.quarantined[0]["kind"] == "timeout"
        assert sorted(o.record["value"] for o in result.outcomes) == [0.0, 2.0, 3.0]
        # No worker ever died: the alarm interrupts the sleep in-process.
        assert result.respawns == 0

    def test_watchdog_kills_deaf_worker(self, tmp_path):
        """A trial that hangs with its alarm disabled is killed from the
        parent via the heartbeat watchdog and quarantined."""
        log = str(tmp_path / "log.txt")
        spec = _spec(n=3, hang_x=1.0, log=log)
        supervisor = TrialSupervisor(
            "_sup_deaf_hang", workers=2, start_method="fork",
            trial_timeout_s=0.4, watchdog_grace_s=0.4,
            max_trial_attempts=2,
            quarantine=QuarantineLog(tmp_path / "q.jsonl"),
        )
        from repro.sweeps.registry import get_experiment
        exp = get_experiment("_sup_deaf_hang")
        tasks = []
        for trial in spec.trials():
            params = exp.resolved_params(trial.params)
            key = trial_key(exp.name, exp.version, params, trial.seed)
            tasks.append((trial.index, params, trial.seed, key))
        outcome = supervisor.run(tasks)
        assert sorted(r["value"] for r in outcome.records.values()) == [0.0, 2.0]
        assert len(outcome.quarantined) == 1
        assert outcome.quarantined[0]["kind"] == "hang"
        assert outcome.respawns >= 1
        kinds = [i.kind for i in outcome.incidents]
        assert "hang" in kinds and "respawn" in kinds

    def test_respawn_budget_exhaustion_aborts(self, tmp_path):
        marker = str(tmp_path / "nope")  # never pre-created: crashes always
        spec = SweepSpec(
            axes=(Axis("x", (7.0,)),),
            base={"crash_x": 7.0, "marker": marker, "log": ""},
            seed=5,
        )
        with pytest.raises(SweepError, match="respawn budget"):
            run_sweep(
                "_sup_crash_once", spec, workers=2, start_method="fork",
                supervised=True, respawn_budget=0, max_trial_attempts=3,
                quarantine=str(tmp_path / "q.jsonl"),
            )


@needs_fork
class TestGracefulShutdown:
    def test_sigterm_leaves_resumable_checkpoint(self, tmp_path):
        """SIGTERM mid-sweep: completed trials persist; a second invocation
        executes only the missing ones (counted, not recomputed)."""
        script = tmp_path / "sweep_script.py"
        log = tmp_path / "log.txt"
        store = tmp_path / "store.jsonl"
        script.write_text(textwrap.dedent(f"""
            import sys, time
            from repro.experiments.pipeline import PipelineCheckpoint
            from repro.sweeps.registry import Experiment, register
            from repro.sweeps.runner import run_sweep
            from repro.sweeps.spec import Axis, SweepSpec

            def slow_trial(params, seed):
                with open({str(log)!r}, "a", encoding="utf-8") as h:
                    h.write(f"{{params['x']}}\\n")
                time.sleep(0.4)
                return {{"value": float(params["x"])}}

            register(Experiment(name="_sig_slow", trial=slow_trial,
                                version="1"), replace=True)
            spec = SweepSpec(axes=(Axis("x", tuple(float(i) for i in range(12))),),
                             seed=3)
            print("READY", flush=True)
            result = run_sweep("_sig_slow", spec, workers=2,
                               start_method="fork", supervised=True,
                               store={str(store)!r},
                               checkpoint=PipelineCheckpoint({str(tmp_path / "cp.json")!r}))
            print("DONE", result.executed, flush=True)
        """))
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")

        proc = subprocess.Popen(
            [sys.executable, str(script)], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            # Let a few trials land, then ask for a graceful stop.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if store.exists() and sum(1 for _ in open(store)) >= 2:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode != 0  # SweepInterrupted -> SystemExit path
        assert "stopped by SIGTERM" in err
        completed = sum(1 for _ in open(store))
        assert 1 <= completed < 12

        first_invocations = len(_read_log(log))
        log.unlink()

        # Resume in-process: only the missing trials execute.
        spec = SweepSpec(axes=(Axis("x", tuple(float(i) for i in range(12))),),
                         seed=3)

        def slow_trial(params, seed):
            with open(log, "a", encoding="utf-8") as handle:
                handle.write(f"{params['x']}\n")
            return {"value": float(params["x"])}

        register(Experiment(name="_sig_slow", trial=slow_trial, version="1"),
                 replace=True)
        from repro.experiments.pipeline import PipelineCheckpoint

        result = run_sweep("_sig_slow", spec, workers=0, supervised=True,
                           store=str(store),
                           checkpoint=PipelineCheckpoint(tmp_path / "cp2.json"))
        assert len(result.outcomes) == 12
        assert result.cache_hits == completed
        assert len(_read_log(log)) == 12 - completed
        assert first_invocations + len(_read_log(log)) >= 12


class _FakeProcess:
    """Stands in for a worker process: always alive, records kill()."""

    def __init__(self):
        self.kills = 0

    def is_alive(self):
        return True

    def kill(self):
        self.kills += 1


def _run_watchdog_briefly(supervisor, duration_s=0.35):
    """Run the watchdog loop in a thread for a bounded window."""
    import threading

    thread = threading.Thread(target=supervisor._watchdog_loop, daemon=True)
    thread.start()
    time.sleep(duration_s)
    supervisor._watchdog_stop.set()
    thread.join(timeout=2.0)
    assert not thread.is_alive()


class TestMonotonicWatchdog:
    """The deadline clock must be immune to wall-clock steps (NTP, DST,
    manual changes): elapsed math runs on time.monotonic() only."""

    def _supervisor(self, **kwargs):
        kwargs.setdefault("trial_timeout_s", 5.0)
        kwargs.setdefault("watchdog_grace_s", 5.0)
        kwargs.setdefault("poll_interval_s", 0.02)
        return TrialSupervisor("_sup_sleep", workers=2, **kwargs)

    def _fake_worker(self, tmp_path, *, started_mono, started_wall):
        from repro.resilience.supervisor import _Worker, _write_heartbeat

        hb = str(tmp_path / "hb-0.json")
        _write_heartbeat(hb, {
            "pid": 12345, "busy": True, "index": 0, "key": "k" * 16,
            "started_mono": started_mono, "started_wall": started_wall,
        })
        return _Worker(
            process=_FakeProcess(), task_queue=None, heartbeat_path=hb,
            busy_index=0, busy_since=time.monotonic(),
        )

    def test_backwards_wall_jump_does_not_kill(self, tmp_path):
        """Regression: a heartbeat whose wall stamp is hours old (the wall
        clock stepped forward, or equivalently the comparison clock jumped)
        must NOT trip the deadline while the monotonic stamp is fresh."""
        supervisor = self._supervisor()
        worker = self._fake_worker(
            tmp_path,
            started_mono=time.monotonic(),       # trial actually just started
            started_wall=time.time() - 86400.0,  # wall clock says "yesterday"
        )
        supervisor._workers = {0: worker}
        supervisor._hung = {}
        _run_watchdog_briefly(supervisor)
        assert worker.process.kills == 0
        assert supervisor._hung == {}

    def test_monotonic_overrun_kills_despite_fresh_wall_stamp(self, tmp_path):
        """The converse: a genuinely hung trial is killed even if a wall
        step makes its wall stamp look recent."""
        supervisor = self._supervisor(
            trial_timeout_s=0.05, watchdog_grace_s=0.05
        )
        worker = self._fake_worker(
            tmp_path,
            started_mono=time.monotonic() - 120.0,  # hung for 2 minutes
            started_wall=time.time(),               # wall clock stepped back
        )
        # Parent-side dispatch stamp agrees the trial is old.
        worker.busy_since = time.monotonic() - 120.0
        supervisor._workers = {0: worker}
        supervisor._hung = {}
        _run_watchdog_briefly(supervisor)
        assert worker.process.kills >= 1
        overrun, started_wall = supervisor._hung[0]
        assert overrun > 100.0
        assert started_wall is not None  # kept for the incident record only

    def test_watchdog_elapsed_math_never_uses_wall_clock(self):
        """Source-level regression guard: no time.time() in deadline logic."""
        import inspect

        source = inspect.getsource(TrialSupervisor._watchdog_loop)
        assert "time.time()" not in source
