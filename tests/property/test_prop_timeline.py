"""Property tests for the fluid-flow transfer timeline."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dataplane.flows import Flow
from repro.dataplane.sim import DataplaneSim
from repro.dataplane.timeline import Transfer, simulate_transfers

from tests.conftest import square_network


def build_sim():
    s = DataplaneSim(square_network())
    s.attach("flix", "A", access_gbps=8.0)
    s.attach("tube", "B", access_gbps=8.0)
    s.attach("eyeballs", "C", access_gbps=6.0)
    return s


@st.composite
def schedules(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    transfers = []
    for i in range(n):
        src = draw(st.sampled_from(["flix", "tube"]))
        transfers.append(
            Transfer(
                flow=Flow(
                    id=f"t{i}", source_party=src, dest_party="eyeballs",
                    demand_gbps=draw(st.floats(min_value=0.5, max_value=50.0)),
                ),
                arrival_s=draw(st.floats(min_value=0.0, max_value=20.0)),
                volume_gbit=draw(st.floats(min_value=0.5, max_value=60.0)),
            )
        )
    return transfers


class TestTimelineProperties:
    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_all_transfers_complete(self, transfers):
        """With a neutral edge and connected paths, nothing starves."""
        result = simulate_transfers(build_sim(), transfers)
        assert set(result.outcomes) == {t.flow.id for t in transfers}
        for outcome in result.outcomes.values():
            assert not outcome.blocked
            assert outcome.completion_s < float("inf")

    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_completion_after_arrival(self, transfers):
        result = simulate_transfers(build_sim(), transfers)
        for t in transfers:
            assert result.completion(t.flow.id) >= t.arrival_s

    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_physical_lower_bound(self, transfers):
        """No transfer beats volume / min(demand, access capacity)."""
        result = simulate_transfers(build_sim(), transfers)
        for t in transfers:
            # The loosest upper bound on rate is the source access (8G).
            best_rate = min(t.flow.demand_gbps, 8.0)
            assert result.duration(t.flow.id) >= t.volume_gbit / best_rate - 1e-6

    @given(schedules())
    @settings(max_examples=40, deadline=None)
    def test_adding_load_never_speeds_others(self, transfers):
        """Completion times are monotone: extra transfers can't help."""
        sim = build_sim()
        base = simulate_transfers(sim, transfers)
        extra = transfers + [
            Transfer(
                flow=Flow(id="extra", source_party="flix",
                          dest_party="eyeballs", demand_gbps=50.0),
                arrival_s=0.0,
                volume_gbit=40.0,
            )
        ]
        loaded = simulate_transfers(build_sim(), extra)
        for t in transfers:
            assert loaded.completion(t.flow.id) >= base.completion(t.flow.id) - 1e-6
