"""Property tests: money conservation in the ledger under random traffic."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.market.ledger import Ledger

account_names = ["alice", "bob", "netco", "flix", "POC", "BP-pool"]
kinds = ["consumer", "consumer", "lmp", "csp", "poc", "bp"]


@st.composite
def transfer_sequences(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    transfers = []
    for _ in range(n):
        src = draw(st.sampled_from(account_names))
        dst = draw(st.sampled_from([a for a in account_names if a != src]))
        amount = draw(st.floats(min_value=0.01, max_value=1e5))
        epoch = draw(st.integers(min_value=0, max_value=5))
        transfers.append((epoch, src, dst, amount))
    return transfers


def build_ledger():
    ledger = Ledger()
    for name, kind in zip(account_names, kinds):
        ledger.open_account(name, kind)
    return ledger


class TestConservation:
    @given(transfer_sequences())
    @settings(max_examples=80)
    def test_total_always_zero(self, transfers):
        ledger = build_ledger()
        for epoch, src, dst, amount in transfers:
            ledger.transfer(epoch, src, dst, amount, memo="prop")
        assert ledger.total_balance == pytest.approx(0.0, abs=1e-6)
        ledger.audit()

    @given(transfer_sequences())
    @settings(max_examples=80)
    def test_replay_matches_running(self, transfers):
        ledger = build_ledger()
        for epoch, src, dst, amount in transfers:
            ledger.transfer(epoch, src, dst, amount, memo="prop")
        replayed = ledger.replay_balances()
        for name in account_names:
            assert ledger.balance(name) == pytest.approx(replayed[name], abs=1e-6)

    @given(transfer_sequences())
    @settings(max_examples=80)
    def test_net_flow_sums_to_balance(self, transfers):
        ledger = build_ledger()
        for epoch, src, dst, amount in transfers:
            ledger.transfer(epoch, src, dst, amount, memo="prop")
        for name in account_names:
            assert ledger.net_flow(name) == pytest.approx(
                ledger.balance(name), abs=1e-6
            )

    @given(transfer_sequences())
    @settings(max_examples=40)
    def test_epoch_flows_partition_total(self, transfers):
        ledger = build_ledger()
        for epoch, src, dst, amount in transfers:
            ledger.transfer(epoch, src, dst, amount, memo="prop")
        for name in account_names:
            per_epoch = sum(ledger.net_flow(name, epoch=e) for e in range(6))
            assert per_epoch == pytest.approx(ledger.balance(name), abs=1e-6)
