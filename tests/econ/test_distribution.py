"""Tests for distributional welfare accounting (§4.6)."""

import pytest

from repro.exceptions import EconError
from repro.econ.csp import CSP, optimal_price
from repro.econ.demand import STANDARD_FAMILIES, LinearDemand
from repro.econ.distribution import (
    WelfareSplit,
    competition_sweep,
    competitive_price,
    split_at,
    welfare_split,
)
from repro.econ.unilateral import unilateral_outcome
from repro.econ.welfare import social_welfare


@pytest.fixture
def catalogue():
    return [CSP(name=n, demand=d) for n, d in STANDARD_FAMILIES.items()]


class TestSplitIdentity:
    @pytest.mark.parametrize("name,demand", list(STANDARD_FAMILIES.items()))
    def test_split_sums_to_social_welfare(self, name, demand):
        for price, fee in ((10.0, 0.0), (12.0, 3.0), (20.0, 8.0)):
            split = split_at(demand, price, fee)
            assert split.total == pytest.approx(social_welfare(demand, price))

    def test_fee_is_pure_transfer_at_fixed_price(self):
        d = LinearDemand(v_max=30.0)
        free = split_at(d, 18.0, 0.0)
        taxed = split_at(d, 18.0, 5.0)
        assert taxed.total == pytest.approx(free.total)
        assert taxed.lmp_fee_revenue > 0
        assert taxed.csp_profit < free.csp_profit
        assert taxed.consumer_surplus == pytest.approx(free.consumer_surplus)

    def test_validation(self):
        d = LinearDemand()
        with pytest.raises(EconError):
            split_at(d, 1.0, -0.5)
        with pytest.raises(EconError):
            split_at(d, 1.0, 2.0)  # price below fee


class TestCatalogueSplit:
    def test_nn_has_no_lmp_revenue(self, catalogue):
        split = welfare_split(catalogue, {})
        assert split.lmp_fee_revenue == 0.0
        assert split.consumer_surplus > 0
        assert split.csp_profit > 0

    def test_ur_shifts_value_to_lmps_and_shrinks_pie(self, catalogue):
        nn = welfare_split(catalogue, {})
        ur_fees = unilateral_outcome(catalogue).fees
        ur = welfare_split(catalogue, ur_fees)
        assert ur.lmp_fee_revenue > 0
        assert ur.total < nn.total  # deadweight loss
        assert ur.csp_profit < nn.csp_profit
        assert ur.consumer_surplus < nn.consumer_surplus

    def test_addition(self):
        a = WelfareSplit(1.0, 2.0, 3.0)
        b = WelfareSplit(0.5, 0.5, 0.5)
        c = a + b
        assert c.total == pytest.approx(7.5)
        assert c.consumer_surplus == 1.5


class TestCompetition:
    def test_competitive_price_endpoints(self):
        d = LinearDemand(v_max=30.0)
        assert competitive_price(d, 0.0) == pytest.approx(optimal_price(d, 0.0))
        assert competitive_price(d, 1.0) == 0.0

    def test_intensity_validation(self):
        with pytest.raises(EconError):
            competitive_price(LinearDemand(), 1.5)

    def test_consumer_share_rises_with_competition(self, catalogue):
        """§4.6: 'vigorous competition ... tends to drive most of the
        value into consumer welfare'."""
        grid = [0.0, 0.3, 0.6, 0.9]
        splits = competition_sweep(catalogue, grid)
        shares = [s.consumer_share for s in splits]
        assert shares == sorted(shares)
        assert shares[-1] > 0.85

    def test_total_welfare_rises_with_competition(self, catalogue):
        grid = [0.0, 0.5, 1.0]
        splits = competition_sweep(catalogue, grid)
        totals = [s.total for s in splits]
        assert totals == sorted(totals)
