"""Tests for hierarchical (region → site) traffic aggregation."""

import pytest

from repro.exceptions import TrafficError
from repro.topology.cities import City, CityCatalog
from repro.topology.colocation import ColocationSite
from repro.traffic.hierarchy import (
    RegionProfile,
    aggregate_to_regions,
    hierarchical_matrix,
    profiles_from_catalog,
    region_pair_demands,
)


@pytest.fixture
def catalog():
    return CityCatalog(
        [
            City("A1", "XX", "na", 40.0, -100.0, 8.0),
            City("A2", "XX", "na", 42.0, -95.0, 4.0),
            City("A3", "XX", "na", 38.0, -90.0, 2.0),
            City("B1", "XX", "eu", 50.0, 5.0, 6.0),
            City("B2", "XX", "eu", 48.0, 10.0, 3.0),
        ],
        name="two-region",
    )


@pytest.fixture
def sites(catalog):
    return [
        ColocationSite(city=c.name, member_cities=frozenset({c.name}), bps=frozenset({"BP1", "BP2"}))
        for c in catalog.cities
    ]


@pytest.fixture
def profiles():
    return [
        RegionProfile(region="na", users_m=100.0, gbps_per_m_users=10.0),
        RegionProfile(region="eu", users_m=50.0, gbps_per_m_users=10.0),
    ]


class TestRegionProfiles:
    def test_total(self):
        p = RegionProfile(region="na", users_m=3.0, gbps_per_m_users=25.0)
        assert p.total_gbps == 75.0

    def test_rejects_negative(self):
        with pytest.raises(TrafficError):
            RegionProfile(region="na", users_m=-1.0, gbps_per_m_users=1.0)

    def test_profiles_from_catalog(self, catalog):
        profiles = profiles_from_catalog(
            catalog, users_per_pop=0.5, gbps_per_m_users=10.0
        )
        by_region = {p.region: p for p in profiles}
        assert set(by_region) == {"na", "eu"}
        assert by_region["na"].users_m == pytest.approx(0.5 * (8 + 4 + 2))
        assert by_region["eu"].users_m == pytest.approx(0.5 * (6 + 3))


class TestRegionPairDemands:
    def test_conserves_total(self, profiles):
        split = region_pair_demands(profiles, inter_region_fraction=0.35)
        assert sum(split.values()) == pytest.approx(1500.0)

    def test_intra_inter_split(self, profiles):
        split = region_pair_demands(profiles, inter_region_fraction=0.4)
        assert split[("na", "na")] == pytest.approx(0.6 * 1000.0)
        assert split[("na", "eu")] == pytest.approx(0.4 * 1000.0)
        assert split[("eu", "eu")] == pytest.approx(0.6 * 500.0)
        assert split[("eu", "na")] == pytest.approx(0.4 * 500.0)

    def test_single_region_keeps_everything_intra(self):
        split = region_pair_demands(
            [RegionProfile(region="na", users_m=10.0, gbps_per_m_users=5.0)],
            inter_region_fraction=0.5,
        )
        assert split == {("na", "na"): pytest.approx(50.0)}

    def test_zero_demand_region_excluded(self, profiles):
        profiles = list(profiles) + [
            RegionProfile(region="sa", users_m=0.0, gbps_per_m_users=10.0)
        ]
        split = region_pair_demands(profiles, inter_region_fraction=0.5)
        assert not any("sa" in pair for pair in split)

    def test_rejects_duplicate_region(self, profiles):
        with pytest.raises(TrafficError):
            region_pair_demands(list(profiles) + [profiles[0]])

    def test_rejects_bad_fraction(self, profiles):
        with pytest.raises(TrafficError):
            region_pair_demands(profiles, inter_region_fraction=1.5)


class TestHierarchicalMatrix:
    def test_conserves_total(self, sites, profiles, catalog):
        tm = hierarchical_matrix(
            sites, profiles, catalog=catalog, inter_region_fraction=0.35
        )
        assert tm.total_gbps() == pytest.approx(1500.0)

    def test_aggregation_inverts_expansion(self, sites, profiles, catalog):
        tm = hierarchical_matrix(
            sites, profiles, catalog=catalog, inter_region_fraction=0.4
        )
        rolled = aggregate_to_regions(tm, sites, catalog=catalog)
        expect = region_pair_demands(profiles, inter_region_fraction=0.4)
        assert set(rolled) == set(expect)
        for pair, value in expect.items():
            assert rolled[pair] == pytest.approx(value)

    def test_population_gravity_within_block(self, sites, profiles, catalog):
        tm = hierarchical_matrix(sites, profiles, catalog=catalog)
        # Within the na→eu block, demand scales with mass products:
        # A1 (pop 8) to B1 (pop 6) carries 4x A2 (pop 4) to B2 (pop 3).
        heavy = tm.demand("POC:A1", "POC:B1")
        light = tm.demand("POC:A2", "POC:B2")
        assert heavy == pytest.approx(4.0 * light)

    def test_users_scale_linearly(self, sites, catalog):
        small = [RegionProfile("na", 10.0, 10.0), RegionProfile("eu", 5.0, 10.0)]
        double = [RegionProfile("na", 20.0, 10.0), RegionProfile("eu", 10.0, 10.0)]
        tm1 = hierarchical_matrix(sites, small, catalog=catalog)
        tm2 = hierarchical_matrix(sites, double, catalog=catalog)
        for (pair, v1) in tm1.pairs():
            assert tm2.demand(*pair) == pytest.approx(2.0 * v1)

    def test_region_without_sites_drops_demand(self, sites, catalog):
        profiles = [
            RegionProfile("na", 10.0, 10.0),
            RegionProfile("eu", 5.0, 10.0),
            RegionProfile("ap", 7.0, 10.0),  # no ap sites in the fixture
        ]
        tm = hierarchical_matrix(
            sites, profiles, catalog=catalog, inter_region_fraction=0.5
        )
        rolled = aggregate_to_regions(tm, sites, catalog=catalog)
        assert not any("ap" in pair for pair in rolled)
        # The na/eu blocks are intact.
        assert rolled[("na", "na")] == pytest.approx(0.5 * 100.0)

    def test_deterministic(self, sites, profiles, catalog):
        tm1 = hierarchical_matrix(sites, profiles, catalog=catalog)
        tm2 = hierarchical_matrix(sites, profiles, catalog=catalog)
        assert list(tm1.pairs()) == list(tm2.pairs())

    def test_needs_two_sites(self, profiles, catalog):
        lone = [
            ColocationSite(
                city="A1", member_cities=frozenset({"A1"}), bps=frozenset({"b"})
            )
        ]
        with pytest.raises(TrafficError):
            hierarchical_matrix(lone, profiles, catalog=catalog)


class TestAggregateToRegions:
    def test_rejects_unknown_site(self, sites, catalog):
        from repro.traffic.matrix import TrafficMatrix

        tm = TrafficMatrix(
            nodes=["POC:A1", "ghost"], _demands={("POC:A1", "ghost"): 1.0}
        )
        with pytest.raises(TrafficError):
            aggregate_to_regions(tm, sites, catalog=catalog)
