"""Time-dynamic flow simulation: transfers, arrivals, completions.

The static allocator answers "who gets what bandwidth right now"; this
module plays allocations forward through time, the standard fluid-flow
discrete-event model:

- each transfer has an arrival time and a volume (gigabits);
- between events, every active transfer progresses at its current
  weighted max-min rate;
- events are arrivals and completions; rates are recomputed at each.

This is how throttling becomes *user-visible time*: a 0.25× weight at a
contended edge roughly quadruples a download's completion time — the
§2.4.2 experience, in seconds rather than weights.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import FlowError
from repro.dataplane.flows import Flow
from repro.dataplane.sim import DataplaneSim
from repro.obs import metrics, span

#: Events closer together than this are coalesced (numerical guard).
_TIME_EPS = 1e-9


@dataclass(frozen=True)
class Transfer:
    """A volume to move over a flow, starting at ``arrival_s``."""

    flow: Flow
    arrival_s: float
    volume_gbit: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise FlowError(f"transfer {self.flow.id} arrives before t=0")
        if self.volume_gbit <= 0:
            raise FlowError(f"transfer {self.flow.id} has non-positive volume")


@dataclass(frozen=True)
class TransferOutcome:
    """When a transfer finished and what it experienced."""

    flow_id: str
    arrival_s: float
    completion_s: float
    volume_gbit: float
    blocked: bool = False

    @property
    def duration_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def mean_rate_gbps(self) -> float:
        if self.duration_s <= 0:
            return float("inf")
        return self.volume_gbit / self.duration_s


@dataclass
class TimelineResult:
    """All completions plus conveniences."""

    outcomes: Dict[str, TransferOutcome] = field(default_factory=dict)

    def completion(self, flow_id: str) -> float:
        try:
            return self.outcomes[flow_id].completion_s
        except KeyError:
            raise FlowError(f"unknown transfer: {flow_id}") from None

    def duration(self, flow_id: str) -> float:
        return self.outcomes[flow_id].duration_s

    def makespan(self) -> float:
        finite = [
            o.completion_s for o in self.outcomes.values() if not o.blocked
        ]
        return max(finite, default=0.0)


def simulate_transfers(
    sim: DataplaneSim, transfers: Sequence[Transfer]
) -> TimelineResult:
    """Fluid-flow simulation of a transfer schedule.

    Blocked flows (edge multiplier 0) never complete; their outcome is
    marked ``blocked`` with infinite completion time.  Rates are the
    static allocator's output over the currently-active transfer set,
    recomputed at every arrival and completion.
    """
    ids = [t.flow.id for t in transfers]
    if len(set(ids)) != len(ids):
        raise FlowError("duplicate transfer ids")

    pending = sorted(transfers, key=lambda t: (t.arrival_s, t.flow.id))
    remaining: Dict[str, float] = {}
    active: Dict[str, Transfer] = {}
    result = TimelineResult()

    def current_rates() -> Dict[str, float]:
        if not active:
            return {}
        allocation = sim.allocate([t.flow for t in active.values()])
        for fid in allocation.blocked_flows:
            transfer = active.pop(fid)
            remaining.pop(fid, None)
            result.outcomes[fid] = TransferOutcome(
                flow_id=fid,
                arrival_s=transfer.arrival_s,
                completion_s=float("inf"),
                volume_gbit=transfer.volume_gbit,
                blocked=True,
            )
        return {fid: allocation.rates_gbps[fid] for fid in active}

    with span("dataplane.timeline", transfers=len(transfers)):
        _simulate_loop(pending, active, remaining, result, current_rates)
    return result


def _simulate_loop(
    pending: List[Transfer],
    active: Dict[str, Transfer],
    remaining: Dict[str, float],
    result: TimelineResult,
    current_rates,
) -> None:
    now = 0.0
    while pending or active:
        metrics().inc("dataplane.timeline.steps")
        rates = current_rates()
        next_arrival = pending[0].arrival_s if pending else float("inf")
        # Earliest completion among active transfers at current rates.
        next_completion = float("inf")
        for fid, rate in rates.items():
            if rate > 0:
                next_completion = min(
                    next_completion, now + remaining[fid] / rate
                )
        if next_arrival == float("inf") and next_completion == float("inf"):
            # Only zero-rate actives remain: they starve forever.
            for fid, transfer in list(active.items()):
                result.outcomes[fid] = TransferOutcome(
                    flow_id=fid,
                    arrival_s=transfer.arrival_s,
                    completion_s=float("inf"),
                    volume_gbit=transfer.volume_gbit,
                    blocked=True,
                )
            break

        horizon = min(next_arrival, next_completion)
        elapsed = max(0.0, horizon - now)
        for fid, rate in rates.items():
            remaining[fid] -= rate * elapsed
        now = horizon

        # Complete everything that drained (ties complete together).
        for fid in sorted(list(active)):
            if fid in remaining and remaining[fid] <= _TIME_EPS:
                transfer = active.pop(fid)
                remaining.pop(fid)
                result.outcomes[fid] = TransferOutcome(
                    flow_id=fid,
                    arrival_s=transfer.arrival_s,
                    completion_s=now,
                    volume_gbit=transfer.volume_gbit,
                )
        # Admit arrivals at this instant.
        while pending and pending[0].arrival_s <= now + _TIME_EPS:
            transfer = pending.pop(0)
            active[transfer.flow.id] = transfer
            remaining[transfer.flow.id] = transfer.volume_gbit
