"""E3 — §4.5: NBS fees t = (p − r·c)/2 and the incumbency advantage.

Shape targets: fee decreasing in r·c; incumbent LMPs (low churn risk)
extract more than entrants; incumbent CSPs (high stickiness) pay less.
"""

import pytest

from repro.econ.bargaining import bilateral_fee, incumbency_comparison, nbs_fee
from repro.econ.csp import CSP
from repro.econ.demand import LinearDemand
from repro.econ.lmp import LMP, entrant, incumbent

PRICE = 15.0
CHURN_GRID = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8]
ACCESS = 50.0


def fee_sweep():
    return [nbs_fee(PRICE, r, ACCESS) for r in CHURN_GRID]


def test_bench_e3_nbs(benchmark, report):
    fees = benchmark(fee_sweep)

    lines = [f"{'churn r':>8}{'fee t':>9}"]
    for r, t in zip(CHURN_GRID, fees):
        lines.append(f"{r:>8.2f}{t:>9.3f}")

    comparison = incumbency_comparison(
        incumbent(), entrant(),
        CSP(name="big", demand=LinearDemand(v_max=30.0), incumbency=1.0),
        CSP(name="new", demand=LinearDemand(v_max=30.0), incumbency=0.1),
        price=PRICE,
    )
    lines += [
        "",
        f"incumbent LMP fee:  {comparison.incumbent_lmp_fee:8.3f}",
        f"entrant  LMP fee:   {comparison.entrant_lmp_fee:8.3f}",
        f"LMP advantage:      {comparison.lmp_fee_gap:8.3f}",
        f"incumbent CSP pays: {comparison.incumbent_csp_fee:8.3f}",
        f"entrant  CSP pays:  {comparison.entrant_csp_fee:8.3f}",
        f"CSP advantage:      {comparison.csp_fee_gap:8.3f}",
    ]
    report("NBS fee vs churn (p=%.1f, c=%.0f):\n%s" % (PRICE, ACCESS, "\n".join(lines)))

    # Fee is strictly decreasing in churn.
    assert all(b < a for a, b in zip(fees, fees[1:]))
    # The incumbency 2×2 comes out as the paper argues.
    assert comparison.lmp_fee_gap > 0
    assert comparison.csp_fee_gap > 0


def test_bench_e3_fee_can_go_negative(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """The paper notes t < 0 (LMP pays the CSP) when r·c > p — must-carry
    content against a vulnerable LMP."""
    csp = CSP(name="musthave", demand=LinearDemand(v_max=30.0), incumbency=1.0)
    fragile = LMP(name="fragile", num_customers=0.05, access_price=60.0,
                  vulnerability=0.9)
    fee = bilateral_fee(csp, fragile, price=10.0)
    report(f"must-carry case: p=10, r·c={fragile.churn_rate(csp) * 60.0:.1f} "
           f"-> fee={fee:.2f} (LMP pays CSP)")
    assert fee < 0
