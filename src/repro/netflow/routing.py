"""Heuristic routing of a traffic matrix onto a link set.

Two engines live here:

- :func:`route_shortest_path` — every demand takes its geographic shortest
  path; no splitting.  Fast, conservative, and what a plain IGP would do.
- :func:`route_greedy_multipath` — demands are placed largest-first on the
  shortest path *with sufficient residual capacity*, splitting across
  successive residual paths when no single path fits.  A good approximation
  of what a traffic-engineered backbone achieves, at a fraction of the LP's
  cost.

Both return a :class:`RoutingOutcome` with per-link loads, so callers can
inspect utilization as well as feasibility.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import FlowError
from repro.topology.graph import Network
from repro.netflow.paths import Path, all_pairs_shortest_paths
from repro.traffic.matrix import TrafficMatrix


@dataclass
class RoutingOutcome:
    """Result of routing a TM: placement success and per-link loads."""

    feasible: bool
    link_load_gbps: Dict[str, float]
    unplaced_gbps: float = 0.0
    paths_used: Dict[Tuple[str, str], List[Tuple[Path, float]]] = field(
        default_factory=dict
    )

    def utilization(self, network: Network) -> Dict[str, float]:
        """Load / capacity for every link carrying traffic."""
        out = {}
        for lid, load in self.link_load_gbps.items():
            out[lid] = load / network.link(lid).capacity_gbps
        return out

    def max_utilization(self, network: Network) -> float:
        util = self.utilization(network)
        return max(util.values(), default=0.0)

    def total_flow_km(self, network: Network) -> float:
        """Flow·km actually routed (cost-of-carriage proxy)."""
        return sum(
            network.link(lid).length_km * load
            for lid, load in self.link_load_gbps.items()
        )


def route_shortest_path(network: Network, tm: TrafficMatrix) -> RoutingOutcome:
    """Route every demand on its geographic shortest path, then check caps.

    Feasible only if every demand has a path *and* no link exceeds its
    capacity once all demands are stacked.  This is deliberately
    conservative — it never splits flow — and is the cheapest oracle.
    """
    tm.validate_against(network.node_ids)
    sp = all_pairs_shortest_paths(network)
    loads: Dict[str, float] = {}
    paths_used: Dict[Tuple[str, str], List[Tuple[Path, float]]] = {}
    unplaced = 0.0
    for (src, dst), demand in tm.pairs():
        path = sp.get((src, dst))
        if path is None:
            unplaced += demand
            continue
        paths_used[(src, dst)] = [(path, demand)]
        for lid in path.link_ids:
            loads[lid] = loads.get(lid, 0.0) + demand

    over = any(
        load > network.link(lid).capacity_gbps * (1 + 1e-9)
        for lid, load in loads.items()
    )
    return RoutingOutcome(
        feasible=(unplaced == 0.0 and not over),
        link_load_gbps=loads,
        unplaced_gbps=unplaced,
        paths_used=paths_used,
    )


def _residual_dijkstra(
    network: Network,
    residual: Dict[str, float],
    source: str,
    target: str,
    min_capacity: float,
) -> Optional[Path]:
    """Shortest path by length using only links with residual >= min_capacity."""
    dist: Dict[str, float] = {source: 0.0}
    prev: Dict[str, Tuple[str, str]] = {}
    heap: List[Tuple[float, str]] = [(0.0, source)]
    visited = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for link in network.incident_links(node):
            if residual.get(link.id, 0.0) < min_capacity:
                continue
            other = link.other(node)
            nd = d + link.length_km
            if nd < dist.get(other, float("inf")):
                dist[other] = nd
                prev[other] = (node, link.id)
                heapq.heappush(heap, (nd, other))
    if target not in visited:
        return None
    nodes = [target]
    links: List[str] = []
    while nodes[-1] != source:
        parent, lid = prev[nodes[-1]]
        links.append(lid)
        nodes.append(parent)
    nodes.reverse()
    links.reverse()
    return Path(nodes=tuple(nodes), link_ids=tuple(links))


def route_greedy_multipath(
    network: Network,
    tm: TrafficMatrix,
    *,
    max_paths_per_demand: int = 8,
    split_epsilon_gbps: float = 1e-6,
) -> RoutingOutcome:
    """Largest-demand-first placement with residual-capacity splitting.

    For each demand (largest first) the router repeatedly finds the
    shortest path whose bottleneck residual is positive, places as much of
    the remaining demand as fits, and recurses, up to
    ``max_paths_per_demand`` splits.  Feasible iff everything places.
    """
    if max_paths_per_demand < 1:
        raise FlowError(f"max_paths_per_demand must be >= 1, got {max_paths_per_demand}")
    tm.validate_against(network.node_ids)
    residual = {link.id: link.capacity_gbps for link in network.iter_links()}
    loads: Dict[str, float] = {lid: 0.0 for lid in residual}
    paths_used: Dict[Tuple[str, str], List[Tuple[Path, float]]] = {}
    unplaced = 0.0

    demands = sorted(tm.pairs(), key=lambda item: (-item[1], item[0]))
    for (src, dst), demand in demands:
        remaining = demand
        placed_paths: List[Tuple[Path, float]] = []
        for _ in range(max_paths_per_demand):
            if remaining <= split_epsilon_gbps:
                remaining = 0.0
                break
            path = _residual_dijkstra(network, residual, src, dst, split_epsilon_gbps)
            if path is None:
                break
            bottleneck = min(residual[lid] for lid in path.link_ids)
            take = min(remaining, bottleneck)
            for lid in path.link_ids:
                residual[lid] -= take
                loads[lid] += take
            placed_paths.append((path, take))
            remaining -= take
        if placed_paths:
            paths_used[(src, dst)] = placed_paths
        unplaced += max(remaining, 0.0)

    loads = {lid: load for lid, load in loads.items() if load > 0.0}
    return RoutingOutcome(
        feasible=unplaced <= split_epsilon_gbps * max(1, tm.num_pairs),
        link_load_gbps=loads,
        unplaced_gbps=unplaced,
        paths_used=paths_used,
    )
