"""Tests for seeded randomness helpers."""

import numpy as np
import pytest

from repro.rand import make_rng, spawn, stable_choice


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).random()
        b = make_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_of_count(self):
        """Adding children must not perturb earlier children's draws."""
        a = spawn(make_rng(7), 2)
        b = spawn(make_rng(7), 4)
        assert a[0].random() == b[0].random()
        assert a[1].random() == b[1].random()

    def test_children_differ(self):
        children = spawn(make_rng(7), 3)
        draws = {c.random() for c in children}
        assert len(draws) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)

    def test_zero_children(self):
        assert spawn(make_rng(1), 0) == []


class TestStableChoice:
    def test_single(self):
        items = [("a", 1), ("b", 2), ("c", 3)]
        choice = stable_choice(make_rng(3), items)
        assert choice in items
        assert isinstance(choice, tuple)  # tuples survive intact

    def test_multiple_without_replacement(self):
        items = list(range(10))
        chosen = stable_choice(make_rng(3), items, size=5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stable_choice(make_rng(1), [])
