"""Property tests: the bid-language axioms hold for arbitrary inputs."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.auction.bids import (
    AdditiveCost,
    FixedPlusAdditiveCost,
    SubsetOverrideCost,
    VolumeDiscountCost,
)

link_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1, max_size=8, unique=True,
)
prices = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def price_maps(draw):
    names = draw(link_names)
    return {name: draw(prices) for name in names}


@st.composite
def subset_pairs(draw, domain):
    """Two subsets with s ⊆ t, drawn from a domain."""
    items = sorted(domain)
    t = draw(st.lists(st.sampled_from(items), unique=True, max_size=len(items)))
    s = draw(st.lists(st.sampled_from(t), unique=True, max_size=len(t))) if t else []
    return frozenset(s), frozenset(t)


class TestAdditive:
    @given(price_maps(), st.data())
    def test_monotone(self, pm, data):
        fn = AdditiveCost(pm)
        s, t = data.draw(subset_pairs(fn.domain))
        assert fn.cost(s) <= fn.cost(t) + 1e-9

    @given(price_maps())
    def test_empty_free(self, pm):
        assert AdditiveCost(pm).cost(frozenset()) == 0.0

    @given(price_maps(), st.data())
    def test_additivity(self, pm, data):
        fn = AdditiveCost(pm)
        s, t = data.draw(subset_pairs(fn.domain))
        disjoint = t - s
        assert fn.cost(s) + fn.cost(disjoint) == pytest.approx(fn.cost(t))


class TestVolumeDiscount:
    @given(price_maps(), st.data(),
           st.lists(st.floats(min_value=0.0, max_value=0.9), min_size=0,
                    max_size=3))
    @settings(max_examples=60)
    def test_monotone_and_bounded(self, pm, data, raw_discs):
        discs = sorted(set(round(d, 3) for d in raw_discs))
        tiers = tuple((i + 2, d) for i, d in enumerate(discs))
        fn = VolumeDiscountCost(pm, tiers=tiers)
        s, t = data.draw(subset_pairs(fn.domain))
        base = AdditiveCost(pm)
        # Discounted price never exceeds the additive price.
        assert fn.cost(t) <= base.cost(t) + 1e-9
        assert fn.cost(s) >= 0


class TestFixedPlusAdditive:
    @given(price_maps(), st.floats(min_value=0.0, max_value=1e5), st.data())
    def test_monotone(self, pm, fixed, data):
        fn = FixedPlusAdditiveCost(pm, fixed=fixed)
        s, t = data.draw(subset_pairs(fn.domain))
        assert fn.cost(s) <= fn.cost(t) + 1e-9

    @given(price_maps(), st.floats(min_value=0.0, max_value=1e5))
    def test_empty_free_despite_fixed(self, pm, fixed):
        assert FixedPlusAdditiveCost(pm, fixed=fixed).cost([]) == 0.0


class TestSubsetOverride:
    @given(price_maps(), st.data(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_override_never_increases_cost(self, pm, data, frac):
        base = AdditiveCost(pm)
        bundle = data.draw(
            st.lists(st.sampled_from(sorted(pm)), unique=True, min_size=1)
        )
        bundle = frozenset(bundle)
        override_price = base.cost(bundle) * frac
        fn = SubsetOverrideCost(base, {bundle: override_price})
        s, t = data.draw(subset_pairs(fn.domain))
        for subset in (s, t):
            assert fn.cost(subset) <= base.cost(subset) + 1e-9
