"""Retry, circuit breaking, and the MILP→heuristic clearing fallback.

A POC in production cannot crash because one MILP solve stalled or one
transient error fired.  This module provides the three standard tools —
bounded retry with exponential backoff + jitter, a call-count circuit
breaker, and a primary/fallback engine pair — wired for *simulation*:
delays come from an injectable ``sleep`` (tests and the chaos harness
pass a virtual clock) and jitter from :mod:`repro.rand`, so every
campaign is reproducible from one integer seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Type

from repro.exceptions import (
    AuctionError,
    NoFeasibleSelectionError,
    ReproError,
    SolverTimeoutError,
)
from repro.auction.constraints import Constraint
from repro.auction.provider import Offer
from repro.auction.vcg import AuctionConfig, AuctionResult, run_auction
from repro.rand import SeedLike, derive_rng, make_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    Attempt ``k`` (0-based) sleeps ``base_delay_s · multiplier^k`` before
    retrying, capped at ``max_delay_s`` and scaled by a uniform jitter in
    ``[1 − jitter, 1 + jitter]`` so synchronized retries don't stampede.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ReproError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_s(self, attempt: int, rng) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered.

        The cap is applied *before* exponentiation: ``multiplier**attempt``
        overflows a float near attempt ≈ 1000, and any attempt past the
        point where the raw backoff crosses ``max_delay_s`` sleeps exactly
        ``max_delay_s`` anyway.
        """
        if self.base_delay_s == 0.0:
            raw = 0.0
        elif self.multiplier == 1.0:
            raw = min(self.base_delay_s, self.max_delay_s)
        else:
            ceiling = max(self.max_delay_s, self.base_delay_s)
            capped = (
                attempt * math.log(self.multiplier)
                > math.log(ceiling / self.base_delay_s)
            )
            if capped:
                raw = self.max_delay_s
            else:
                raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        if self.jitter:
            raw *= float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        return raw

    def delay_for(self, attempt: int, root: SeedLike, *parts: object) -> float:
        """Stateless jittered backoff: reproducible without shared state.

        :meth:`delay_s` draws jitter from a *stream* — callers that share
        an rng get delays that depend on call order, which is fine inside
        one retry loop but not across concurrent transport requests.
        This derives a fresh rng from ``(root, "retry-delay", attempt,
        *parts)`` via :func:`repro.rand.derive_rng`, so the schedule for
        any (request, attempt) pair is a pure function of the seed —
        byte-reproducible regardless of interleaving, never the global
        ``random`` module.
        """
        rng = derive_rng(root, "retry-delay", int(attempt), *parts)
        return self.delay_s(attempt, rng)


def call_with_retry(
    fn: Callable[[], object],
    *,
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
    seed: SeedLike = 0,
    sleep: Optional[Callable[[float], None]] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> object:
    """Call ``fn`` until it succeeds or the policy's attempts run out.

    Only exceptions in ``retry_on`` are retried; anything else propagates
    immediately.  The final failure re-raises the last exception.
    ``sleep`` defaults to a no-op (simulation time) — pass
    ``time.sleep`` for wall-clock behaviour.
    """
    pol = policy or RetryPolicy()
    rng = make_rng(seed)
    do_sleep = sleep or (lambda _s: None)
    last: Optional[BaseException] = None
    for attempt in range(pol.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt + 1 >= pol.max_attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            do_sleep(pol.delay_s(attempt, rng))
    assert last is not None
    raise last


class CircuitBreaker:
    """A call-count circuit breaker (deterministic: no wall clock).

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` returns False for ``cooldown_calls`` calls, after
    which one probe call is let through (half-open).  A success closes
    the circuit, a failure re-opens it.
    """

    def __init__(self, *, failure_threshold: int = 3, cooldown_calls: int = 5) -> None:
        if failure_threshold < 1:
            raise ReproError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_calls < 1:
            raise ReproError(f"cooldown_calls must be >= 1, got {cooldown_calls}")
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        self._half_open = False

    @property
    def state(self) -> str:
        if self._cooldown_remaining > 0:
            return "open"
        if self._half_open:
            return "half-open"
        return "closed"

    @property
    def cooldown_remaining(self) -> int:
        """Calls left before the next half-open probe (0 when not open)."""
        return self._cooldown_remaining

    def peek(self) -> bool:
        """Would :meth:`allow` return True right now?  Never mutates.

        Metrics, logging, and health endpoints must use this (or
        :attr:`state`) instead of :meth:`allow`: the latter counts the
        call against the cooldown, so a gauge scraped every second would
        silently march an open breaker toward half-open.
        """
        return self._cooldown_remaining == 0

    def allow(self) -> bool:
        """May the protected call run right now?  (Counts down cooldown.)

        Only the protected call path should invoke this — observers use
        :meth:`peek`, which answers without spending a cooldown tick.
        """
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
            if self._cooldown_remaining == 0:
                self._half_open = True
            return False
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._half_open = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._half_open or self._consecutive_failures >= self.failure_threshold:
            self._cooldown_remaining = self.cooldown_calls
            self._consecutive_failures = 0
            self._half_open = False


@dataclass(frozen=True)
class ClearingProvenance:
    """Which engine actually produced an auction result, and why."""

    engine: str  # method string of the engine that produced the result
    fallback: bool  # True when the primary engine did not produce it
    attempts: int  # calls made to the primary engine (0 = breaker open)
    breaker_state: str
    failure: Optional[str] = None  # repr of the primary's last error

    def describe(self) -> str:
        if not self.fallback:
            return f"{self.engine} (primary, {self.attempts} attempt(s))"
        why = self.failure or "circuit open"
        return f"{self.engine} (fallback after {self.attempts} attempt(s): {why})"


class ResilientAuctioneer:
    """Clears auctions through a primary engine with heuristic fallback.

    The primary (by default the exact MILP) is wrapped in retry + circuit
    breaker; on :class:`SolverTimeoutError`, repeated failure, or an open
    circuit, the clearing falls back to a deterministic heuristic engine
    and the :class:`ClearingProvenance` records that.  Infeasibility
    (:class:`NoFeasibleSelectionError`) is *not* retried or masked — no
    engine can conjure capacity that was never offered.
    """

    def __init__(
        self,
        *,
        primary_method: str = "milp",
        fallback_method: str = "greedy-drop",
        milp_time_limit_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        seed: SeedLike = 0,
        sleep: Optional[Callable[[float], None]] = None,
        before_primary: Optional[Callable[[], None]] = None,
    ) -> None:
        if primary_method == fallback_method:
            raise AuctionError("primary and fallback engines must differ")
        self.primary_method = primary_method
        self.fallback_method = fallback_method
        self.milp_time_limit_s = milp_time_limit_s
        self.retry = retry or RetryPolicy(max_attempts=2)
        self.breaker = breaker or CircuitBreaker()
        self.rng = make_rng(seed)
        self.sleep = sleep
        #: Test/chaos hook: runs before every primary attempt and may
        #: raise (e.g. a simulated solver stall).
        self.before_primary = before_primary
        self.history: List[ClearingProvenance] = []

    def _run(self, offers: Sequence[Offer], constraint: Constraint, method: str) -> AuctionResult:
        cfg = AuctionConfig(method=method, milp_time_limit_s=self.milp_time_limit_s)
        return run_auction(offers, constraint, config=cfg)

    def clear(
        self, offers: Sequence[Offer], constraint: Constraint
    ) -> Tuple[AuctionResult, ClearingProvenance]:
        """Clear the auction; never raises for primary-engine trouble."""
        attempts = 0
        failure: Optional[str] = None
        result: Optional[AuctionResult] = None
        primary_exc: Optional[BaseException] = None

        if self.breaker.allow():

            def attempt() -> AuctionResult:
                nonlocal attempts
                attempts += 1
                if self.before_primary is not None:
                    self.before_primary()
                return self._run(offers, constraint, self.primary_method)

            try:
                result = call_with_retry(
                    attempt,
                    policy=self.retry,
                    # Timeouts and engine-level errors are worth retrying;
                    # infeasibility is a property of the offers, not luck.
                    retry_on=(SolverTimeoutError,),
                    seed=self.rng,
                    sleep=self.sleep,
                )
                self.breaker.record_success()
            except SolverTimeoutError as exc:
                failure = repr(exc)
                primary_exc = exc
                self.breaker.record_failure()
            except NoFeasibleSelectionError:
                raise
            except AuctionError as exc:
                # e.g. non-additive bids the MILP cannot express: fall
                # back rather than crash, but don't count it against the
                # breaker (it is deterministic, not transient).
                failure = repr(exc)
                primary_exc = exc

        if result is not None:
            prov = ClearingProvenance(
                engine=self.primary_method,
                fallback=False,
                attempts=attempts,
                breaker_state=self.breaker.state,
            )
        else:
            try:
                result = self._run(offers, constraint, self.fallback_method)
            except NoFeasibleSelectionError:
                raise
            except ReproError as fb_exc:
                # The safety net itself gave way.  Surface the *primary*
                # engine's error (the root cause) with full provenance
                # attached, keep the provenance in the history, and leave
                # the breaker untouched — a fallback failure must not
                # close or advance it.
                prov = ClearingProvenance(
                    engine=self.fallback_method,
                    fallback=True,
                    attempts=attempts,
                    breaker_state=self.breaker.state,
                    failure=failure or repr(fb_exc),
                )
                self.history.append(prov)
                original = primary_exc if primary_exc is not None else fb_exc
                original.provenance = prov
                raise original from fb_exc
            prov = ClearingProvenance(
                engine=self.fallback_method,
                fallback=True,
                attempts=attempts,
                breaker_state=self.breaker.state,
                failure=failure,
            )
        self.history.append(prov)
        return result, prov

    @property
    def fallback_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(1 for p in self.history if p.fallback) / len(self.history)
