"""Tests for the seeded TCP fault proxy.

Chunk boundaries are OS-scheduling-dependent, so these tests pin the
*decision schedule* (a pure function of seed/connection/direction/chunk)
and the *semantics* under faults — a clean proxy is transparent, a
hostile one still yields terminal client outcomes — not byte timing.
"""

import asyncio

import pytest

from repro.exceptions import ServiceError, TransportError
from repro.rand import derive_rng
from repro.resilience import FAULT_KINDS, FaultProxy, NetFaultConfig
from repro.service import ServiceClient, ServiceServer


async def echo_handler(message):
    return {"response": {"request_id": 1, "kind": "health", "status": "ok",
                         "version": 1, "latency_s": 0.0,
                         "payload": {"echo": message.get("params", {})}}}


class TestConfig:
    def test_negative_probability_refused(self):
        with pytest.raises(ServiceError, match="non-negative"):
            NetFaultConfig(drop_p=-0.1)

    def test_mass_over_one_refused(self):
        with pytest.raises(ServiceError, match="sum"):
            NetFaultConfig(drop_p=0.6, reset_p=0.6)

    def test_negative_delay_bound_refused(self):
        with pytest.raises(ServiceError, match="delay_max_s"):
            NetFaultConfig(delay_max_s=-1.0)

    def test_verdict_maps_cumulative_mass_in_kind_order(self):
        config = NetFaultConfig(reset_p=0.1, drop_p=0.1, truncate_p=0.1,
                                duplicate_p=0.1, delay_p=0.1)
        assert config.verdict(0.05) == "reset"
        assert config.verdict(0.15) == "drop"
        assert config.verdict(0.25) == "truncate"
        assert config.verdict(0.35) == "duplicate"
        assert config.verdict(0.45) == "delay"
        assert config.verdict(0.75) == "forward"

    def test_zero_config_always_forwards(self):
        config = NetFaultConfig()
        assert all(config.verdict(u / 10) == "forward" for u in range(10))

    def test_decision_schedule_is_seed_deterministic(self):
        config = NetFaultConfig(drop_p=0.3, delay_p=0.3)

        def schedule(seed):
            return [
                config.verdict(float(
                    derive_rng(seed, "netfault", 1, "c2s", i).uniform()))
                for i in range(32)
            ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


class TestProxy:
    def test_clean_proxy_is_transparent(self):
        async def main():
            server = ServiceServer(echo_handler)
            upstream = await server.start()
            proxy = FaultProxy(upstream, NetFaultConfig(), seed=1)
            addr = await proxy.start()
            client = ServiceClient([addr], seed=1)
            try:
                resp = await client.request(
                    "health", {"mark": 42}, deadline_s=2.0)
            finally:
                await client.close()
                await proxy.stop()
                await server.stop()
            assert resp.status == "ok"
            assert resp.payload["echo"] == {"mark": 42}
            assert proxy.stats["forward"] >= 2  # request + reply chunks
            assert sum(proxy.stats[k] for k in FAULT_KINDS) == 0

        asyncio.run(main())

    def test_always_reset_kills_every_attempt(self):
        async def main():
            server = ServiceServer(echo_handler)
            upstream = await server.start()
            proxy = FaultProxy(upstream, NetFaultConfig(reset_p=1.0), seed=2)
            addr = await proxy.start()
            client = ServiceClient([addr], seed=2)
            try:
                with pytest.raises(TransportError, match="budget exhausted"):
                    await client.request("health", deadline_s=0.5)
                assert proxy.stats["reset"] >= 1
                assert (client.retry_counts["reset"]
                        + client.retry_counts["timeout"]
                        + client.retry_counts["connect"]) >= 1
            finally:
                await client.close()
                await proxy.stop()
                await server.stop()

        asyncio.run(main())

    def test_faulty_wire_still_yields_terminal_answers(self):
        """Drops and delays cost retries, never a hung request."""

        async def main():
            server = ServiceServer(echo_handler)
            upstream = await server.start()
            proxy = FaultProxy(
                upstream, NetFaultConfig(drop_p=0.15, delay_p=0.2,
                                         delay_max_s=0.01),
                seed=3,
            )
            addr = await proxy.start()
            client = ServiceClient([addr], seed=3)
            outcomes = []
            try:
                for _ in range(12):
                    try:
                        resp = await client.request("health", deadline_s=2.0)
                        outcomes.append(resp.status)
                    except TransportError:
                        outcomes.append("exhausted")
            finally:
                await client.close()
                await proxy.stop()
                await server.stop()
            return outcomes, proxy

        outcomes, proxy = asyncio.run(main())
        assert len(outcomes) == 12  # nothing hung
        assert outcomes.count("ok") >= 8  # retries recover most drops
        assert sum(proxy.stats.values()) > 0

    def test_address_requires_started_proxy(self):
        proxy = FaultProxy(("127.0.0.1", 1), NetFaultConfig())
        with pytest.raises(ServiceError, match="not started"):
            proxy.address
