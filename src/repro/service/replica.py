"""Hot-standby replication and failover for the POC service.

The availability story has three parts, all built on the write-ahead
journal (:mod:`repro.service.journal`):

- :class:`StandbyReplica` *tails* the primary's journal file —
  incremental reads, torn-tail tolerant — and folds each record into a
  :class:`~repro.service.journal.JournalState`, so at every moment it
  holds the primary's snapshot, counters, and event log.  It answers
  health probes about its lag while in the ``standby`` role, and when
  its liveness probe of the primary fails ``probe_failures`` times in a
  row it **promotes**: one final journal catch-up, then
  :meth:`~repro.service.daemon.PocService.start_from_recovery` brings
  up a full service that continues exactly where the primary died.

- :class:`FailoverHarness` is the deterministic, in-process form of the
  client's failover protocol: it routes ``submit`` calls to the active
  service, detects the requests the dying primary abandoned, parks
  arrivals during the dead gap, and replays them (within their original
  deadline budgets) into the promoted standby — recording exactly one
  failover incident.  On a virtual clock the whole
  kill-mid-campaign run (:func:`run_failover_benchmark`) is a pure
  function of its seed: two runs produce byte-identical
  :class:`~repro.service.loadgen.LoadReport` s.

- :func:`run_socket_campaign` is the wall-clock, real-socket form used
  by the CLI and the CI failover smoke: the same request plan played
  through a :class:`~repro.service.transport.ServiceClient` whose
  endpoint list includes the standby, with ``SIGKILL``-the-primary
  chaos handled by retry + endpoint failover.  Wall time is not
  reproducible, so this path asserts semantics (zero unanswered, one
  failover, clean journal) rather than bytes.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.exceptions import JournalError, ServiceError, TransportError
from repro.service.clock import VirtualClock, WallClock, run_virtual
from repro.service.daemon import PocService, ServiceConfig
from repro.service.journal import Journal, JournalState, decode_record
from repro.service.loadgen import (
    ChaosPlan,
    LoadgenConfig,
    LoadReport,
    build_request_plan,
    run_load,
    summarize,
)
from repro.service.requests import Response
from repro.service.transport import ServiceClient, service_handler


class StandbyReplica:
    """Tail the primary's journal; promote when the primary goes dark."""

    def __init__(
        self,
        journal_path,
        network,
        offers,
        tm,
        *,
        config: Optional[ServiceConfig] = None,
        clock=None,
        seed: int = 0,
        probe: Optional[Callable[[], "asyncio.Future"]] = None,
        journal: Optional[Journal] = None,
        checkpoint=None,
        poll_interval_s: float = 0.05,
        probe_failures: int = 3,
    ) -> None:
        if probe_failures < 1:
            raise ServiceError("probe_failures must be >= 1")
        self.journal_path = journal_path
        self.clock = clock if clock is not None else WallClock()
        self.poll_interval_s = float(poll_interval_s)
        self.probe_failures = int(probe_failures)
        self._probe = probe
        self.state = JournalState()
        self.role = "standby"
        self.service: Optional[PocService] = None
        self._offset = 0
        self._pending_tail = b""
        self._make_service = lambda: PocService(
            network, offers, tm,
            config=config, clock=self.clock, seed=seed,
            journal=journal, checkpoint=checkpoint,
        )

    # -- journal tailing ------------------------------------------------------

    def poll(self) -> int:
        """Fold newly-appended journal records into the state.

        Returns the number of records applied.  A partial last line is
        held back (the primary may still be mid-write); corruption
        *before* the tail raises :class:`JournalError`.
        """
        try:
            with open(self.journal_path, "rb") as handle:
                handle.seek(self._offset)
                fresh = handle.read()
        except FileNotFoundError:
            return 0
        if not fresh:
            return 0
        buffer = self._pending_tail + fresh
        self._offset += len(fresh)
        applied = 0
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line, buffer = buffer[:newline], buffer[newline + 1:]
            record = decode_record(line.decode("utf-8"))
            if record["seq"] != self.state.seq + 1:
                raise JournalError(
                    f"standby tail out of sequence: expected "
                    f"{self.state.seq + 1}, found {record['seq']}"
                )
            self.state.apply(record)
            applied += 1
        self._pending_tail = buffer
        if applied:
            obs.metrics().inc("service.standby_records", applied)
        return applied

    @property
    def lag_bytes(self) -> int:
        return len(self._pending_tail)

    def health_summary(self) -> Dict[str, object]:
        """What a pre-promotion health probe of the standby sees."""
        return {
            "role": self.role,
            "seq": self.state.seq,
            "version": self.state.version,
            "primary_drained": self.state.drained,
            "has_snapshot": self.state.snapshot_payload is not None,
        }

    # -- promotion ------------------------------------------------------------

    async def promote(self) -> PocService:
        """Catch up one last time and take over as primary."""
        if self.role == "primary":
            assert self.service is not None
            return self.service
        self.poll()
        # Whatever remains buffered now is a torn tail from the dead
        # primary's final, interrupted write: checksum-unverifiable by
        # construction, and dropped exactly as recovery drops it.
        self._pending_tail = b""
        service = self._make_service()
        await service.start_from_recovery(self.state)
        self.service = service
        self.role = "primary"
        obs.metrics().inc("service.failovers")
        return service

    async def run(self) -> Optional[PocService]:
        """Watch loop: tail, probe, and promote on sustained probe failure.

        Returns the promoted service, or ``None`` if the primary
        drained cleanly (an orderly shutdown needs no failover).
        """
        if self._probe is None:
            raise ServiceError("standby needs a liveness probe to run()")
        failures = 0
        while True:
            self.poll()
            if self.state.drained:
                return None
            try:
                alive = bool(await self._probe())
            except Exception:
                alive = False
            failures = 0 if alive else failures + 1
            if failures >= self.probe_failures:
                self.poll()
                if self.state.drained:
                    return None
                return await self.promote()
            await self.clock.sleep(self.poll_interval_s)


def standby_handler(replica: StandbyReplica):
    """Wire adapter for a standby: health answers, everything else waits.

    Before promotion only ``health`` gets a real answer (role, lag,
    replicated version); other kinds get a *retryable* error frame so a
    failing-over client keeps retrying until promotion completes.
    After promotion this delegates to the promoted service's handler.
    """
    promoted_handler = None

    async def handle(message: Dict[str, object]) -> Dict[str, object]:
        nonlocal promoted_handler
        if replica.service is not None:
            if promoted_handler is None:
                promoted_handler = service_handler(replica.service)
            return await promoted_handler(message)
        if message.get("kind") == "health":
            response = Response(
                request_id=0, kind="health", status="ok",
                version=replica.state.version, latency_s=0.0,
                payload=replica.health_summary(),
            )
            return {"response": response.to_dict()}
        return {"error": "standby-not-promoted", "retryable": True}

    return handle


class FailoverHarness:
    """Deterministic in-process client failover across a kill.

    Duck-types the slice of :class:`PocService` that
    :func:`~repro.service.loadgen.run_load` uses (``running``,
    ``clock``, ``snapshot``, ``submit``, fault hooks), so an unmodified
    load campaign plays through it.  Requests the primary abandoned at
    :meth:`kill_primary` — and any that arrive while nobody is serving —
    are parked and re-submitted to the standby the moment it promotes,
    under their original deadline budgets: a request whose budget died
    with the primary is answered ``deadline-exceeded`` rather than
    dropped, so every submission still resolves to exactly one response.
    """

    def __init__(self, primary: PocService, standby: StandbyReplica) -> None:
        if primary.clock is not standby.clock:
            raise ServiceError("harness needs primary and standby on one clock")
        self.primary = primary
        self.standby = standby
        self.clock = primary.clock
        self.incidents: List[Dict[str, object]] = []
        self._active: Optional[PocService] = primary
        self._watch_task: Optional[asyncio.Task] = None
        self._waiting: List[Dict[str, object]] = []
        self._inflight: Dict[int, Dict[str, object]] = {}
        self._entry_seq = 0

    # -- the service facade run_load drives -----------------------------------

    @property
    def active(self) -> PocService:
        service = self._active
        if service is None:
            raise ServiceError("no active service (failover in progress)")
        return service

    @property
    def running(self) -> bool:
        return True  # the *harness* stays up across the failover gap

    @property
    def snapshot(self):
        if self._active is not None and self._active._snapshot is not None:
            return self._active.snapshot
        return self.primary.snapshot

    def inject_link_faults(self, link_ids) -> int:
        if self._active is not None and self._active.running:
            return self._active.inject_link_faults(link_ids)
        return 0

    def set_solver_stall(self, stalled: bool) -> None:
        if self._active is not None and self._active.running:
            self._active.set_solver_stall(stalled)

    def submit(self, kind, params=None, *, deadline_s=None):
        loop = asyncio.get_running_loop()
        outer: "asyncio.Future[Response]" = loop.create_future()
        now = self.clock.now()
        budget = deadline_s
        if budget is None:
            config = (self._active or self.primary).config
            budget = config.default_deadline_s
        self._entry_seq += 1
        entry = {
            "key": self._entry_seq,
            "kind": kind,
            "params": dict(params or {}),
            "arrival": now,
            "deadline": now + budget,
            "outer": outer,
        }
        self._route(entry)
        return outer

    def _route(self, entry: Dict[str, object]) -> None:
        service = self._active
        if service is None or not service.running:
            self._waiting.append(entry)
            return
        now = self.clock.now()
        remaining = entry["deadline"] - now
        if remaining < 0:
            self._expire(entry, now)
            return
        inner = service.submit(
            entry["kind"], entry["params"], deadline_s=remaining
        )
        self._inflight[entry["key"]] = entry

        def copy(fut: "asyncio.Future[Response]", key=entry["key"]) -> None:
            pending = self._inflight.pop(key, None)
            if pending is None or fut.cancelled() or fut.exception() is not None:
                return
            outer = pending["outer"]
            if not outer.done():
                outer.set_result(fut.result())

        inner.add_done_callback(copy)

    def _expire(self, entry: Dict[str, object], now: float) -> None:
        """The budget died with the primary: answer, don't hang."""
        outer = entry["outer"]
        if outer.done():
            return
        version = 0
        try:
            version = self.snapshot.version
        except ServiceError:
            pass
        outer.set_result(Response(
            request_id=0,
            kind=entry["kind"],
            status="deadline-exceeded",
            version=version,
            latency_s=max(0.0, now - entry["arrival"]),
        ))

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        await self.primary.start()
        self._watch_task = asyncio.ensure_future(self._watch())

    async def _watch(self) -> None:
        async def probe() -> bool:
            return self.primary.running

        self.standby._probe = probe
        service = await self.standby.run()
        if service is None:
            return
        self._active = service
        if self.incidents:
            self.incidents[-1]["t_promoted"] = round(self.clock.now(), 9)
            self.incidents[-1]["replayed"] = len(self._waiting)
        replays, self._waiting = self._waiting, []
        for entry in replays:
            self._route(entry)

    async def kill_primary(self) -> None:
        """SIGKILL, simulated: the primary vanishes mid-batch."""
        abandoned = [
            self._inflight.pop(key)
            for key in sorted(self._inflight)
        ]
        await self.primary.kill()
        self._active = None
        self.incidents.append({
            "t_killed": round(self.clock.now(), 9),
            "reason": "primary-killed",
            "abandoned": len(abandoned),
        })
        obs.metrics().inc("service.client_failovers")
        self._waiting = abandoned + self._waiting

    async def finish(self) -> PocService:
        """Settle the failover (if any), drain whoever is active."""
        if self._watch_task is not None:
            if self._active is self.primary and self.primary.running:
                # No kill happened: the standby is still watching a
                # healthy primary; stop it rather than wait forever.
                self._watch_task.cancel()
                await asyncio.gather(self._watch_task, return_exceptions=True)
            else:
                await self._watch_task
            self._watch_task = None
        service = self.active
        await service.drain()
        return service


async def _run_kill(harness: FailoverHarness, kill_at: float) -> None:
    delay = kill_at - harness.clock.now()
    if delay > 0:
        await harness.clock.sleep(delay)
    await harness.kill_primary()


def run_failover_benchmark(
    seed: int = 0,
    *,
    journal_dir,
    load: Optional[LoadgenConfig] = None,
    chaos: Optional[ChaosPlan] = None,
    config: Optional[ServiceConfig] = None,
    kill_at: Optional[float] = None,
    probe_failures: int = 2,
    poll_interval_s: float = 0.05,
) -> LoadReport:
    """A kill-mid-campaign failover run, deterministic end to end.

    Primary and hot standby share one virtual clock; the primary
    journals to ``journal_dir/primary.journal`` (unfsynced — the crash
    here is task death, not machine death), the standby tails it, and
    at ``kill_at`` the primary dies mid-batch.  The harness replays
    abandoned and parked requests into the promoted standby, so the
    report has zero unanswered requests and exactly one failover
    incident — and, being virtual-time, is byte-identical across runs.
    """
    from pathlib import Path

    from repro.resilience.chaos import micro_scenario

    cfg = load or LoadgenConfig()
    if kill_at is not None and not 0 < kill_at < cfg.duration_s:
        raise ServiceError("kill_at must fall inside the campaign window")
    journal_dir = Path(journal_dir)
    journal_dir.mkdir(parents=True, exist_ok=True)
    primary_journal = journal_dir / "primary.journal"
    standby_journal = journal_dir / "standby.journal"
    for stale in (primary_journal, standby_journal):
        if stale.exists():
            stale.unlink()
    net, offers, tm = micro_scenario(seed)
    service_config = config or ServiceConfig(milp_time_limit_s=30.0)
    clock = VirtualClock()
    primary = PocService(
        net, offers, tm,
        config=service_config, clock=clock, seed=seed,
        journal=Journal(primary_journal, fsync=False),
    )
    standby_net, standby_offers, standby_tm = micro_scenario(seed)
    standby = StandbyReplica(
        primary_journal, standby_net, standby_offers, standby_tm,
        config=service_config, clock=clock, seed=seed,
        journal=Journal(standby_journal, fsync=False),
        poll_interval_s=poll_interval_s,
        probe_failures=probe_failures,
    )
    harness = FailoverHarness(primary, standby)

    async def _campaign() -> LoadReport:
        await harness.start()
        kill_task = (
            asyncio.ensure_future(_run_kill(harness, kill_at))
            if kill_at is not None else None
        )
        responses = await run_load(harness, cfg, seed=seed, chaos=chaos)
        if kill_task is not None:
            await kill_task
        service = await harness.finish()
        return summarize(
            service, responses, cfg, seed=seed,
            failovers=harness.incidents,
        )

    with obs.service_scope(f"failover-{seed}"):
        return run_virtual(clock, _campaign())


async def run_socket_campaign(
    endpoints: Sequence[Tuple[str, int]],
    cfg: LoadgenConfig,
    *,
    seed: int,
    sites: Sequence[str],
    links: Sequence[str],
    retry=None,
    client: Optional[ServiceClient] = None,
) -> Tuple[List[Response], ServiceClient]:
    """Play a seeded request plan over real sockets, with failover.

    The plan (arrival times, kinds, params) is the same deterministic
    function of the seed as the in-process campaigns; delivery is wall
    clock through a :class:`ServiceClient`, so a primary killed mid-run
    turns into retries that land on the next endpoint.  A request whose
    whole budget dies on the wire is folded into a synthesized
    ``deadline-exceeded`` response — the zero-unanswered contract holds
    over sockets too.
    """
    own_client = client is None
    if client is None:
        client = ServiceClient(endpoints, retry=retry, seed=seed)
    plan = build_request_plan(cfg, sites, links, seed)
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def play(offset: float, kind: str, params: Dict[str, object]):
        delay = (start + offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        budget = cfg.deadline_s if cfg.deadline_s is not None else 1.0
        try:
            return await client.request(kind, params, deadline_s=budget)
        except TransportError:
            return Response(
                request_id=0, kind=kind, status="deadline-exceeded",
                version=0, latency_s=budget,
            )

    tasks = [
        asyncio.ensure_future(play(offset, kind, params))
        for offset, kind, params in plan
    ]
    responses = list(await asyncio.gather(*tasks))
    if own_client:
        await client.close()
    return responses, client
