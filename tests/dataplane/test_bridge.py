"""Tests for the POC → dataplane bridge and fleet-wide conduct audits."""

import pytest

from repro.exceptions import MarketError
from repro.core.poc import PublicOptionCore
from repro.dataplane.bridge import (
    DEFAULT_ACCESS_GBPS,
    audit_dataplane_conduct,
    dataplane_for_poc,
    violators,
)
from repro.dataplane.shaping import DiscriminatoryEdge
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network, square_offers


@pytest.fixture
def poc():
    from repro.auction.provider import make_external_contract

    net = square_network()
    core = PublicOptionCore(offered=net)
    # An all-pairs TM keeps every site on the provisioned backbone; the
    # external ring guarantees leave-one-out feasibility for VCG pricing.
    core.add_external_contract(
        make_external_contract(
            "ext", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")],
            capacity_gbps=50.0, price_per_link=10_000.0,
        )
    )
    nodes = ["A", "B", "C", "D"]
    tm = TrafficMatrix.from_dict(
        nodes,
        {(s, d): 0.5 for s in nodes for d in nodes if s != d},
    )
    core.provision(square_offers(net), tm, constraint=1)
    core.attach("flix", "A", "csp")
    core.attach("tube", "B", "csp")
    core.attach("eyeballs-1", "C", "lmp")
    core.attach("eyeballs-2", "D", "lmp")
    return core


class TestBridge:
    def test_mirrors_attachments(self, poc):
        sim = dataplane_for_poc(poc)
        for attachment in poc.attachments:
            mirrored = sim.attachment(attachment.name)
            assert mirrored.site == attachment.site
            assert mirrored.access_gbps == DEFAULT_ACCESS_GBPS

    def test_overrides(self, poc):
        sim = dataplane_for_poc(
            poc,
            access_gbps={"flix": 100.0},
            behaviors={
                "eyeballs-1": DiscriminatoryEdge(
                    throttle_sources=frozenset({"tube"}), factor=0.25
                )
            },
        )
        assert sim.attachment("flix").access_gbps == 100.0
        assert isinstance(
            sim.attachment("eyeballs-1").behavior, DiscriminatoryEdge
        )

    def test_unknown_override_rejected(self, poc):
        with pytest.raises(MarketError):
            dataplane_for_poc(poc, access_gbps={"ghost": 1.0})


class TestFleetAudit:
    def test_all_clean_by_default(self, poc):
        sim = dataplane_for_poc(poc)
        reports = audit_dataplane_conduct(poc, sim)
        assert set(reports) == {"eyeballs-1", "eyeballs-2"}
        assert violators(reports) == []

    def test_cheater_identified(self, poc):
        sim = dataplane_for_poc(
            poc,
            behaviors={
                "eyeballs-2": DiscriminatoryEdge(
                    throttle_sources=frozenset({"tube"}), factor=0.2
                )
            },
        )
        reports = audit_dataplane_conduct(poc, sim)
        assert violators(reports) == ["eyeballs-2"]
        flagged = {v.tested_value for v in reports["eyeballs-2"].violations}
        assert flagged == {"tube"}

    def test_reports_cover_only_lmps(self, poc):
        sim = dataplane_for_poc(poc)
        reports = audit_dataplane_conduct(poc, sim)
        assert "flix" not in reports  # CSPs are not audited edges
