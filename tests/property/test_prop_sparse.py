"""Property tests: the sparse arrays-of-structs view ≡ Network.

100 seeded random topologies (mixed coordinates/cities/owners/parallel
links) are flattened to :class:`SparseTopology` and checked for exact
agreement on nodes, links, adjacency, and capacities, plus a lossless
round-trip back to ``Network``.  A second group exercises the
shared-memory path, including across a *spawn* worker pool.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.rand import derive_seed, make_rng
from repro.topology.geo import GeoPoint
from repro.topology.graph import Link, Network, Node
from repro.topology.sparse import SparseTopology, unlink_shared


def random_network(seed: int) -> Network:
    """A small random multigraph with every attribute combination."""
    rng = make_rng(derive_seed(seed, "sparse-prop"))
    n = int(rng.integers(2, 30))
    net = Network(name=f"rand-{seed}")
    for i in range(n):
        point = None
        if rng.random() < 0.8:
            point = GeoPoint(
                float(rng.uniform(-80, 80)), float(rng.uniform(-170, 170))
            )
        city = f"city{i}" if rng.random() < 0.5 else None
        kind = "poc-router" if rng.random() < 0.3 else "router"
        net.add_node(Node(id=f"N{i:03d}", point=point, city=city, kind=kind))
    m = int(rng.integers(1, 80))
    counter = 0
    while counter < m:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        owner = f"BP{int(rng.integers(0, 5))}" if rng.random() < 0.7 else None
        net.add_link(
            Link(
                id=f"rand-{seed}-L{counter:05d}",
                u=f"N{u:03d}",
                v=f"N{v:03d}",
                capacity_gbps=float(rng.choice([10.0, 40.0, 100.0, 400.0])),
                length_km=float(rng.uniform(0.0, 5000.0)),
                owner=owner,
                virtual=bool(rng.random() < 0.1),
            )
        )
        counter += 1
    return net


class TestSparseEquivalence:
    @pytest.mark.parametrize("seed", range(100))
    def test_sparse_view_matches_network(self, seed):
        net = random_network(seed)
        sp = SparseTopology.from_network(net)

        # Same nodes, in order.
        assert [str(x) for x in sp.node_ids] == net.node_ids
        assert sp.num_nodes == len(net)

        # Same links, endpoints, and capacities, in order.
        assert [str(x) for x in sp.link_ids] == net.link_ids
        assert sp.num_links == net.num_links
        for j, link in enumerate(net.iter_links()):
            assert str(sp.node_ids[sp.link_u[j]]) == link.u
            assert str(sp.node_ids[sp.link_v[j]]) == link.v
            assert float(sp.capacity_gbps[j]) == link.capacity_gbps
            assert float(sp.length_km[j]) == link.length_km
        assert sp.total_capacity_gbps() == pytest.approx(
            net.total_capacity_gbps()
        )

        # Same adjacency: incident links per node, sorted by link id
        # (Network.incident_links's contract), and the same neighbor sets.
        for i, node_id in enumerate(net.node_ids):
            expect = [l.id for l in net.incident_links(node_id)]
            got = [str(sp.link_ids[k]) for k in sp.incident_link_indices(i)]
            assert got == expect
            neighbors = {str(sp.node_ids[k]) for k in sp.neighbors_of(i)}
            assert neighbors == net.neighbors(node_id)
            assert sp.degree_of(i) == net.degree(node_id)

    @pytest.mark.parametrize("seed", [0, 17, 42, 99])
    def test_round_trip_is_lossless(self, seed):
        net = random_network(seed)
        back = SparseTopology.from_network(net).to_network()
        assert back.name == net.name
        assert back.node_ids == net.node_ids
        for node_id in net.node_ids:
            assert back.node(node_id) == net.node(node_id)
        assert back.link_ids == net.link_ids
        for link_id in net.link_ids:
            assert back.link(link_id) == net.link(link_id)

    def test_node_index_lookup(self):
        net = random_network(3)
        sp = SparseTopology.from_network(net)
        for i, node_id in enumerate(net.node_ids):
            assert sp.node_index(node_id) == i
        from repro.exceptions import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            sp.node_index("no-such-node")


def _probe(handle):
    """Spawn-worker body: attach, summarize, detach."""
    view = SparseTopology.attach(handle)
    try:
        return {
            "nodes": view.num_nodes,
            "links": view.num_links,
            "cap": float(view.capacity_gbps.sum()),
            "first_link": str(view.link_ids[0]),
            "last_link": str(view.link_ids[-1]),
            "adj0": [int(x) for x in view.incident_link_indices(0)],
            "writable": bool(view.capacity_gbps.flags.writeable),
        }
    finally:
        view.close()


class TestSharedMemory:
    def test_attach_sees_identical_arrays(self):
        net = random_network(7)
        sp = SparseTopology.from_network(net)
        handle = sp.share()
        try:
            view = SparseTopology.attach(handle)
            try:
                assert view.name == sp.name
                assert [str(x) for x in view.link_ids] == [
                    str(x) for x in sp.link_ids
                ]
                np.testing.assert_array_equal(view.capacity_gbps, sp.capacity_gbps)
                np.testing.assert_array_equal(view.adj_indptr, sp.adj_indptr)
                np.testing.assert_array_equal(view.adj_link, sp.adj_link)
                assert not view.capacity_gbps.flags.writeable
            finally:
                view.close()
        finally:
            unlink_shared(handle)

    def test_handle_reports_footprint(self):
        sp = SparseTopology.from_network(random_network(5))
        handle = sp.share()
        try:
            assert handle.nbytes >= sp.memory_bytes
        finally:
            unlink_shared(handle)

    def test_spawn_pool_shares_one_copy(self):
        net = random_network(11)
        sp = SparseTopology.from_network(net)
        handle = sp.share()
        try:
            ctx = mp.get_context("spawn")
            with ctx.Pool(2) as pool:
                results = pool.map(_probe, [handle, handle])
        finally:
            unlink_shared(handle)
        expect = {
            "nodes": sp.num_nodes,
            "links": sp.num_links,
            "cap": float(sp.capacity_gbps.sum()),
            "first_link": str(sp.link_ids[0]),
            "last_link": str(sp.link_ids[-1]),
            "adj0": [int(x) for x in sp.incident_link_indices(0)],
            "writable": False,
        }
        assert results == [expect, expect]

    def test_unlink_is_idempotent(self):
        sp = SparseTopology.from_network(random_network(2))
        handle = sp.share()
        unlink_shared(handle)
        unlink_shared(handle)  # second call is a no-op, not an error
