"""The reproduce contract: an archive must re-earn its own aggregates.

``reproduce_archive`` re-executes an archive's pack through the live
sweep machinery — with a *fresh* result store, so nothing can be served
from the archived cache — and compares the newly-computed byte-stable
aggregates against the archived ``aggregates.json``.  Equality means
the claim in the archive is re-derivable from code + spec + seeds on
this machine today; any mismatch raises
:class:`~repro.exceptions.ReproduceMismatch` carrying both payloads.

``--check-only`` (``verify_archive``) skips re-execution and instead
audits the archive's internal consistency: every stored trial re-hashes
to its own content address, the aggregates recompute byte-identically
from the store, and the manifest's pinned hash matches.  That catches
tampering (an edited parameter or result line) in milliseconds.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.exceptions import ArchiveError, ReproduceMismatch
from repro.scenarios.archive import Archive, check_archive, load_archive
from repro.scenarios.runner import run_pack


@dataclass
class ReproduceReport:
    """What a reproduction run established."""

    archive: pathlib.Path
    pack: str
    fingerprint: str
    workers: int
    trials: int = 0
    executed: int = 0
    #: Byte-identical aggregates confirmed.
    reproduced: bool = False
    #: check_archive problems (pre-flight; empty when intact).
    problems: List[str] = field(default_factory=list)

    def formatted(self) -> str:
        lines = [
            f"archive:     {self.archive}",
            f"pack:        {self.pack} ({self.fingerprint[:12]}…)",
        ]
        if self.problems:
            lines.append(f"INTEGRITY: {len(self.problems)} problem(s)")
            lines.extend(f"  - {p}" for p in self.problems)
            return "\n".join(lines)
        lines.append("integrity:   ok (keys re-hash, aggregates recompute)")
        if self.reproduced:
            lines.append(
                f"reproduce:   ok — {self.trials} trial(s) re-executed with "
                f"workers={self.workers}, aggregates byte-identical"
            )
        return "\n".join(lines)


def verify_archive(root: Union[str, pathlib.Path]) -> ReproduceReport:
    """The ``--check-only`` path: integrity audit without re-execution."""
    root = pathlib.Path(root)
    problems = check_archive(root)
    pack_name, fingerprint = "?", "?" * 12
    try:
        archive = load_archive(root)
        pack_name = archive.pack.name
        fingerprint = archive.pack.fingerprint()
    except (ArchiveError, Exception):
        pass
    return ReproduceReport(
        archive=root,
        pack=pack_name,
        fingerprint=fingerprint,
        workers=0,
        problems=problems,
    )


def reproduce_archive(
    root: Union[str, pathlib.Path],
    *,
    workers: Optional[int] = None,
    scratch_dir: Union[str, pathlib.Path, None] = None,
    keep_scratch: bool = False,
) -> ReproduceReport:
    """Re-execute an archive and assert byte-identical aggregates.

    The re-run uses the archived pack verbatim; ``workers`` overrides
    the worker count (the contract is that serial and any-N-workers all
    produce the same bytes).  Raises :class:`ArchiveError` when the
    pre-flight integrity audit fails, :class:`ReproduceMismatch` when
    the fresh aggregates differ from the archived ones.
    """
    root = pathlib.Path(root)
    problems = check_archive(root)
    if problems:
        raise ArchiveError(
            f"archive {root} fails its integrity audit "
            f"({len(problems)} problem(s)): " + "; ".join(problems)
        )
    archive: Archive = load_archive(root)
    expected = archive.aggregates()

    scratch = (
        pathlib.Path(scratch_dir)
        if scratch_dir is not None
        else pathlib.Path(tempfile.mkdtemp(prefix=f"reproduce-{archive.pack.name}-"))
    )
    try:
        result = run_pack(
            archive.pack,
            scratch,
            workers=workers,
        )
        actual = result.report_json(archive.pack.group_by)
        if actual != expected:
            raise ReproduceMismatch(
                f"archive {root} (pack {archive.pack.name!r})",
                expected,
                actual,
            )
        return ReproduceReport(
            archive=root,
            pack=archive.pack.name,
            fingerprint=archive.pack.fingerprint(),
            workers=result.workers,
            trials=len(result.outcomes),
            executed=result.executed,
            reproduced=True,
        )
    finally:
        if not keep_scratch:
            shutil.rmtree(scratch, ignore_errors=True)
