"""Availability analysis: what do the survivability constraints buy?

Constraint #2/#3 make the *auction* more expensive (Figure 2); this
module measures the operational return: under random link failures, what
fraction of the traffic matrix does a backbone still deliver?

Monte-Carlo over failure draws (each link independently down with a
monthly outage probability, or exactly-k-failures scenarios), using the
max-concurrent-flow λ as the delivered-fraction metric: min(1, λ) of the
TM is carried after rerouting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import FlowError
from repro.netflow.mcf import max_concurrent_flow
from repro.rand import SeedLike, make_rng
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class FailureDraw:
    """One sampled failure state and its delivery outcome."""

    failed_links: FrozenSet[str]
    delivered_fraction: float

    @property
    def fully_delivered(self) -> bool:
        return self.delivered_fraction >= 1.0 - 1e-9


@dataclass
class AvailabilityReport:
    """Aggregated Monte-Carlo availability figures."""

    draws: List[FailureDraw] = field(default_factory=list)

    @property
    def num_draws(self) -> int:
        return len(self.draws)

    def mean_delivered(self) -> float:
        if not self.draws:
            return 1.0
        return sum(d.delivered_fraction for d in self.draws) / len(self.draws)

    def availability(self) -> float:
        """Fraction of draws in which the full TM was delivered."""
        if not self.draws:
            return 1.0
        return sum(1 for d in self.draws if d.fully_delivered) / len(self.draws)

    def worst_delivered(self) -> float:
        return min((d.delivered_fraction for d in self.draws), default=1.0)


def delivered_fraction(backbone: Network, tm: TrafficMatrix,
                       failed_links: FrozenSet[str]) -> float:
    """min(1, λ) of the TM on the backbone minus the failed links."""
    surviving = [lid for lid in backbone.link_ids if lid not in failed_links]
    if not surviving:
        return 0.0
    result = max_concurrent_flow(backbone.restricted_to_links(surviving), tm)
    return min(1.0, result.lam)


def monte_carlo_availability(
    backbone: Network,
    tm: TrafficMatrix,
    *,
    link_failure_probability: float = 0.01,
    draws: int = 100,
    seed: SeedLike = 0,
) -> AvailabilityReport:
    """Sample independent link outages and measure delivery.

    Identical failure sets are deduplicated through a memo, which matters
    because at realistic outage rates most draws are the empty set.
    """
    if not 0.0 <= link_failure_probability <= 1.0:
        raise FlowError("failure probability must be in [0, 1]")
    if draws < 1:
        raise FlowError("need at least one draw")
    rng = make_rng(seed)
    link_ids = backbone.link_ids
    memo: Dict[FrozenSet[str], float] = {}
    report = AvailabilityReport()
    for _ in range(draws):
        mask = rng.random(len(link_ids)) < link_failure_probability
        failed = frozenset(lid for lid, down in zip(link_ids, mask) if down)
        if failed not in memo:
            memo[failed] = delivered_fraction(backbone, tm, failed)
        report.draws.append(
            FailureDraw(failed_links=failed, delivered_fraction=memo[failed])
        )
    return report


def exhaustive_k_failures(
    backbone: Network,
    tm: TrafficMatrix,
    *,
    k: int = 1,
    max_scenarios: Optional[int] = None,
) -> AvailabilityReport:
    """Every exactly-k-link failure scenario (deterministic).

    ``max_scenarios`` caps the enumeration for large backbones; when the
    cap truncates, the report covers a deterministic prefix (sorted link
    order) and callers should say so when reporting.
    """
    if k < 1:
        raise FlowError("k must be at least 1")
    report = AvailabilityReport()
    for count, combo in enumerate(
        itertools.combinations(sorted(backbone.link_ids), k)
    ):
        if max_scenarios is not None and count >= max_scenarios:
            break
        failed = frozenset(combo)
        report.draws.append(
            FailureDraw(
                failed_links=failed,
                delivered_fraction=delivered_fraction(backbone, tm, failed),
            )
        )
    return report
