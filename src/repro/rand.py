"""Seeded randomness helpers.

All stochastic components of the library (topology generation, traffic
matrices, market simulation) take an explicit seed or
:class:`numpy.random.Generator`.  This module centralizes how those are
constructed so every experiment is reproducible from a single integer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None.

    Passing an existing :class:`numpy.random.Generator` returns it unchanged
    so components can share one stream; passing an int derives a fresh,
    deterministic stream; passing ``None`` produces an OS-seeded stream
    (only appropriate for interactive exploration, never for benchmarks).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used when a simulation hands sub-streams to independent agents so that
    adding an agent does not perturb the draws seen by the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def derive_seed(root: SeedLike, *parts: object) -> int:
    """Derive a deterministic sub-seed from a root seed and a label path.

    The derivation hashes the canonical JSON encoding of ``(root, parts)``
    with SHA-256, so it is independent of process start method (fork vs
    spawn), platform, and ``PYTHONHASHSEED`` — a parameter sweep can
    reconstruct any single trial's stream in isolation, in any process,
    from the root seed and the trial's identifying parts alone.  Distinct
    part tuples map to (statistically) independent PCG64 streams.

    ``parts`` may be ints, floats, strings, bools, None, or (nested)
    lists/tuples/dicts of those; anything else is rejected rather than
    silently coerced, since a repr-based fallback would not be stable
    across versions.
    """
    if isinstance(root, np.random.Generator):
        raise ValueError(
            "derive_seed needs a reproducible root (an int), not a Generator"
        )
    payload = [0 if root is None else int(root), list(parts)]
    try:
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"seed-derivation parts must be JSON-encodable and finite: {exc}"
        ) from exc
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    # 63 bits keeps the result a portable non-negative int64.
    return int.from_bytes(digest[:8], "big") >> 1


def derive_rng(root: SeedLike, *parts: object) -> np.random.Generator:
    """A fresh Generator on the stream named by ``parts`` under ``root``."""
    return np.random.default_rng(derive_seed(root, *parts))


def stable_choice(rng: np.random.Generator, items: list, size: Optional[int] = None):
    """Choose from ``items`` without requiring them to be a numpy array.

    numpy's ``Generator.choice`` converts object lists to arrays, which can
    mangle tuples; choosing *indices* avoids that.
    """
    if not items:
        raise ValueError("cannot choose from an empty list")
    if size is None:
        return items[int(rng.integers(len(items)))]
    idx = rng.choice(len(items), size=size, replace=False)
    return [items[int(i)] for i in idx]
