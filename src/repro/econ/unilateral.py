"""The unregulated regime with unilaterally-set fees (§4.4).

Double marginalization: knowing the CSP will respond with p*(t), each LMP
sets

    t* = argmax_t t · D(p*(t))

All LMPs do the same computation, so fees are uniform across LMPs.  The
chain "fees ↑ ⇒ prices ↑ ⇒ welfare ↓" is the section's core result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from scipy.optimize import minimize_scalar

from repro.exceptions import EconError
from repro.econ.csp import CSP, optimal_price
from repro.econ.demand import DemandCurve, ExponentialDemand, LinearDemand
from repro.econ.welfare import consumer_welfare, social_welfare


def optimal_unilateral_fee(demand: DemandCurve) -> float:
    """The LMP's revenue-maximizing termination fee t* for one CSP.

    Closed forms: linear demand gives t* = v/2 (hence p* = 3v/4);
    exponential gives t* = s (hence p* = 2s).  Other families are solved
    numerically over [0, price_ceiling].
    """
    if isinstance(demand, LinearDemand):
        return demand.v_max / 2.0
    if isinstance(demand, ExponentialDemand):
        return demand.scale

    def neg_lmp_revenue(t: float) -> float:
        return -t * demand.demand(optimal_price(demand, t))

    result = minimize_scalar(
        neg_lmp_revenue, bounds=(0.0, demand.price_ceiling), method="bounded"
    )
    if not result.success:  # pragma: no cover - 'bounded' always succeeds
        raise EconError(f"fee optimization failed: {result.message}")
    return float(result.x)


@dataclass(frozen=True)
class UROutcome:
    """Per-CSP fees/prices and welfare under unilateral fee setting."""

    fees: Dict[str, float]
    prices: Dict[str, float]
    csp_revenues: Dict[str, float]
    lmp_fee_revenues: Dict[str, float]
    social_welfare: float
    consumer_welfare: float

    @property
    def total_fee_revenue(self) -> float:
        return sum(self.lmp_fee_revenues.values())

    @property
    def total_csp_revenue(self) -> float:
        return sum(self.csp_revenues.values())


def unilateral_outcome(csps: Sequence[CSP]) -> UROutcome:
    """Solve the UR regime with unilateral (double-marginalized) fees."""
    fees: Dict[str, float] = {}
    prices: Dict[str, float] = {}
    csp_rev: Dict[str, float] = {}
    lmp_rev: Dict[str, float] = {}
    sw = 0.0
    cw = 0.0
    for csp in csps:
        t = optimal_unilateral_fee(csp.demand)
        p = optimal_price(csp.demand, t)
        d = csp.demand.demand(p)
        fees[csp.name] = t
        prices[csp.name] = p
        csp_rev[csp.name] = (p - t) * d
        lmp_rev[csp.name] = t * d
        sw += social_welfare(csp.demand, p)
        cw += consumer_welfare(csp.demand, p)
    return UROutcome(
        fees=fees,
        prices=prices,
        csp_revenues=csp_rev,
        lmp_fee_revenues=lmp_rev,
        social_welfare=sw,
        consumer_welfare=cw,
    )
