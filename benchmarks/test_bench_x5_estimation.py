"""X5 — extension: provisioning from an estimated traffic bound (§3.3).

"We assume that the POC has some upper-bound estimate of its traffic
matrix."  This bench closes the loop the sentence implies: measure noisy
snapshots of real traffic, estimate the bound, auction against the
bound, then verify the *actual* traffic fits the provisioned backbone —
and price the safety margin.
"""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.selection import select_links
from repro.netflow.mcf import max_concurrent_flow
from repro.traffic.estimation import (
    EstimatorConfig,
    coverage_ratio,
    overprovision_factor,
    simulate_measurement_window,
)


def run(zoo, tm, offers, safety_factor):
    sampler = simulate_measurement_window(tm, snapshots=96, burstiness=0.25, seed=5)
    estimate = sampler.estimate(EstimatorConfig(safety_factor=safety_factor))
    constraint = make_constraint(1, zoo.offered, estimate, engine="greedy")
    outcome = select_links(offers, constraint, method="add-prune")
    backbone = zoo.offered.restricted_to_links(outcome.selected)
    actual_fit = max_concurrent_flow(backbone, tm)
    return estimate, outcome, actual_fit


def test_bench_x5_estimation(benchmark, report, tiny_workload):
    zoo, tm, offers = tiny_workload
    estimate, outcome, actual_fit = benchmark.pedantic(
        lambda: run(zoo, tm, offers, safety_factor=1.25), rounds=1, iterations=1
    )

    lines = [
        f"actual TM:            {tm.total_gbps():>10,.1f} Gbps",
        f"estimated bound:      {estimate.total_gbps():>10,.1f} Gbps "
        f"({overprovision_factor(estimate, tm):.2f}x)",
        f"per-pair coverage:    {coverage_ratio(estimate, tm):>10.1%}",
        f"links selected:       {len(outcome.selected):>10}",
        f"selection cost:       {outcome.total_cost:>10,.0f} $/mo",
        f"actual-TM headroom λ: {actual_fit.lam:>10.2f}",
    ]
    report("Provisioning from the estimated upper bound:\n" + "\n".join(lines))

    # The whole point: the backbone bought against the estimate carries
    # the real traffic, with headroom inherited from the safety factor.
    assert actual_fit.feasible
    assert actual_fit.lam >= 1.1
    assert coverage_ratio(estimate, tm) == 1.0


def test_bench_x5_safety_tradeoff(benchmark, report, tiny_workload):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """The cost of safety: sweep the factor, price the headroom."""
    zoo, tm, offers = tiny_workload
    lines = [f"{'safety':>8}{'bound Gbps':>12}{'cost $/mo':>12}{'λ actual':>10}"]
    costs = {}
    for factor in (1.0, 1.25, 1.5):
        estimate, outcome, actual_fit = run(zoo, tm, offers, factor)
        costs[factor] = outcome.total_cost
        lines.append(
            f"{factor:>8.2f}{estimate.total_gbps():>12,.1f}"
            f"{outcome.total_cost:>12,.0f}{actual_fit.lam:>10.2f}"
        )
        assert actual_fit.feasible
    report("Safety factor vs provisioning cost:\n" + "\n".join(lines))
    # More safety costs weakly more.
    assert costs[1.5] >= costs[1.0] - 1e-6
