"""Tests for heuristic routing engines."""

import pytest

from repro.exceptions import FlowError
from repro.netflow.mcf import max_concurrent_flow
from repro.netflow.routing import route_greedy_multipath, route_shortest_path
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import make_node, square_network


class TestShortestPathRouting:
    def test_feasible_light_load(self, square):
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 1.0})
        out = route_shortest_path(square, tm)
        assert out.feasible
        assert out.link_load_gbps == {"AB": 1.0}

    def test_infeasible_on_overload(self, square):
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 11.0})
        out = route_shortest_path(square, tm)
        assert not out.feasible

    def test_no_splitting(self, square):
        # 8G A->C fits overall but not on the 5G direct diagonal.
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 8.0})
        out = route_shortest_path(square, tm)
        assert not out.feasible  # conservative engine does not split

    def test_unplaced_on_disconnect(self, square):
        sub = square.restricted_to_links(["AB"])
        tm = TrafficMatrix.from_dict(["A", "D"], {("A", "D"): 1.0})
        out = route_shortest_path(sub, tm)
        assert not out.feasible
        assert out.unplaced_gbps == 1.0

    def test_utilization(self, square):
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 5.0})
        out = route_shortest_path(square, tm)
        assert out.max_utilization(square) == pytest.approx(0.5)

    def test_flow_km(self, square):
        tm = TrafficMatrix.from_dict(["A", "B"], {("A", "B"): 2.0})
        out = route_shortest_path(square, tm)
        assert out.total_flow_km(square) == pytest.approx(200.0)


class TestGreedyMultipath:
    def test_splits_when_needed(self, square):
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 8.0})
        out = route_greedy_multipath(square, tm)
        assert out.feasible
        # Must have used at least two paths for the A->C demand.
        assert len(out.paths_used[("A", "C")]) >= 2

    def test_respects_capacity(self, square):
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 8.0})
        out = route_greedy_multipath(square, tm)
        for lid, load in out.link_load_gbps.items():
            assert load <= square.link(lid).capacity_gbps + 1e-9

    def test_infeasible_beyond_cut_capacity(self, square):
        # Max A->C flow is 25 (5 + 10 + 10).
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 26.0})
        out = route_greedy_multipath(square, tm)
        assert not out.feasible
        assert out.unplaced_gbps > 0

    def test_matches_mcf_on_single_commodity(self, square):
        # For one commodity, greedy augmenting paths reach max flow.
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 25.0})
        assert route_greedy_multipath(square, tm, max_paths_per_demand=16).feasible
        assert max_concurrent_flow(square, tm).feasible

    def test_conservative_vs_mcf(self, square):
        # Greedy feasible => MCF feasible (soundness, never the converse).
        for load in (1.0, 4.0, 8.0, 12.0):
            tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): load})
            if route_greedy_multipath(square, tm).feasible:
                assert max_concurrent_flow(square, tm).feasible

    def test_path_budget_respected(self, square):
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 8.0})
        out = route_greedy_multipath(square, tm, max_paths_per_demand=1)
        assert not out.feasible  # one path cannot carry 8 over the 5G diagonal

    def test_validation(self, square):
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 1.0})
        with pytest.raises(FlowError):
            route_greedy_multipath(square, tm, max_paths_per_demand=0)

    def test_largest_first_ordering(self):
        """A big demand gets the short path before small ones eat it."""
        net = Network(name="y")
        for n in ("S", "T", "U"):
            net.add_node(make_node(n))
        net.add_link(Link(id="ST", u="S", v="T", capacity_gbps=10.0, length_km=10))
        net.add_link(Link(id="SU", u="S", v="U", capacity_gbps=10.0, length_km=10))
        net.add_link(Link(id="UT", u="U", v="T", capacity_gbps=10.0, length_km=10))
        tm = TrafficMatrix.from_dict(
            ["S", "T", "U"], {("S", "T"): 10.0, ("S", "U"): 1.0}
        )
        out = route_greedy_multipath(net, tm)
        assert out.feasible
        # The 10G S->T demand takes the whole direct link.
        st_paths = out.paths_used[("S", "T")]
        assert st_paths[0][0].link_ids == ("ST",)
        assert st_paths[0][1] == pytest.approx(10.0)
