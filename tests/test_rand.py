"""Tests for seeded randomness helpers."""

import itertools
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.rand import derive_rng, derive_seed, make_rng, spawn, stable_choice


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).random()
        b = make_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_of_count(self):
        """Adding children must not perturb earlier children's draws."""
        a = spawn(make_rng(7), 2)
        b = spawn(make_rng(7), 4)
        assert a[0].random() == b[0].random()
        assert a[1].random() == b[1].random()

    def test_children_differ(self):
        children = spawn(make_rng(7), 3)
        draws = {c.random() for c in children}
        assert len(draws) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)

    def test_zero_children(self):
        assert spawn(make_rng(1), 0) == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "trial", 3) == derive_seed(7, "trial", 3)

    def test_distinct_parts_distinct_seeds(self):
        seeds = {derive_seed(0, "trial", i) for i in range(512)}
        assert len(seeds) == 512

    def test_sensitive_to_root_and_order(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_none_root_is_zero(self):
        assert derive_seed(None, "x") == derive_seed(0, "x")

    def test_fits_in_int64(self):
        for i in range(64):
            assert 0 <= derive_seed(i, "x") < 2**63

    def test_nested_json_parts_accepted(self):
        assert derive_seed(0, {"a": [1, 2]}, ("t", 1)) == derive_seed(
            0, {"a": [1, 2]}, ["t", 1]
        )

    def test_generator_root_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(np.random.default_rng(1), "x")

    def test_non_json_parts_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, object())
        with pytest.raises(ValueError):
            derive_seed(0, float("nan"))

    def test_pairwise_independence(self):
        """Derived streams must not be correlated with each other."""
        streams = [derive_rng(0, "trial", i).normal(size=512) for i in range(6)]
        for a, b in itertools.combinations(streams, 2):
            corr = float(np.corrcoef(a, b)[0, 1])
            assert abs(corr) < 0.2

    def test_independent_of_hash_randomization(self):
        """The per-trial seed must be identical in a fresh interpreter
        under any PYTHONHASHSEED — the property spawn pools rely on."""
        expected = derive_seed(7, '{"x":1}', 0)
        code = "from repro.rand import derive_seed; print(derive_seed(7, '{\"x\":1}', 0))"
        for hash_seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = "src"
            out = subprocess.run(
                [sys.executable, "-c", code], env=env, cwd=os.getcwd(),
                capture_output=True, text=True, check=True,
            )
            assert int(out.stdout.strip()) == expected


class TestStableChoice:
    def test_single(self):
        items = [("a", 1), ("b", 2), ("c", 3)]
        choice = stable_choice(make_rng(3), items)
        assert choice in items
        assert isinstance(choice, tuple)  # tuples survive intact

    def test_multiple_without_replacement(self):
        items = list(range(10))
        chosen = stable_choice(make_rng(3), items, size=5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stable_choice(make_rng(1), [])
