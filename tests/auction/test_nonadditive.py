"""Non-additive bids through the full selection + VCG path.

The paper's bid language explicitly allows "discounts for multiple
links, or other non-additive variations in pricing"; these tests drive
volume discounts, fixed participation costs, and bundle overrides
through the heuristic engines end to end (the MILP engine correctly
refuses them).
"""

import pytest

from repro.exceptions import AuctionError
from repro.auction.bids import (
    AdditiveCost,
    FixedPlusAdditiveCost,
    SubsetOverrideCost,
    VolumeDiscountCost,
)
from repro.auction.constraints import make_constraint
from repro.auction.provider import Offer
from repro.auction.selection import select_links, total_declared_cost
from repro.auction.vcg import AuctionConfig, run_auction
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network


def offers_with(p_bid_cls, **p_kwargs):
    """Square-network offers where P's bid uses the given cost class."""
    net = square_network()
    p_links = [net.link(lid) for lid in ("AB", "BC", "CD", "DA")]
    q_links = [net.link("AC")]
    p_prices = {"AB": 100.0, "BC": 100.0, "CD": 100.0, "DA": 100.0}
    p_cost = p_bid_cls(p_prices, **p_kwargs)
    q_cost = AdditiveCost({"AC": 250.0})  # dear diagonal: P should win
    offers = [
        Offer(provider="P", links=p_links, bid=p_cost, true_cost=p_cost),
        Offer(provider="Q", links=q_links, bid=q_cost, true_cost=q_cost),
    ]
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
    return net, offers, tm


class TestVolumeDiscountInSelection:
    def test_discount_changes_winner_economics(self):
        net, offers, tm = offers_with(
            VolumeDiscountCost, tiers=((2, 0.4),)
        )
        # Two ring links at 40% off cost 120 < diagonal 250.
        constraint = make_constraint(1, net, tm)
        outcome = select_links(offers, constraint, method="greedy-drop")
        assert constraint.satisfied(outcome.selected)
        assert outcome.total_cost <= 250.0

    def test_marginals_respect_discount(self):
        net, offers, tm = offers_with(VolumeDiscountCost, tiers=((2, 0.4),))
        p_bid = offers[0].bid
        # Marginal of the second link includes the discount kick-in:
        # C({AB,BC}) − C({AB}) = 120 − 100 = 20.
        assert p_bid.marginal(["AB", "BC"], "BC") == pytest.approx(20.0)

    def test_vcg_with_discounts(self):
        net, offers, tm = offers_with(VolumeDiscountCost, tiers=((2, 0.4),))
        constraint = make_constraint(1, net, tm)
        result = run_auction(offers, constraint,
                             config=AuctionConfig(method="greedy-drop"))
        assert result.total_cost > 0
        for pr in result.providers.values():
            assert pr.payment >= pr.declared_cost - 1e-9


class TestFixedCostInSelection:
    def test_participation_cost_counts_once(self):
        net, offers, tm = offers_with(FixedPlusAdditiveCost, fixed=30.0)
        constraint = make_constraint(1, net, tm)
        outcome = select_links(offers, constraint, method="greedy-drop")
        cost_direct = total_declared_cost(offers, outcome.selected)
        assert outcome.total_cost == pytest.approx(cost_direct)

    def test_fixed_cost_flip_is_a_known_heuristic_gap(self):
        """With fixed=100, P's two-link path costs 300 > the 250 diagonal
        — the true optimum is {AC}.  Reaching it from the ring requires a
        drop-2-add-1 move that neither greedy-drop nor 1-swap local
        search makes: the selection stays feasible but 20% above optimal.
        This test pins the gap so a future smarter engine shows up as a
        (welcome) failure here."""
        net, offers, tm = offers_with(FixedPlusAdditiveCost, fixed=100.0)
        constraint = make_constraint(1, net, tm)
        outcome = select_links(offers, constraint, method="greedy-drop")
        assert constraint.satisfied(outcome.selected)
        assert total_declared_cost(offers, ["AC"]) == pytest.approx(250.0)
        assert outcome.total_cost == pytest.approx(300.0)  # the local optimum


class TestBundleOverrideInSelection:
    def test_bundle_price_used(self):
        net = square_network()
        p_links = [net.link(lid) for lid in ("AB", "BC", "CD", "DA")]
        q_links = [net.link("AC")]
        base = AdditiveCost(
            {"AB": 150.0, "BC": 150.0, "CD": 150.0, "DA": 150.0}
        )
        p_cost = SubsetOverrideCost(
            base, {frozenset({"AB", "BC"}): 200.0}
        )
        q_cost = AdditiveCost({"AC": 250.0})
        offers = [
            Offer(provider="P", links=p_links, bid=p_cost, true_cost=p_cost),
            Offer(provider="Q", links=q_links, bid=q_cost, true_cost=q_cost),
        ]
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        constraint = make_constraint(1, net, tm)
        outcome = select_links(offers, constraint, method="greedy-drop")
        # The {AB, BC} bundle at 200 beats the diagonal at 250.
        assert outcome.total_cost <= 250.0


class TestMILPRefusesNonAdditive:
    def test_clear_error(self):
        net, offers, tm = offers_with(VolumeDiscountCost, tiers=((2, 0.4),))
        constraint = make_constraint(1, net, tm)
        with pytest.raises(AuctionError, match="additive"):
            select_links(offers, constraint, method="milp")
