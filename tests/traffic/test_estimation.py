"""Tests for upper-bound TM estimation."""

import pytest

from repro.exceptions import TrafficError
from repro.traffic.estimation import (
    EstimatorConfig,
    TrafficSampler,
    coverage_ratio,
    overprovision_factor,
    simulate_measurement_window,
)
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import uniform_matrix


@pytest.fixture
def base_tm():
    return uniform_matrix(["a", "b", "c"], total_gbps=60.0)


class TestSampler:
    def test_record_and_count(self):
        sampler = TrafficSampler(["a", "b"])
        sampler.record("a", "b", 5.0)
        sampler.record("a", "b", 7.0)
        assert sampler.num_samples == 2
        assert sampler.sample_count("a", "b") == 2
        assert sampler.sample_count("b", "a") == 0

    def test_record_matrix(self, base_tm):
        sampler = TrafficSampler(base_tm.nodes)
        sampler.record_matrix(base_tm)
        assert sampler.num_samples == base_tm.num_pairs

    def test_validation(self):
        sampler = TrafficSampler(["a", "b"])
        with pytest.raises(TrafficError):
            sampler.record("a", "z", 1.0)
        with pytest.raises(TrafficError):
            sampler.record("a", "a", 1.0)
        with pytest.raises(TrafficError):
            sampler.record("a", "b", -1.0)
        with pytest.raises(TrafficError):
            TrafficSampler(["a", "a"])


class TestEstimate:
    def test_constant_samples_scale_by_safety(self):
        sampler = TrafficSampler(["a", "b"])
        for _ in range(10):
            sampler.record("a", "b", 4.0)
        est = sampler.estimate(EstimatorConfig(safety_factor=1.5))
        assert est.demand("a", "b") == pytest.approx(6.0)

    def test_percentile_ignores_rare_spikes(self):
        sampler = TrafficSampler(["a", "b"])
        for _ in range(99):
            sampler.record("a", "b", 1.0)
        sampler.record("a", "b", 100.0)  # one freak spike
        est = sampler.estimate(EstimatorConfig(percentile=95.0, safety_factor=1.0))
        assert est.demand("a", "b") < 10.0

    def test_unseen_pairs_get_floor(self):
        sampler = TrafficSampler(["a", "b", "c"])
        sampler.record("a", "b", 5.0)
        est = sampler.estimate(EstimatorConfig(unseen_floor_gbps=0.5))
        assert est.demand("b", "c") == 0.5
        assert est.demand("c", "a") == 0.5

    def test_zero_floor_omits_unseen(self):
        sampler = TrafficSampler(["a", "b", "c"])
        sampler.record("a", "b", 5.0)
        est = sampler.estimate(EstimatorConfig(unseen_floor_gbps=0.0))
        assert est.demand("b", "c") == 0.0

    def test_config_validation(self):
        with pytest.raises(TrafficError):
            EstimatorConfig(percentile=0.0)
        with pytest.raises(TrafficError):
            EstimatorConfig(safety_factor=0.9)
        with pytest.raises(TrafficError):
            EstimatorConfig(unseen_floor_gbps=-1.0)


class TestWindowSimulation:
    def test_deterministic(self, base_tm):
        a = simulate_measurement_window(base_tm, seed=3)
        b = simulate_measurement_window(base_tm, seed=3)
        assert a.estimate().total_gbps() == b.estimate().total_gbps()

    def test_estimate_covers_typical_snapshot(self, base_tm):
        """The whole point: the bound covers the base TM comfortably."""
        sampler = simulate_measurement_window(
            base_tm, snapshots=96, burstiness=0.25, seed=5
        )
        estimate = sampler.estimate()
        assert coverage_ratio(estimate, base_tm) == 1.0

    def test_overprovision_is_bounded(self, base_tm):
        sampler = simulate_measurement_window(
            base_tm, snapshots=96, burstiness=0.25, seed=5
        )
        estimate = sampler.estimate()
        factor = overprovision_factor(estimate, base_tm)
        # Conservative, but not absurdly so.
        assert 1.0 <= factor <= 4.0

    def test_burstier_traffic_needs_bigger_bound(self, base_tm):
        calm = simulate_measurement_window(
            base_tm, snapshots=96, burstiness=0.1, seed=5
        ).estimate()
        bursty = simulate_measurement_window(
            base_tm, snapshots=96, burstiness=0.6, seed=5
        ).estimate()
        assert bursty.total_gbps() > calm.total_gbps()

    def test_validation(self, base_tm):
        with pytest.raises(TrafficError):
            simulate_measurement_window(base_tm, snapshots=0)
        with pytest.raises(TrafficError):
            simulate_measurement_window(base_tm, burstiness=-0.1)


class TestComparisons:
    def test_coverage_ratio(self, base_tm):
        bigger = base_tm.scaled(2.0)
        smaller = base_tm.scaled(0.5)
        assert coverage_ratio(bigger, base_tm) == 1.0
        assert coverage_ratio(smaller, base_tm) == 0.0

    def test_overprovision_requires_demand(self):
        empty = TrafficMatrix(nodes=["a", "b"])
        with pytest.raises(TrafficError):
            overprovision_factor(empty, empty)


class TestEmptySampleLists:
    def test_empty_per_pair_list_rejected(self):
        """Regression: an empty sample list must raise, not silently feed
        np.percentile (which returns NaN) or fall back to the floor."""
        sampler = TrafficSampler(["a", "b"])
        sampler.record("a", "b", 5.0)
        sampler._samples[("b", "a")] = []  # corrupted sampler state
        with pytest.raises(TrafficError, match="empty sample list"):
            sampler.estimate()

    def test_never_sampled_pair_still_gets_floor(self):
        sampler = TrafficSampler(["a", "b"])
        sampler.record("a", "b", 5.0)
        est = sampler.estimate(EstimatorConfig(unseen_floor_gbps=0.25))
        assert est.demand("b", "a") == pytest.approx(0.25)
