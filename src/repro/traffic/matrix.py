"""The traffic-matrix container.

A :class:`TrafficMatrix` maps directed (source, destination) node-id pairs
to offered load in Gbps.  It is deliberately independent of any particular
topology object; :meth:`TrafficMatrix.validate_against` checks consistency
with a network when one is in hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import TrafficError

Pair = Tuple[str, str]


@dataclass
class TrafficMatrix:
    """Directed offered load between node pairs, in Gbps."""

    nodes: List[str]
    _demands: Dict[Pair, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.nodes)) != len(self.nodes):
            raise TrafficError("duplicate node ids in traffic matrix")
        node_set = set(self.nodes)
        for (src, dst), value in self._demands.items():
            self._check_entry(src, dst, value, node_set)

    @staticmethod
    def _check_entry(src: str, dst: str, value: float, node_set: set) -> None:
        if src == dst:
            raise TrafficError(f"self-demand at {src}")
        if src not in node_set or dst not in node_set:
            raise TrafficError(f"demand endpoints not in node list: {src}->{dst}")
        if value < 0:
            raise TrafficError(f"negative demand {value} for {src}->{dst}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_function(
        cls,
        nodes: Sequence[str],
        fn: Callable[[str, str], float],
        *,
        include_zero: bool = False,
    ) -> "TrafficMatrix":
        """Build a TM by evaluating ``fn(src, dst)`` over all ordered pairs."""
        demands: Dict[Pair, float] = {}
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                value = float(fn(src, dst))
                if value > 0 or include_zero:
                    demands[(src, dst)] = value
        return cls(nodes=list(nodes), _demands=demands)

    @classmethod
    def from_dict(cls, nodes: Sequence[str], demands: Mapping[Pair, float]) -> "TrafficMatrix":
        return cls(nodes=list(nodes), _demands=dict(demands))

    # -- access ----------------------------------------------------------------

    def demand(self, src: str, dst: str) -> float:
        """Offered load from ``src`` to ``dst`` (0 if unspecified)."""
        return self._demands.get((src, dst), 0.0)

    def set_demand(self, src: str, dst: str, value: float) -> None:
        self._check_entry(src, dst, value, set(self.nodes))
        if value == 0.0:
            self._demands.pop((src, dst), None)
        else:
            self._demands[(src, dst)] = float(value)

    def pairs(self) -> Iterator[Tuple[Pair, float]]:
        """Iterate non-zero (pair, demand) entries in deterministic order."""
        for pair in sorted(self._demands):
            yield pair, self._demands[pair]

    @property
    def num_pairs(self) -> int:
        return len(self._demands)

    def total_gbps(self) -> float:
        """Sum of all demands."""
        return sum(self._demands.values())

    def egress_gbps(self, node: str) -> float:
        """Total traffic sourced at ``node``."""
        return sum(v for (s, _), v in self._demands.items() if s == node)

    def ingress_gbps(self, node: str) -> float:
        """Total traffic destined to ``node``."""
        return sum(v for (_, d), v in self._demands.items() if d == node)

    def max_pair_gbps(self) -> float:
        """The largest single demand (0 for an empty TM)."""
        return max(self._demands.values(), default=0.0)

    # -- transforms --------------------------------------------------------------

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise TrafficError(f"scale factor cannot be negative: {factor}")
        return TrafficMatrix(
            nodes=list(self.nodes),
            _demands={pair: v * factor for pair, v in self._demands.items()},
        )

    def symmetrized(self) -> "TrafficMatrix":
        """A copy where demand(a,b) = demand(b,a) = max of the two."""
        out: Dict[Pair, float] = {}
        for (src, dst), value in self._demands.items():
            fwd = max(value, self._demands.get((dst, src), 0.0))
            out[(src, dst)] = fwd
            out[(dst, src)] = fwd
        return TrafficMatrix(nodes=list(self.nodes), _demands=out)

    def restricted_to(self, nodes: Iterable[str]) -> "TrafficMatrix":
        """A copy keeping only demands between the given nodes."""
        keep = set(nodes)
        unknown = keep - set(self.nodes)
        if unknown:
            raise TrafficError(f"unknown nodes: {sorted(unknown)}")
        return TrafficMatrix(
            nodes=sorted(keep),
            _demands={
                (s, d): v
                for (s, d), v in self._demands.items()
                if s in keep and d in keep
            },
        )

    def to_array(self) -> np.ndarray:
        """Dense (n, n) array in the order of ``self.nodes``."""
        index = {node: i for i, node in enumerate(self.nodes)}
        arr = np.zeros((len(self.nodes), len(self.nodes)))
        for (src, dst), value in self._demands.items():
            arr[index[src], index[dst]] = value
        return arr

    # -- checks -----------------------------------------------------------------

    def validate_against(self, node_ids: Iterable[str]) -> None:
        """Raise :class:`TrafficError` if any TM node is absent from ``node_ids``."""
        available = set(node_ids)
        missing = set(self.nodes) - available
        if missing:
            raise TrafficError(
                f"traffic matrix references nodes absent from network: {sorted(missing)[:5]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficMatrix(nodes={len(self.nodes)}, pairs={self.num_pairs}, "
            f"total={self.total_gbps():.1f} Gbps)"
        )
