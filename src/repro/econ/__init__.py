"""The network-neutrality economic model (Section 4).

A unit mass of consumers values each CSP's service according to a
willingness-to-pay distribution F_s; demand at price p is
D_s(p) = 1 − F_s(p).  The package implements all three regimes the paper
analyzes:

- **NN** (:mod:`repro.econ.neutrality`) — no termination fees; CSPs set
  monopoly prices; welfare is maximal among the regimes.
- **UR, unilateral** (:mod:`repro.econ.unilateral`) — each LMP unilaterally
  sets the revenue-maximizing termination fee ("double marginalization").
- **UR, bargaining** (:mod:`repro.econ.bargaining` and
  :mod:`repro.econ.equilibrium`) — fees from the Nash bargaining solution,
  t = (p − r·c)/2, its population-weighted aggregate, and the
  price/fee renegotiation fixed point.

Welfare accounting lives in :mod:`repro.econ.welfare`; demand-curve
families (with Lemma 1's smoothness conditions) in
:mod:`repro.econ.demand`.
"""

from repro.econ.demand import (
    DemandCurve,
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ParetoDemand,
)
from repro.econ.csp import CSP, optimal_price
from repro.econ.lmp import LMP
from repro.econ.welfare import consumer_welfare, social_welfare
from repro.econ.neutrality import NNOutcome, nn_outcome
from repro.econ.unilateral import UROutcome, unilateral_outcome
from repro.econ.bargaining import average_fee, nbs_fee
from repro.econ.equilibrium import EquilibriumOutcome, bargaining_equilibrium

__all__ = [
    "DemandCurve",
    "ExponentialDemand",
    "LinearDemand",
    "LogitDemand",
    "ParetoDemand",
    "CSP",
    "optimal_price",
    "LMP",
    "consumer_welfare",
    "social_welfare",
    "NNOutcome",
    "nn_outcome",
    "UROutcome",
    "unilateral_outcome",
    "average_fee",
    "nbs_fee",
    "EquilibriumOutcome",
    "bargaining_equilibrium",
]
