"""The POC's acceptability constraints A(OL) (Section 3.3, Figure 2).

A candidate link set is *acceptable* when it carries the traffic matrix
under the required failure tolerance:

- ``Constraint #1`` — carry the offered load.
- ``Constraint #2`` — carry it under every single-link failure.
- ``Constraint #3`` — carry it when each router pair's primary path fails
  (evaluated per pair).

Constraints wrap a feasibility oracle and add scenario logic; all oracle
calls share one cache per (network, tm, engine), which matters because the
selection loop probes thousands of overlapping subsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import FlowError
from repro.netflow.failures import primary_path_failures, single_link_failures
from repro.netflow.feasibility import BaseOracle, make_oracle
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix


class Constraint:
    """Decides acceptability of link subsets for one (network, TM) pair."""

    #: Paper name, e.g. "constraint-1".
    name: str = "constraint"

    def __init__(self, network: Network, tm: TrafficMatrix, *, engine: str = "mcf") -> None:
        self.network = network
        self.tm = tm
        self.engine = engine
        self.oracle: BaseOracle = make_oracle(engine, network, tm)

    def satisfied(self, link_ids: Iterable[str]) -> bool:
        raise NotImplementedError

    @property
    def oracle_evaluations(self) -> int:
        """Number of non-cached oracle solves so far (diagnostics)."""
        return self.oracle.evaluations


class TrafficConstraint(Constraint):
    """Constraint #1: the links carry the traffic matrix."""

    name = "constraint-1"

    def satisfied(self, link_ids: Iterable[str]) -> bool:
        return self.oracle.feasible(frozenset(link_ids))


class SingleLinkSurvivability(Constraint):
    """Constraint #2: feasible under every single-link failure.

    The no-failure case is implied: removing any one link must still leave
    a feasible network, and feasibility is monotone in the link set, so
    the full set is feasible whenever all failure cases are.  We still
    check the base case first because it is the cheapest rejection.
    """

    name = "constraint-2"

    def satisfied(self, link_ids: Iterable[str]) -> bool:
        links = frozenset(link_ids)
        base = self.oracle.check(links)
        if not base.feasible:
            return False
        # A link carrying zero flow in the base routing can fail for free:
        # the very same routing certifies feasibility of the reduced set.
        loads = base.link_loads or {}
        for scenario in single_link_failures(links):
            if all(loads.get(lid, 0.0) <= 1e-9 for lid in scenario):
                continue
            if not self.oracle.feasible(links - scenario):
                return False
        return True


class PrimaryPathSurvivability(Constraint):
    """Constraint #3: feasible when each pair's primary path fails.

    For every router pair with traffic, compute the pair's primary
    (shortest) path within the candidate set; the candidate minus that
    path's links must still carry the full TM.  Pairs whose primary paths
    coincide are deduplicated by the scenario generator.
    """

    name = "constraint-3"

    def satisfied(self, link_ids: Iterable[str]) -> bool:
        links = frozenset(link_ids)
        base = self.oracle.check(links)
        if not base.feasible:
            return False
        loads = base.link_loads or {}
        for _pair, scenario in primary_path_failures(self.network, links):
            # If no removed link carried flow, the base routing survives.
            if all(loads.get(lid, 0.0) <= 1e-9 for lid in scenario):
                continue
            if not self.oracle.feasible(links - scenario):
                return False
        return True


_CONSTRAINTS = {
    1: TrafficConstraint,
    2: SingleLinkSurvivability,
    3: PrimaryPathSurvivability,
}


def make_constraint(
    number: int,
    network: Network,
    tm: TrafficMatrix,
    *,
    engine: str = "mcf",
) -> Constraint:
    """Constraint #1, #2, or #3 over the given network and TM."""
    try:
        cls = _CONSTRAINTS[number]
    except KeyError:
        raise FlowError(
            f"unknown constraint number {number}; expected 1, 2, or 3"
        ) from None
    return cls(network, tm, engine=engine)
