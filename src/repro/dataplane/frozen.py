"""Frozen allocation tables: the dataplane answer sheet for one snapshot.

The online service (:mod:`repro.service`) answers allocation queries at
high QPS against an *immutable* clearing snapshot.  Recomputing max-min
rates per request would make every read a progressive-filling run; this
module computes the whole table once per snapshot version — route every
positive traffic-matrix pair over the serviceable backbone, then run one
weighted max-min allocation over the shared links — and the service
serves dictionary lookups from then on.

The table is deterministic for a given (backbone, TM): pairs are routed
in sorted order and the fair-share solver is itself deterministic, so
two snapshots built from identical inputs answer identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.dataplane.fairshare import max_min_allocation
from repro.netflow.paths import shortest_path
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix

Pair = Tuple[str, str]


@dataclass(frozen=True)
class FrozenAllocation:
    """Per-pair routed rates over one frozen backbone.

    ``rates`` maps (src, dst) → allocated Gbps; ``paths`` maps the same
    pairs to the link ids they cross.  Pairs with positive demand that
    the backbone cannot connect appear in ``disconnected`` with rate 0.
    """

    rates: Mapping[Pair, float] = field(default_factory=dict)
    demands: Mapping[Pair, float] = field(default_factory=dict)
    paths: Mapping[Pair, Tuple[str, ...]] = field(default_factory=dict)
    disconnected: Tuple[Pair, ...] = ()

    def rate(self, src: str, dst: str) -> float:
        return self.rates.get((src, dst), 0.0)

    def connected(self, src: str, dst: str) -> bool:
        return (src, dst) in self.paths

    @property
    def total_demand_gbps(self) -> float:
        return sum(self.demands.values())

    @property
    def total_rate_gbps(self) -> float:
        return sum(self.rates.values())

    @property
    def served_fraction(self) -> float:
        """Fraction of offered demand the frozen routing carries."""
        demand = self.total_demand_gbps
        if demand <= 0:
            return 1.0
        return self.total_rate_gbps / demand


def freeze_allocation(backbone: Network, tm: TrafficMatrix) -> FrozenAllocation:
    """Route and fair-share every positive TM pair over ``backbone``.

    Each pair takes its shortest (geographic) path; rates are the
    weighted max-min allocation of the pair demands over the shared
    links, so a saturated link throttles exactly the pairs crossing it.
    """
    node_set = set(backbone.node_ids)
    flow_paths: Dict[str, List[str]] = {}
    demands: Dict[str, float] = {}
    pair_paths: Dict[Pair, Tuple[str, ...]] = {}
    disconnected: List[Pair] = []
    pair_demands: Dict[Pair, float] = {}
    for (src, dst), value in sorted(tm.pairs()):
        if value <= 0:
            continue
        pair_demands[(src, dst)] = value
        if src not in node_set or dst not in node_set:
            disconnected.append((src, dst))
            continue
        path = shortest_path(backbone, src, dst)
        if path is None or not path.link_ids:
            disconnected.append((src, dst))
            continue
        fid = f"{src}→{dst}"
        flow_paths[fid] = list(path.link_ids)
        demands[fid] = value
        pair_paths[(src, dst)] = tuple(path.link_ids)

    rates: Dict[Pair, float] = {}
    if flow_paths:
        capacities = {l.id: l.capacity_gbps for l in backbone.links}
        weights = {fid: 1.0 for fid in flow_paths}
        shares = max_min_allocation(flow_paths, demands, weights, capacities)
        for (src, dst) in pair_paths:
            rates[(src, dst)] = shares[f"{src}→{dst}"]
    for pair in disconnected:
        rates[pair] = 0.0
    return FrozenAllocation(
        rates=rates,
        demands=pair_demands,
        paths=pair_paths,
        disconnected=tuple(sorted(disconnected)),
    )
