"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal and deterministic:

- **counters** accumulate integer/float increments (monotone by
  convention; the registry does not enforce it beyond rejecting
  non-finite increments);
- **gauges** hold the last value set;
- **histograms** count observations into *fixed* buckets declared at
  first observation — no adaptive resizing, so two runs that observe
  the same values produce byte-identical snapshots.

Snapshots serialize to sorted-key JSON with ``allow_nan=False``, which
makes them assertable in tests and diffable across runs: any NaN/inf
sneaking into a metric is an error at serialization time, never a
silent ``NaN`` in a report.

:class:`NullRegistry` is the zero-overhead disabled form: every mutator
is a no-op ``pass``, so instrumented hot paths cost one attribute lookup
and one short call when observability is off.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

#: Default histogram buckets (seconds): microseconds to a minute.  The
#: last bucket is open-ended (the serialized form has one more count
#: than bucket bounds — the overflow bin).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Histogram buckets (seconds) for online-service request latencies:
#: finer sub-second resolution than the trial-phase buckets, because the
#: daemon's whole latency story (queueing + batching + deadline margins)
#: plays out between ~5ms and a few seconds.
SERVICE_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.02, 0.035, 0.05, 0.075, 0.1, 0.15,
    0.25, 0.5, 1.0, 2.0, 5.0,
)


def _require_finite(kind: str, name: str, value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ObservabilityError(
            f"{kind} {name!r} needs a number, got {value!r}"
        )
    if not math.isfinite(value):
        raise ObservabilityError(
            f"{kind} {name!r} got a non-finite value: {value!r}"
        )
    return float(value)


class _Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram buckets must be strictly increasing, got {bounds!r}"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """A process-local bag of named metrics with deterministic snapshots."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # -- mutators -------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        value = _require_finite("counter", name, value)
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = _require_finite("gauge", name, value)

    def observe(
        self, name: str, value: float,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        The bucket bounds are fixed by the *first* observation; later
        calls with different bounds are an error (silently re-bucketing
        would break snapshot determinism).
        """
        value = _require_finite("histogram", name, value)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram(buckets)
        elif tuple(float(b) for b in buckets) != hist.bounds:
            raise ObservabilityError(
                f"histogram {name!r} was created with buckets {hist.bounds}, "
                f"cannot observe with {tuple(buckets)}"
            )
        hist.observe(value)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reads ----------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def counters(self) -> Dict[str, float]:
        """Counter snapshot with int-valued counts emitted as ints."""
        return {
            name: int(v) if float(v).is_integer() else v
            for name, v in sorted(self._counters.items())
        }

    def snapshot(self) -> Dict[str, object]:
        """The full registry as plain sorted data (JSON-ready)."""
        return {
            "counters": self.counters(),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, NaN/inf rejected."""
        try:
            return json.dumps(self.snapshot(), sort_keys=True, allow_nan=False)
        except ValueError as exc:  # pragma: no cover - mutators reject non-finite
            raise ObservabilityError(f"metrics snapshot not serializable: {exc}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges last-write-wins,
        histograms require identical buckets)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + value
        self._gauges.update(other._gauges)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = _Histogram(hist.bounds)
            elif mine.bounds != hist.bounds:
                raise ObservabilityError(
                    f"cannot merge histogram {name!r}: bucket mismatch"
                )
            mine.count += hist.count
            mine.total += hist.total
            for i, c in enumerate(hist.counts):
                mine.counts[i] += c


class NullRegistry(MetricsRegistry):
    """The disabled registry: every write is a no-op, every read is empty.

    A shared singleton of this class is the active registry whenever
    observability is off, so instrumentation in hot paths (MCF build,
    MILP solve, dataplane allocation) costs one attribute lookup and a
    ``pass`` — and can never accumulate state across runs.
    """

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:  # noqa: D102
        pass

    def set_gauge(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def observe(
        self, name: str, value: float,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:  # noqa: D102
        pass


#: The shared disabled registry (never holds state; see class docstring).
NULL_REGISTRY = NullRegistry()
