"""Tests for the seeded load generator and chaos campaign driver."""

import pytest

from repro.exceptions import ServiceError
from repro.resilience.policy import CircuitBreaker
from repro.service import (
    ChaosPlan,
    LoadgenConfig,
    ServiceConfig,
    build_request_plan,
    run_service_benchmark,
)

SITES = ["A", "B", "C", "D"]
LINKS = ["AB", "BC", "CD"]


class TestConfigs:
    def test_loadgen_validation(self):
        with pytest.raises(ServiceError):
            LoadgenConfig(duration_s=0)
        with pytest.raises(ServiceError):
            LoadgenConfig(base_rate_qps=0)
        with pytest.raises(ServiceError):
            LoadgenConfig(kind_weights=(1.0,))
        with pytest.raises(ServiceError):
            LoadgenConfig(flash_multiplier=0.5)

    def test_chaos_validation(self):
        with pytest.raises(ServiceError):
            ChaosPlan(links_per_fault=0)
        with pytest.raises(ServiceError):
            ChaosPlan(stall_window=(2.0, 1.0))

    def test_flash_window_boosts_rate(self):
        cfg = LoadgenConfig(
            base_rate_qps=100.0, flash_start_s=5.0,
            flash_duration_s=2.0, flash_multiplier=4.0,
        )
        assert cfg.rate_at(4.9) == 100.0
        assert cfg.rate_at(5.0) == 400.0
        assert cfg.rate_at(6.9) == 400.0
        assert cfg.rate_at(7.0) == 100.0


class TestRequestPlan:
    def test_same_seed_same_plan(self):
        cfg = LoadgenConfig(duration_s=3.0, base_rate_qps=50.0)
        p1 = build_request_plan(cfg, SITES, LINKS, seed=9)
        p2 = build_request_plan(cfg, SITES, LINKS, seed=9)
        assert p1 == p2
        assert build_request_plan(cfg, SITES, LINKS, seed=10) != p1

    def test_plan_respects_duration_and_kinds(self):
        cfg = LoadgenConfig(duration_s=2.0, base_rate_qps=100.0)
        plan = build_request_plan(cfg, SITES, LINKS, seed=0)
        assert plan  # ~200 arrivals expected
        assert all(0.0 < t < 2.0 for t, _, _ in plan)
        assert all(t1 <= t2 for (t1, _, _), (t2, _, _) in zip(plan, plan[1:]))
        kinds = {k for _, k, _ in plan}
        assert kinds == {"admission", "allocation", "pricing", "health"}
        for _, kind, params in plan:
            if kind == "allocation":
                assert params["src"] != params["dst"]


class TestBenchmarkCampaign:
    def test_campaign_is_deterministic(self):
        kwargs = dict(
            load=LoadgenConfig(duration_s=2.0, base_rate_qps=60.0),
            chaos=ChaosPlan(fault_times=(0.8,), links_per_fault=1),
            config=ServiceConfig(primary_method="greedy-drop",
                                 fallback_method="greedy-cheap"),
        )
        r1 = run_service_benchmark(3, **kwargs)
        r2 = run_service_benchmark(3, **kwargs)
        assert r1.to_json() == r2.to_json()
        assert r1.unanswered == 0

    def test_fault_produces_degraded_answers_then_recovery(self):
        rep = run_service_benchmark(
            5,
            load=LoadgenConfig(duration_s=3.0, base_rate_qps=80.0),
            chaos=ChaosPlan(fault_times=(1.0,), links_per_fault=2),
            config=ServiceConfig(primary_method="greedy-drop",
                                 fallback_method="greedy-cheap",
                                 reclear_delay_s=0.5),
        )
        assert rep.faults_injected >= 1
        assert rep.degraded_served > 0
        assert rep.reclears == 1
        assert rep.recovery_s == pytest.approx(0.5)
        assert rep.final_health == "healthy"
        assert rep.unanswered == 0

    def test_flash_crowd_sheds_not_stalls(self):
        rep = run_service_benchmark(
            2,
            load=LoadgenConfig(
                duration_s=3.0, base_rate_qps=100.0,
                flash_start_s=1.0, flash_duration_s=1.0, flash_multiplier=20.0,
            ),
            config=ServiceConfig(
                primary_method="greedy-drop", fallback_method="greedy-cheap",
                queue_limit=32, per_request_cost_s=0.002,
            ),
        )
        assert rep.counts.get("overloaded", 0) > 0
        assert rep.unanswered == 0
        # Bounded latency: nothing served can have waited past its
        # deadline budget (the default 250 ms).
        assert rep.latency_max_ms <= 250.0
        assert 0.0 < rep.shed_rate < 1.0

    def test_stall_window_forces_fallback_and_opens_breaker(self):
        rep = run_service_benchmark(
            4,
            load=LoadgenConfig(duration_s=3.0, base_rate_qps=60.0),
            chaos=ChaosPlan(fault_times=(1.5,), links_per_fault=1,
                            stall_window=(1.0, 2.5)),
            config=ServiceConfig(primary_method="milp",
                                 fallback_method="greedy-drop",
                                 milp_time_limit_s=30.0,
                                 reclear_delay_s=0.5),
            breaker=CircuitBreaker(failure_threshold=1, cooldown_calls=10),
        )
        assert rep.final_breaker_state == "open"
        assert rep.final_health == "healthy"  # the fallback engine healed it
        assert rep.reclears == 1
        assert rep.unanswered == 0
