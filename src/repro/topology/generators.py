"""Synthetic single-operator network generators.

Real operator maps (the TopologyZoo input of the paper) share a shape:
a sparse, connected, geography-respecting backbone with a few redundant
long-haul shortcuts.  We reproduce that shape with a two-phase generator:

1. a Euclidean minimum spanning tree over the operator's PoP cities, which
   guarantees connectivity and hugs geography the way fibre builds do, then
2. extra Waxman-style shortcut links added with probability decaying in
   distance, which creates the redundancy/meshiness real backbones have.

Capacities are drawn from a small set of standard wave sizes (10/40/100
Gbps and n×100G bundles), matching how wholesale capacity is actually sold.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TopologyError
from repro.rand import SeedLike, make_rng
from repro.topology.cities import City
from repro.topology.geo import FIBER_ROUTE_FACTOR, haversine_km
from repro.topology.graph import Link, Network, Node

#: Standard leased-wave capacities in Gbps, with sampling weights skewed
#: toward 100G, the workhorse of the long-haul market per TeleGeography.
STANDARD_WAVES_GBPS: Tuple[float, ...] = (10.0, 40.0, 100.0, 200.0, 400.0)
_WAVE_WEIGHTS: Tuple[float, ...] = (0.15, 0.10, 0.45, 0.20, 0.10)


def node_for_city(city: City, prefix: str = "") -> Node:
    """Build a router node sited at a city."""
    node_id = f"{prefix}{city.name}" if prefix else city.name
    return Node(id=node_id, point=city.point, city=city.name, kind="router")


def _euclidean_mst_edges(cities: Sequence[City]) -> List[Tuple[int, int]]:
    """Prim's algorithm over great-circle distances; returns index pairs."""
    n = len(cities)
    if n <= 1:
        return []
    in_tree = [False] * n
    best_dist = [math.inf] * n
    best_from = [0] * n
    in_tree[0] = True
    for j in range(1, n):
        best_dist[j] = haversine_km(cities[0].point, cities[j].point)
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        j = min(
            (idx for idx in range(n) if not in_tree[idx]),
            key=lambda idx: best_dist[idx],
        )
        edges.append((best_from[j], j))
        in_tree[j] = True
        for k in range(n):
            if not in_tree[k]:
                d = haversine_km(cities[j].point, cities[k].point)
                if d < best_dist[k]:
                    best_dist[k] = d
                    best_from[k] = j
    return edges


def sample_wave_gbps(rng, scale: float = 1.0) -> float:
    """Draw one standard wave capacity, optionally scaled."""
    idx = int(rng.choice(len(STANDARD_WAVES_GBPS), p=_WAVE_WEIGHTS))
    return STANDARD_WAVES_GBPS[idx] * scale


def waxman_network(
    cities: Sequence[City],
    *,
    name: str = "waxman",
    seed: SeedLike = None,
    alpha: float = 0.5,
    beta: float = 0.25,
    capacity_scale: float = 1.0,
    route_factor: float = FIBER_ROUTE_FACTOR,
    node_prefix: str = "",
) -> Network:
    """Generate one operator backbone over the given cities.

    ``alpha`` controls overall shortcut density and ``beta`` the distance
    decay, as in Waxman's classic model: an extra edge (i, j) is added with
    probability ``alpha * exp(-d_ij / (beta * L))`` where ``L`` is the
    network's geographic diameter.  The MST phase runs first, so the result
    is always connected regardless of the Waxman draw.
    """
    if len(cities) < 2:
        raise ValueError("an operator network needs at least two cities")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if beta <= 0.0:
        raise ValueError(f"beta must be positive, got {beta}")
    names = [c.name for c in cities]
    if len(set(names)) != len(names):
        raise ValueError("duplicate cities passed to generator")

    rng = make_rng(seed)
    net = Network(name=name)
    for city in cities:
        net.add_node(node_for_city(city, prefix=node_prefix))

    diameter_km = max(
        haversine_km(a.point, b.point) for a, b in itertools.combinations(cities, 2)
    )
    counter = itertools.count()

    def add_span(i: int, j: int) -> None:
        a, b = cities[i], cities[j]
        length = haversine_km(a.point, b.point) * route_factor
        link = Link(
            id=f"{name}-L{next(counter):06d}",
            u=f"{node_prefix}{a.name}",
            v=f"{node_prefix}{b.name}",
            capacity_gbps=sample_wave_gbps(rng, capacity_scale),
            length_km=length,
            owner=None,
        )
        net.add_link(link)

    mst = _euclidean_mst_edges(cities)
    spanned = set()
    for i, j in mst:
        add_span(i, j)
        spanned.add(frozenset((i, j)))

    for i, j in itertools.combinations(range(len(cities)), 2):
        if frozenset((i, j)) in spanned:
            continue
        d = haversine_km(cities[i].point, cities[j].point)
        p = alpha * math.exp(-d / (beta * diameter_km))
        if rng.random() < p:
            add_span(i, j)

    return net


def ring_network(
    cities: Sequence[City],
    *,
    name: str = "ring",
    seed: SeedLike = None,
    capacity_scale: float = 1.0,
    node_prefix: str = "",
) -> Network:
    """A SONET-style ring in nearest-neighbour order.

    Rings are the second-most-common shape in TopologyZoo (metro and
    regional operators); we order cities greedily by proximity so the ring
    is geographically sensible.
    """
    if len(cities) < 3:
        raise ValueError("a ring needs at least three cities")
    rng = make_rng(seed)
    remaining = list(cities)
    ordered = [remaining.pop(int(rng.integers(len(remaining))))]
    while remaining:
        last = ordered[-1]
        nxt = min(remaining, key=lambda c: haversine_km(last.point, c.point))
        remaining.remove(nxt)
        ordered.append(nxt)

    net = Network(name=name)
    for city in ordered:
        net.add_node(node_for_city(city, prefix=node_prefix))
    for idx, city in enumerate(ordered):
        nxt = ordered[(idx + 1) % len(ordered)]
        length = haversine_km(city.point, nxt.point) * FIBER_ROUTE_FACTOR
        net.add_link(
            Link(
                id=f"{name}-L{idx:06d}",
                u=f"{node_prefix}{city.name}",
                v=f"{node_prefix}{nxt.name}",
                capacity_gbps=sample_wave_gbps(rng, capacity_scale),
                length_km=length,
            )
        )
    return net


def star_network(
    hub: City,
    leaves: Sequence[City],
    *,
    name: str = "star",
    seed: SeedLike = None,
    capacity_scale: float = 1.0,
    node_prefix: str = "",
) -> Network:
    """A hub-and-spoke operator (common for small regional carriers)."""
    if not leaves:
        raise ValueError("a star needs at least one leaf")
    if any(leaf.name == hub.name for leaf in leaves):
        raise ValueError("hub city repeated among leaves")
    rng = make_rng(seed)
    net = Network(name=name)
    net.add_node(node_for_city(hub, prefix=node_prefix))
    for idx, leaf in enumerate(leaves):
        net.add_node(node_for_city(leaf, prefix=node_prefix))
        length = haversine_km(hub.point, leaf.point) * FIBER_ROUTE_FACTOR
        net.add_link(
            Link(
                id=f"{name}-L{idx:06d}",
                u=f"{node_prefix}{hub.name}",
                v=f"{node_prefix}{leaf.name}",
                capacity_gbps=sample_wave_gbps(rng, capacity_scale),
                length_km=length,
            )
        )
    return net


def merge_networks(networks: Sequence[Network], name: str) -> Network:
    """Union several operator networks into one (shared cities merge).

    Nodes with the same id are merged *only* when the operators agree on
    the node's attributes (location, city, kind); a shared id with
    conflicting attributes raises :class:`~repro.exceptions.TopologyError`
    rather than silently keeping whichever operator came first.  Links
    always keep their distinct ids, producing parallel links where two
    operators span the same pair.  This is the "combined some networks to
    form 20 BPs" step of §3.3.
    """
    merged = Network(name=name)
    seen_links: Dict[str, str] = {}
    node_origin: Dict[str, str] = {}
    for net in networks:
        for node in net.nodes:
            existing = merged.node(node.id) if merged.has_node(node.id) else None
            if existing is not None and existing != node:
                raise TopologyError(
                    f"node {node.id!r} has conflicting attributes across "
                    f"merged networks: {node_origin[node.id]} has {existing!r}, "
                    f"{net.name} has {node!r}"
                )
            if existing is None:
                node_origin[node.id] = net.name
            merged.ensure_node(node)
        for link in net.iter_links():
            if link.id in seen_links:
                raise ValueError(
                    f"link id {link.id} appears in both {seen_links[link.id]} "
                    f"and {net.name}; generator ids must be globally unique"
                )
            seen_links[link.id] = net.name
            merged.add_link(link)
    return merged
