"""Region-sharded auction clearing for continental-scale markets.

A whole-network clear at T2 scale (≥100k offered links, 500+ sites) is
intractable for the selection engines' oracle-call budgets.  This module
partitions the market geographically and clears it in three moves:

1. **Partition** — every POC site is assigned a region
   (:class:`RegionPartition`): by city catalog region, or by longitude
   banding when no catalog is available.
2. **Region sub-markets** — each region clears *intra-region* offers
   against *intra-region* demand with the ordinary machinery
   (:func:`repro.auction.selection.select_links` /
   :func:`repro.auction.vcg.run_auction`).  Sub-markets are independent
   pure functions, so they parallelize through the sweep runner (the
   ``region_clear`` experiment) with byte-identical results.
3. **Stitch** — cross-region links and cross-region demand meet in a
   deterministic reconciliation market at *region-supernode*
   granularity: demand is rolled up to region pairs (the exact inverse
   of :func:`repro.traffic.hierarchy.hierarchical_matrix`'s expansion)
   and cross-region links are rewritten to join region supernodes.

The stitch clears **aggregate** inter-region capacity; it does not model
the intra-region last mile of cross-region flows (those links are priced
by the region sub-markets).  That approximation is the price of
decomposition.  Two exactness anchors hold by construction and are
locked by tests:

- a single-region partition reproduces the plain whole-network clear
  (same selection, same payments);
- on a *decomposable* topology (regions disconnected, demand purely
  intra-region) the union of region selections equals the serial
  whole-network ``greedy-drop`` selection exactly, because each drop
  decision only reads its own region's feasibility.

Pricing is ``"vcg"`` (Clarke pivots per sub-market — leave-one-out runs
stay region-local, which is what makes VCG affordable here) or ``"bid"``
(pay-as-bid, the T2 default: leave-one-out is intractable at that
scale and the stitch market's contract-like links are bid-priced in
practice anyway).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.auction.bids import AdditiveCost
from repro.auction.constraints import make_constraint
from repro.auction.provider import Offer
from repro.auction.selection import select_links
from repro.auction.vcg import AuctionConfig, run_auction
from repro.exceptions import AuctionError
from repro.obs import span
from repro.topology.cities import CityCatalog, get_city
from repro.topology.colocation import ColocationSite
from repro.topology.graph import Link, Network, Node
from repro.traffic.matrix import TrafficMatrix

LinkSet = FrozenSet[str]

#: Pricing rules accepted by :func:`clear_sharded`.
PRICINGS = ("vcg", "bid")


def _supernode(region: str) -> str:
    return f"region:{region}"


@dataclass(frozen=True)
class RegionPartition:
    """Assignment of every POC router to exactly one region."""

    regions: Tuple[str, ...]
    #: router_id → region label.
    site_regions: Mapping[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(self, "site_regions", dict(self.site_regions))
        known = set(self.regions)
        if len(known) != len(self.regions):
            raise AuctionError(f"duplicate region labels: {self.regions}")
        for router, region in self.site_regions.items():
            if region not in known:
                raise AuctionError(
                    f"site {router} assigned to unknown region {region!r}"
                )

    @classmethod
    def from_sites(
        cls,
        sites: Sequence[ColocationSite],
        *,
        catalog: Optional[CityCatalog] = None,
    ) -> "RegionPartition":
        """Partition by city-catalog region code."""
        site_regions = {
            site.router_id: get_city(site.city, catalog=catalog).region
            for site in sites
        }
        return cls(
            regions=tuple(sorted(set(site_regions.values()))),
            site_regions=site_regions,
        )

    @classmethod
    def geographic(
        cls,
        sites: Sequence[ColocationSite],
        k: int,
        *,
        catalog: Optional[CityCatalog] = None,
    ) -> "RegionPartition":
        """Partition into ``k`` longitude bands of near-equal site count.

        The fallback when site cities carry no meaningful region code;
        deterministic because ties on longitude break by router id.
        """
        if k < 1:
            raise AuctionError(f"need at least one band, got {k}")
        ordered = sorted(
            sites,
            key=lambda s: (get_city(s.city, catalog=catalog).lon, s.router_id),
        )
        k = min(k, len(ordered)) or 1
        width = max(2, len(str(k - 1)))
        site_regions: Dict[str, str] = {}
        base, extra = divmod(len(ordered), k)
        cursor = 0
        labels = []
        for band in range(k):
            size = base + (1 if band < extra else 0)
            label = f"g{band:0{width}d}"
            labels.append(label)
            for site in ordered[cursor : cursor + size]:
                site_regions[site.router_id] = label
            cursor += size
        return cls(regions=tuple(labels), site_regions=site_regions)

    def region_of(self, router_id: str) -> str:
        try:
            return self.site_regions[router_id]
        except KeyError:
            raise AuctionError(
                f"node {router_id!r} is not assigned to any region"
            ) from None

    def routers_in(self, region: str) -> List[str]:
        return sorted(
            router for router, r in self.site_regions.items() if r == region
        )


# -- market splitting ---------------------------------------------------------


def _restrict_additive(offer: Offer, links: List[Link]) -> Offer:
    ids = [l.id for l in links]
    return Offer(
        provider=offer.provider,
        links=links,
        bid=AdditiveCost({i: offer.bid.prices[i] for i in ids}),
        true_cost=AdditiveCost({i: offer.true_cost.prices[i] for i in ids}),
        in_auction=offer.in_auction,
    )


def split_offers(
    offers: Sequence[Offer], partition: RegionPartition
) -> Tuple[Dict[str, List[Offer]], List[Offer]]:
    """Split every offer into per-region sub-offers plus a cross bucket.

    Requires additive bids: restricting a non-additive cost function to a
    link subset changes its semantics (a volume discount earned across
    regions would silently vanish), so that is an error, not a guess.
    """
    by_region: Dict[str, List[Offer]] = {r: [] for r in partition.regions}
    cross: List[Offer] = []
    for offer in offers:
        if not isinstance(offer.bid, AdditiveCost) or not isinstance(
            offer.true_cost, AdditiveCost
        ):
            raise AuctionError(
                f"sharded clearing needs additive bids; provider "
                f"{offer.provider} bid a {type(offer.bid).__name__}"
            )
        buckets: Dict[str, List[Link]] = {}
        cross_links: List[Link] = []
        for link in offer.links:
            ru = partition.region_of(link.u)
            rv = partition.region_of(link.v)
            if ru == rv:
                buckets.setdefault(ru, []).append(link)
            else:
                cross_links.append(link)
        for region in sorted(buckets):
            by_region[region].append(_restrict_additive(offer, buckets[region]))
        if cross_links:
            cross.append(_restrict_additive(offer, cross_links))
    return by_region, cross


def split_traffic(
    tm: TrafficMatrix, partition: RegionPartition
) -> Tuple[Dict[str, TrafficMatrix], Dict[Tuple[str, str], float]]:
    """Intra-region TMs plus cross-region demand rolled up to region pairs."""
    intra: Dict[str, Dict[Tuple[str, str], float]] = {
        r: {} for r in partition.regions
    }
    cross: Dict[Tuple[str, str], float] = {}
    for (src, dst), value in tm.pairs():
        rs = partition.region_of(src)
        rd = partition.region_of(dst)
        if rs == rd:
            intra[rs][(src, dst)] = value
        else:
            key = (rs, rd)
            cross[key] = cross.get(key, 0.0) + value
    nodes_by_region = {
        r: [n for n in tm.nodes if partition.site_regions.get(n) == r]
        for r in partition.regions
    }
    tms = {
        r: TrafficMatrix(nodes=nodes_by_region[r], _demands=intra[r])
        for r in partition.regions
    }
    return tms, cross


def _region_network(
    network: Network, partition: RegionPartition, region: str
) -> Network:
    """The region's sub-network: its routers and intra-region links."""
    sub = Network(name=f"{network.name}:{region}")
    for node in network.nodes:
        if partition.site_regions.get(node.id) == region:
            sub.add_node(node)
    for link in network.iter_links():
        if sub.has_node(link.u) and sub.has_node(link.v):
            sub.add_link(link)
    return sub


def _stitch_market(
    partition: RegionPartition, cross_offers: Sequence[Offer]
) -> Tuple[Network, List[Offer]]:
    """The region-supernode network and cross offers rewritten onto it."""
    net = Network(name="stitch")
    for region in partition.regions:
        net.add_node(Node(id=_supernode(region), kind="region"))
    rewritten: List[Offer] = []
    for offer in cross_offers:
        links = [
            Link(
                id=link.id,
                u=_supernode(partition.region_of(link.u)),
                v=_supernode(partition.region_of(link.v)),
                capacity_gbps=link.capacity_gbps,
                length_km=link.length_km,
                owner=link.owner,
                virtual=link.virtual,
            )
            for link in offer.links
        ]
        for link in links:
            net.add_link(link)
        rewritten.append(
            Offer(
                provider=offer.provider,
                links=links,
                bid=offer.bid,
                true_cost=offer.true_cost,
                in_auction=offer.in_auction,
            )
        )
    return net, rewritten


# -- sub-market clearing ------------------------------------------------------


@dataclass(frozen=True)
class SubMarketClear:
    """One cleared sub-market: a region, or the cross-region stitch."""

    label: str
    selected: LinkSet
    total_cost: float
    #: Auction participants' payments (empty under bid pricing losses).
    payments: Dict[str, float]
    external_cost: float
    oracle_evaluations: int

    @property
    def total_payments(self) -> float:
        return sum(self.payments.values()) + self.external_cost


def _empty_clear(label: str) -> SubMarketClear:
    return SubMarketClear(
        label=label,
        selected=frozenset(),
        total_cost=0.0,
        payments={},
        external_cost=0.0,
        oracle_evaluations=0,
    )


def _clear_submarket(
    label: str,
    offers: Sequence[Offer],
    network: Network,
    tm: TrafficMatrix,
    *,
    engine: str,
    method: str,
    pricing: str,
) -> SubMarketClear:
    if not any(value > 0 for _pair, value in tm.pairs()):
        # Nothing to carry: the min-cost acceptable set is empty, no
        # payments flow.  Short-circuiting keeps empty regions free.
        return _empty_clear(label)
    constraint = make_constraint(1, network, tm, engine=engine)
    with span("sharded.clear", label=label, offers=len(offers), pricing=pricing):
        if pricing == "bid":
            outcome = select_links(offers, constraint, method=method)
            payments: Dict[str, float] = {}
            external = 0.0
            for offer in offers:
                mine = outcome.selected & offer.link_ids
                if not mine:
                    continue
                declared = offer.bid.cost(mine)
                if offer.in_auction:
                    payments[offer.provider] = declared
                else:
                    external += declared
            return SubMarketClear(
                label=label,
                selected=outcome.selected,
                total_cost=outcome.total_cost,
                payments=payments,
                external_cost=external,
                oracle_evaluations=outcome.oracle_evaluations,
            )
        result = run_auction(
            offers, constraint, config=AuctionConfig(method=method)
        )
        return SubMarketClear(
            label=label,
            selected=result.selected,
            total_cost=result.total_cost,
            payments={
                p: r.payment
                for p, r in result.providers.items()
                if r.selected_links or r.payment != 0.0
            },
            external_cost=result.external_cost,
            oracle_evaluations=result.selection.oracle_evaluations,
        )


def _stitch_clear(
    partition: RegionPartition,
    cross_offers: Sequence[Offer],
    cross_pairs: Mapping[Tuple[str, str], float],
    *,
    engine: str,
    method: str,
    pricing: str,
) -> Optional[SubMarketClear]:
    if not cross_offers and not cross_pairs:
        return None
    net, offers = _stitch_market(partition, cross_offers)
    tm = TrafficMatrix(
        nodes=[_supernode(r) for r in partition.regions],
        _demands={
            (_supernode(a), _supernode(b)): v
            for (a, b), v in sorted(cross_pairs.items())
        },
    )
    return _clear_submarket(
        "stitch", offers, net, tm, engine=engine, method=method, pricing=pricing
    )


# -- the sharded clear --------------------------------------------------------


@dataclass(frozen=True)
class ShardedClearResult:
    """Union of region sub-market clears plus the cross-region stitch."""

    pricing: str
    method: str
    engine: str
    regions: Tuple[SubMarketClear, ...]
    stitch: Optional[SubMarketClear] = None

    @property
    def selected(self) -> LinkSet:
        out = frozenset().union(*(r.selected for r in self.regions)) if self.regions else frozenset()
        if self.stitch is not None:
            out = out | self.stitch.selected
        return out

    @property
    def submarkets(self) -> Tuple[SubMarketClear, ...]:
        return self.regions + ((self.stitch,) if self.stitch else ())

    @property
    def total_cost(self) -> float:
        return sum(s.total_cost for s in self.submarkets)

    @property
    def external_cost(self) -> float:
        return sum(s.external_cost for s in self.submarkets)

    @property
    def payments(self) -> Dict[str, float]:
        """Per-provider payments summed across sub-markets."""
        out: Dict[str, float] = {}
        for sub in self.submarkets:
            for provider, payment in sub.payments.items():
                out[provider] = out.get(provider, 0.0) + payment
        return out

    @property
    def total_payments(self) -> float:
        return sum(s.total_payments for s in self.submarkets)

    def canonical_json(self) -> str:
        """A byte-stable rendering: identical clears → identical bytes.

        The serial and worker-pool paths must produce the same string —
        that is the reproducibility contract the scale-smoke CI job and
        the sharded tests assert.
        """

        def sub_payload(sub: SubMarketClear) -> Dict[str, object]:
            return {
                "label": sub.label,
                "selected": sorted(sub.selected),
                "total_cost": sub.total_cost,
                "payments": {k: sub.payments[k] for k in sorted(sub.payments)},
                "external_cost": sub.external_cost,
            }

        payload = {
            "pricing": self.pricing,
            "method": self.method,
            "engine": self.engine,
            "regions": [sub_payload(r) for r in self.regions],
            "stitch": sub_payload(self.stitch) if self.stitch else None,
            "selected": sorted(self.selected),
            "total_cost": self.total_cost,
        }
        return json.dumps(payload, sort_keys=True, allow_nan=False)


def clear_sharded(
    network: Network,
    offers: Sequence[Offer],
    tm: TrafficMatrix,
    partition: RegionPartition,
    *,
    engine: str = "mcf",
    method: str = "greedy-drop",
    pricing: str = "vcg",
) -> ShardedClearResult:
    """Clear the market region by region, then stitch cross-region flows.

    Serial reference implementation: every sub-market in
    ``partition.regions`` order, then the stitch.  The parallel path
    (:func:`clear_sharded_spec` with ``workers > 1``) runs the identical
    per-region function in a process pool and must produce a
    byte-identical :meth:`~ShardedClearResult.canonical_json`.
    """
    if pricing not in PRICINGS:
        raise AuctionError(
            f"unknown pricing {pricing!r}; expected one of {PRICINGS}"
        )
    by_region, cross_offers = split_offers(offers, partition)
    intra_tms, cross_pairs = split_traffic(tm, partition)
    regions = tuple(
        _clear_submarket(
            region,
            by_region[region],
            _region_network(network, partition, region),
            intra_tms[region],
            engine=engine,
            method=method,
            pricing=pricing,
        )
        for region in partition.regions
    )
    stitch = _stitch_clear(
        partition, cross_offers, cross_pairs,
        engine=engine, method=method, pricing=pricing,
    )
    return ShardedClearResult(
        pricing=pricing,
        method=method,
        engine=engine,
        regions=regions,
        stitch=stitch,
    )


# -- the sweepable continental workload ---------------------------------------

#: Per-process memo: sweep workers rebuild the workload once, not per trial.
_WORKLOAD_MEMO: Dict[Tuple, Tuple] = {}


def continental_workload(
    preset: str = "smoke",
    seed: int = 2026,
    *,
    load_fraction: float = 0.02,
    inter_region_fraction: float = 0.3,
    offer_seed: int = 7,
):
    """(zoo, offers, tm, partition) for a continental preset, memoized.

    The TM comes from the hierarchical region-profile model
    (:mod:`repro.traffic.hierarchy`), scaled so total demand is
    ``load_fraction`` of total offered capacity — the same loading
    convention as :func:`repro.experiments.pipeline.traffic_for_zoo`.
    """
    key = (preset, seed, load_fraction, inter_region_fraction, offer_seed)
    cached = _WORKLOAD_MEMO.get(key)
    if cached is not None:
        return cached
    from repro.experiments.pipeline import offers_for_zoo
    from repro.topology.continental import ContinentalConfig, build_continental
    from repro.traffic.hierarchy import (
        RegionProfile,
        hierarchical_matrix,
        profiles_from_catalog,
    )

    if preset == "smoke":
        config = ContinentalConfig.smoke(seed)
    elif preset == "t2":
        config = ContinentalConfig.t2(seed)
    else:
        raise AuctionError(f"unknown preset {preset!r}; expected smoke or t2")
    with span("sharded.workload", preset=preset, seed=seed):
        zoo = build_continental(config)
        profiles = profiles_from_catalog(zoo.catalog)
        raw = sum(p.total_gbps for p in profiles)
        target = zoo.offered.total_capacity_gbps() * load_fraction
        scale = target / raw if raw > 0 else 0.0
        profiles = [
            RegionProfile(p.region, p.users_m * scale, p.gbps_per_m_users)
            for p in profiles
        ]
        tm = hierarchical_matrix(
            zoo.sites,
            profiles,
            catalog=zoo.catalog,
            inter_region_fraction=inter_region_fraction,
        )
        offers = offers_for_zoo(zoo, seed=offer_seed)
        partition = RegionPartition.from_sites(zoo.sites, catalog=zoo.catalog)
    value = (zoo, offers, tm, partition)
    _WORKLOAD_MEMO[key] = value
    return value


def region_clear_record(
    params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    """One region sub-market as a flat sweep record (picklable trial body).

    The ``selection`` field is the sorted comma-joined link ids — a full-
    fidelity rendering, so the parallel path can reassemble the exact
    :class:`SubMarketClear` the serial path computes.
    """
    region = str(params["region"])
    zoo, offers, tm, partition = continental_workload(
        preset=str(params.get("preset", "smoke")),
        seed=int(seed),
        load_fraction=float(params.get("load_fraction", 0.02)),
        inter_region_fraction=float(params.get("inter_region_fraction", 0.3)),
        offer_seed=int(params.get("offer_seed", 7)),
    )
    if region not in partition.regions:
        raise AuctionError(
            f"unknown region {region!r}; expected one of {partition.regions}"
        )
    by_region, _cross = split_offers(offers, partition)
    intra_tms, _cross_pairs = split_traffic(tm, partition)
    sub = _clear_submarket(
        region,
        by_region[region],
        _region_network(zoo.offered, partition, region),
        intra_tms[region],
        engine=str(params.get("engine", "mcf")),
        method=str(params.get("method", "greedy-drop")),
        pricing=str(params.get("pricing", "bid")),
    )
    record: Dict[str, object] = {
        "cost": sub.total_cost,
        "external_cost": sub.external_cost,
        "num_selected": float(len(sub.selected)),
        "evaluations": float(sub.oracle_evaluations),
        "selection": ",".join(sorted(sub.selected)),
    }
    for provider in sorted(sub.payments):
        record[f"pay_{provider}"] = sub.payments[provider]
    return record


def _sub_from_record(label: str, record: Mapping[str, object]) -> SubMarketClear:
    selection = str(record["selection"])
    return SubMarketClear(
        label=label,
        selected=frozenset(selection.split(",")) if selection else frozenset(),
        total_cost=float(record["cost"]),
        payments={
            key[len("pay_"):]: float(value)
            for key, value in record.items()
            if key.startswith("pay_")
        },
        external_cost=float(record["external_cost"]),
        oracle_evaluations=int(float(record["evaluations"])),
    )


def clear_sharded_spec(
    preset: str = "smoke",
    seed: int = 2026,
    *,
    engine: str = "mcf",
    method: str = "greedy-drop",
    pricing: str = "bid",
    load_fraction: float = 0.02,
    inter_region_fraction: float = 0.3,
    offer_seed: int = 7,
    workers: int = 0,
) -> ShardedClearResult:
    """Clear a continental preset, serially or on a sweep worker pool.

    ``workers <= 1`` is the serial reference (:func:`clear_sharded`);
    ``workers > 1`` fans the region sub-markets out through the
    ``region_clear`` sweep experiment and reassembles the identical
    result — :meth:`ShardedClearResult.canonical_json` is byte-equal
    either way.  The stitch is cleared in-process in both paths.

    Default pricing is pay-as-bid: on generated continental workloads a
    provider is frequently *essential* inside its region, which makes
    the VCG leave-one-out run infeasible (the paper's known condition —
    resolved in practice with external transit contracts, which the
    generated zoos don't mint).  Pass ``pricing="vcg"`` when the
    workload guarantees redundancy.
    """
    if pricing not in PRICINGS:
        raise AuctionError(
            f"unknown pricing {pricing!r}; expected one of {PRICINGS}"
        )
    zoo, offers, tm, partition = continental_workload(
        preset=preset,
        seed=seed,
        load_fraction=load_fraction,
        inter_region_fraction=inter_region_fraction,
        offer_seed=offer_seed,
    )
    if workers <= 1:
        return clear_sharded(
            zoo.offered, offers, tm, partition,
            engine=engine, method=method, pricing=pricing,
        )

    import repro.experiments.trials  # noqa: F401 - registers region_clear
    from repro.sweeps.runner import run_sweep
    from repro.sweeps.spec import Axis, SweepSpec

    spec = SweepSpec(
        axes=(Axis("region", tuple(partition.regions)),),
        base={
            "preset": preset,
            "seed": seed,
            "engine": engine,
            "method": method,
            "pricing": pricing,
            "load_fraction": load_fraction,
            "inter_region_fraction": inter_region_fraction,
            "offer_seed": offer_seed,
        },
    )
    result = run_sweep("region_clear", spec, workers=workers)
    by_label = {
        str(o.params["region"]): _sub_from_record(str(o.params["region"]), o.record)
        for o in result.outcomes
    }
    missing = [r for r in partition.regions if r not in by_label]
    if missing:
        raise AuctionError(
            f"parallel clear lost region sub-markets: {missing}"
        )
    _by_region, cross_offers = split_offers(offers, partition)
    _intra, cross_pairs = split_traffic(tm, partition)
    stitch = _stitch_clear(
        partition, cross_offers, cross_pairs,
        engine=engine, method=method, pricing=pricing,
    )
    return ShardedClearResult(
        pricing=pricing,
        method=method,
        engine=engine,
        regions=tuple(by_label[r] for r in partition.regions),
        stitch=stitch,
    )
