"""Aggregate metrics/trace sidecar JSONL into a phase breakdown.

Feeds the ``poc-repro perf`` subcommand and the ``sweep --report``
timing table.  The aggregator accepts either sidecar format (or a mix):

- ``kind="trial"`` lines (metrics sidecar): per-trial wall/CPU/RSS plus
  per-phase *self* times already computed by the trial scope;
- ``kind="span"`` lines (trace sidecar): reconstructed into the same
  per-trial phase totals (the root ``trial`` span's self time becomes
  the ``overhead`` phase);
- ``kind="sweep"`` lines: cache-hit accounting, latest line per
  experiment wins;
- ``kind="service"`` lines (online-daemon campaigns): folded in as
  pseudo-trials named ``service:<name>`` so clear/re-clear/serve phases
  sit next to trial phases, with request-latency histograms merged
  across campaigns and reported as bucket-interpolated percentiles.

Parsing is strict on purpose: NaN/Infinity tokens and corrupt lines
raise :class:`~repro.exceptions.ObservabilityError` — a telemetry file
that cannot round-trip through ``allow_nan=False`` JSON indicates an
instrumentation bug and must fail loudly, not average quietly.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ObservabilityError
from repro.obs import OVERHEAD_PHASE, SERVICE_SPAN, TRIAL_SPAN
from repro.sweeps.aggregate import percentile


def _reject_constant(token: str) -> float:
    raise ObservabilityError(
        f"telemetry contains a non-finite JSON token ({token}); sidecars "
        "are written allow_nan=False, so this file is corrupt"
    )


def load_jsonl(path: Union[str, pathlib.Path]) -> List[Dict[str, object]]:
    """Parse one sidecar file, strictly (no NaN, no torn lines)."""
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read telemetry file {path}: {exc}")
    lines: List[Dict[str, object]] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line, parse_constant=_reject_constant)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{line_no}: corrupt telemetry line: {exc}"
            )
        if not isinstance(payload, dict):
            raise ObservabilityError(
                f"{path}:{line_no}: telemetry line is not an object"
            )
        lines.append(payload)
    return lines


@dataclass(frozen=True)
class PhaseStat:
    """One phase (span name) aggregated across trials."""

    name: str
    total_s: float
    calls: int
    trials: int
    p50_s: float  # median of per-trial phase totals
    p95_s: float

    def share_of(self, total_wall_s: float) -> float:
        if total_wall_s <= 0:
            return 0.0
        return self.total_s / total_wall_s


@dataclass(frozen=True)
class TrialTiming:
    """One trial's timing row (for the slowest-trials table)."""

    experiment: str
    index: int
    key: str
    wall_s: float
    cpu_s: float
    max_rss_kb: int
    ok: bool


@dataclass(frozen=True)
class HistogramStat:
    """One histogram (e.g. service request latency) merged across lines.

    Percentiles are estimated from the fixed buckets by linear
    interpolation inside the bucket holding the q-th observation; the
    open overflow bin reports the last finite bound (a floor, flagged
    as such by callers that care).
    """

    name: str
    count: int
    sum: float
    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ObservabilityError(f"quantile out of range: {q!r}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):  # overflow bin: floor estimate
                    return self.bounds[-1]
                hi = self.bounds[i]
                return lo + (hi - lo) * (target - cumulative) / n
            cumulative += n
        return self.bounds[-1]


@dataclass
class PerfReport:
    """Everything the phase-breakdown report shows."""

    trials: List[TrialTiming] = field(default_factory=list)
    phases: List[PhaseStat] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    sweeps: Dict[str, Dict[str, object]] = field(default_factory=dict)
    histograms: List[HistogramStat] = field(default_factory=list)

    @property
    def total_wall_s(self) -> float:
        return sum(t.wall_s for t in self.trials)

    @property
    def attributed_s(self) -> float:
        return sum(p.total_s for p in self.phases)

    @property
    def attributed_fraction(self) -> float:
        """Fraction of trial wall time inside named phases (incl. overhead).

        By construction ≈ 1.0: per-trial self times partition the root
        span exactly, so anything below ~1 indicates clock skew between
        the root span and its children (or a truncated sidecar).
        """
        total = self.total_wall_s
        if total <= 0:
            return 1.0
        return min(1.0, self.attributed_s / total)

    def experiments(self) -> List[str]:
        return sorted({t.experiment for t in self.trials})

    def slowest(self, count: int = 5) -> List[TrialTiming]:
        return sorted(
            self.trials, key=lambda t: (-t.wall_s, t.experiment, t.index)
        )[:count]


def _trials_from_span_lines(
    span_lines: Sequence[Mapping[str, object]],
) -> Tuple[List[TrialTiming], Dict[Tuple[str, str], Dict[str, float]],
           Dict[Tuple[str, str], Dict[str, int]]]:
    """Rebuild per-trial wall time and phase self-times from a trace file."""
    trials: List[TrialTiming] = []
    phases: Dict[Tuple[str, str], Dict[str, float]] = {}
    calls: Dict[Tuple[str, str], Dict[str, int]] = {}
    for line in span_lines:
        experiment = str(line.get("experiment", ""))
        trial_key = str(line.get("trial", ""))
        name = str(line.get("name", ""))
        self_s = float(line.get("self_s", 0.0))
        ident = (experiment, trial_key)
        is_root = name in (TRIAL_SPAN, SERVICE_SPAN)
        phase_name = OVERHEAD_PHASE if is_root else name
        bucket = phases.setdefault(ident, {})
        bucket[phase_name] = bucket.get(phase_name, 0.0) + self_s
        cbucket = calls.setdefault(ident, {})
        cbucket[phase_name] = cbucket.get(phase_name, 0) + 1
        if is_root:
            trials.append(TrialTiming(
                experiment=experiment,
                index=int(line.get("index", -1)),
                key=trial_key,
                wall_s=float(line.get("dur_s", 0.0)),
                cpu_s=0.0,
                max_rss_kb=0,
                ok=True,
            ))
    return trials, phases, calls


def aggregate_perf(lines: Sequence[Mapping[str, object]]) -> PerfReport:
    """Fold sidecar lines (metrics and/or trace) into a :class:`PerfReport`."""
    report = PerfReport()
    # (experiment, key) -> phase -> seconds / calls, one entry per trial.
    trial_phases: Dict[Tuple[str, str], Dict[str, float]] = {}
    trial_calls: Dict[Tuple[str, str], Dict[str, int]] = {}
    span_lines: List[Mapping[str, object]] = []
    seen_trial_keys = set()
    # name -> {bounds, counts, count, sum}: histograms merged across lines.
    hist_acc: Dict[str, Dict[str, object]] = {}
    service_seq = 0

    def _fold_histograms(payload: object) -> None:
        if not isinstance(payload, Mapping):
            return
        for name, hist in payload.items():
            if not isinstance(hist, Mapping):
                continue
            bounds = tuple(float(b) for b in hist.get("buckets", ()))
            counts = [int(c) for c in hist.get("counts", ())]
            if not bounds or len(counts) != len(bounds) + 1:
                raise ObservabilityError(
                    f"histogram {name!r} has malformed buckets/counts"
                )
            acc = hist_acc.get(str(name))
            if acc is None:
                hist_acc[str(name)] = {
                    "bounds": bounds,
                    "counts": counts,
                    "count": int(hist.get("count", sum(counts))),
                    "sum": float(hist.get("sum", 0.0)),
                }
                continue
            if acc["bounds"] != bounds:
                raise ObservabilityError(
                    f"cannot merge histogram {name!r}: bucket mismatch "
                    f"across telemetry lines"
                )
            acc["counts"] = [a + b for a, b in zip(acc["counts"], counts)]
            acc["count"] += int(hist.get("count", sum(counts)))
            acc["sum"] += float(hist.get("sum", 0.0))

    def _fold_common(ident: Tuple[str, str], line: Mapping[str, object]) -> None:
        phases = line.get("phases")
        if isinstance(phases, Mapping):
            bucket = trial_phases.setdefault(ident, {})
            for name, seconds in phases.items():
                bucket[name] = bucket.get(name, 0.0) + float(seconds)
        phase_calls = line.get("phase_calls")
        if isinstance(phase_calls, Mapping):
            cbucket = trial_calls.setdefault(ident, {})
            for name, count in phase_calls.items():
                cbucket[name] = cbucket.get(name, 0) + int(count)
        counters = line.get("counters")
        if isinstance(counters, Mapping):
            for name, value in counters.items():
                report.counters[name] = report.counters.get(name, 0) + value
        _fold_histograms(line.get("histograms"))

    for line in lines:
        kind = line.get("kind")
        if kind == "trial":
            ident = (str(line.get("experiment", "")), str(line.get("key", "")))
            seen_trial_keys.add(ident)
            report.trials.append(TrialTiming(
                experiment=ident[0],
                index=int(line.get("index", -1)),
                key=ident[1],
                wall_s=float(line.get("wall_s", 0.0)),
                cpu_s=float(line.get("cpu_s", 0.0)),
                max_rss_kb=int(line.get("max_rss_kb", 0)),
                ok=bool(line.get("ok", True)),
            ))
            _fold_common(ident, line)
        elif kind == "service":
            # One online-service campaign folds in as a pseudo-trial so
            # its clear/re-clear/serve phases sit next to trial phases in
            # the breakdown; its latency histograms merge across lines.
            service_seq += 1
            experiment = f"service:{line.get('name', '')}"
            ident = (experiment, f"#{service_seq}")
            seen_trial_keys.add(ident)
            # Service trace spans carry trial="" — claim that ident too,
            # so a metrics+trace aggregate does not double-count phases.
            seen_trial_keys.add((experiment, ""))
            report.trials.append(TrialTiming(
                experiment=experiment,
                index=service_seq,
                key="",
                wall_s=float(line.get("wall_s", 0.0)),
                cpu_s=float(line.get("cpu_s", 0.0)),
                max_rss_kb=int(line.get("max_rss_kb", 0)),
                ok=bool(line.get("ok", True)),
            ))
            _fold_common(ident, line)
        elif kind == "span":
            span_lines.append(line)
        elif kind == "sweep":
            report.sweeps[str(line.get("experiment", ""))] = dict(line)

    if span_lines:
        span_trials, span_phases, span_calls = _trials_from_span_lines(span_lines)
        # Metrics lines are authoritative; trace lines only fill in
        # trials the metrics sidecar does not cover (e.g. perf over a
        # trace file alone).
        for trial in span_trials:
            ident = (trial.experiment, trial.key)
            if ident not in seen_trial_keys:
                report.trials.append(trial)
        for ident, bucket in span_phases.items():
            if ident not in seen_trial_keys:
                trial_phases[ident] = bucket
                trial_calls[ident] = span_calls.get(ident, {})

    # Per-phase aggregation across trials.
    by_phase: Dict[str, List[float]] = {}
    call_totals: Dict[str, int] = {}
    phase_trials: Dict[str, int] = {}
    for ident, bucket in trial_phases.items():
        for name, seconds in bucket.items():
            by_phase.setdefault(name, []).append(seconds)
            phase_trials[name] = phase_trials.get(name, 0) + 1
            call_totals[name] = (
                call_totals.get(name, 0)
                + trial_calls.get(ident, {}).get(name, 0)
            )
    for name in sorted(by_phase):
        values = sorted(by_phase[name])
        report.phases.append(PhaseStat(
            name=name,
            total_s=sum(values),
            calls=call_totals.get(name, 0),
            trials=phase_trials.get(name, 0),
            p50_s=percentile(values, 50.0),
            p95_s=percentile(values, 95.0),
        ))
    report.phases.sort(key=lambda p: (-p.total_s, p.name))
    for name in sorted(hist_acc):
        acc = hist_acc[name]
        report.histograms.append(HistogramStat(
            name=name,
            count=int(acc["count"]),
            sum=float(acc["sum"]),
            bounds=tuple(acc["bounds"]),
            counts=tuple(acc["counts"]),
        ))
    return report


def format_perf(report: PerfReport, *, top: int = 5) -> str:
    """The human-readable phase breakdown, slowest trials, cache rates."""
    if not report.trials and not report.phases:
        raise ObservabilityError(
            "no trial or span telemetry to report; run a sweep with "
            "--metrics/--trace first"
        )
    total = report.total_wall_s
    experiments = ", ".join(report.experiments()) or "?"
    lines = [
        f"perf — {len(report.trials)} trial(s) [{experiments}]  "
        f"total wall {total:.3f}s  "
        f"attributed {100.0 * report.attributed_fraction:.1f}%",
    ]
    header = (f"{'phase':<24} {'total_s':>10} {'share':>7} {'calls':>7} "
              f"{'p50_ms':>9} {'p95_ms':>9}")
    lines.append(header)
    lines.append("-" * len(header))
    for phase in report.phases:
        lines.append(
            f"{phase.name:<24} {phase.total_s:>10.4f} "
            f"{100.0 * phase.share_of(total):>6.1f}% {phase.calls:>7} "
            f"{1000.0 * phase.p50_s:>9.2f} {1000.0 * phase.p95_s:>9.2f}"
        )
    slowest = report.slowest(top)
    if slowest:
        lines.append("slowest trials:")
        for trial in slowest:
            key = f"{trial.key[:12]}…" if trial.key else "—"
            rss = f"  rss {trial.max_rss_kb / 1024.0:.0f}MB" if trial.max_rss_kb else ""
            flag = "" if trial.ok else "  [failed]"
            lines.append(
                f"  [{trial.experiment}] trial {trial.index} {key}  "
                f"wall {trial.wall_s * 1000.0:.1f}ms  "
                f"cpu {trial.cpu_s * 1000.0:.1f}ms{rss}{flag}"
            )
    if report.histograms:
        lines.append("latency histograms (bucket-interpolated):")
        for hist in report.histograms:
            overflow = hist.counts[-1]
            note = f"  (+{overflow} over {hist.bounds[-1]:g}s)" if overflow else ""
            lines.append(
                f"  {hist.name}: n={hist.count}  "
                f"mean {1000.0 * hist.mean:.2f}ms  "
                f"p50 {1000.0 * hist.quantile(50.0):.2f}ms  "
                f"p95 {1000.0 * hist.quantile(95.0):.2f}ms  "
                f"p99 {1000.0 * hist.quantile(99.0):.2f}ms{note}"
            )
    for experiment in sorted(report.sweeps):
        sweep = report.sweeps[experiment]
        lines.append(
            f"sweep [{experiment}]: trials={sweep.get('trials')} "
            f"executed={sweep.get('executed')} "
            f"cache_hits={sweep.get('cache_hits')} "
            f"hit_rate={100.0 * float(sweep.get('cache_hit_rate', 0.0)):.1f}% "
            f"workers={sweep.get('workers')} "
            f"elapsed={float(sweep.get('elapsed_s', 0.0)):.2f}s"
        )
    return "\n".join(lines)


def perf_json(report: PerfReport) -> str:
    """Canonical JSON of the breakdown (sorted keys, no NaN)."""
    total = report.total_wall_s
    payload = {
        "trials": len(report.trials),
        "experiments": report.experiments(),
        "total_wall_s": total,
        "attributed_fraction": report.attributed_fraction,
        "phases": [
            {
                "name": p.name,
                "total_s": p.total_s,
                "share": p.share_of(total),
                "calls": p.calls,
                "trials": p.trials,
                "p50_s": p.p50_s,
                "p95_s": p.p95_s,
            }
            for p in report.phases
        ],
        "counters": dict(sorted(report.counters.items())),
        "sweeps": {name: report.sweeps[name] for name in sorted(report.sweeps)},
        "histograms": [
            {
                "name": h.name,
                "count": h.count,
                "sum": h.sum,
                "mean_s": h.mean,
                "p50_s": h.quantile(50.0),
                "p95_s": h.quantile(95.0),
                "p99_s": h.quantile(99.0),
                "buckets": list(h.bounds),
                "counts": list(h.counts),
            }
            for h in report.histograms
        ],
    }
    return json.dumps(payload, sort_keys=True, allow_nan=False, indent=2)


def load_perf(paths: Sequence[Union[str, pathlib.Path]]) -> PerfReport:
    """Read one or more sidecar files and aggregate them."""
    lines: List[Dict[str, object]] = []
    for path in paths:
        lines.extend(load_jsonl(path))
    return aggregate_perf(lines)


# -- A/B comparison -----------------------------------------------------------


@dataclass(frozen=True)
class PhaseDelta:
    """One phase's wall time in telemetry set A vs set B."""

    name: str
    a_total_s: float
    b_total_s: float
    a_calls: int
    b_calls: int

    @property
    def speedup(self) -> Optional[float]:
        """A/B wall-time ratio (>1 = B is faster); None when B has none."""
        if self.b_total_s <= 0.0:
            return None
        return self.a_total_s / self.b_total_s


@dataclass
class PerfComparison:
    """Per-phase diff of two sidecar sets (the before/after table)."""

    a: PerfReport
    b: PerfReport
    deltas: List[PhaseDelta] = field(default_factory=list)

    @property
    def wall_speedup(self) -> Optional[float]:
        if self.b.total_wall_s <= 0.0:
            return None
        return self.a.total_wall_s / self.b.total_wall_s

    def counter_deltas(self) -> List[Tuple[str, float, float]]:
        """(name, A, B) for every counter present in either set."""
        names = sorted(set(self.a.counters) | set(self.b.counters))
        return [
            (name, self.a.counters.get(name, 0.0), self.b.counters.get(name, 0.0))
            for name in names
        ]


def compare_perf(a: PerfReport, b: PerfReport) -> PerfComparison:
    """Diff two aggregated reports phase by phase.

    Phases are matched by span name over the union of both sets, ordered
    by descending wall time in A (the "before" side) so the biggest
    former costs — and what became of them — top the table.
    """
    a_phases = {p.name: p for p in a.phases}
    b_phases = {p.name: p for p in b.phases}
    deltas = []
    for name in set(a_phases) | set(b_phases):
        pa, pb = a_phases.get(name), b_phases.get(name)
        deltas.append(PhaseDelta(
            name=name,
            a_total_s=pa.total_s if pa else 0.0,
            b_total_s=pb.total_s if pb else 0.0,
            a_calls=pa.calls if pa else 0,
            b_calls=pb.calls if pb else 0,
        ))
    deltas.sort(key=lambda d: (-d.a_total_s, d.name))
    return PerfComparison(a=a, b=b, deltas=deltas)


def _ratio_text(ratio: Optional[float]) -> str:
    return f"{ratio:.2f}x" if ratio is not None else "—"


def format_compare(
    comparison: PerfComparison, *, label_a: str = "A", label_b: str = "B"
) -> str:
    """The per-phase speedup table behind ``poc-repro perf --compare``."""
    a, b = comparison.a, comparison.b
    if not (a.trials or a.phases) or not (b.trials or b.phases):
        raise ObservabilityError(
            "perf compare needs trial or span telemetry on both sides"
        )
    lines = [
        f"perf compare — A = {label_a} · B = {label_b}",
        f"A: {len(a.trials)} trial(s), {a.total_wall_s:.3f}s wall · "
        f"B: {len(b.trials)} trial(s), {b.total_wall_s:.3f}s wall · "
        f"overall speedup {_ratio_text(comparison.wall_speedup)}",
    ]
    header = (
        f"{'phase':<24} {'A_s':>10} {'B_s':>10} "
        f"{'speedup':>8} {'A_calls':>9} {'B_calls':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for delta in comparison.deltas:
        lines.append(
            f"{delta.name:<24} {delta.a_total_s:>10.4f} {delta.b_total_s:>10.4f} "
            f"{_ratio_text(delta.speedup):>8} {delta.a_calls:>9} {delta.b_calls:>9}"
        )
    if len(a.trials) and len(b.trials):
        mean_a = a.total_wall_s / len(a.trials)
        mean_b = b.total_wall_s / len(b.trials)
        ratio = _ratio_text(mean_a / mean_b if mean_b > 0 else None)
        lines.append(
            f"per-trial mean wall: A {1000.0 * mean_a:.1f}ms → "
            f"B {1000.0 * mean_b:.1f}ms ({ratio})"
        )
    changed = [
        (name, va, vb)
        for name, va, vb in comparison.counter_deltas()
        if va != vb
    ]
    if changed:
        lines.append("counters (changed):")
        for name, va, vb in changed:
            lines.append(f"  {name}: {va:g} → {vb:g}")
    return "\n".join(lines)


def compare_json(comparison: PerfComparison) -> str:
    """Canonical JSON of the comparison (sorted keys, no NaN)."""
    payload = {
        "a": {
            "trials": len(comparison.a.trials),
            "total_wall_s": comparison.a.total_wall_s,
        },
        "b": {
            "trials": len(comparison.b.trials),
            "total_wall_s": comparison.b.total_wall_s,
        },
        "wall_speedup": comparison.wall_speedup,
        "phases": [
            {
                "name": d.name,
                "a_total_s": d.a_total_s,
                "b_total_s": d.b_total_s,
                "speedup": d.speedup,
                "a_calls": d.a_calls,
                "b_calls": d.b_calls,
            }
            for d in comparison.deltas
        ],
        "counters": [
            {"name": name, "a": va, "b": vb}
            for name, va, vb in comparison.counter_deltas()
        ],
    }
    return json.dumps(payload, sort_keys=True, allow_nan=False, indent=2)


def expand_sidecar_set(spec: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """Resolve one ``--compare`` operand to sidecar files.

    Accepts a single JSONL file, a directory (all ``*.jsonl`` inside,
    sorted), or a comma-joined list of either.
    """
    paths: List[pathlib.Path] = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        path = pathlib.Path(part)
        if path.is_dir():
            found = sorted(path.glob("*.jsonl"))
            if not found:
                raise ObservabilityError(f"no *.jsonl sidecars in {path}")
            paths.extend(found)
        else:
            paths.append(path)
    if not paths:
        raise ObservabilityError(f"empty sidecar set: {spec!r}")
    return paths
