"""Tests for the fault-injection harness and survivability campaigns."""

import pytest

from repro.exceptions import BidError, ReproError
from repro.experiments.pipeline import PipelineCheckpoint
from repro.resilience.chaos import (
    FAULT_KINDS,
    TOPOLOGY_KINDS,
    ChaosConfig,
    FaultEvent,
    ScenarioResult,
    _corrupt_bid,
    _validate_offers,
    micro_scenario,
    plan_campaign,
    run_campaign,
)

from tests.conftest import square_network, square_offers


@pytest.fixture(scope="module")
def micro():
    return micro_scenario(seed=7)


@pytest.fixture(scope="module")
def seed7_report(micro):
    net, offers, tm = micro
    return run_campaign(net, offers, tm, ChaosConfig(seed=7, scenarios=6))


class TestMicroScenario:
    def test_shape(self, micro):
        net, offers, tm = micro
        assert len(net.node_ids) == 8
        # 8 ring + 4 chords + 2 parallel conduits + 8 virtual ext links.
        assert net.num_links == 22
        assert [o.provider for o in offers] == ["alpha", "beta", "gamma", "ext"]
        assert not offers[-1].in_auction  # the contract is not auctioned
        assert tm.total_gbps() > 0

    def test_same_seed_reproduces_prices(self):
        _, offers_a, tm_a = micro_scenario(seed=7)
        _, offers_b, tm_b = micro_scenario(seed=7)
        for a, b in zip(offers_a, offers_b):
            assert a.bid.cost(a.link_ids) == b.bid.cost(b.link_ids)
        assert tm_a.total_gbps() == tm_b.total_gbps()

    def test_different_seed_changes_prices(self):
        _, offers_a, _ = micro_scenario(seed=7)
        _, offers_b, _ = micro_scenario(seed=8)
        assert any(
            a.bid.cost(a.link_ids) != b.bid.cost(b.link_ids)
            for a, b in zip(offers_a, offers_b)
            if a.in_auction
        )

    def test_parallel_conduits_form_srlgs(self, micro):
        from repro.netflow.failures import shared_risk_groups

        net, _, _ = micro
        groups = shared_risk_groups(net)
        assert groups  # the gamma conduits share risk with ring links
        for group in groups:
            assert len(group) >= 2


class TestFaultEventAndConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            FaultEvent(epoch=0, kind="meteor-strike")
        with pytest.raises(ReproError):
            ChaosConfig(kinds=("link-flap", "meteor-strike"))

    def test_config_bounds(self):
        with pytest.raises(ReproError):
            ChaosConfig(scenarios=0)
        with pytest.raises(ReproError):
            ChaosConfig(kinds=())

    def test_topology_kinds_subset(self):
        assert TOPOLOGY_KINDS < set(FAULT_KINDS)


class TestPlanCampaign:
    def test_kinds_cycle_in_order(self, micro):
        net, offers, _ = micro
        events = plan_campaign(net, offers, ChaosConfig(seed=7, scenarios=8))
        expected = [FAULT_KINDS[i % len(FAULT_KINDS)] for i in range(8)]
        assert [e.kind for e in events] == expected
        assert [e.epoch for e in events] == list(range(8))

    def test_deterministic_per_seed(self, micro):
        net, offers, _ = micro
        a = plan_campaign(net, offers, ChaosConfig(seed=7, scenarios=6))
        b = plan_campaign(net, offers, ChaosConfig(seed=7, scenarios=6))
        assert a == b
        c = plan_campaign(net, offers, ChaosConfig(seed=8, scenarios=6))
        assert [e.salt for e in a] != [e.salt for e in c]

    def test_targets_resolved_at_plan_time(self, micro):
        net, offers, _ = micro
        events = plan_campaign(net, offers, ChaosConfig(seed=7, scenarios=6))
        by_kind = {e.kind: e for e in events}
        assert by_kind["node-outage"].target in net.node_ids
        assert by_kind["node-outage"].link_ids  # incident links recorded
        assert by_kind["srlg-cut"].link_ids  # the parallel-conduit group
        assert by_kind["bp-dropout"].target in {"alpha", "beta", "gamma"}
        assert by_kind["malformed-bid"].target in {"alpha", "beta", "gamma"}
        # link-flap resolves its target from the cleared selection later.
        assert by_kind["link-flap"].target == ""

    def test_srlg_degrades_to_link_flap_without_groups(self):
        # The square has no parallel conduits: srlg-cut cannot be staged.
        net = square_network()
        offers = square_offers(net)
        events = plan_campaign(
            net, offers, ChaosConfig(seed=7, scenarios=2, kinds=("srlg-cut",))
        )
        assert all(e.kind == "link-flap" for e in events)


class TestBidValidation:
    def test_corrupt_bid_detected(self, micro):
        _, offers, _ = micro
        bad = _corrupt_bid(offers[0])
        with pytest.raises(BidError):
            _validate_offers([bad] + list(offers[1:]))

    def test_clean_offers_pass(self, micro):
        _, offers, _ = micro
        _validate_offers(offers)  # does not raise


class TestScenarioResult:
    def test_dict_roundtrip(self):
        s = ScenarioResult(
            epoch=3, kind="bp-dropout", target="alpha", engine="milp",
            fallback=False, attempts=1, served_fraction=1.0,
            unserved_gbps=0.0, rerouted=False, disconnected_pairs=0,
            dropped_out="alpha",
        )
        assert ScenarioResult.from_dict(s.to_dict()) == s


class TestRunCampaign:
    def test_covers_every_fault_class(self, seed7_report):
        assert [s.kind for s in seed7_report.scenarios] == list(FAULT_KINDS)

    def test_topology_faults_degrade_service(self, seed7_report):
        by_kind = {s.kind: s for s in seed7_report.scenarios}
        # Constraint #1 selects a near-tree: cutting it strands demand.
        assert by_kind["link-flap"].served_fraction < 1.0
        assert by_kind["node-outage"].served_fraction < 1.0
        assert by_kind["node-outage"].disconnected_pairs > 0
        assert by_kind["node-outage"].unserved_gbps > 0
        for s in seed7_report.scenarios:
            assert not s.infeasible
            assert 0.0 <= s.served_fraction <= 1.0

    def test_solver_stall_falls_back(self, seed7_report):
        stall = next(s for s in seed7_report.scenarios if s.kind == "solver-stall")
        assert stall.fallback
        assert stall.engine == "greedy-drop"
        assert stall.attempts == 2  # one retry before giving up
        # The control-plane fault costs no service.
        assert stall.served_fraction == pytest.approx(1.0)

    def test_malformed_bid_quarantines_provider(self, seed7_report):
        bad = next(s for s in seed7_report.scenarios if s.kind == "malformed-bid")
        assert bad.quarantined == bad.target
        assert bad.served_fraction == pytest.approx(1.0)

    def test_bp_dropout_reclears(self, seed7_report):
        drop = next(s for s in seed7_report.scenarios if s.kind == "bp-dropout")
        # The scheduled provider either won (re-clear without it) or lost
        # (nothing to do); either way the epoch serves in full.
        assert drop.served_fraction == pytest.approx(1.0)
        if drop.dropped_out:
            assert drop.dropped_out == drop.target

    def test_byte_identical_across_runs(self, micro, seed7_report):
        net, offers, tm = micro
        again = run_campaign(net, offers, tm, ChaosConfig(seed=7, scenarios=6))
        assert again.to_json() == seed7_report.to_json()

    def test_report_aggregates(self, seed7_report):
        by_class = seed7_report.served_by_class()
        assert set(by_class) == set(FAULT_KINDS)
        assert 0.0 < seed7_report.mean_served_fraction <= 1.0
        assert seed7_report.fallback_count >= 1
        text = seed7_report.formatted()
        assert "chaos campaign: seed=7" in text
        assert "fallback" in text

    def test_survivable_selection_reroutes(self, micro):
        # Under Constraint #2 the selection must survive any single link
        # failure: the link-flap epoch reroutes with zero unserved demand.
        net, offers, tm = micro
        report = run_campaign(
            net, offers, tm,
            ChaosConfig(seed=7, scenarios=1, kinds=("link-flap",)),
            constraint=2,
        )
        (s,) = report.scenarios
        assert s.rerouted
        assert s.served_fraction == pytest.approx(1.0)
        # The MILP cannot express Constraint #2: the policy layer must
        # have recorded a fallback, not crashed.
        assert s.fallback


class TestCheckpointResume:
    def test_resume_is_byte_identical(self, micro, seed7_report, tmp_path):
        net, offers, tm = micro
        path = tmp_path / "campaign.json"
        ckpt = PipelineCheckpoint(path)
        partial = run_campaign(
            net, offers, tm, ChaosConfig(seed=7, scenarios=3), checkpoint=ckpt
        )
        assert len(partial.scenarios) == 3
        assert sorted(ckpt.stages()) == [f"scenario-{i}" for i in range(3)]

        # A fresh process resumes from disk; epochs 0-2 replay, 3-5 run.
        resumed = run_campaign(
            net, offers, tm, ChaosConfig(seed=7, scenarios=6),
            checkpoint=PipelineCheckpoint(path),
        )
        assert resumed.to_json() == seed7_report.to_json()

    def test_completed_campaign_replays_without_solving(self, micro, tmp_path):
        net, offers, tm = micro
        path = tmp_path / "campaign.json"
        cfg = ChaosConfig(seed=7, scenarios=2)
        first = run_campaign(net, offers, tm, cfg, checkpoint=PipelineCheckpoint(path))
        # Replay with a workload that would error if actually re-run:
        # every stage must come from the checkpoint instead.
        replay = run_campaign(
            net, [], tm, cfg, checkpoint=PipelineCheckpoint(path)
        )
        assert replay.to_json() == first.to_json()


class TestInjectedLinkFaults:
    @pytest.fixture
    def provisioned_poc(self):
        from repro.auction.provider import make_external_contract
        from repro.core.poc import PublicOptionCore

        from tests.conftest import square_tm

        net = square_network()
        offers = square_offers(net)
        poc = PublicOptionCore(offered=net)
        poc.add_external_contract(make_external_contract(
            "ext", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")],
            capacity_gbps=10.0, price_per_link=500.0, length_km=100.0,
        ))
        poc.provision(offers, square_tm(load=1.0), constraint=1,
                      method="greedy-drop")
        return poc

    def test_normal_exit_restores(self, provisioned_poc):
        from repro.resilience.chaos import injected_link_faults

        poc = provisioned_poc
        lid = sorted(poc.auction_result.selected)[0]
        with injected_link_faults(poc):
            poc.apply_link_failures([lid])
            assert poc.degraded
        assert not poc.degraded
        assert poc.failed_links == frozenset()

    def test_crashed_trial_leaves_poc_pristine(self, provisioned_poc):
        # The supervisor can kill a trial at any point; whatever faults
        # the harness injected must not leak into the next scenario.
        from repro.resilience.chaos import injected_link_faults

        poc = provisioned_poc
        lid = sorted(poc.auction_result.selected)[0]
        with pytest.raises(RuntimeError, match="trial crashed"):
            with injected_link_faults(poc):
                poc.apply_link_failures([lid])
                raise RuntimeError("trial crashed mid-assessment")
        assert not poc.degraded
        assert poc.failed_links == frozenset()
        assert lid in poc.backbone.link_ids

    def test_preexisting_degradation_preserved(self, provisioned_poc):
        # A genuinely failed link from before the block must stay failed:
        # the harness only undoes its own injections.
        from repro.resilience.chaos import injected_link_faults

        poc = provisioned_poc
        selected = sorted(poc.auction_result.selected)
        real, injected = selected[0], selected[1]
        poc.apply_link_failures([real])
        with pytest.raises(ValueError):
            with injected_link_faults(poc):
                poc.apply_link_failures([injected])
                raise ValueError("boom")
        assert poc.failed_links == frozenset({real})
