"""Tests for transit pricing and the POC comparison."""

import pytest

from repro.exceptions import PolicyError
from repro.interdomain.relationships import small_internet
from repro.interdomain.transit import (
    TransitMarket,
    poc_position,
    poc_vs_transit,
    status_quo_position,
)


@pytest.fixture
def market():
    return TransitMarket(
        small_internet(),
        base_rate_per_gbps=1000.0,
        competitor_markup=0.5,
        eyeball_transits={"trA", "trB"},
    )


class TestQuotes:
    def test_plain_quote(self, market):
        quote = market.quote("trC", "eyeball3")
        assert quote.effective_rate == 1000.0
        assert quote.monthly(10.0) == 10_000.0

    def test_competitor_markup(self, market):
        # trA serves eyeballs and eyeball1 is an eyeball: markup applies.
        quote = market.quote("trA", "eyeball1")
        assert quote.competitor_markup == 0.5
        assert quote.effective_rate == 1500.0

    def test_content_customer_no_markup(self, market):
        # content1 does not serve eyeballs: no competitive squeeze.
        quote = market.quote("trA", "content1")
        assert quote.competitor_markup == 0.0

    def test_non_provider_cannot_quote(self, market):
        with pytest.raises(PolicyError):
            market.quote("trB", "eyeball1")

    def test_best_quote_picks_cheapest(self, market):
        # content1 multihomes to trA (no markup) and trC (no markup):
        # tie broken by name -> trA.
        quote = market.best_quote("content1")
        assert quote.provider == "trA"

    def test_negative_usage_rejected(self, market):
        quote = market.quote("trC", "eyeball3")
        with pytest.raises(PolicyError):
            quote.monthly(-1.0)

    def test_markup_validation(self):
        with pytest.raises(PolicyError):
            TransitMarket(small_internet(), competitor_markup=-0.1)
        with pytest.raises(PolicyError):
            TransitMarket(small_internet(), eyeball_transits={"ghost"})


class TestEntrantPositions:
    def test_status_quo_squeezed(self, market):
        pos = status_quo_position(market, "eyeball1", usage_gbps=10.0)
        assert pos.pays_competitor
        assert pos.termination_fee_exposure
        assert pos.monthly_transit_cost == pytest.approx(15_000.0)
        assert pos.reaches_all_destinations

    def test_poc_position(self):
        pos = poc_position(600.0, "eyeball1", usage_gbps=10.0)
        assert not pos.pays_competitor
        assert not pos.termination_fee_exposure
        assert pos.monthly_transit_cost == pytest.approx(6_000.0)
        assert pos.reaches_all_destinations

    def test_comparison(self, market):
        both = poc_vs_transit(market, "eyeball1", usage_gbps=10.0,
                              poc_rate_per_gbps=600.0)
        assert both["poc"].monthly_transit_cost < both["status-quo"].monthly_transit_cost

    def test_unconnected_entrant(self):
        from repro.interdomain.relationships import ASGraph

        g = ASGraph()
        g.add_as("orphan")
        market = TransitMarket(g)
        pos = status_quo_position(market, "orphan", usage_gbps=1.0)
        assert pos.monthly_transit_cost == float("inf")
        assert not pos.reaches_all_destinations

    def test_poc_rate_validation(self):
        with pytest.raises(PolicyError):
            poc_position(-1.0, "x", 1.0)
