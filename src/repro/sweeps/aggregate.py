"""Aggregation over sweep results: group-by axes, mean/CI/percentiles.

Pure Python on purpose — summing a few thousand floats needs no numpy,
and plain arithmetic in a fixed order makes the aggregate *byte-stable*:
the same trial records produce the same report regardless of how many
workers produced them or in what order they finished.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SweepError

#: z-score of the two-sided 95% normal interval.
_Z95 = 1.959963984540054


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default), q in [0, 100]."""
    if not sorted_values:
        raise SweepError("percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise SweepError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = q / 100.0 * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return float(sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac)


@dataclass(frozen=True)
class MetricStat:
    """Summary statistics of one metric within one group."""

    n: int
    mean: float
    std: float  # sample std (ddof=1); 0 for a single observation
    ci95: float  # half-width of the normal-approximation 95% CI
    p5: float
    p50: float
    p95: float
    lo: float
    hi: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStat":
        if not values:
            raise SweepError("cannot summarize an empty metric")
        n = len(values)
        mean = math.fsum(values) / n
        if n > 1:
            try:
                # Clamp guards against any float rounding pushing the sum of
                # squares fractionally negative (all-equal values must yield
                # exactly std=0/ci95=0, never a NaN from sqrt of -0.0-ish).
                var = max(0.0, math.fsum((v - mean) ** 2 for v in values) / (n - 1))
            except OverflowError:
                raise SweepError(
                    f"metric summary overflowed computing variance of {n} "
                    "values; values too large to aggregate"
                ) from None
            std = math.sqrt(var)
        else:
            std = 0.0
        if not (math.isfinite(mean) and math.isfinite(std)):
            raise SweepError(
                f"metric summary overflowed (mean={mean!r}, std={std!r}); "
                "values too large to aggregate"
            )
        ordered = sorted(values)
        return cls(
            n=n,
            mean=mean,
            std=std,
            ci95=_Z95 * std / math.sqrt(n) if n > 1 else 0.0,
            p5=percentile(ordered, 5.0),
            p50=percentile(ordered, 50.0),
            p95=percentile(ordered, 95.0),
            lo=float(ordered[0]),
            hi=float(ordered[-1]),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "p5": self.p5,
            "p50": self.p50,
            "p95": self.p95,
            "lo": self.lo,
            "hi": self.hi,
        }


@dataclass(frozen=True)
class GroupStat:
    """All metric summaries for one combination of group-by values."""

    group: Mapping[str, object]
    n: int
    metrics: Mapping[str, MetricStat]

    def label(self) -> str:
        if not self.group:
            return "(all)"
        return " ".join(f"{k}={self.group[k]}" for k in sorted(self.group))

    def to_dict(self) -> Dict[str, object]:
        return {
            "group": dict(self.group),
            "n": self.n,
            "metrics": {name: stat.to_dict() for name, stat in sorted(self.metrics.items())},
        }


def _numeric_items(record: Mapping[str, object]) -> List[Tuple[str, float]]:
    out = []
    for name, value in record.items():
        if isinstance(value, bool):
            out.append((name, 1.0 if value else 0.0))
        elif isinstance(value, (int, float)):
            if not math.isfinite(value):
                raise SweepError(f"metric {name!r} is non-finite: {value!r}")
            out.append((name, float(value)))
    return out


def aggregate(
    rows: Sequence[Tuple[Mapping[str, object], Mapping[str, object]]],
    *,
    group_by: Sequence[str] = (),
) -> List[GroupStat]:
    """Summarize ``(params, record)`` rows grouped by the named axes.

    ``group_by=()`` collapses everything into a single group.  Groups
    are emitted in sorted order of their canonical key, and metrics in
    sorted name order, so the output is deterministic.  A group-by key
    absent from some row's params is reported as ``None`` for that row.
    """
    if not rows:
        raise SweepError("nothing to aggregate: no trial records")
    buckets: Dict[str, Tuple[Dict[str, object], Dict[str, List[float]], List[int]]] = {}
    for params, record in rows:
        group = {name: params.get(name) for name in group_by}
        key = json.dumps(group, sort_keys=True, default=str)
        if key not in buckets:
            buckets[key] = (group, {}, [0])
        _, metrics, count = buckets[key]
        count[0] += 1
        for name, value in _numeric_items(record):
            metrics.setdefault(name, []).append(value)
    out: List[GroupStat] = []
    for key in sorted(buckets):
        group, metrics, count = buckets[key]
        out.append(
            GroupStat(
                group=group,
                n=count[0],
                metrics={
                    name: MetricStat.from_values(values)
                    for name, values in sorted(metrics.items())
                },
            )
        )
    return out


def format_report(
    experiment: str,
    groups: Sequence[GroupStat],
    *,
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """A fixed-width, byte-stable aggregate table.

    ``metrics`` restricts/orders the columns; by default every metric
    seen in the first group is shown in sorted order.
    """
    if not groups:
        raise SweepError("nothing to report: no groups")
    names = list(metrics) if metrics else sorted(groups[0].metrics)
    label_w = max([7] + [len(g.label()) for g in groups])
    lines = [f"sweep aggregate — experiment={experiment}"]
    header = f"{'group':<{label_w}} {'n':>5}  " + "  ".join(
        f"{name:>14} {'±ci95':>10}" for name in names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for g in groups:
        cells = []
        for name in names:
            stat = g.metrics.get(name)
            if stat is None:
                cells.append(f"{'—':>14} {'—':>10}")
            else:
                cells.append(f"{stat.mean:>14.6g} {stat.ci95:>10.3g}")
        lines.append(f"{g.label():<{label_w}} {g.n:>5}  " + "  ".join(cells))
    return "\n".join(lines)


def report_json(experiment: str, groups: Sequence[GroupStat]) -> str:
    """Canonical JSON of the aggregate (for byte-identity checks)."""
    payload = {
        "experiment": experiment,
        "groups": [g.to_dict() for g in groups],
    }
    return json.dumps(payload, sort_keys=True, allow_nan=False)
