"""Tests for offers, cost models, and external contracts."""

import pytest

from repro.exceptions import BidError
from repro.auction.bids import AdditiveCost
from repro.auction.provider import (
    ExternalTransitContract,
    Offer,
    default_monthly_cost,
    make_external_contract,
    offer_from_logical_links,
)
from repro.topology.graph import Link


class TestCostModel:
    def test_grows_with_distance(self):
        a = default_monthly_cost(100.0, 1000.0)
        b = default_monthly_cost(100.0, 2000.0)
        assert b > a

    def test_concave_in_capacity(self):
        # Cost per Gbps falls with capacity (wholesale economics).
        small = default_monthly_cost(10.0, 1000.0) / 10.0
        big = default_monthly_cost(400.0, 1000.0) / 400.0
        assert big < small

    def test_efficiency_scales(self):
        base = default_monthly_cost(100.0, 1000.0)
        assert default_monthly_cost(100.0, 1000.0, efficiency=0.5) == pytest.approx(base / 2)

    def test_zero_length_has_fixed_cost(self):
        assert default_monthly_cost(100.0, 0.0) > 0

    def test_validation(self):
        with pytest.raises(BidError):
            default_monthly_cost(0.0, 100.0)
        with pytest.raises(BidError):
            default_monthly_cost(10.0, -1.0)
        with pytest.raises(BidError):
            default_monthly_cost(10.0, 100.0, efficiency=0.0)


class TestOffer:
    def _links(self, owner="bp"):
        return [
            Link(id="x", u="A", v="B", capacity_gbps=10.0, owner=owner),
            Link(id="y", u="B", v="C", capacity_gbps=10.0, owner=owner),
        ]

    def test_valid_offer(self):
        cost = AdditiveCost({"x": 1.0, "y": 2.0})
        offer = Offer(provider="bp", links=self._links(), bid=cost, true_cost=cost)
        assert offer.link_ids == frozenset({"x", "y"})
        assert offer.is_truthful()

    def test_owner_mismatch_rejected(self):
        cost = AdditiveCost({"x": 1.0, "y": 2.0})
        with pytest.raises(BidError):
            Offer(provider="other", links=self._links("bp"), bid=cost, true_cost=cost)

    def test_bid_domain_mismatch_rejected(self):
        cost = AdditiveCost({"x": 1.0})
        full = AdditiveCost({"x": 1.0, "y": 2.0})
        with pytest.raises(BidError):
            Offer(provider="bp", links=self._links(), bid=cost, true_cost=full)

    def test_with_bid(self):
        cost = AdditiveCost({"x": 1.0, "y": 2.0})
        offer = Offer(provider="bp", links=self._links(), bid=cost, true_cost=cost)
        shaded = offer.with_bid(cost.scaled(2.0))
        assert not shaded.is_truthful()
        assert shaded.true_cost is cost
        assert shaded.bid.cost(["x"]) == 2.0


class TestOfferFromLogicalLinks:
    def test_from_zoo(self, tiny_zoo):
        bp, links = next(
            (bp, ll) for bp, ll in sorted(tiny_zoo.offers_by_bp.items()) if ll
        )
        offer = offer_from_logical_links(bp, links, seed=1)
        assert offer.provider == bp
        assert len(offer.links) == len(links)
        assert offer.is_truthful()
        assert offer.bid.cost(offer.link_ids) > 0

    def test_margin_inflates_bid(self, tiny_zoo):
        bp, links = next(
            (bp, ll) for bp, ll in sorted(tiny_zoo.offers_by_bp.items()) if ll
        )
        offer = offer_from_logical_links(bp, links, margin=0.2, seed=1)
        assert not offer.is_truthful()
        assert offer.bid.cost(offer.link_ids) == pytest.approx(
            1.2 * offer.true_cost.cost(offer.link_ids)
        )

    def test_noise_deterministic_under_seed(self, tiny_zoo):
        bp, links = next(
            (bp, ll) for bp, ll in sorted(tiny_zoo.offers_by_bp.items()) if ll
        )
        a = offer_from_logical_links(bp, links, cost_noise=0.3, seed=5)
        b = offer_from_logical_links(bp, links, cost_noise=0.3, seed=5)
        assert a.true_cost.cost(a.link_ids) == b.true_cost.cost(b.link_ids)

    def test_rejects_negative_margin(self, tiny_zoo):
        bp, links = next(
            (bp, ll) for bp, ll in sorted(tiny_zoo.offers_by_bp.items()) if ll
        )
        with pytest.raises(BidError):
            offer_from_logical_links(bp, links, margin=-0.1)


class TestExternalContract:
    def test_make_contract(self):
        contract = make_external_contract(
            "isp1", [("POC:A", "POC:B"), ("POC:B", "POC:C")],
            capacity_gbps=100.0, price_per_link=5000.0,
        )
        assert len(contract.links) == 2
        assert all(l.virtual for l in contract.links)

    def test_to_offer_not_in_auction(self):
        contract = make_external_contract(
            "isp1", [("POC:A", "POC:B")], capacity_gbps=10.0, price_per_link=100.0
        )
        offer = contract.to_offer()
        assert not offer.in_auction
        assert offer.bid.cost(offer.link_ids) == 100.0

    def test_price_link_mismatch_rejected(self):
        links = [
            Link(id="v1", u="A", v="B", capacity_gbps=1.0, owner="isp", virtual=True)
        ]
        with pytest.raises(BidError):
            ExternalTransitContract(isp="isp", links=links, per_link_monthly={})

    def test_non_virtual_link_rejected(self):
        links = [Link(id="v1", u="A", v="B", capacity_gbps=1.0, owner="isp")]
        with pytest.raises(BidError):
            ExternalTransitContract(
                isp="isp", links=links, per_link_monthly={"v1": 1.0}
            )
