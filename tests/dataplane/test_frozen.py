"""Tests for the frozen per-snapshot allocation table."""

import pytest

from repro.dataplane.frozen import FrozenAllocation, freeze_allocation
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network


def _tm(demands):
    nodes = ["A", "B", "C", "D"]
    return TrafficMatrix.from_dict(nodes, demands)


class TestFreezeAllocation:
    def test_unloaded_pairs_get_full_demand(self):
        net = square_network()
        alloc = freeze_allocation(net, _tm({("A", "B"): 2.0, ("C", "D"): 3.0}))
        assert alloc.rate("A", "B") == pytest.approx(2.0)
        assert alloc.rate("C", "D") == pytest.approx(3.0)
        assert alloc.connected("A", "B")
        assert alloc.served_fraction == pytest.approx(1.0)
        assert alloc.disconnected == ()

    def test_saturated_link_throttles_only_its_pairs(self):
        net = square_network()
        # Both pairs shortest-path over AB (A-B direct); 10 Gbps capacity
        # shared max-min between 8 and 8 → 5 each; CD demand untouched.
        alloc = freeze_allocation(
            net, _tm({("A", "B"): 8.0, ("B", "A"): 8.0, ("C", "D"): 4.0})
        )
        assert alloc.rate("A", "B") == pytest.approx(5.0)
        assert alloc.rate("B", "A") == pytest.approx(5.0)
        assert alloc.rate("C", "D") == pytest.approx(4.0)
        assert 0.0 < alloc.served_fraction < 1.0

    def test_missing_endpoint_is_disconnected_not_error(self):
        net = square_network()
        tm = TrafficMatrix.from_dict(
            ["A", "B", "Z"], {("A", "B"): 1.0, ("A", "Z"): 2.0}
        )
        alloc = freeze_allocation(net, tm)
        assert alloc.rate("A", "Z") == 0.0
        assert not alloc.connected("A", "Z")
        assert ("A", "Z") in alloc.disconnected
        # Disconnected demand still counts against served_fraction.
        assert alloc.served_fraction == pytest.approx(1.0 / 3.0)

    def test_zero_demand_pairs_are_skipped(self):
        net = square_network()
        alloc = freeze_allocation(net, _tm({("A", "B"): 0.0}))
        assert alloc.rates == {}
        assert alloc.total_demand_gbps == 0.0
        assert alloc.served_fraction == 1.0

    def test_deterministic_rebuild(self):
        net = square_network()
        tm = _tm({("A", "C"): 6.0, ("B", "D"): 6.0, ("A", "B"): 1.0})
        a1 = freeze_allocation(net, tm)
        a2 = freeze_allocation(square_network(), tm)
        assert a1.rates == a2.rates
        assert a1.paths == a2.paths

    def test_degraded_backbone_reroutes_or_disconnects(self):
        net = square_network()
        tm = _tm({("A", "B"): 2.0})
        full = freeze_allocation(net, tm)
        assert full.paths[("A", "B")] == ("AB",)
        # Losing AB forces the long way round; the pair stays connected.
        degraded = freeze_allocation(net.without_links({"AB"}), tm)
        assert degraded.connected("A", "B")
        assert "AB" not in degraded.paths[("A", "B")]
        assert degraded.rate("A", "B") == pytest.approx(2.0)


class TestFrozenAllocationViews:
    def test_defaults_are_empty_and_fully_served(self):
        alloc = FrozenAllocation()
        assert alloc.rate("X", "Y") == 0.0
        assert not alloc.connected("X", "Y")
        assert alloc.served_fraction == 1.0
