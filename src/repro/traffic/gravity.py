"""Gravity-model traffic matrices.

The gravity model is the standard synthetic TM for backbone studies:
demand between two sites is proportional to the product of their "masses"
(here, metro populations), optionally damped by distance.  The paper used
an unspecified "synthetic traffic matrix"; gravity over the POC sites'
city populations is our default realization (DESIGN.md §3).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.exceptions import TrafficError
from repro.topology.cities import CityCatalog, get_city
from repro.topology.colocation import ColocationSite
from repro.topology.geo import haversine_km
from repro.traffic.matrix import TrafficMatrix


def gravity_matrix(
    node_masses: Mapping[str, float],
    total_gbps: float,
    *,
    distance_km: Optional[Mapping[tuple, float]] = None,
    deterrence: float = 0.0,
) -> TrafficMatrix:
    """Build a gravity TM over arbitrary nodes.

    ``node_masses`` maps node id → positive mass.  Total offered load is
    normalized to ``total_gbps``.  If ``deterrence`` > 0, demand is damped
    by ``(1 + d_ij / 1000km) ** -deterrence`` using ``distance_km`` (a map
    from ordered pair to kilometres); pairs missing from the map get no
    damping.
    """
    if total_gbps < 0:
        raise TrafficError(f"total demand cannot be negative: {total_gbps}")
    if deterrence < 0:
        raise TrafficError(f"deterrence cannot be negative: {deterrence}")
    nodes = sorted(node_masses)
    if len(nodes) < 2:
        raise TrafficError("gravity model needs at least two nodes")
    for node, mass in node_masses.items():
        if mass <= 0:
            raise TrafficError(f"mass must be positive for {node}, got {mass}")

    raw: Dict[tuple, float] = {}
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            weight = node_masses[src] * node_masses[dst]
            if deterrence > 0 and distance_km is not None:
                d = distance_km.get((src, dst), distance_km.get((dst, src)))
                if d is not None:
                    weight *= (1.0 + d / 1000.0) ** (-deterrence)
            raw[(src, dst)] = weight

    norm = sum(raw.values())
    demands = {pair: total_gbps * w / norm for pair, w in raw.items()}
    return TrafficMatrix(nodes=nodes, _demands=demands)


def gravity_matrix_for_sites(
    sites: Sequence[ColocationSite],
    total_gbps: float,
    *,
    deterrence: float = 0.0,
    catalog: Optional[CityCatalog] = None,
) -> TrafficMatrix:
    """Gravity TM over POC router sites, massed by metro population.

    Node ids are the sites' router ids (``POC:<city>``), matching the
    offered network built by :mod:`repro.topology.logical`.
    """
    if len(sites) < 2:
        raise TrafficError("need at least two POC sites")
    masses = {
        site.router_id: get_city(site.city, catalog=catalog).population_m
        for site in sites
    }
    distances = {}
    if deterrence > 0:
        for a in sites:
            for b in sites:
                if a.city == b.city:
                    continue
                distances[(a.router_id, b.router_id)] = haversine_km(
                    get_city(a.city, catalog=catalog).point,
                    get_city(b.city, catalog=catalog).point,
                )
    return gravity_matrix(
        masses, total_gbps, distance_km=distances or None, deterrence=deterrence
    )
