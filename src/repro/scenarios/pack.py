"""Declarative scenario packs: one JSON file = one reviewable study.

A :class:`ScenarioPack` names everything a run needs — the registered
experiment (which fixes topology, traffic model, economic regime, and
fault campaign through its parameters), the sweep grid over it, the
execution policy (workers, supervision, deadlines), and the validation
policy gating results — so a new scenario is a data change, not a code
change.  The spec is deliberately stdlib-JSON: no new dependency, and
the canonical serialization doubles as the pack's content fingerprint,
which archives pin so a re-run can prove it executed the same study.

Schema (``"schema": "repro.scenarios/1"``)::

    {
      "schema": "repro.scenarios/1",
      "name": "chaos-regional-blackout",          # [a-z0-9-]+, = file stem
      "title": "...",                             # optional one-liner
      "description": "...",                       # optional prose
      "tags": ["chaos", "resilience"],            # optional labels
      "experiment": "chaos",                      # registered experiment
      "sweep": {                                  # SweepSpec payload
        "axes": [{"name": "seed", "values": [0, 1, 2]}],
        "mode": "cartesian", "base": {...}, "seed": 0, "repeats": 1
      },
      "group_by": ["seed"],                       # aggregate grouping
      "validation": "quarantine",                 # off|warn|quarantine|strict
      "execution": {                              # all optional
        "workers": 2, "supervised": true, "trial_timeout_s": 30.0,
        "max_trial_attempts": 2, "respawn_budget": 8
      }
    }

Override semantics (``repro run PACK --PARAM=value``): a ``--PARAM``
naming an existing axis collapses that axis to the single given value;
any other ``--PARAM`` lands in the sweep's ``base`` constants.  A full
``--axis name=v1,v2`` replaces the axis (or appends a new one).  Either
way the result is a *new* pack with a new fingerprint — archives never
mix spec variants.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ScenarioError, SweepError
from repro.sweeps.spec import Axis, SweepSpec, canonical_json, load_payload

#: The one schema this code reads/writes; bump on incompatible change.
SCHEMA = "repro.scenarios/1"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")

_TOP_KEYS = frozenset({
    "schema", "name", "title", "description", "tags",
    "experiment", "sweep", "group_by", "validation", "execution",
})
_EXECUTION_KEYS = frozenset({
    "workers", "start_method", "supervised", "trial_timeout_s",
    "max_trial_attempts", "respawn_budget",
})
_VALIDATION_MODES = ("off", "warn", "quarantine", "strict")
_START_METHODS = (None, "fork", "spawn", "forkserver")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


@dataclass(frozen=True)
class ScenarioPack:
    """One fully-resolved scenario: what to run, how, and how carefully."""

    name: str
    experiment: str
    spec: SweepSpec
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()
    group_by: Tuple[str, ...] = ()
    validation: str = "off"
    workers: int = 0
    start_method: Optional[str] = None
    supervised: bool = False
    trial_timeout_s: Optional[float] = None
    max_trial_attempts: int = 2
    respawn_budget: int = 8

    def __post_init__(self) -> None:
        _require(bool(_NAME_RE.match(self.name)),
                 f"pack name {self.name!r} must match [a-z0-9][a-z0-9-]*")
        _require(self.validation in _VALIDATION_MODES,
                 f"pack {self.name!r}: validation must be one of "
                 f"{_VALIDATION_MODES}, got {self.validation!r}")
        _require(self.workers >= 0,
                 f"pack {self.name!r}: workers must be >= 0")
        _require(self.start_method in _START_METHODS,
                 f"pack {self.name!r}: start_method must be one of "
                 f"{_START_METHODS[1:]}, got {self.start_method!r}")
        _require(self.trial_timeout_s is None or self.trial_timeout_s > 0,
                 f"pack {self.name!r}: trial_timeout_s must be positive")
        _require(self.max_trial_attempts >= 1,
                 f"pack {self.name!r}: max_trial_attempts must be >= 1")
        _require(self.respawn_budget >= 0,
                 f"pack {self.name!r}: respawn_budget must be >= 0")
        axis_names = set(self.spec.axis_names) | set(self.spec.base)
        for key in self.group_by:
            _require(key in axis_names,
                     f"pack {self.name!r}: group_by key {key!r} is neither "
                     f"an axis nor a base constant")
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        object.__setattr__(self, "group_by", tuple(self.group_by))

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioPack":
        """Parse + schema-validate one pack payload (strict: unknown keys
        are errors, so typos fail loudly instead of silently no-op'ing)."""
        _require(isinstance(payload, Mapping),
                 f"pack payload must be a JSON object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - _TOP_KEYS)
        _require(not unknown, f"pack has unknown key(s) {unknown}; "
                              f"allowed: {sorted(_TOP_KEYS)}")
        _require(payload.get("schema") == SCHEMA,
                 f"pack schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
        name = payload.get("name")
        _require(isinstance(name, str) and bool(name),
                 "pack needs a non-empty string 'name'")
        experiment = payload.get("experiment")
        _require(isinstance(experiment, str) and bool(experiment),
                 f"pack {name!r} needs a non-empty string 'experiment'")
        sweep = payload.get("sweep")
        _require(isinstance(sweep, Mapping),
                 f"pack {name!r} needs a 'sweep' object (axes/mode/base/...)")
        _require("experiment" not in sweep,
                 f"pack {name!r}: the experiment is named at pack level, "
                 f"not inside 'sweep'")
        try:
            spec = SweepSpec.from_dict(sweep)
        except SweepError as exc:
            raise ScenarioError(f"pack {name!r}: bad sweep spec: {exc}") from exc

        tags = payload.get("tags", ())
        _require(isinstance(tags, Sequence) and not isinstance(tags, (str, bytes)),
                 f"pack {name!r}: 'tags' must be a list of strings")
        group_by = payload.get("group_by", ())
        _require(isinstance(group_by, Sequence)
                 and not isinstance(group_by, (str, bytes))
                 and all(isinstance(g, str) for g in group_by),
                 f"pack {name!r}: 'group_by' must be a list of axis names")

        execution = payload.get("execution", {})
        _require(isinstance(execution, Mapping),
                 f"pack {name!r}: 'execution' must be an object")
        bad = sorted(set(execution) - _EXECUTION_KEYS)
        _require(not bad, f"pack {name!r}: unknown execution key(s) {bad}; "
                          f"allowed: {sorted(_EXECUTION_KEYS)}")

        timeout = execution.get("trial_timeout_s")
        try:
            return cls(
                name=str(name),
                experiment=str(experiment),
                spec=spec,
                title=str(payload.get("title", "")),
                description=str(payload.get("description", "")),
                tags=tuple(tags),
                group_by=tuple(group_by),
                validation=str(payload.get("validation", "off")),
                workers=int(execution.get("workers", 0)),
                start_method=execution.get("start_method"),
                supervised=bool(execution.get("supervised", False)),
                trial_timeout_s=None if timeout is None else float(timeout),
                max_trial_attempts=int(execution.get("max_trial_attempts", 2)),
                respawn_budget=int(execution.get("respawn_budget", 8)),
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"pack {name!r}: malformed execution value: {exc}")

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The fully-resolved canonical form (defaults made explicit).

        Two packs that differ only in default elision serialize — and
        therefore fingerprint — identically.
        """
        return {
            "schema": SCHEMA,
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "experiment": self.experiment,
            "sweep": self.spec.to_dict(),
            "group_by": list(self.group_by),
            "validation": self.validation,
            "execution": {
                "workers": self.workers,
                "start_method": self.start_method,
                "supervised": self.supervised,
                "trial_timeout_s": self.trial_timeout_s,
                "max_trial_attempts": self.max_trial_attempts,
                "respawn_budget": self.respawn_budget,
            },
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def fingerprint(self) -> str:
        """Content hash of the resolved pack (what archives pin)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- deep validation ------------------------------------------------------

    def resolve(self) -> int:
        """Resolve the pack against the live experiment registry.

        Checks that the experiment exists and that every grid point's
        parameters merge cleanly with its defaults; returns the trial
        count.  This is what ``repro packs --validate`` runs over the
        committed library.
        """
        from repro.sweeps.registry import get_experiment

        try:
            exp = get_experiment(self.experiment)
        except SweepError as exc:
            raise ScenarioError(f"pack {self.name!r}: {exc}") from exc
        trials = self.spec.trials()
        for trial in trials:
            exp.resolved_params(trial.params)
        return len(trials)

    # -- overrides ------------------------------------------------------------

    def with_overrides(
        self,
        sets: Optional[Mapping[str, object]] = None,
        axes: Sequence[Axis] = (),
        *,
        root_seed: Optional[int] = None,
        repeats: Optional[int] = None,
    ) -> "ScenarioPack":
        """A new pack with parameter overrides layered onto the sweep.

        ``sets`` entries collapse a matching axis to one value, or land
        in ``base`` otherwise; ``axes`` replace same-named axes in place
        (new names append).  The returned pack has a new fingerprint, so
        an overridden run archives as its own study.
        """
        axis_list: List[Axis] = list(self.spec.axes)
        names = [a.name for a in axis_list]
        base = dict(self.spec.base)
        for key, value in (sets or {}).items():
            if key in names:
                axis_list[names.index(key)] = Axis(key, (value,))
            else:
                base[key] = value
        for axis in axes:
            if axis.name in names:
                axis_list[names.index(axis.name)] = axis
            else:
                axis_list.append(axis)
                names.append(axis.name)
        try:
            spec = SweepSpec(
                axes=tuple(axis_list),
                mode=self.spec.mode,
                base=base,
                seed=self.spec.seed if root_seed is None else int(root_seed),
                repeats=self.spec.repeats if repeats is None else int(repeats),
            )
        except SweepError as exc:
            raise ScenarioError(
                f"pack {self.name!r}: overrides produce an invalid sweep: {exc}"
            ) from exc
        # group_by keys may have moved between axis and base; re-validated
        # by __post_init__ on the new instance.
        return replace(self, spec=spec)

    def summary(self) -> str:
        grid = " × ".join(
            f"{a.name}[{len(a.values)}]" for a in self.spec.axes
        )
        return (f"{self.name:<28} {self.experiment:<10} {grid:<28} "
                f"trials={self.spec.num_trials():<4} "
                f"validate={self.validation} workers={self.workers}"
                + (f"  {self.title}" if self.title else ""))


def load_pack(source: Union[str, "object"]) -> ScenarioPack:
    """Load a pack from a file path or inline JSON (shared loader)."""
    try:
        payload = load_payload(source)
    except SweepError as exc:
        raise ScenarioError(str(exc)) from exc
    return ScenarioPack.from_dict(payload)
