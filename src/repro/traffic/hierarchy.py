"""Hierarchical traffic-matrix aggregation.

At continental scale, "millions of users" cannot enter the pipeline as
per-user (or even per-site-pair) rows authored by hand.  This module
models demand **top-down** in two levels:

1. **Region level** — each region carries a :class:`RegionProfile`: a
   user count (millions) and a demand density (Gbps per million users at
   peak).  A deterministic split sends ``inter_region_fraction`` of each
   region's total to other regions (proportional to their totals — a
   region-level gravity model) and keeps the rest intra-region.

2. **Site level** — each region-pair aggregate is then divided over the
   concrete site pairs by population-weighted gravity, producing an
   ordinary :class:`~repro.traffic.matrix.TrafficMatrix` over POC router
   ids that every downstream consumer (MCF, auction constraints, the
   service) already understands.

:func:`aggregate_to_regions` is the exact inverse of the second level:
it rolls a site TM back up to region-pair totals, which is how the
region-sharded clearing builds its cross-region stitch market — and how
the tests verify the split is conservative (no demand created or lost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import TrafficError
from repro.topology.cities import CityCatalog, get_city
from repro.topology.colocation import ColocationSite
from repro.traffic.matrix import TrafficMatrix

RegionPair = Tuple[str, str]


@dataclass(frozen=True)
class RegionProfile:
    """Per-region demand distribution: users enter here, not as rows."""

    region: str
    #: Users in the region, in millions.
    users_m: float
    #: Peak demand density, Gbps per million users.
    gbps_per_m_users: float

    def __post_init__(self) -> None:
        if self.users_m < 0:
            raise TrafficError(
                f"region {self.region!r} has negative users: {self.users_m}"
            )
        if self.gbps_per_m_users < 0:
            raise TrafficError(
                f"region {self.region!r} has negative demand density"
            )

    @property
    def total_gbps(self) -> float:
        """Total demand originated by this region's users."""
        return self.users_m * self.gbps_per_m_users


def profiles_from_catalog(
    catalog: CityCatalog,
    *,
    users_per_pop: float = 0.6,
    gbps_per_m_users: float = 25.0,
) -> List[RegionProfile]:
    """Derive region profiles from a catalog's metro populations.

    ``users_per_pop`` converts metro population (millions) to subscriber
    count (millions); ``gbps_per_m_users`` is the uniform demand density.
    """
    if users_per_pop <= 0:
        raise TrafficError(f"users_per_pop must be positive: {users_per_pop}")
    profiles = []
    for region in catalog.regions:
        population = sum(c.population_m for c in catalog.in_region(region))
        profiles.append(
            RegionProfile(
                region=region,
                users_m=round(population * users_per_pop, 6),
                gbps_per_m_users=gbps_per_m_users,
            )
        )
    return profiles


def region_pair_demands(
    profiles: Sequence[RegionProfile],
    *,
    inter_region_fraction: float = 0.35,
) -> Dict[RegionPair, float]:
    """Level 1: the deterministic region-pair demand split.

    Each region keeps ``1 - inter_region_fraction`` of its total as
    intra-region demand (the ``(r, r)`` entry) and sends the rest to
    other regions proportional to *their* totals.  Regions with zero
    demand neither send nor receive.
    """
    if not 0.0 <= inter_region_fraction <= 1.0:
        raise TrafficError(
            f"inter_region_fraction must be in [0, 1]: {inter_region_fraction}"
        )
    seen = set()
    for p in profiles:
        if p.region in seen:
            raise TrafficError(f"duplicate region profile: {p.region!r}")
        seen.add(p.region)

    totals = {p.region: p.total_gbps for p in profiles}
    out: Dict[RegionPair, float] = {}
    for p in sorted(profiles, key=lambda p: p.region):
        total = totals[p.region]
        if total <= 0:
            continue
        others = {
            r: t for r, t in totals.items() if r != p.region and t > 0
        }
        inter_pool = inter_region_fraction * total if others else 0.0
        intra = total - inter_pool
        if intra > 0:
            out[(p.region, p.region)] = intra
        denom = sum(others.values())
        for r in sorted(others):
            share = inter_pool * others[r] / denom
            if share > 0:
                out[(p.region, r)] = share
    return out


def _site_regions(
    sites: Sequence[ColocationSite],
    catalog: Optional[CityCatalog],
) -> Dict[str, str]:
    """router_id → region code for every site."""
    return {
        site.router_id: get_city(site.city, catalog=catalog).region
        for site in sites
    }


def hierarchical_matrix(
    sites: Sequence[ColocationSite],
    profiles: Sequence[RegionProfile],
    *,
    catalog: Optional[CityCatalog] = None,
    inter_region_fraction: float = 0.35,
) -> TrafficMatrix:
    """Level 2: expand region-pair demand to a site-level TrafficMatrix.

    Each region-pair aggregate is split over its concrete (source site,
    destination site) pairs proportional to the product of the sites'
    metro populations — population gravity, exactly the model the T1
    pipeline uses at site granularity, applied within each region block.

    A region-pair block with no eligible site pair (an intra block in a
    single-site region, or a block whose endpoint region hosts no sites)
    contributes nothing; such demand is *dropped*, never silently
    reassigned — :func:`aggregate_to_regions` makes the loss visible.
    """
    if len(sites) < 2:
        raise TrafficError("need at least two POC sites")
    region_of = _site_regions(sites, catalog)
    demands_by_region = region_pair_demands(
        profiles, inter_region_fraction=inter_region_fraction
    )

    by_region: Dict[str, List[ColocationSite]] = {}
    for site in sites:
        by_region.setdefault(region_of[site.router_id], []).append(site)

    mass = {
        site.router_id: get_city(site.city, catalog=catalog).population_m
        for site in sites
    }

    demands: Dict[Tuple[str, str], float] = {}
    for (src_region, dst_region), total in sorted(demands_by_region.items()):
        srcs = by_region.get(src_region, [])
        dsts = by_region.get(dst_region, [])
        pairs = [
            (a.router_id, b.router_id)
            for a in srcs
            for b in dsts
            if a.router_id != b.router_id
        ]
        if not pairs:
            continue
        weight = {
            (s, d): mass[s] * mass[d] for (s, d) in pairs
        }
        norm = sum(weight.values())
        for pair in pairs:
            value = total * weight[pair] / norm
            if value > 0:
                demands[pair] = demands.get(pair, 0.0) + value

    nodes = [site.router_id for site in sites]
    return TrafficMatrix(nodes=nodes, _demands=demands)


def aggregate_to_regions(
    tm: TrafficMatrix,
    sites: Sequence[ColocationSite],
    *,
    catalog: Optional[CityCatalog] = None,
) -> Dict[RegionPair, float]:
    """Roll a site-level TM back up to region-pair totals.

    The exact inverse of :func:`hierarchical_matrix`'s expansion — and
    the operation the sharded clearing uses to build its coarse
    cross-region stitch market.
    """
    region_of = _site_regions(sites, catalog)
    missing = set(tm.nodes) - set(region_of)
    if missing:
        raise TrafficError(
            f"TM references sites without a region: {sorted(missing)[:5]}"
        )
    out: Dict[RegionPair, float] = {}
    for (src, dst), value in tm.pairs():
        key = (region_of[src], region_of[dst])
        out[key] = out.get(key, 0.0) + value
    return out
