"""Tests for recurring auctions with capacity recall."""

import pytest

from repro.exceptions import AuctionError
from repro.auction.constraints import make_constraint
from repro.auction.rounds import RecallModel, RecurringAuction, RecurringOutcome, RoundResult
from repro.rand import make_rng
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network, square_offers


@pytest.fixture
def setup():
    net = square_network()
    offers = square_offers(net)
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
    return net, offers, tm


class TestRecallModel:
    def test_validation(self):
        with pytest.raises(AuctionError):
            RecallModel(min_availability=1.5)
        with pytest.raises(AuctionError):
            RecallModel(persistence=-0.1)
        with pytest.raises(AuctionError):
            RecallModel(recall_probability=2.0)

    def test_availability_bounded(self):
        model = RecallModel(min_availability=0.5)
        rng = make_rng(3)
        a = 1.0
        for _ in range(50):
            a = model.next_availability(rng, "bp", a)
            assert 0.5 <= a <= 1.0

    def test_cloud_bp_recalls(self):
        model = RecallModel(
            cloud_bps=frozenset({"cloud"}), recall_probability=1.0, recall_floor=0.3
        )
        rng = make_rng(3)
        assert model.next_availability(rng, "cloud", 1.0) == 0.3

    def test_non_cloud_never_hard_recalls(self):
        model = RecallModel(
            cloud_bps=frozenset({"cloud"}), recall_probability=1.0,
            recall_floor=0.3, min_availability=0.6,
        )
        rng = make_rng(3)
        for _ in range(20):
            assert model.next_availability(rng, "other", 1.0) >= 0.6


class TestRecurringAuction:
    def test_runs_rounds(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(net, offers, tm, seed=1, engine="mcf")
        outcome = auction.run(5)
        assert len(outcome.rounds) == 5
        assert all(r.result is not None for r in outcome.rounds)

    def test_every_round_clears_the_tm(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(net, offers, tm, seed=1, engine="mcf")
        outcome = auction.run(4)
        for r in outcome.rounds:
            constraint = make_constraint(1, net, tm, engine="mcf")
            assert constraint.satisfied(r.result.selected)

    def test_deterministic_under_seed(self, setup):
        net, offers, tm = setup
        a = RecurringAuction(net, offers, tm, seed=9, engine="mcf").run(4)
        b = RecurringAuction(net, offers, tm, seed=9, engine="mcf").run(4)
        assert a.cost_series() == b.cost_series()

    def test_recall_forces_fallback(self, setup):
        """If the only feasible provider recalls hard, the round falls
        back to full availability instead of failing."""
        net, offers, tm = setup
        recall = RecallModel(
            cloud_bps=frozenset({"P", "Q"}),
            recall_probability=1.0,
            recall_floor=0.01,
            min_availability=0.01,
        )
        auction = RecurringAuction(net, offers, tm, recall=recall, seed=2, engine="mcf")
        outcome = auction.run(3)
        # Heavy recall on a tiny network: most rounds need the fallback,
        # but every round still clears.
        assert all(r.result is not None for r in outcome.rounds)
        assert outcome.fallback_rate() > 0

    def test_rounds_validation(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(net, offers, tm, seed=1)
        with pytest.raises(AuctionError):
            auction.run(0)

    def test_empty_offers_rejected(self, setup):
        net, _offers, tm = setup
        with pytest.raises(AuctionError):
            RecurringAuction(net, [], tm)


class TestOutcomeMetrics:
    def test_volatility_zero_for_constant(self):
        outcome = RecurringOutcome()
        assert outcome.cost_volatility() == 0.0
        assert outcome.winner_churn() == 0.0
        assert outcome.fallback_rate() == 0.0

    def test_metrics_on_real_run(self, setup):
        net, offers, tm = setup
        outcome = RecurringAuction(net, offers, tm, seed=4, engine="mcf").run(6)
        assert outcome.cost_volatility() >= 0.0
        assert 0.0 <= outcome.winner_churn() <= 1.0
        assert len(outcome.payment_series("P")) == 6
        assert len(outcome.payment_series("nobody")) == 6
        assert all(v == 0.0 for v in outcome.payment_series("nobody"))


class TestWithdrawal:
    """Mid-round BP dropouts (ProviderDropoutError satellite)."""

    @pytest.fixture
    def with_fallback(self, setup):
        # An external shadow link keeps the auction priceable when one
        # of the two BPs withdraws (sole-participant VCG cannot clear).
        from repro.auction.provider import make_external_contract

        net, offers, tm = setup
        contract = make_external_contract(
            "ext", [("A", "C")], capacity_gbps=5.0,
            price_per_link=999.0, length_km=100.0,
        )
        for link in contract.links:
            net.add_link(link)
        return net, list(offers) + [contract.to_offer()], tm

    def test_unknown_provider_rejected(self, setup):
        from repro.exceptions import ProviderDropoutError

        net, offers, tm = setup
        auction = RecurringAuction(net, offers, tm, seed=1)
        with pytest.raises(ProviderDropoutError) as ei:
            auction.withdraw("nobody")
        assert ei.value.provider == "nobody"

    def test_cannot_empty_the_auction(self, setup):
        from repro.exceptions import ProviderDropoutError

        net, offers, tm = setup
        auction = RecurringAuction(net, offers, tm, seed=1)
        auction.withdraw("P")
        with pytest.raises(ProviderDropoutError):
            auction.withdraw("Q")
        assert auction.withdrawn == frozenset({"P"})

    def test_contract_is_not_a_participant(self, with_fallback):
        from repro.exceptions import ProviderDropoutError

        net, offers, tm = with_fallback
        auction = RecurringAuction(net, offers, tm, seed=1)
        with pytest.raises(ProviderDropoutError):
            auction.withdraw("ext")

    def test_withdrawn_bp_never_wins(self, with_fallback):
        net, offers, tm = with_fallback
        auction = RecurringAuction(net, offers, tm, seed=1, engine="mcf")
        auction.withdraw("P")
        outcome = auction.run(3)
        p_links = next(o.link_ids for o in offers if o.provider == "P")
        for r in outcome.rounds:
            assert r.result is not None
            assert not (r.result.selected & p_links)

    def test_rejoin_restores_participation(self, with_fallback):
        net, offers, tm = with_fallback
        auction = RecurringAuction(net, offers, tm, seed=1, engine="mcf")
        auction.withdraw("Q")
        auction.rejoin("Q")
        assert auction.withdrawn == frozenset()
        outcome = auction.run(3)
        # Q's cheap diagonal wins again once it is back in the round.
        assert any(
            "AC" in r.result.selected for r in outcome.rounds if r.result
        )

    def test_rejoin_unknown_is_noop(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(net, offers, tm, seed=1)
        auction.rejoin("nobody")  # does not raise
        assert auction.withdrawn == frozenset()


class TestDeltaReclear:
    """Round-over-round clearing reuse: exact is free, single-link opt-in."""

    def _stable_recall(self):
        # Availability pinned at 1.0: every round offers the same links.
        return RecallModel(min_availability=1.0, persistence=1.0, step=0.0)

    def test_invalid_mode_rejected(self, setup):
        net, offers, tm = setup
        with pytest.raises(AuctionError, match="delta_reclear"):
            RecurringAuction(net, offers, tm, delta_reclear="fuzzy")

    def test_exact_mode_identical_to_off(self, setup):
        """'exact' reuse may never change any observable outcome."""
        net, offers, tm = setup
        runs = {}
        for mode in ("off", "exact"):
            outcome = RecurringAuction(
                net, offers, tm, seed=9, engine="mcf", delta_reclear=mode
            ).run(6)
            runs[mode] = outcome
        assert runs["exact"].cost_series() == runs["off"].cost_series()
        for bp in ("P", "Q"):
            assert runs["exact"].payment_series(bp) == runs[
                "off"
            ].payment_series(bp)
        assert [r.result.selected for r in runs["exact"].rounds] == [
            r.result.selected for r in runs["off"].rounds
        ]

    def test_stable_supply_clears_once(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(
            net, offers, tm, seed=3, engine="mcf",
            recall=self._stable_recall(), delta_reclear="exact",
        )
        outcome = auction.run(5)
        assert auction.full_clears == 1
        assert auction.exact_reuses == 4
        assert len(set(outcome.cost_series())) == 1

    def test_off_mode_always_clears(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(
            net, offers, tm, seed=3, engine="mcf",
            recall=self._stable_recall(), delta_reclear="off",
        )
        auction.run(5)
        assert auction.full_clears == 5
        assert auction.exact_reuses == 0
        assert auction.single_link_reuses == 0

    def test_single_link_reuse_fires_for_unselected_loss(self, setup):
        from repro.auction.collusion import withhold_offer

        net, offers, tm = setup
        auction = RecurringAuction(
            net, offers, tm, seed=1, engine="mcf", delta_reclear="single-link"
        )
        base = auction._active_offers()
        first = auction._clear(base)
        # Drop one unselected link whose provider keeps others.
        lost = next(
            lid
            for o in base
            for lid in sorted(o.link_ids)
            if lid not in first.selected and len(o.link_ids) > 1
        )
        shrunk = [
            withhold_offer(o, o.link_ids - {lost}) if lost in o.link_ids else o
            for o in base
        ]
        second = auction._clear(shrunk)
        assert second is first  # provably the same clearing, reused
        assert auction.single_link_reuses == 1
        assert auction.full_clears == 1

    def test_exact_mode_never_single_link_reuses(self, setup):
        from repro.auction.collusion import withhold_offer

        net, offers, tm = setup
        auction = RecurringAuction(
            net, offers, tm, seed=1, engine="mcf", delta_reclear="exact"
        )
        base = auction._active_offers()
        first = auction._clear(base)
        lost = next(
            lid
            for o in base
            for lid in sorted(o.link_ids)
            if lid not in first.selected and len(o.link_ids) > 1
        )
        shrunk = [
            withhold_offer(o, o.link_ids - {lost}) if lost in o.link_ids else o
            for o in base
        ]
        auction._clear(shrunk)
        assert auction.single_link_reuses == 0
        assert auction.full_clears == 2

    def test_selected_link_loss_is_not_reusable(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(
            net, offers, tm, seed=1, engine="mcf", delta_reclear="single-link"
        )
        base = auction._active_offers()
        first = auction._clear(base)
        key = auction._clearing_key(base)
        lost = next(iter(sorted(first.selected)))
        new_key = tuple(
            sorted(
                (p, ia, tuple(l for l in links if l != lost))
                for p, ia, links in key
            )
        )
        assert not auction._single_link_reusable(new_key, key)

    def test_appeared_link_is_not_reusable(self, setup):
        net, offers, tm = setup
        auction = RecurringAuction(
            net, offers, tm, seed=1, engine="mcf", delta_reclear="single-link"
        )
        base = auction._active_offers()
        auction._clear(base)
        key = auction._clearing_key(base)
        new_key = tuple(
            sorted(
                (p, ia, tuple(sorted(links + ("ZZ",))))
                for p, ia, links in key
            )
        )
        assert not auction._single_link_reusable(new_key, key)
