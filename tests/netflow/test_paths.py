"""Tests for path primitives and k-shortest paths."""

import pytest

from repro.exceptions import FlowError, UnknownNodeError
from repro.netflow.paths import (
    Path,
    all_pairs_shortest_paths,
    k_shortest_paths,
    shortest_path,
)
from repro.topology.graph import Link

from tests.conftest import make_node, square_network


class TestPathObject:
    def test_shape_validation(self):
        with pytest.raises(FlowError):
            Path(nodes=("a", "b"), link_ids=())
        with pytest.raises(FlowError):
            Path(nodes=(), link_ids=())

    def test_trivial_path(self):
        p = Path(nodes=("a",), link_ids=())
        assert p.source == p.target == "a"
        assert p.num_hops == 0

    def test_metrics(self, square):
        p = shortest_path(square, "A", "C")
        assert p.num_hops >= 1
        assert p.length_km(square) > 0
        assert p.bottleneck_gbps(square) > 0

    def test_trivial_bottleneck_infinite(self, square):
        p = Path(nodes=("A",), link_ids=())
        assert p.bottleneck_gbps(square) == float("inf")

    def test_uses_link(self, square):
        p = shortest_path(square, "A", "B")
        assert p.uses_link("AB")
        assert not p.uses_link("CD")


class TestShortestPath:
    def test_direct_diagonal(self, square):
        # A-C has a direct link (shorter than going around).
        p = shortest_path(square, "A", "C")
        assert p.link_ids == ("AC",)

    def test_same_node(self, square):
        p = shortest_path(square, "A", "A")
        assert p.num_hops == 0

    def test_unknown_nodes_raise(self, square):
        with pytest.raises(UnknownNodeError):
            shortest_path(square, "A", "Z")

    def test_unreachable_returns_none(self, square):
        sub = square.restricted_to_links(["AB"])
        assert shortest_path(sub, "A", "D") is None

    def test_hops_weight(self, square):
        p = shortest_path(square, "B", "D", weight="hops")
        assert p.num_hops == 2

    def test_prefers_shorter_parallel(self, square):
        square.add_link(
            Link(id="AC2", u="A", v="C", capacity_gbps=50.0, length_km=10.0)
        )
        p = shortest_path(square, "A", "C")
        assert p.link_ids == ("AC2",)


class TestKShortest:
    def test_k_paths_distinct_and_ordered(self, square):
        paths = k_shortest_paths(square, "A", "C", k=3)
        assert len(paths) == 3
        lengths = [p.length_km(square) for p in paths]
        assert lengths == sorted(lengths)
        assert len({p.nodes for p in paths}) == 3

    def test_k_larger_than_available(self, square):
        paths = k_shortest_paths(square, "A", "B", k=50)
        assert 1 <= len(paths) <= 50

    def test_k_validation(self, square):
        with pytest.raises(ValueError):
            k_shortest_paths(square, "A", "B", k=0)

    def test_unreachable_gives_empty(self, square):
        sub = square.restricted_to_links(["AB"])
        assert k_shortest_paths(sub, "A", "D", k=2) == []

    def test_same_node(self, square):
        paths = k_shortest_paths(square, "A", "A", k=2)
        assert len(paths) == 1
        assert paths[0].num_hops == 0


class TestAllPairs:
    def test_covers_all_reachable_pairs(self, square):
        sp = all_pairs_shortest_paths(square)
        nodes = square.node_ids
        assert len(sp) == len(nodes) * (len(nodes) - 1)

    def test_paths_are_shortest(self, square):
        sp = all_pairs_shortest_paths(square)
        direct = shortest_path(square, "B", "D")
        assert sp[("B", "D")].length_km(square) == pytest.approx(
            direct.length_km(square)
        )

    def test_disconnected_pairs_absent(self, square):
        sub = square.restricted_to_links(["AB"])
        sp = all_pairs_shortest_paths(sub)
        assert ("A", "D") not in sp
        assert ("A", "B") in sp
