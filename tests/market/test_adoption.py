"""Tests for POC adoption dynamics (§5)."""

import pytest

from repro.exceptions import MarketError
from repro.market.adoption import (
    AdoptionConfig,
    adoption_hazard,
    expected_trajectory,
    incumbent_price,
    simulate_adoption,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(MarketError):
            AdoptionConfig(num_lmps=0)
        with pytest.raises(MarketError):
            AdoptionConfig(epochs=0)
        with pytest.raises(MarketError):
            AdoptionConfig(incumbent_response=1.5)
        with pytest.raises(MarketError):
            AdoptionConfig(base_hazard=-0.1)


class TestPriceResponse:
    def test_price_falls_with_share(self):
        cfg = AdoptionConfig()
        assert incumbent_price(cfg, 0.0) == cfg.incumbent_price0
        assert incumbent_price(cfg, 0.5) < cfg.incumbent_price0

    def test_price_floored_at_poc(self):
        cfg = AdoptionConfig(incumbent_response=1.0)
        assert incumbent_price(cfg, 1.0) == cfg.poc_price

    def test_hazard_bounded(self):
        cfg = AdoptionConfig(savings_weight=5.0, confidence_weight=5.0)
        assert adoption_hazard(cfg, 1.0) <= 1.0
        assert adoption_hazard(cfg, 0.0) >= 0.0


class TestTrajectories:
    def test_share_monotone(self):
        history = simulate_adoption(AdoptionConfig())
        shares = history.share_series()
        for a, b in zip(shares, shares[1:]):
            assert b >= a

    def test_deterministic_under_seed(self):
        a = simulate_adoption(AdoptionConfig(seed=3))
        b = simulate_adoption(AdoptionConfig(seed=3))
        assert a.share_series() == b.share_series()

    def test_s_curve_reaches_saturation(self):
        history = expected_trajectory(AdoptionConfig(epochs=120))
        assert history.final_share > 0.95

    def test_no_incentive_no_takeoff(self):
        """With no savings and no baseline hazard, nothing happens."""
        cfg = AdoptionConfig(
            poc_price=1200.0, incumbent_price0=1200.0,
            base_hazard=0.0, epochs=40,
        )
        history = expected_trajectory(cfg)
        assert history.final_share == pytest.approx(0.0)

    def test_bigger_savings_faster_adoption(self):
        slow = expected_trajectory(AdoptionConfig(poc_price=1100.0))
        fast = expected_trajectory(AdoptionConfig(poc_price=400.0))
        t_slow = slow.epochs_to_share(0.5)
        t_fast = fast.epochs_to_share(0.5)
        assert t_fast is not None
        assert t_slow is None or t_fast <= t_slow

    def test_confidence_accelerates(self):
        shy = expected_trajectory(AdoptionConfig(confidence_weight=0.0))
        social = expected_trajectory(AdoptionConfig(confidence_weight=0.3))
        assert social.final_share >= shy.final_share

    def test_commoditization_loop(self):
        """As the POC grows, incumbent prices fall — §5's complement
        commoditization, visible in the price series."""
        history = expected_trajectory(AdoptionConfig(epochs=80))
        prices = history.price_series()
        assert prices[-1] < prices[0]
        for a, b in zip(prices, prices[1:]):
            assert b <= a + 1e-9

    def test_epochs_to_share_none_when_unreached(self):
        cfg = AdoptionConfig(
            poc_price=1200.0, incumbent_price0=1200.0,
            base_hazard=0.0, confidence_weight=0.0, epochs=10,
        )
        assert expected_trajectory(cfg).epochs_to_share(0.5) is None
