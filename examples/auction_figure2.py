#!/usr/bin/env python
"""Reproduce Figure 2: PoB margins of the 5 largest BPs × 3 constraints.

The paper's only quantitative figure.  By default this runs the ``tiny``
preset (a couple of minutes: constraint #2/#3 re-verify feasibility
under every failure scenario inside the selection loop).  Pass
``--preset small`` or ``--preset paper`` for bigger instances — and
correspondingly more patience.

Run:  python examples/auction_figure2.py [--preset tiny|small|paper]
"""

import argparse

from repro.experiments.figure2 import Figure2Config, run_figure2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--constraints", type=int, nargs="+", default=[1, 2, 3])
    args = parser.parse_args()

    config = Figure2Config(
        preset=args.preset,
        seed=args.seed,
        constraints=tuple(args.constraints),
    )
    result = run_figure2(config)
    print(result.formatted())

    print("\nreading the figure:")
    print(" - PoB = (payment − declared cost) / declared cost per BP;")
    print(" - every defined PoB is >= 0 (the VCG payment covers the bid);")
    print(" - the spread across BPs/constraints is the paper's point —")
    print("   margins are set by each BP's *alternatives*, not its size,")
    print("   which is why the POC should publish the algorithm.")


if __name__ == "__main__":
    main()
