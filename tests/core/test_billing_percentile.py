"""Tests for 95th-percentile billing."""

import pytest

from repro.exceptions import MarketError
from repro.core.billing import Percentile95Rate


class TestPercentileBilling:
    def test_bursts_forgiven(self):
        scheme = Percentile95Rate(rate_per_gbps=10.0)
        # 95 steady samples at 2 Gbps, 5 bursts at 50 Gbps: the bursts
        # fall in the forgiven top 5%.
        samples = [2.0] * 95 + [50.0] * 5
        assert scheme.monthly_charge_from_samples(samples) == pytest.approx(20.0)

    def test_constant_usage_matches_flat_usage_charge(self):
        scheme = Percentile95Rate(rate_per_gbps=10.0, port_fee=5.0)
        samples = [3.0] * 100
        assert scheme.monthly_charge_from_samples(samples) == pytest.approx(
            scheme.monthly_charge(3.0)
        )

    def test_sustained_load_is_billed(self):
        scheme = Percentile95Rate(rate_per_gbps=10.0)
        # 10% of the month at 50 Gbps is NOT forgiven at the 95th.
        samples = [2.0] * 90 + [50.0] * 10
        assert scheme.monthly_charge_from_samples(samples) == pytest.approx(500.0)

    def test_empty_samples_rejected(self):
        # An empty sample vector is a telemetry failure; billing it as
        # "port fee only" would silently forgive the month.
        scheme = Percentile95Rate(rate_per_gbps=10.0, port_fee=7.0)
        with pytest.raises(MarketError):
            scheme.monthly_charge_from_samples([])

    def test_non_finite_samples_rejected(self):
        scheme = Percentile95Rate(rate_per_gbps=10.0)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(MarketError):
                scheme.monthly_charge_from_samples([1.0, bad, 2.0])

    def test_order_invariance(self):
        scheme = Percentile95Rate(rate_per_gbps=1.0)
        samples = [5.0, 1.0, 9.0, 3.0] * 25
        assert scheme.monthly_charge_from_samples(samples) == pytest.approx(
            scheme.monthly_charge_from_samples(sorted(samples))
        )

    def test_negative_sample_rejected(self):
        scheme = Percentile95Rate(rate_per_gbps=1.0)
        with pytest.raises(MarketError):
            scheme.monthly_charge_from_samples([-1.0, 2.0])

    def test_validation(self):
        with pytest.raises(MarketError):
            Percentile95Rate(rate_per_gbps=-1.0)
        with pytest.raises(MarketError):
            Percentile95Rate(rate_per_gbps=1.0, percentile=0.0)

    def test_percentile_vs_peak_billing(self):
        """The scheme's raison d'être: cheaper than peak for bursty use."""
        scheme = Percentile95Rate(rate_per_gbps=10.0)
        bursty = [1.0] * 97 + [100.0] * 3
        p95_bill = scheme.monthly_charge_from_samples(bursty)
        peak_bill = scheme.monthly_charge(max(bursty))
        assert p95_bill < peak_bill
