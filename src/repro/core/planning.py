"""Capacity planning on top of the provisioned backbone.

The POC's TM grows; its backbone has finite headroom (the max-concurrent-
flow λ of the current TM on the selected links).  This module answers
the operator questions:

- :func:`months_of_headroom` — how long until growth exhausts λ;
- :func:`plan_reprovisioning` — a re-auction schedule over a horizon:
  whenever projected headroom falls below a trigger, re-run the auction
  against the grown TM, recording each epoch's backbone and cost.

Re-auctioning (rather than incrementally patching) is the honest model
of §3.3's design: the selection is recomputed from the full offer book.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exceptions import MarketError, NoFeasibleSelectionError
from repro.auction.constraints import make_constraint
from repro.auction.provider import Offer
from repro.auction.vcg import AuctionConfig, AuctionResult, run_auction
from repro.netflow.mcf import max_concurrent_flow
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix


def months_of_headroom(
    backbone: Network, tm: TrafficMatrix, monthly_growth: float
) -> int:
    """Months until a TM growing at ``monthly_growth`` exhausts λ.

    λ(t) = λ₀ / (1+g)^t ; the backbone saturates when λ(t) < 1, so the
    answer is ⌊log λ₀ / log (1+g)⌋.  Returns 0 when already infeasible
    and a large sentinel (1200) for zero growth on a feasible backbone.
    """
    if monthly_growth < 0:
        raise MarketError(f"growth cannot be negative: {monthly_growth}")
    result = max_concurrent_flow(backbone, tm)
    if not result.feasible:
        return 0
    if monthly_growth == 0:
        return 1200  # a century: effectively "never" at planning scale
    return int(math.floor(math.log(result.lam) / math.log(1.0 + monthly_growth)))


@dataclass
class PlanningEpoch:
    """One month of the plan."""

    month: int
    tm_scale: float
    headroom: float
    reprovisioned: bool
    monthly_cost: float
    selected_links: int


@dataclass
class ReprovisioningPlan:
    epochs: List[PlanningEpoch] = field(default_factory=list)
    auctions: List[AuctionResult] = field(default_factory=list)

    @property
    def num_reprovisions(self) -> int:
        return sum(1 for e in self.epochs if e.reprovisioned)

    def total_cost(self) -> float:
        return sum(e.monthly_cost for e in self.epochs)

    def cost_series(self) -> List[float]:
        return [e.monthly_cost for e in self.epochs]


def plan_reprovisioning(
    offered: Network,
    offers: Sequence[Offer],
    tm: TrafficMatrix,
    *,
    monthly_growth: float,
    horizon_months: int,
    trigger_headroom: float = 1.15,
    provision_margin: float = 1.6,
    constraint: int = 1,
    engine: str = "mcf",
    method: str = "add-prune",
) -> ReprovisioningPlan:
    """Simulate ``horizon_months`` of growth with re-auctioning.

    Month 0 always provisions.  Afterwards, whenever the current
    backbone's headroom λ against the grown TM falls below
    ``trigger_headroom``, the auction re-runs against the full offer
    book.  Each auction buys against the current TM scaled by
    ``provision_margin`` — min-cost selection is exactly tight by
    construction (λ ≈ 1 on what it was asked to carry), so the margin IS
    the headroom: without it the plan would re-auction every month.
    Raises NoFeasibleSelectionError when growth outruns the entire offer
    book — the signal to procure more links.
    """
    if horizon_months < 1:
        raise MarketError("horizon must be at least one month")
    if trigger_headroom < 1.0:
        raise MarketError("trigger headroom below 1.0 would plan for overload")
    if provision_margin < trigger_headroom:
        raise MarketError(
            "provision margin below the trigger would re-auction immediately"
        )
    if monthly_growth < 0:
        raise MarketError("growth cannot be negative")

    plan = ReprovisioningPlan()
    backbone: Optional[Network] = None
    monthly_cost = 0.0
    selected_links = 0

    for month in range(horizon_months):
        scale = (1.0 + monthly_growth) ** month
        tm_now = tm.scaled(scale)
        needs_provision = backbone is None
        headroom = float("inf")
        if backbone is not None:
            headroom = max_concurrent_flow(backbone, tm_now).lam
            if headroom < trigger_headroom:
                needs_provision = True

        if needs_provision:
            tm_target = tm_now.scaled(provision_margin)
            cons = make_constraint(constraint, offered, tm_target, engine=engine)
            result = run_auction(offers, cons, config=AuctionConfig(method=method))
            plan.auctions.append(result)
            backbone = offered.restricted_to_links(result.selected)
            monthly_cost = result.total_payments
            selected_links = len(result.selected)
            headroom = max_concurrent_flow(backbone, tm_now).lam

        plan.epochs.append(
            PlanningEpoch(
                month=month,
                tm_scale=scale,
                headroom=headroom,
                reprovisioned=needs_provision,
                monthly_cost=monthly_cost,
                selected_links=selected_links,
            )
        )
    return plan
