"""Auction reporting: payment-over-bid margins and summary tables.

Figure 2 of the paper plots the PoB margin, PoB = (P_α − C_α) / C_α, for
the five largest BPs under each of the three constraints.  This module
renders that figure's data as plain rows so benchmarks can print them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.auction.vcg import AuctionResult


@dataclass(frozen=True)
class PoBRow:
    """One bar of Figure 2: a BP's PoB under one constraint."""

    constraint: str
    provider: str
    declared_cost: float
    payment: float
    pob: Optional[float]

    def formatted(self) -> str:
        pob = "   n/a" if self.pob is None else f"{self.pob:6.3f}"
        return (
            f"{self.constraint:<14} {self.provider:<8} "
            f"C={self.declared_cost:>14,.0f}  P={self.payment:>14,.0f}  PoB={pob}"
        )


def pob_rows(
    results_by_constraint: Mapping[str, AuctionResult],
    providers: Sequence[str],
) -> List[PoBRow]:
    """Figure-2 rows: for each constraint, each listed provider's PoB."""
    rows: List[PoBRow] = []
    for cname in results_by_constraint:
        result = results_by_constraint[cname]
        for provider in providers:
            pr = result.providers.get(provider)
            if pr is None:
                rows.append(PoBRow(cname, provider, 0.0, 0.0, None))
            else:
                rows.append(
                    PoBRow(
                        constraint=cname,
                        provider=provider,
                        declared_cost=pr.declared_cost,
                        payment=pr.payment,
                        pob=pr.payment_over_bid,
                    )
                )
    return rows


@dataclass(frozen=True)
class AuctionSummary:
    """Aggregate facts about one auction run, for tables and tests."""

    constraint: str
    links_offered: int
    links_selected: int
    total_declared_cost: float
    total_payments: float
    external_cost: float
    winners: int
    clamped_payments: int

    @property
    def overpayment_ratio(self) -> float:
        """Total payments / total declared cost of the selection."""
        if self.total_declared_cost <= 0:
            return 0.0
        return self.total_payments / self.total_declared_cost


def summarize(constraint_name: str, links_offered: int, result: AuctionResult) -> AuctionSummary:
    return AuctionSummary(
        constraint=constraint_name,
        links_offered=links_offered,
        links_selected=len(result.selected),
        total_declared_cost=result.total_cost,
        total_payments=result.total_payments,
        external_cost=result.external_cost,
        winners=len(result.winners()),
        clamped_payments=sum(1 for p in result.providers.values() if p.clamped),
    )


def format_summary_table(summaries: Sequence[AuctionSummary]) -> str:
    """A fixed-width table, one row per constraint."""
    header = (
        f"{'constraint':<14}{'offered':>9}{'selected':>10}{'cost':>16}"
        f"{'payments':>16}{'ext':>12}{'winners':>9}{'clamped':>9}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.constraint:<14}{s.links_offered:>9}{s.links_selected:>10}"
            f"{s.total_declared_cost:>16,.0f}{s.total_payments:>16,.0f}"
            f"{s.external_cost:>12,.0f}{s.winners:>9}{s.clamped_payments:>9}"
        )
    return "\n".join(lines)


def pob_variation(rows: Sequence[PoBRow]) -> Dict[str, float]:
    """Spread statistics of the PoB margins (the paper's headline: "high
    variation in the PoB").  Returns min, max, and max−min over rows with
    a defined PoB."""
    values = [r.pob for r in rows if r.pob is not None]
    if not values:
        return {"min": 0.0, "max": 0.0, "spread": 0.0}
    return {"min": min(values), "max": max(values), "spread": max(values) - min(values)}
