"""Integration tests: the full pipeline, zoo to invoices.

These are the "does the whole system hang together" checks: build the
synthetic zoo, run the auction, stand up the POC, attach parties, move
traffic, bill everyone, and audit neutrality — in one flow.
"""

import pytest

from repro.auction.constraints import make_constraint
from repro.auction.vcg import AuctionConfig, run_auction
from repro.core.poc import PublicOptionCore
from repro.core.tos import PolicyAction, PolicyReason, TrafficPolicy
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo
from repro.market.entities import founding_catalogue, founding_lmps
from repro.market.sim import MarketConfig, MarketSim, Regime


@pytest.fixture(scope="module")
def pipeline(request):
    """Zoo -> TM -> offers -> provisioned POC (shared by this module)."""
    from repro.topology.zoo import ZooConfig, build_zoo

    zoo = build_zoo(ZooConfig.tiny())
    tm = traffic_for_zoo(zoo)
    offers = offers_for_zoo(zoo)
    poc = PublicOptionCore.from_zoo(zoo)
    result = poc.provision(offers, tm, constraint=1, method="add-prune")
    return zoo, tm, offers, poc, result


class TestProvisionedPOC:
    def test_backbone_carries_tm(self, pipeline):
        zoo, tm, _offers, poc, _result = pipeline
        from repro.netflow.mcf import max_concurrent_flow

        res = max_concurrent_flow(poc.backbone, tm)
        assert res.feasible

    def test_backbone_cheaper_than_universe(self, pipeline):
        zoo, _tm, offers, poc, result = pipeline
        from repro.auction.selection import total_declared_cost

        universe_cost = total_declared_cost(
            offers, [l for o in offers for l in o.link_ids]
        )
        assert result.total_cost < universe_cost

    def test_payments_cover_costs(self, pipeline):
        _zoo, _tm, _offers, _poc, result = pipeline
        for pr in result.providers.values():
            assert pr.payment >= pr.declared_cost - 1e-6

    def test_individual_rationality_all_bps(self, pipeline):
        _zoo, _tm, offers, _poc, result = pipeline
        from repro.auction.vcg import utility

        for offer in offers:
            assert utility(offer, result) >= -1e-6

    def test_full_attachment_lifecycle(self, pipeline):
        zoo, _tm, _offers, poc, _result = pipeline
        sites = [s.router_id for s in zoo.sites]
        poc.attach("eyeco", sites[0], "lmp")
        poc.attach("vidco", sites[-1], "csp")
        try:
            path = poc.transit_path("eyeco", "vidco")
            assert path is not None
            invoices = poc.monthly_invoices({"eyeco": 10.0, "vidco": 30.0})
            assert sum(invoices.values()) == pytest.approx(poc.monthly_cost)
            assert invoices["vidco"] == pytest.approx(3 * invoices["eyeco"])
        finally:
            poc.detach("eyeco")
            poc.detach("vidco")

    def test_neutrality_audit_over_poc(self, pipeline):
        zoo, _tm, _offers, poc, _result = pipeline
        site = zoo.sites[0].router_id
        poc.attach("auditee", site, "lmp")
        try:
            bad = TrafficPolicy(
                lmp="auditee", action=PolicyAction.THROTTLE, direction="in",
                selector_source="rival",
            )
            ok = TrafficPolicy(
                lmp="auditee", action=PolicyAction.BLOCK, direction="in",
                selector_source="botnet", reason=PolicyReason.SECURITY,
            )
            violations = poc.audit_lmp("auditee", policies=[bad, ok])
            assert len(violations) == 1
        finally:
            poc.detach("auditee")


class TestAuctionToMarket:
    def test_auction_cost_feeds_market(self, pipeline):
        """The full loop: auction sets the POC's cost base; the market
        simulator recovers exactly that amount per epoch."""
        _zoo, _tm, _offers, _poc, result = pipeline
        sim = MarketSim(
            MarketConfig(
                regime=Regime.NN, epochs=4, poc_monthly_cost=result.total_payments
            ),
            founding_catalogue(),
            founding_lmps(),
        )
        sim.run()
        assert sim.ledger.balance("BP-pool") == pytest.approx(
            4 * result.total_payments
        )
        assert sim.ledger.balance("POC") == pytest.approx(0.0, abs=1e-6)


class TestConstraintOrdering:
    def test_stricter_constraints_cost_weakly_more(self, pipeline):
        """The Figure 2 sanity property at integration scale."""
        zoo, tm, offers, _poc, _result = pipeline
        costs = {}
        for number, engine in ((1, "greedy"), (2, "greedy")):
            constraint = make_constraint(number, zoo.offered, tm, engine=engine)
            res = run_auction(
                offers, constraint, config=AuctionConfig(method="add-prune")
            )
            costs[number] = res.total_cost
        assert costs[2] >= costs[1] - 1e-6
