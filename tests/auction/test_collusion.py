"""Tests for the withholding-collusion analysis (§3.3)."""

import pytest

from repro.exceptions import AuctionError
from repro.auction.collusion import withhold_offer, withholding_collusion
from repro.auction.constraints import make_constraint
from repro.auction.provider import make_external_contract
from repro.auction.vcg import AuctionConfig
from repro.traffic.matrix import TrafficMatrix

from tests.conftest import square_network, square_offers

EXACT = AuctionConfig(method="milp")


@pytest.fixture
def setup():
    net = square_network()
    offers = square_offers(net)
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
    constraint = make_constraint(1, net, tm)
    return net, offers, constraint


class TestWithholdOffer:
    def test_restricts_links_and_bid(self, setup):
        _net, offers, _c = setup
        p_offer = offers[0]
        reduced = withhold_offer(p_offer, ["AB"])
        assert reduced.link_ids == frozenset({"AB"})
        assert reduced.bid.cost(["AB"]) == 100.0

    def test_rejects_unknown_links(self, setup):
        _net, offers, _c = setup
        with pytest.raises(AuctionError):
            withhold_offer(offers[0], ["AC"])  # AC belongs to Q


@pytest.fixture
def setup_with_external(setup):
    """The square plus an external virtual link so collusion is priceable."""
    net, offers, _old = setup
    contract = make_external_contract(
        "ext", [("A", "C")], capacity_gbps=10.0, price_per_link=500.0
    )
    for link in contract.links:
        net.add_link(link)
    tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
    constraint = make_constraint(1, net, tm)
    return net, offers + [contract.to_offer()], constraint


class TestWithholdingCollusion:
    def test_selection_unchanged(self, setup_with_external):
        _net, offers, constraint = setup_with_external
        report = withholding_collusion(offers, constraint, config=EXACT)
        assert report.withheld.selected == report.baseline.selected

    def test_withholding_never_lowers_payments(self, setup_with_external):
        """Removing losing links can only worsen the leave-one-out
        alternative, so payments weakly rise — exactly the §3.3 worry."""
        _net, offers, constraint = setup_with_external
        report = withholding_collusion(offers, constraint, config=EXACT)
        assert report.total_payment_delta >= -1e-9
        assert report.poc_cost_delta >= -1e-9

    def test_square_collusion_is_blocked_by_pivotality(self, setup):
        """On the square, withholding makes Q pivotal: the auction cannot
        price it and fails loudly rather than paying an unbounded amount."""
        from repro.exceptions import NoFeasibleSelectionError

        _net, offers, constraint = setup
        # Q wins; the ring loses.  If P withdraws entirely, the fallback
        # A(OL − L_Q) becomes empty.
        with pytest.raises(NoFeasibleSelectionError):
            withholding_collusion(offers, constraint, config=EXACT)

    def test_external_contract_bounds_damage(self, setup):
        """With an external virtual link, the same collusion is priced:
        the contract caps what colluders can extract (the paper's point)."""
        net, offers, _old = setup
        contract = make_external_contract(
            "ext", [("A", "C")], capacity_gbps=10.0, price_per_link=500.0
        )
        for link in contract.links:
            net.add_link(link)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        constraint = make_constraint(1, net, tm)
        all_offers = offers + [contract.to_offer()]
        report = withholding_collusion(
            all_offers, constraint, colluders=["P", "Q"], config=EXACT
        )
        # Baseline: Q paid 200 (P's ring is the alternative).  After P
        # withdraws, the alternative is the 500 contract: Q's payment
        # rises but is capped by the external price.
        assert report.baseline.payment("Q") == pytest.approx(200.0)
        assert report.withheld.payment("Q") == pytest.approx(500.0)
        assert report.payment_delta("Q") == pytest.approx(300.0)
        assert report.gainers() == ["Q"]

    def test_colluder_list_respected(self, setup):
        net, offers, _old = setup
        contract = make_external_contract(
            "ext", [("A", "C")], capacity_gbps=10.0, price_per_link=500.0
        )
        for link in contract.links:
            net.add_link(link)
        tm = TrafficMatrix.from_dict(["A", "C"], {("A", "C"): 3.0})
        constraint = make_constraint(1, net, tm)
        all_offers = offers + [contract.to_offer()]
        # Only Q colludes: Q keeps its winning link, P's offer is intact,
        # so nothing changes.
        report = withholding_collusion(
            all_offers, constraint, colluders=["Q"], config=EXACT
        )
        assert report.total_payment_delta == pytest.approx(0.0)
