"""Tests for the gravity traffic model."""

import pytest

from repro.exceptions import TrafficError
from repro.traffic.gravity import gravity_matrix, gravity_matrix_for_sites


class TestGravityMatrix:
    def test_total_normalized(self):
        tm = gravity_matrix({"a": 1.0, "b": 2.0, "c": 3.0}, total_gbps=60.0)
        assert tm.total_gbps() == pytest.approx(60.0)

    def test_mass_proportionality(self):
        tm = gravity_matrix({"a": 1.0, "b": 2.0, "c": 1.0}, total_gbps=100.0)
        # demand(b,c)/demand(a,c) = mass(b)/mass(a) = 2.
        assert tm.demand("b", "c") / tm.demand("a", "c") == pytest.approx(2.0)

    def test_symmetric_masses_give_symmetric_tm(self):
        tm = gravity_matrix({"a": 5.0, "b": 5.0}, total_gbps=10.0)
        assert tm.demand("a", "b") == pytest.approx(tm.demand("b", "a"))

    def test_all_pairs_present(self):
        tm = gravity_matrix({"a": 1.0, "b": 1.0, "c": 1.0}, total_gbps=6.0)
        assert tm.num_pairs == 6

    def test_deterrence_dampens_far_pairs(self):
        masses = {"a": 1.0, "b": 1.0, "c": 1.0}
        distances = {("a", "b"): 100.0, ("a", "c"): 10_000.0, ("b", "c"): 100.0}
        tm = gravity_matrix(masses, 100.0, distance_km=distances, deterrence=2.0)
        assert tm.demand("a", "b") > tm.demand("a", "c")

    def test_zero_total(self):
        tm = gravity_matrix({"a": 1.0, "b": 1.0}, total_gbps=0.0)
        assert tm.total_gbps() == 0.0

    def test_rejects_negative_total(self):
        with pytest.raises(TrafficError):
            gravity_matrix({"a": 1.0, "b": 1.0}, total_gbps=-1.0)

    def test_rejects_single_node(self):
        with pytest.raises(TrafficError):
            gravity_matrix({"a": 1.0}, total_gbps=1.0)

    def test_rejects_non_positive_mass(self):
        with pytest.raises(TrafficError):
            gravity_matrix({"a": 0.0, "b": 1.0}, total_gbps=1.0)

    def test_rejects_negative_deterrence(self):
        with pytest.raises(TrafficError):
            gravity_matrix({"a": 1.0, "b": 1.0}, 1.0, deterrence=-1.0)


class TestGravityForSites:
    def test_nodes_are_router_ids(self, tiny_zoo):
        tm = gravity_matrix_for_sites(tiny_zoo.sites, total_gbps=100.0)
        assert set(tm.nodes) == {s.router_id for s in tiny_zoo.sites}
        assert tm.total_gbps() == pytest.approx(100.0)

    def test_validates_against_offered_network(self, tiny_zoo):
        tm = gravity_matrix_for_sites(tiny_zoo.sites, total_gbps=10.0)
        tm.validate_against(tiny_zoo.offered.node_ids)

    def test_population_drives_demand(self, tiny_zoo):
        from repro.topology.cities import get_city

        tm = gravity_matrix_for_sites(tiny_zoo.sites, total_gbps=100.0)
        sites = sorted(
            tiny_zoo.sites, key=lambda s: get_city(s.city).population_m
        )
        small, big = sites[0], sites[-1]
        other = sites[1]
        if other.router_id not in (small.router_id, big.router_id):
            assert tm.demand(big.router_id, other.router_id) > tm.demand(
                small.router_id, other.router_id
            )

    def test_deterrence_variant(self, tiny_zoo):
        flat = gravity_matrix_for_sites(tiny_zoo.sites, total_gbps=100.0)
        damped = gravity_matrix_for_sites(
            tiny_zoo.sites, total_gbps=100.0, deterrence=2.0
        )
        assert damped.total_gbps() == pytest.approx(100.0)
        # Distance damping must change the distribution.
        diffs = [
            abs(flat.demand(*pair) - damped.demand(*pair))
            for pair, _ in flat.pairs()
        ]
        assert max(diffs) > 1e-9

    def test_rejects_single_site(self, tiny_zoo):
        with pytest.raises(TrafficError):
            gravity_matrix_for_sites(tiny_zoo.sites[:1], total_gbps=1.0)
