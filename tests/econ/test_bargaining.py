"""Tests for the Nash-bargaining fee model (§4.5)."""

import pytest

from repro.exceptions import BargainingError, EconError
from repro.econ.bargaining import (
    average_fee,
    bilateral_fee,
    fee_schedule,
    incumbency_comparison,
    nash_product,
    nbs_fee,
    nbs_fee_numeric,
)
from repro.econ.csp import CSP
from repro.econ.demand import LinearDemand
from repro.econ.lmp import LMP, entrant, incumbent


class TestClosedForm:
    def test_formula(self):
        # t = (p − r·c)/2.
        assert nbs_fee(10.0, 0.2, 20.0) == pytest.approx(3.0)
        assert nbs_fee(10.0, 0.0, 20.0) == pytest.approx(5.0)

    def test_negative_fee_possible(self):
        # When r·c > p the LMP pays the CSP (must-carry content).
        assert nbs_fee(5.0, 0.5, 20.0) == pytest.approx(-2.5)

    def test_matches_numeric_maximization(self):
        for p, r, c in [(10.0, 0.2, 20.0), (15.0, 0.05, 50.0), (8.0, 0.4, 10.0)]:
            assert nbs_fee(p, r, c) == pytest.approx(
                nbs_fee_numeric(p, r, c), abs=1e-4
            )

    def test_numeric_respects_demand_scaling(self):
        # The NBS fee does not depend on D(p) (it cancels in the product).
        a = nbs_fee_numeric(10.0, 0.2, 20.0, demand_at_price=1.0)
        b = nbs_fee_numeric(10.0, 0.2, 20.0, demand_at_price=0.3)
        assert a == pytest.approx(b, abs=1e-4)

    def test_nash_product_peak(self):
        t_star = nbs_fee(10.0, 0.2, 20.0)
        peak = nash_product(t_star, 10.0, 0.5, 0.2, 20.0)
        for t in (t_star - 1.0, t_star + 1.0):
            assert nash_product(t, 10.0, 0.5, 0.2, 20.0) < peak

    def test_validation(self):
        with pytest.raises(EconError):
            nbs_fee(-1.0, 0.2, 20.0)
        with pytest.raises(BargainingError):
            nbs_fee(10.0, 1.5, 20.0)
        with pytest.raises(EconError):
            nbs_fee(10.0, 0.2, -5.0)


class TestFeeMonotonicity:
    """§4.5: 'the fee is decreasing in the rate r_l^s'."""

    def test_decreasing_in_churn(self):
        fees = [nbs_fee(10.0, r, 20.0) for r in (0.0, 0.1, 0.2, 0.4)]
        assert fees == sorted(fees, reverse=True)

    def test_decreasing_in_access_price(self):
        fees = [nbs_fee(10.0, 0.2, c) for c in (0.0, 10.0, 20.0, 40.0)]
        assert fees == sorted(fees, reverse=True)

    def test_increasing_in_posted_price(self):
        fees = [nbs_fee(p, 0.2, 20.0) for p in (5.0, 10.0, 20.0)]
        assert fees == sorted(fees)


class TestIncumbencyAdvantage:
    def test_incumbent_lmp_extracts_more(self):
        csp = CSP(name="big", demand=LinearDemand(v_max=30.0), incumbency=1.0)
        inc, ent = incumbent(), entrant()
        assert bilateral_fee(csp, inc, price=15.0) > bilateral_fee(csp, ent, price=15.0)

    def test_incumbent_csp_pays_less(self):
        inc_csp = CSP(name="big", demand=LinearDemand(), incumbency=1.0)
        ent_csp = CSP(name="new", demand=LinearDemand(), incumbency=0.1)
        lmp = incumbent()
        assert bilateral_fee(inc_csp, lmp, price=15.0) < bilateral_fee(
            ent_csp, lmp, price=15.0
        )

    def test_comparison_object(self):
        comparison = incumbency_comparison(
            incumbent(), entrant(),
            CSP(name="big", demand=LinearDemand(), incumbency=1.0),
            CSP(name="new", demand=LinearDemand(), incumbency=0.1),
            price=15.0,
        )
        assert comparison.lmp_fee_gap > 0
        assert comparison.csp_fee_gap > 0


class TestMultiLMP:
    def test_average_formula(self):
        csp = CSP(name="svc", demand=LinearDemand(v_max=30.0), incumbency=1.0)
        lmps = [
            LMP(name="l1", num_customers=2.0, access_price=50.0, vulnerability=0.1),
            LMP(name="l2", num_customers=1.0, access_price=20.0, vulnerability=0.4),
        ]
        # <rc> = (2·(0.1·50) + 1·(0.4·20)) / 3 = (10 + 8)/3 = 6.
        assert average_fee(csp, lmps, price=15.0) == pytest.approx((15.0 - 6.0) / 2)

    def test_average_is_population_weighted_bilateral(self):
        csp = CSP(name="svc", demand=LinearDemand(v_max=30.0), incumbency=1.0)
        lmps = [
            LMP(name="l1", num_customers=3.0, access_price=50.0, vulnerability=0.1),
            LMP(name="l2", num_customers=1.0, access_price=20.0, vulnerability=0.4),
        ]
        price = 15.0
        schedule = fee_schedule(csp, lmps, price=price)
        weighted = sum(
            l.num_customers * schedule[l.name] for l in lmps
        ) / sum(l.num_customers for l in lmps)
        assert average_fee(csp, lmps, price=price) == pytest.approx(weighted)

    def test_single_lmp_reduces_to_bilateral(self):
        csp = CSP(name="svc", demand=LinearDemand(), incumbency=0.8)
        lmp = incumbent()
        assert average_fee(csp, [lmp], price=12.0) == pytest.approx(
            bilateral_fee(csp, lmp, price=12.0)
        )

    def test_empty_lmps_rejected(self):
        csp = CSP(name="svc", demand=LinearDemand())
        with pytest.raises(BargainingError):
            average_fee(csp, [], price=10.0)
