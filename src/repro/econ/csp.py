"""Content/Service Providers and their pricing problem.

Equation (1) of the paper: facing a per-customer termination fee t, a CSP
with demand D sets

    p*(t) = argmax_p (p − t) · D(p)

CSPs have no marginal cost (§4.2), so t = 0 recovers the NN monopoly
price.  Closed forms are used where the family admits one; otherwise a
bounded golden-section search over [t, price_ceiling].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from scipy.optimize import minimize_scalar

from repro.exceptions import EconError
from repro.econ.demand import (
    DemandCurve,
    ExponentialDemand,
    LinearDemand,
    ParetoDemand,
)


def optimal_price(demand: DemandCurve, fee: float = 0.0) -> float:
    """The revenue-maximizing posted price p*(t) given termination fee t.

    Lemma 1 guarantees (under its hypotheses) that this is strictly
    increasing in ``fee``; the property tests check that on every family.
    """
    if fee < 0:
        raise EconError(f"termination fee cannot be negative: {fee}")

    if isinstance(demand, LinearDemand):
        # (p − t)(1 − p/v): FOC gives p* = (v + t)/2, capped at v.  For
        # t >= v the market is dead (no price earns positive profit); the
        # convention is price-at-cost with zero sales, which keeps p*(t)
        # continuous and weakly increasing everywhere.
        if fee >= demand.v_max:
            return fee
        return min(demand.v_max, (demand.v_max + fee) / 2.0)
    if isinstance(demand, ExponentialDemand):
        # (p − t)e^{−p/s}: FOC gives p* = t + s.
        return fee + demand.scale
    if isinstance(demand, ParetoDemand):
        # On the tail, (p − t)(pm/p)^a maximized at p* = t·a/(a−1);
        # the corner at p_min applies for small t.
        interior = fee * demand.alpha / (demand.alpha - 1.0)
        return max(demand.p_min, interior)

    return _numeric_optimal_price(demand, fee)


def _numeric_optimal_price(demand: DemandCurve, fee: float) -> float:
    hi = max(demand.price_ceiling, fee * 2.0 + 1.0)

    def neg_profit(p: float) -> float:
        return -(p - fee) * demand.demand(p)

    result = minimize_scalar(neg_profit, bounds=(fee, hi), method="bounded")
    if not result.success:  # pragma: no cover - 'bounded' always succeeds
        raise EconError(f"price optimization failed: {result.message}")
    return float(result.x)


def profit(demand: DemandCurve, price: float, fee: float = 0.0) -> float:
    """The CSP's per-unit-mass profit at a posted price: (p − t)·D(p)."""
    if price < 0:
        raise EconError(f"price cannot be negative: {price}")
    return (price - fee) * demand.demand(price)


@dataclass
class CSP:
    """A content/service provider: a name, a demand curve, an era.

    ``incumbency`` ∈ (0, 1] expresses how established the CSP is; it feeds
    the churn parameter r of the bargaining model (§4.5): when a
    well-established CSP is blocked, more of the LMP's customers walk.
    """

    name: str
    demand: DemandCurve
    incumbency: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.incumbency <= 1.0:
            raise EconError(
                f"incumbency must be in (0, 1], got {self.incumbency}"
            )

    def price(self, fee: float = 0.0) -> float:
        return optimal_price(self.demand, fee)

    def profit(self, fee: float = 0.0, price: Optional[float] = None) -> float:
        p = self.price(fee) if price is None else price
        return profit(self.demand, p, fee)

    def subscribers(self, fee: float = 0.0) -> float:
        """Fraction of the consumer mass buying at the optimal price."""
        return self.demand.demand(self.price(fee))
