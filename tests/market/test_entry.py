"""Tests for entrant growth dynamics."""

import pytest

from repro.exceptions import MarketError
from repro.econ.demand import LinearDemand
from repro.market.entities import CSPAgent, LMPAgent
from repro.market.entry import (
    GrowthParams,
    drift_customers,
    grow_csp,
    harden_lmp,
)


@pytest.fixture
def params():
    return GrowthParams()


def lmp(name, customers, vulnerability=0.3):
    return LMPAgent(
        name=name, num_customers=customers, access_price=40.0,
        vulnerability=vulnerability,
    )


class TestGrowthParams:
    def test_negative_rates_rejected(self):
        with pytest.raises(MarketError):
            GrowthParams(csp_growth_rate=-0.1)


class TestCSPGrowth:
    def test_profitable_growth(self, params):
        agent = CSPAgent(name="x", demand=LinearDemand(), incumbency=0.2)
        grow_csp(agent, subscribers=0.5, profit=1.0, params=params)
        assert agent.incumbency > 0.2

    def test_capped_at_one(self, params):
        agent = CSPAgent(name="x", demand=LinearDemand(), incumbency=0.99)
        grow_csp(agent, subscribers=10.0, profit=1.0, params=params)
        assert agent.incumbency == 1.0

    def test_decay_without_profit(self, params):
        agent = CSPAgent(name="x", demand=LinearDemand(), incumbency=0.5)
        grow_csp(agent, subscribers=0.5, profit=-1.0, params=params)
        assert agent.incumbency < 0.5

    def test_floor(self, params):
        agent = CSPAgent(name="x", demand=LinearDemand(), incumbency=0.05)
        grow_csp(agent, subscribers=0.0, profit=-1.0, params=params)
        assert agent.incumbency >= 0.05

    def test_negative_subscribers_rejected(self, params):
        agent = CSPAgent(name="x", demand=LinearDemand())
        with pytest.raises(MarketError):
            grow_csp(agent, subscribers=-1.0, profit=1.0, params=params)


class TestLMPHardening:
    def test_profit_hardens(self, params):
        agent = lmp("x", 1.0, vulnerability=0.3)
        harden_lmp(agent, profit=1.0, params=params)
        assert agent.vulnerability < 0.3

    def test_loss_softens(self, params):
        agent = lmp("x", 1.0, vulnerability=0.3)
        harden_lmp(agent, profit=-1.0, params=params)
        assert agent.vulnerability > 0.3

    def test_floor_and_ceiling(self, params):
        hard = lmp("x", 1.0, vulnerability=0.02)
        harden_lmp(hard, profit=1.0, params=params)
        assert hard.vulnerability >= 0.02
        soft = lmp("y", 1.0, vulnerability=1.0)
        harden_lmp(soft, profit=-1.0, params=params)
        assert soft.vulnerability <= 1.0


class TestDrift:
    def test_mass_conserved(self, params):
        winners = lmp("w", 1.0)
        losers = lmp("l", 1.0)
        total = winners.num_customers + losers.num_customers
        drift_customers([winners, losers], {"w": 1.0, "l": -1.0}, params)
        assert winners.num_customers + losers.num_customers == pytest.approx(total)
        assert winners.num_customers > 1.0
        assert losers.num_customers < 1.0

    def test_no_drift_without_both_sides(self, params):
        a, b = lmp("a", 1.0), lmp("b", 1.0)
        drift_customers([a, b], {"a": 1.0, "b": 1.0}, params)
        assert a.num_customers == 1.0
        assert b.num_customers == 1.0

    def test_viability_floor(self, params):
        loser = lmp("l", 1.05e-3)
        winner = lmp("w", 1.0)
        for _ in range(50):
            drift_customers([winner, loser], {"w": 1.0, "l": -1.0}, params)
        assert loser.num_customers >= 1e-3 - 1e-12
