"""The observability layer must never perturb results.

Three guarantees from the design:

1. per-trial counter snapshots are identical whether a sweep ran
   serially or on a worker pool (fresh registry per trial scope) —
   except the cache-*locality* counters, which say where an answer
   came from (warm model memo vs LP solve vs cut short circuit) and so
   legitimately depend on what earlier trials warmed in the process;
   for those, the per-trial *total* of answers is what must match;
2. the sweep aggregate JSON is byte-identical with and without
   ``--metrics``/``--trace`` — telemetry is a sidecar, never part of
   the result records;
3. the ``perf`` report attributes (essentially all of) trial wall time
   to named phases.
"""

import multiprocessing
import os
import pathlib
import subprocess
import sys

import pytest

from repro import obs
from repro.obs.perf import load_jsonl, load_perf
from repro.sweeps.runner import run_sweep
from repro.sweeps.spec import Axis, SweepSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _micro_spec(repeats=2):
    return SweepSpec(axes=(Axis("preset", ("micro",)),), repeats=repeats)


def _trial_counters(path):
    """{(key, index): counters} from a metrics sidecar."""
    return {
        (line["key"], line["index"]): line["counters"]
        for line in load_jsonl(path)
        if line["kind"] == "trial"
    }


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # A sidecar path leaking in from the host environment would
    # instrument the "uninstrumented" control run.
    env.pop(obs.METRICS_ENV, None)
    env.pop(obs.TRACE_ENV, None)
    return env


def _run_cli(args, cwd):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=str(cwd), env=_cli_env(),
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestWorkerIndependence:
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_serial_and_pool_counters_identical(self, tmp_path):
        serial_m = tmp_path / "serial.jsonl"
        pool_m = tmp_path / "pool.jsonl"

        obs.configure(metrics_path=str(serial_m), propagate=False)
        serial = run_sweep("figure2", _micro_spec())
        obs.configure(metrics_path=str(pool_m), propagate=False)
        pooled = run_sweep("figure2", _micro_spec(), workers=2,
                           start_method="fork")

        assert serial.report_json() == pooled.report_json()
        a, b = _trial_counters(serial_m), _trial_counters(pool_m)
        assert set(a) == set(b) and len(a) == 2

        # Cache-locality counters record *where* an oracle answer came
        # from; the warm model caches are per process, so serial and
        # pool layouts may split the same queries differently.
        locality = {
            "mcf.solves", "mcf.warm_solves", "mcf.fallback_solves",
            "mcf.memo_hits", "mcf.cut_shortcircuits",
            "mcf.model_cache_hits", "mcf.model_cache_misses",
        }

        def answers(counters):
            """Total oracle answers, however they were served."""
            return sum(counters.get(name, 0) for name in (
                "mcf.solves", "mcf.memo_hits", "mcf.cut_shortcircuits",
            ))

        for key in a:
            stable_a = {n: v for n, v in a[key].items() if n not in locality}
            stable_b = {n: v for n, v in b[key].items() if n not in locality}
            assert stable_a == stable_b  # exact match outside locality
            # The same trial asks the same questions in every layout.
            assert answers(a[key]) == answers(b[key])
            assert answers(a[key]) > 0
            assert a[key]["trial.attempts"] == 1


class TestByteIdenticalAggregates:
    def test_sweep_json_unchanged_by_obs_flags(self, tmp_path):
        base = ["sweep", "--experiment", "figure2", "--preset", "micro",
                "--repeats", "2", "--json"]
        plain = _run_cli(base, tmp_path)
        instrumented = _run_cli(
            base + ["--metrics", str(tmp_path / "m.jsonl"),
                    "--trace", str(tmp_path / "t.jsonl")],
            tmp_path,
        )
        assert plain == instrumented
        # And the sidecars were actually written by the instrumented run.
        kinds = {line["kind"] for line in load_jsonl(tmp_path / "m.jsonl")}
        assert kinds == {"trial", "sweep"}

    def test_in_process_obs_does_not_change_records(self, tmp_path):
        plain = run_sweep("figure2", _micro_spec(repeats=1))
        obs.configure(metrics_path=str(tmp_path / "m.jsonl"), propagate=False)
        instrumented = run_sweep("figure2", _micro_spec(repeats=1))
        assert plain.rows() == instrumented.rows()
        assert plain.report_json() == instrumented.report_json()


class TestPerfAttribution:
    def test_attributes_at_least_90_percent_of_wall_time(self, tmp_path):
        # Start from a cold warm-model cache: a fully memo-served sweep
        # would legitimately never enter an mcf.solve span.
        from repro.netflow.model import model_cache

        model_cache().clear()
        metrics = tmp_path / "m.jsonl"
        obs.configure(metrics_path=str(metrics), propagate=False)
        run_sweep("figure2", _micro_spec())
        report = load_perf([metrics])
        assert len(report.trials) == 2
        assert report.attributed_fraction >= 0.90
        phase_names = {p.name for p in report.phases}
        assert "mcf.solve" in phase_names and "overhead" in phase_names

    def test_perf_cli_end_to_end(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        _run_cli(
            ["sweep", "--experiment", "figure2", "--preset", "micro",
             "--metrics", str(metrics)],
            tmp_path,
        )
        out = _run_cli(["perf", str(metrics)], tmp_path)
        header = out.splitlines()[0]
        assert header.startswith("perf —")
        attributed = float(header.rsplit("attributed", 1)[1].strip().rstrip("%"))
        assert attributed >= 90.0
