"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact (see DESIGN.md §4) and
*reports* its rows through the ``report`` fixture, which both prints them
(uncaptured, so they land in bench_output.txt) and saves them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys, request):
    """Call ``report(text)`` to emit a benchmark's result table."""
    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_file = RESULTS_DIR / f"{request.node.name}.txt"
        out_file.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {request.node.name} =====")
            print(text)

    return _report


@pytest.fixture(scope="session")
def tiny_zoo():
    from repro.topology.zoo import ZooConfig, build_zoo

    return build_zoo(ZooConfig.tiny())


@pytest.fixture(scope="session")
def tiny_workload(tiny_zoo):
    """Zoo + TM + truthful offers, shared across auction benchmarks."""
    from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo

    tm = traffic_for_zoo(tiny_zoo)
    offers = offers_for_zoo(tiny_zoo)
    return tiny_zoo, tm, offers
