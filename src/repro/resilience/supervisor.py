"""Supervised trial execution: deadlines, watchdog, quarantine, shutdown.

The PR-2 sweep pool assumes every trial terminates and every worker
survives.  At production scale neither holds: one hung MILP solve stalls
a shard forever, one segfaulting trial loses its worker, and retrying a
poison trial forever turns a sweep into a treadmill.  The
:class:`TrialSupervisor` wraps trial execution with four defenses:

1. **per-trial deadlines** — a worker-side ``SIGALRM`` interrupts
   Python-level overruns cleanly; a parent-side watchdog thread reading
   per-worker *heartbeat files* catches hard hangs (C code that never
   returns to the interpreter) and kills the worker;
2. **bounded respawn** — crashed or killed workers are replaced up to a
   respawn budget, and the trial they were running is retried;
3. **poison-trial quarantine** — a trial that times out or crashes its
   worker ``max_trial_attempts`` times (or raises a deterministic error
   after its in-worker retries) is appended to an append-only
   ``quarantine.jsonl`` with params, seed, and traceback, instead of
   being retried forever; re-runs skip quarantined trials;
4. **graceful SIGINT/SIGTERM shutdown** — stop dispatching, drain
   in-flight results (each is persisted by the runner's callback as it
   lands), notify the checkpoint, then raise
   :class:`~repro.exceptions.SweepInterrupted` so the sweep is
   resumable.

Every notable event becomes an :class:`IncidentRecord` in a structured
journal, surfaced through ``poc-repro sweep --report``.
"""

from __future__ import annotations

import json
import os
import pathlib
import queue as queue_mod
import signal
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import (
    SweepError,
    SweepInterrupted,
    TrialTimeoutError,
    WorkerCrashError,
)
from repro.resilience.policy import RetryPolicy

#: (index, resolved params, seed, key) — mirrors repro.sweeps.runner.
TrialTask = Tuple[int, Dict[str, object], int, str]

#: Incident kinds, in rough order of severity.
INCIDENT_KINDS = (
    "timeout",          # worker-side alarm fired
    "hang",             # watchdog killed a worker that ignored its alarm
    "crash",            # worker process died mid-trial
    "failure",          # trial raised after its in-worker retries
    "invalid",          # result failed the invariant suite
    "respawn",          # a replacement worker was started
    "quarantine",       # trial written to quarantine.jsonl
    "quarantine-skip",  # trial skipped because it was already quarantined
    "interrupt",        # SIGINT/SIGTERM graceful shutdown
    "store-corruption", # result store / checkpoint recovered from bad data
)


class _AlarmTimeout(BaseException):
    """Raised by the worker's SIGALRM handler.

    Deliberately *not* a :class:`ReproError` (nor even an ``Exception``)
    so it pierces both the in-worker retry policy and the generic
    trial-failure wrapping: a deadline overrun must surface as a timeout,
    never be retried in-place or misfiled as an ordinary trial error.
    """


@dataclass(frozen=True)
class IncidentRecord:
    """One supervision event: what happened, to which trial, and the outcome."""

    kind: str
    index: int  # trial index (-1 for sweep-level incidents)
    key: str  # content-addressed trial key ("" for sweep-level)
    attempt: int  # attempt number this incident belongs to (0 = n/a)
    wall_time_s: float  # elapsed wall time of the attempt (0 = n/a)
    disposition: str  # "retried" | "quarantined" | "warned" | "flushed" | ...
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise SweepError(
                f"unknown incident kind {self.kind!r}; expected {INCIDENT_KINDS}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "index": self.index,
            "key": self.key,
            "attempt": self.attempt,
            "wall_time_s": self.wall_time_s,
            "disposition": self.disposition,
            "detail": self.detail,
        }

    def format_line(self) -> str:
        where = f"trial {self.index}" if self.index >= 0 else "sweep"
        key = f" [{self.key[:12]}…]" if self.key else ""
        attempt = f" attempt {self.attempt}" if self.attempt else ""
        detail = f" — {self.detail}" if self.detail else ""
        return (
            f"{self.kind:<16} {where}{key}{attempt} -> "
            f"{self.disposition}{detail}"
        )


class QuarantineLog:
    """Append-only JSONL ledger of poison trials.

    One line per quarantined trial: the content-addressed key, the
    resolved params and seed (enough to reproduce it in isolation), the
    failure kind, attempt count, and the traceback.  Loading tolerates
    torn or corrupt lines exactly like the result store — a crash while
    appending can never brick the ledger.  ``path=None`` keeps the log
    in memory only (tests, ad-hoc sweeps without a store).
    """

    def __init__(self, path: Union[str, pathlib.Path, None]) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self._entries: List[Dict[str, object]] = []
        self._keys: Dict[str, Dict[str, object]] = {}
        self.corrupt_lines = 0
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_lines += 1
                    continue
                if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                    self._record(entry)
                else:
                    self.corrupt_lines += 1

    def _record(self, entry: Dict[str, object]) -> None:
        self._entries.append(entry)
        self._keys[entry["key"]] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def has(self, key: str) -> bool:
        return key in self._keys

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self._keys.get(key)

    def entries(self) -> Iterator[Dict[str, object]]:
        return iter(list(self._entries))

    def append(self, entry: Dict[str, object]) -> None:
        """Persist one quarantined trial (one fsynced line, like the store)."""
        if not isinstance(entry.get("key"), str):
            raise SweepError("quarantine entries need a string 'key'")
        if self.path is not None:
            line = json.dumps(entry, sort_keys=True, default=str)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self._record(dict(entry))


# -- worker side --------------------------------------------------------------


def _seed_worker_globals(trial_seed: int) -> None:
    """Pin *global* RNG state to the trial's derived seed.

    Trial functions are contractually required to draw randomness only
    from their explicit seed, but a stray ``np.random.*`` call in deep
    experiment code would otherwise make results depend on which worker
    (original or respawned) ran the trial.  Seeding the global streams
    per-trial makes every execution — serial, pooled, or after a
    supervisor respawn — byte-identical.
    """
    import random

    import numpy as np

    random.seed(trial_seed)
    np.random.seed(trial_seed % 2**32)


def _format_wall(wall_s: float) -> str:
    """Render a wall-clock stamp for incident records (reporting only —
    elapsed/deadline math never touches wall time)."""
    from datetime import datetime, timezone

    try:
        stamp = datetime.fromtimestamp(wall_s, tz=timezone.utc)
    except (OverflowError, OSError, ValueError):
        return f"at unix {wall_s:.0f}"
    return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")


def _write_heartbeat(path: str, payload: Dict[str, object]) -> None:
    """Atomically publish this worker's current state for the watchdog."""
    try:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        pass  # heartbeats are advisory; never kill a trial over one


def _read_heartbeat(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _worker_main(
    worker_id: int,
    experiment_name: str,
    retry: RetryPolicy,
    trial_timeout_s: Optional[float],
    heartbeat_path: str,
    task_queue,
    result_queue,
) -> None:
    """Worker loop: pull a task, run it under the alarm, report, repeat.

    Module-level (spawn-picklable).  The worker never dies of a trial
    failure — it reports and moves on; only a sentinel (or the parent's
    kill) ends it.  SIGINT/SIGTERM are ignored here: shutdown is the
    parent's call, delivered as a sentinel or a kill.
    """
    import traceback as tb_mod

    from repro.sweeps.runner import _run_trial_with_retry

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass

    use_alarm = trial_timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        def _on_alarm(_signum, _frame):
            raise _AlarmTimeout()

        signal.signal(signal.SIGALRM, _on_alarm)

    while True:
        task = task_queue.get()
        if task is None:
            _write_heartbeat(heartbeat_path, {"pid": os.getpid(), "busy": False})
            break
        index, _params, _seed, key = task
        _write_heartbeat(heartbeat_path, {
            "pid": os.getpid(), "busy": True, "index": index, "key": key,
            # Elapsed-time math uses the monotonic stamp (CLOCK_MONOTONIC is
            # shared across processes on the same boot, so the parent's
            # monotonic clock is directly comparable); the wall stamp is kept
            # purely for human-readable incident records — an NTP step or a
            # manual clock change must never look like a hung trial.
            "started_mono": time.monotonic(),
            "started_wall": time.time(),
        })
        started = time.monotonic()
        try:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, float(trial_timeout_s))
            try:
                # _run_trial_with_retry pins global RNG state per attempt,
                # so respawned workers reproduce results byte-identically.
                _index, record = _run_trial_with_retry(
                    experiment_name, task, retry
                )
            finally:
                if use_alarm:
                    signal.setitimer(signal.ITIMER_REAL, 0.0)
        except _AlarmTimeout:
            elapsed = time.monotonic() - started
            err = TrialTimeoutError(index, float(trial_timeout_s or 0.0),
                                    "worker-side alarm")
            result_queue.put(
                ("failure", worker_id, index, "timeout", repr(err), elapsed)
            )
        except Exception:
            elapsed = time.monotonic() - started
            result_queue.put(
                ("failure", worker_id, index, "failure",
                 tb_mod.format_exc(), elapsed)
            )
        else:
            elapsed = time.monotonic() - started
            result_queue.put(("result", worker_id, index, record, elapsed))
        _write_heartbeat(heartbeat_path, {"pid": os.getpid(), "busy": False})


# -- parent side --------------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side handle on one worker process."""

    process: object
    task_queue: object
    heartbeat_path: str
    busy_index: Optional[int] = None
    busy_since: float = 0.0  # parent monotonic clock at dispatch


@dataclass
class SupervisionOutcome:
    """Everything a supervised execution produced and endured."""

    records: Dict[int, Dict[str, object]] = field(default_factory=dict)
    incidents: List[IncidentRecord] = field(default_factory=list)
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    respawns: int = 0


class TrialSupervisor:
    """Executes trial tasks under deadlines, crash recovery, and quarantine.

    ``workers <= 1`` runs in-process (timeouts still enforced via
    ``SIGALRM`` when available); ``workers > 1`` runs a supervised
    process pool.  The supervisor is execution-only: caching, validation
    and persistence belong to the caller, wired in through ``on_result``
    — called in the parent as each result lands, returning ``True`` to
    keep the record or ``False`` if the caller disposed of it (e.g.
    validation quarantine).  ``on_result`` may raise to abort the run
    (strict validation); workers are then shut down cleanly.
    """

    def __init__(
        self,
        experiment_name: str,
        *,
        workers: int = 0,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        trial_timeout_s: Optional[float] = None,
        max_trial_attempts: int = 2,
        respawn_budget: int = 8,
        quarantine: Optional[QuarantineLog] = None,
        watchdog_grace_s: Optional[float] = None,
        poll_interval_s: float = 0.05,
        shutdown_grace_s: float = 5.0,
        on_result: Optional[Callable[[TrialTask, Dict[str, object], float], bool]] = None,
        on_interrupt: Optional[Callable[[int], None]] = None,
    ) -> None:
        if trial_timeout_s is not None and trial_timeout_s <= 0:
            raise SweepError(f"trial_timeout_s must be positive, got {trial_timeout_s}")
        if max_trial_attempts < 1:
            raise SweepError(f"max_trial_attempts must be >= 1, got {max_trial_attempts}")
        if respawn_budget < 0:
            raise SweepError(f"respawn_budget must be >= 0, got {respawn_budget}")
        self.experiment_name = experiment_name
        self.workers = workers
        self.start_method = start_method
        self.retry = retry or RetryPolicy(
            max_attempts=2, base_delay_s=0.0, max_delay_s=0.0, jitter=0.0
        )
        self.trial_timeout_s = trial_timeout_s
        self.max_trial_attempts = max_trial_attempts
        self.respawn_budget = respawn_budget
        self.quarantine = quarantine if quarantine is not None else QuarantineLog(None)
        self.watchdog_grace_s = (
            watchdog_grace_s
            if watchdog_grace_s is not None
            else max(2.0, 0.5 * (trial_timeout_s or 0.0))
        )
        self.poll_interval_s = poll_interval_s
        self.shutdown_grace_s = shutdown_grace_s
        self.on_result = on_result
        self.on_interrupt = on_interrupt

        self._stop_signal: Optional[int] = None
        #: Outcome of the most recent :meth:`run`, also available when the
        #: run ended in SweepInterrupted (the runner still wants the
        #: incident journal of an interrupted sweep).
        self.last_outcome: Optional[SupervisionOutcome] = None
        self._lock = threading.Lock()
        self._workers: Dict[int, _Worker] = {}
        # worker_id -> (overrun seconds, wall-clock trial start or None).
        # The wall stamp feeds the human-readable incident detail only.
        self._hung: Dict[int, Tuple[float, Optional[float]]] = {}
        self._watchdog_stop = threading.Event()

    # -- shared bookkeeping ---------------------------------------------------

    def _incident(self, outcome: SupervisionOutcome, **kwargs) -> IncidentRecord:
        record = IncidentRecord(**kwargs)
        outcome.incidents.append(record)
        return record

    def _quarantine_trial(
        self,
        outcome: SupervisionOutcome,
        task: TrialTask,
        kind: str,
        traceback_text: str,
        attempts: int,
        elapsed: float,
    ) -> None:
        index, params, seed, key = task
        entry = {
            "key": key,
            "experiment": self.experiment_name,
            "index": index,
            "params": dict(params),
            "seed": seed,
            "kind": kind,
            "attempts": attempts,
            "wall_time_s": round(elapsed, 3),
            "traceback": traceback_text,
        }
        self.quarantine.append(entry)
        outcome.quarantined.append(entry)
        self._incident(
            outcome, kind="quarantine", index=index, key=key, attempt=attempts,
            wall_time_s=round(elapsed, 3), disposition="quarantined",
            detail=f"after {kind}",
        )

    def _deliver(
        self,
        outcome: SupervisionOutcome,
        task: TrialTask,
        record: Dict[str, object],
        elapsed: float,
    ) -> None:
        keep = True
        if self.on_result is not None:
            keep = self.on_result(task, record, elapsed)
        if keep:
            outcome.records[task[0]] = record

    # -- signal handling ------------------------------------------------------

    def _install_signal_handlers(self):
        """SIGINT/SIGTERM → graceful drain.  Main-thread only; no-op elsewhere."""
        if threading.current_thread() is not threading.main_thread():
            return None

        def _on_signal(signum, _frame):
            self._stop_signal = signum

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _on_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        if not previous:
            return
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _interrupt(self, outcome: SupervisionOutcome, remaining: int) -> None:
        signum = self._stop_signal or signal.SIGINT
        name = signal.Signals(signum).name if signum in iter(signal.Signals) else str(signum)
        self._incident(
            outcome, kind="interrupt", index=-1, key="", attempt=0,
            wall_time_s=0.0, disposition="flushed",
            detail=f"{name}: {remaining} trial(s) left unfinished",
        )
        if self.on_interrupt is not None:
            self.on_interrupt(remaining)
        raise SweepInterrupted(
            f"sweep stopped by {name} with {remaining} trial(s) unfinished; "
            "completed trials are in the result store — re-run to resume"
        )

    # -- public entry ---------------------------------------------------------

    def run(self, tasks: List[TrialTask]) -> SupervisionOutcome:
        """Execute every task; return records, incidents, and quarantines.

        Tasks already present in the quarantine log are skipped with a
        ``quarantine-skip`` incident (poison is poison until the log is
        cleared).  Raises :class:`SweepInterrupted` on SIGINT/SIGTERM
        after draining, :class:`InvariantViolation` if ``on_result``
        escalates, and :class:`SweepError` when the respawn budget is
        exhausted.
        """
        outcome = SupervisionOutcome()
        self.last_outcome = outcome
        runnable: List[TrialTask] = []
        for task in tasks:
            index, _params, _seed, key = task
            if self.quarantine.has(key):
                self._incident(
                    outcome, kind="quarantine-skip", index=index, key=key,
                    attempt=0, wall_time_s=0.0, disposition="skipped",
                    detail="already quarantined; clear quarantine.jsonl to retry",
                )
            else:
                runnable.append(task)
        if not runnable:
            return outcome

        self._stop_signal = None
        previous = self._install_signal_handlers()
        try:
            if self.workers <= 1:
                self._run_serial(runnable, outcome)
            else:
                self._run_pool(runnable, outcome)
        finally:
            self._restore_signal_handlers(previous)
        return outcome

    # -- serial supervised execution ------------------------------------------

    def _run_serial(self, tasks: List[TrialTask], outcome: SupervisionOutcome) -> None:
        from repro.sweeps.runner import _run_trial_with_retry

        use_alarm = (
            self.trial_timeout_s is not None
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        previous_alarm = None
        if use_alarm:
            def _on_alarm(_signum, _frame):
                raise _AlarmTimeout()

            previous_alarm = signal.signal(signal.SIGALRM, _on_alarm)

        try:
            pending: Deque[TrialTask] = deque(tasks)
            attempts: Dict[int, int] = {}
            while pending:
                if self._stop_signal is not None:
                    self._interrupt(outcome, remaining=len(pending))
                task = pending.popleft()
                index, _params, _seed, key = task
                attempts[index] = attempts.get(index, 0) + 1
                started = time.monotonic()
                try:
                    if use_alarm:
                        signal.setitimer(
                            signal.ITIMER_REAL, float(self.trial_timeout_s)
                        )
                    try:
                        _idx, record = _run_trial_with_retry(
                            self.experiment_name, task, self.retry
                        )
                    finally:
                        if use_alarm:
                            signal.setitimer(signal.ITIMER_REAL, 0.0)
                except _AlarmTimeout:
                    elapsed = time.monotonic() - started
                    err = TrialTimeoutError(
                        index, float(self.trial_timeout_s or 0.0), "in-process alarm"
                    )
                    self._after_failure(
                        outcome, task, "timeout", repr(err), elapsed,
                        attempts[index], pending,
                    )
                except Exception:
                    import traceback as tb_mod

                    elapsed = time.monotonic() - started
                    self._after_failure(
                        outcome, task, "failure", tb_mod.format_exc(), elapsed,
                        attempts[index], pending,
                    )
                else:
                    elapsed = time.monotonic() - started
                    self._deliver(outcome, task, record, elapsed)
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous_alarm)

    def _after_failure(
        self,
        outcome: SupervisionOutcome,
        task: TrialTask,
        kind: str,
        traceback_text: str,
        elapsed: float,
        attempt: int,
        requeue: Deque[TrialTask],
    ) -> None:
        """Common disposition logic: retry transient kinds, quarantine poison.

        Deterministic trial errors (``failure``) already consumed their
        in-worker retries, so they quarantine immediately; timeouts,
        hangs, and crashes get ``max_trial_attempts`` tries before the
        trial is declared poison.
        """
        index, _params, _seed, key = task
        transient = kind in ("timeout", "hang", "crash")
        if transient and attempt < self.max_trial_attempts:
            self._incident(
                outcome, kind=kind, index=index, key=key, attempt=attempt,
                wall_time_s=round(elapsed, 3), disposition="retried",
                detail=traceback_text.strip().splitlines()[-1] if traceback_text else "",
            )
            requeue.appendleft(task)
            return
        self._incident(
            outcome, kind=kind, index=index, key=key, attempt=attempt,
            wall_time_s=round(elapsed, 3), disposition="quarantined",
            detail=traceback_text.strip().splitlines()[-1] if traceback_text else "",
        )
        self._quarantine_trial(outcome, task, kind, traceback_text, attempt, elapsed)

    # -- pooled supervised execution ------------------------------------------

    def _spawn_worker(self, ctx, worker_id: int, result_queue, hb_dir: str) -> _Worker:
        task_queue = ctx.Queue()
        heartbeat_path = os.path.join(hb_dir, f"worker-{worker_id}.hb")
        process = ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self.experiment_name, self.retry,
                self.trial_timeout_s, heartbeat_path, task_queue, result_queue,
            ),
            daemon=True,
            name=f"sweep-worker-{worker_id}",
        )
        process.start()
        return _Worker(
            process=process, task_queue=task_queue, heartbeat_path=heartbeat_path
        )

    def _watchdog_loop(self) -> None:
        """Kill workers whose current trial has blown way past its deadline.

        The worker-side alarm is the first line of defense; the watchdog
        only fires when the worker cannot even service a signal (a hang
        inside native code), after ``trial_timeout_s + watchdog_grace_s``.
        Heartbeat files are the primary evidence (worker-reported start
        time); the parent-side dispatch clock is the fallback.
        """
        assert self.trial_timeout_s is not None
        deadline = self.trial_timeout_s + self.watchdog_grace_s
        while not self._watchdog_stop.wait(self.poll_interval_s):
            # Deadline math runs entirely on the monotonic clock: worker
            # heartbeats stamp started_mono (comparable across processes on
            # the same boot), so a wall-clock step (NTP, manual change)
            # cannot fire a spurious kill or mask a real hang.
            now_mono = time.monotonic()
            with self._lock:
                workers = dict(self._workers)
            for worker_id, worker in workers.items():
                if worker.busy_index is None or not worker.process.is_alive():
                    continue
                overrun: Optional[float] = None
                started_wall: Optional[float] = None
                beat = _read_heartbeat(worker.heartbeat_path)
                if beat and beat.get("busy") and isinstance(
                    beat.get("started_mono"), (int, float)
                ):
                    hb_elapsed = now_mono - float(beat["started_mono"])
                    if hb_elapsed > deadline:
                        overrun = hb_elapsed - self.trial_timeout_s
                        # Wall stamp is reporting-only: it names *when* the
                        # trial started for the incident record, never how
                        # long it has been running.
                        if isinstance(beat.get("started_wall"), (int, float)):
                            started_wall = float(beat["started_wall"])
                if overrun is None and worker.busy_since:
                    dispatch_elapsed = now_mono - worker.busy_since
                    if dispatch_elapsed > deadline:
                        overrun = dispatch_elapsed - self.trial_timeout_s
                if overrun is not None:
                    with self._lock:
                        self._hung[worker_id] = (overrun, started_wall)
                    worker.process.kill()

    def _run_pool(self, tasks: List[TrialTask], outcome: SupervisionOutcome) -> None:
        import multiprocessing

        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        n_workers = min(self.workers, len(tasks))
        result_queue = ctx.Queue()
        hb_dir = tempfile.mkdtemp(prefix="poc-sweep-hb-")
        undispatched: Deque[TrialTask] = deque(tasks)
        in_flight: Dict[int, TrialTask] = {}
        attempts: Dict[int, int] = {}
        self._hung = {}
        self._workers = {
            worker_id: self._spawn_worker(ctx, worker_id, result_queue, hb_dir)
            for worker_id in range(n_workers)
        }

        watchdog: Optional[threading.Thread] = None
        self._watchdog_stop.clear()
        if self.trial_timeout_s is not None:
            watchdog = threading.Thread(
                target=self._watchdog_loop, name="sweep-watchdog", daemon=True
            )
            watchdog.start()

        def feed() -> None:
            with self._lock:
                for worker in self._workers.values():
                    if not undispatched:
                        break
                    if worker.busy_index is not None or not worker.process.is_alive():
                        continue
                    task = undispatched.popleft()
                    worker.busy_index = task[0]
                    worker.busy_since = time.monotonic()
                    in_flight[task[0]] = task
                    worker.task_queue.put(task)

        def settle(worker_id: int, index: int) -> Optional[TrialTask]:
            with self._lock:
                worker = self._workers.get(worker_id)
                if worker is not None and worker.busy_index == index:
                    worker.busy_index = None
                    worker.busy_since = 0.0
            return in_flight.pop(index, None)

        def drain_one(timeout: float) -> bool:
            try:
                message = result_queue.get(timeout=timeout)
            except queue_mod.Empty:
                return False
            kind = message[0]
            if kind == "result":
                _k, worker_id, index, record, elapsed = message
                task = settle(worker_id, index)
                if task is not None:
                    attempts[index] = attempts.get(index, 0) + 1
                    self._deliver(outcome, task, record, elapsed)
            elif kind == "failure":
                _k, worker_id, index, failure_kind, tb_text, elapsed = message
                task = settle(worker_id, index)
                if task is not None:
                    attempts[index] = attempts.get(index, 0) + 1
                    self._after_failure(
                        outcome, task, failure_kind, tb_text, elapsed,
                        attempts[index], undispatched,
                    )
            return True

        def reap_dead() -> None:
            with self._lock:
                dead = [
                    (worker_id, worker)
                    for worker_id, worker in self._workers.items()
                    if not worker.process.is_alive()
                ]
            for worker_id, worker in dead:
                exitcode = worker.process.exitcode
                with self._lock:
                    hung = self._hung.pop(worker_id, None)
                    busy_index = worker.busy_index
                    del self._workers[worker_id]
                overrun = hung[0] if hung is not None else None
                failure_kind = "hang" if overrun is not None else "crash"
                if busy_index is not None and busy_index in in_flight:
                    task = in_flight.pop(busy_index)
                    attempts[busy_index] = attempts.get(busy_index, 0) + 1
                    if overrun is not None:
                        started_wall = hung[1] if hung is not None else None
                        started_at = (
                            "" if started_wall is None else
                            "; trial started "
                            + _format_wall(started_wall)
                        )
                        detail = repr(TrialTimeoutError(
                            busy_index, float(self.trial_timeout_s or 0.0),
                            f"watchdog killed worker {overrun:.1f}s past "
                            f"deadline{started_at}",
                        ))
                    else:
                        detail = repr(WorkerCrashError(busy_index, exitcode))
                    self._after_failure(
                        outcome, task, failure_kind, detail, 0.0,
                        attempts[busy_index], undispatched,
                    )
                if not (undispatched or in_flight):
                    continue  # nothing left to run; no point respawning
                if outcome.respawns >= self.respawn_budget:
                    raise SweepError(
                        f"respawn budget exhausted ({self.respawn_budget}); "
                        f"last worker died with exitcode={exitcode}"
                    )
                outcome.respawns += 1
                replacement_id = max(self._workers, default=worker_id) + 1
                replacement = self._spawn_worker(
                    ctx, replacement_id, result_queue, hb_dir
                )
                with self._lock:
                    self._workers[replacement_id] = replacement
                self._incident(
                    outcome, kind="respawn", index=busy_index if busy_index is not None else -1,
                    key="", attempt=0, wall_time_s=0.0, disposition="recovered",
                    detail=f"worker exitcode={exitcode} ({failure_kind}); "
                           f"respawn {outcome.respawns}/{self.respawn_budget}",
                )

        try:
            while undispatched or in_flight:
                if self._stop_signal is not None:
                    # Graceful drain: no new dispatch, flush what is in
                    # flight (bounded), then report and raise.
                    grace_until = time.monotonic() + self.shutdown_grace_s
                    while in_flight and time.monotonic() < grace_until:
                        drain_one(self.poll_interval_s)
                    self._interrupt(
                        outcome, remaining=len(undispatched) + len(in_flight)
                    )
                feed()
                drain_one(self.poll_interval_s)
                reap_dead()
        finally:
            self._watchdog_stop.set()
            if watchdog is not None:
                watchdog.join(timeout=2.0)
            with self._lock:
                workers = dict(self._workers)
                self._workers = {}
            for worker in workers.values():
                try:
                    worker.task_queue.put_nowait(None)
                except Exception:
                    pass
            for worker in workers.values():
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
            result_queue.close()
            try:
                for name in os.listdir(hb_dir):
                    os.unlink(os.path.join(hb_dir, name))
                os.rmdir(hb_dir)
            except OSError:
                pass


def format_incidents(incidents: List[IncidentRecord]) -> str:
    """The incident journal as text, for ``sweep --report``."""
    if not incidents:
        return "supervision: no incidents"
    lines = [f"supervision: {len(incidents)} incident(s)"]
    lines.extend(f"  {incident.format_line()}" for incident in incidents)
    counts: Dict[str, int] = {}
    for incident in incidents:
        counts[incident.kind] = counts.get(incident.kind, 0) + 1
    summary = "  ".join(f"{kind}={count}" for kind, count in sorted(counts.items()))
    lines.append(f"by kind: {summary}")
    return "\n".join(lines)
