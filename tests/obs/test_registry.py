"""MetricsRegistry: counters, gauges, histograms, canonical snapshots."""

import json
import math

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry, NullRegistry
from repro.obs.registry import NULL_REGISTRY


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("mcf.solves")
        reg.inc("mcf.solves", 2)
        assert reg.counter("mcf.solves") == 3

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("never") == 0.0

    def test_integral_counters_snapshot_as_ints(self):
        reg = MetricsRegistry()
        reg.inc("a", 2.0)
        reg.inc("b", 0.5)
        counters = reg.counters()
        assert counters["a"] == 2 and isinstance(counters["a"], int)
        assert counters["b"] == 0.5 and isinstance(counters["b"], float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "7", True])
    def test_rejects_non_finite_and_non_numeric(self, bad):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().inc("x", bad)


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool.workers", 2)
        reg.set_gauge("pool.workers", 4)
        assert reg.gauge("pool.workers") == 4.0

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge("never") is None

    def test_rejects_nan(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().set_gauge("g", float("nan"))


class TestHistograms:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        reg.observe("t", 0.002, buckets=(0.001, 0.01, 0.1))
        reg.observe("t", 0.2, buckets=(0.001, 0.01, 0.1))
        hist = reg.snapshot()["histograms"]["t"]
        assert hist["counts"] == [0, 1, 0, 1]  # overflow bin gets 0.2
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.202)

    def test_bucket_bounds_fixed_at_first_observation(self):
        reg = MetricsRegistry()
        reg.observe("t", 0.5)
        with pytest.raises(ObservabilityError, match="was created with buckets"):
            reg.observe("t", 0.5, buckets=(1.0, 2.0))

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(set(DEFAULT_TIME_BUCKETS))

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            MetricsRegistry().observe("t", 1.0, buckets=(2.0, 1.0))


class TestSnapshots:
    def test_to_json_is_canonical(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("z"), a.inc("a"), a.set_gauge("g", 1.5)
        b.set_gauge("g", 1.5), b.inc("a"), b.inc("z")
        assert a.to_json() == b.to_json()
        # Strict parse round-trips (no NaN can ever be present).
        parsed = json.loads(
            a.to_json(), parse_constant=lambda t: pytest.fail(f"NaN leaked: {t}")
        )
        assert parsed["counters"] == {"a": 1, "z": 1}

    def test_reset_empties(self):
        reg = MetricsRegistry()
        reg.inc("c"), reg.set_gauge("g", 1), reg.observe("h", 0.1)
        assert not reg.empty
        reg.reset()
        assert reg.empty


class TestMerge:
    def test_counters_add_gauges_overwrite_histograms_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1), b.inc("c", 2)
        a.set_gauge("g", 1), b.set_gauge("g", 9)
        a.observe("h", 0.002, buckets=(0.01,))
        b.observe("h", 0.002, buckets=(0.01,))
        a.merge(b)
        assert a.counter("c") == 3
        assert a.gauge("g") == 9.0
        assert a.snapshot()["histograms"]["h"]["count"] == 2

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0, buckets=(1.0,))
        b.observe("h", 1.0, buckets=(2.0,))
        with pytest.raises(ObservabilityError, match="bucket mismatch"):
            a.merge(b)


class TestNullRegistry:
    def test_all_writes_are_noops(self):
        reg = NullRegistry()
        reg.inc("c", 5)
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.5)
        assert reg.empty
        assert reg.counter("c") == 0.0

    def test_shared_null_never_accumulates_even_bad_values(self):
        # The null registry must not even validate — zero work when off.
        NULL_REGISTRY.inc("c", float("nan"))
        NULL_REGISTRY.observe("h", math.inf)
        assert NULL_REGISTRY.empty
        assert not NULL_REGISTRY.enabled
