"""Double-entry bookkeeping for the market simulator.

Every money movement in the ecosystem is a :class:`Transfer` between two
:class:`Account` objects.  Invariants enforced here, relied on by the
break-even benchmarks:

- transfers have positive amounts and distinct endpoints;
- the sum of all balances is always zero (money is conserved);
- an account's balance equals its credits minus its debits, replayable
  from the journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import LedgerError


@dataclass(frozen=True)
class Account:
    """A named account with an owner class (consumer/csp/lmp/poc/bp/isp)."""

    name: str
    owner_kind: str

    def __post_init__(self) -> None:
        if not self.name:
            raise LedgerError("account name cannot be empty")
        if self.owner_kind not in ("consumer", "csp", "lmp", "poc", "bp", "isp"):
            raise LedgerError(f"unknown owner kind {self.owner_kind!r}")


@dataclass(frozen=True)
class Transfer:
    """One journal entry: money moved from ``src`` to ``dst``."""

    epoch: int
    src: str
    dst: str
    amount: float
    memo: str

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise LedgerError(f"transfer amount must be positive: {self.amount}")
        if self.src == self.dst:
            raise LedgerError(f"transfer to self: {self.src}")


class Ledger:
    """The journal plus running balances."""

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {}
        self._balances: Dict[str, float] = {}
        self._journal: List[Transfer] = []

    def open_account(self, name: str, owner_kind: str) -> Account:
        if name in self._accounts:
            raise LedgerError(f"account already exists: {name}")
        account = Account(name=name, owner_kind=owner_kind)
        self._accounts[name] = account
        self._balances[name] = 0.0
        return account

    def has_account(self, name: str) -> bool:
        return name in self._accounts

    def account(self, name: str) -> Account:
        try:
            return self._accounts[name]
        except KeyError:
            raise LedgerError(f"no such account: {name}") from None

    def transfer(self, epoch: int, src: str, dst: str, amount: float, memo: str) -> Transfer:
        """Move money; zero-amount requests are rejected, not silently dropped."""
        if src not in self._accounts:
            raise LedgerError(f"unknown source account: {src}")
        if dst not in self._accounts:
            raise LedgerError(f"unknown destination account: {dst}")
        entry = Transfer(epoch=epoch, src=src, dst=dst, amount=amount, memo=memo)
        self._journal.append(entry)
        self._balances[src] -= amount
        self._balances[dst] += amount
        return entry

    def balance(self, name: str) -> float:
        if name not in self._balances:
            raise LedgerError(f"no such account: {name}")
        return self._balances[name]

    def balances_by_kind(self, owner_kind: str) -> Dict[str, float]:
        return {
            name: self._balances[name]
            for name, acct in sorted(self._accounts.items())
            if acct.owner_kind == owner_kind
        }

    @property
    def total_balance(self) -> float:
        """Always ~0; the conservation invariant."""
        return sum(self._balances.values())

    @property
    def num_transfers(self) -> int:
        return len(self._journal)

    def journal(
        self,
        *,
        epoch: Optional[int] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        memo_prefix: Optional[str] = None,
    ) -> List[Transfer]:
        """Filtered view of the journal."""
        out = []
        for t in self._journal:
            if epoch is not None and t.epoch != epoch:
                continue
            if src is not None and t.src != src:
                continue
            if dst is not None and t.dst != dst:
                continue
            if memo_prefix is not None and not t.memo.startswith(memo_prefix):
                continue
            out.append(t)
        return out

    def inflow(self, name: str, *, epoch: Optional[int] = None, memo_prefix: Optional[str] = None) -> float:
        return sum(t.amount for t in self.journal(dst=name, epoch=epoch, memo_prefix=memo_prefix))

    def outflow(self, name: str, *, epoch: Optional[int] = None, memo_prefix: Optional[str] = None) -> float:
        return sum(t.amount for t in self.journal(src=name, epoch=epoch, memo_prefix=memo_prefix))

    def net_flow(self, name: str, *, epoch: Optional[int] = None) -> float:
        """Inflow minus outflow over an epoch (or all time)."""
        return self.inflow(name, epoch=epoch) - self.outflow(name, epoch=epoch)

    def replay_balances(self) -> Dict[str, float]:
        """Recompute balances from the journal (audit helper)."""
        balances = {name: 0.0 for name in self._accounts}
        for t in self._journal:
            balances[t.src] -= t.amount
            balances[t.dst] += t.amount
        return balances

    def audit(self) -> None:
        """Raise :class:`LedgerError` if running balances drifted from the journal."""
        replayed = self.replay_balances()
        for name, balance in self._balances.items():
            if abs(balance - replayed[name]) > 1e-6:
                raise LedgerError(
                    f"balance drift on {name}: running={balance} journal={replayed[name]}"
                )
        if abs(self.total_balance) > 1e-6:
            raise LedgerError(f"money not conserved: total={self.total_balance}")
