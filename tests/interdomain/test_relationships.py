"""Tests for the AS relationship graph."""

import pytest

from repro.exceptions import PolicyError
from repro.interdomain.relationships import ASGraph, Relationship, small_internet


class TestRelationship:
    def test_inverses(self):
        assert Relationship.CUSTOMER.inverse is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse is Relationship.CUSTOMER
        assert Relationship.PEER.inverse is Relationship.PEER


class TestASGraph:
    def test_add_and_kind(self):
        g = ASGraph()
        g.add_as("x", "tier1")
        assert g.kind("x") == "tier1"

    def test_duplicate_rejected(self):
        g = ASGraph()
        g.add_as("x")
        with pytest.raises(PolicyError):
            g.add_as("x")

    def test_unknown_kind_rejected(self):
        g = ASGraph()
        with pytest.raises(PolicyError):
            g.add_as("x", "alien")

    def test_link_symmetry(self):
        g = ASGraph()
        g.add_as("stub")
        g.add_as("isp", "transit")
        g.link("stub", "isp", Relationship.PROVIDER)
        assert g.relationship("stub", "isp") is Relationship.PROVIDER
        assert g.relationship("isp", "stub") is Relationship.CUSTOMER

    def test_peer_symmetry(self):
        g = ASGraph()
        g.add_as("a", "transit")
        g.add_as("b", "transit")
        g.link("a", "b", Relationship.PEER)
        assert g.relationship("a", "b") is Relationship.PEER
        assert g.relationship("b", "a") is Relationship.PEER

    def test_self_link_rejected(self):
        g = ASGraph()
        g.add_as("a")
        with pytest.raises(PolicyError):
            g.link("a", "a", Relationship.PEER)

    def test_duplicate_link_rejected(self):
        g = ASGraph()
        g.add_as("a")
        g.add_as("b")
        g.link("a", "b", Relationship.PEER)
        with pytest.raises(PolicyError):
            g.link("b", "a", Relationship.PEER)

    def test_role_queries(self):
        g = small_internet()
        assert "trA" in g.providers_of("eyeball1")
        assert "eyeball1" in g.customers_of("trA")
        assert "trB" in g.peers_of("trA")
        assert g.relationship("eyeball1", "eyeball2") is None


class TestSmallInternet:
    def test_shape(self):
        g = small_internet()
        assert len(g) == 10
        assert g.kind("T1a") == "tier1"
        assert g.kind("content1") == "content"

    def test_multihomed_content(self):
        g = small_internet()
        assert sorted(g.providers_of("content1")) == ["trA", "trC"]

    def test_hierarchy_clean(self):
        assert small_internet().validate_hierarchy() == []

    def test_cycle_detection(self):
        g = ASGraph()
        for name in ("a", "b", "c"):
            g.add_as(name, "transit")
        g.link("a", "b", Relationship.PROVIDER)   # b provides a
        g.link("b", "c", Relationship.PROVIDER)   # c provides b
        g.link("c", "a", Relationship.PROVIDER)   # a provides c: cycle!
        issues = g.validate_hierarchy()
        assert issues
        assert "cycle" in issues[0]
