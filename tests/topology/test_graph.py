"""Tests for the Network/Node/Link graph model."""

import pytest

from repro.exceptions import (
    DuplicateIdError,
    TopologyError,
    UnknownLinkError,
    UnknownNodeError,
)
from repro.topology.geo import GeoPoint
from repro.topology.graph import Link, Network, Node

from tests.conftest import make_node, square_network


class TestNode:
    def test_distance_between_nodes(self):
        a = make_node("a", 0.0, 0.0)
        b = make_node("b", 0.0, 1.0)
        assert a.distance_km(b) == pytest.approx(111.19, rel=0.01)

    def test_distance_requires_coordinates(self):
        a = Node(id="a")
        b = make_node("b")
        with pytest.raises(TopologyError):
            a.distance_km(b)


class TestLinkValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link(id="x", u="A", v="A", capacity_gbps=1.0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(TopologyError):
            Link(id="x", u="A", v="B", capacity_gbps=0.0)
        with pytest.raises(TopologyError):
            Link(id="x", u="A", v="B", capacity_gbps=-5.0)

    def test_negative_length_rejected(self):
        with pytest.raises(TopologyError):
            Link(id="x", u="A", v="B", capacity_gbps=1.0, length_km=-1.0)

    def test_other_endpoint(self):
        link = Link(id="x", u="A", v="B", capacity_gbps=1.0)
        assert link.other("A") == "B"
        assert link.other("B") == "A"
        with pytest.raises(TopologyError):
            link.other("C")

    def test_joins(self):
        link = Link(id="x", u="A", v="B", capacity_gbps=1.0)
        assert link.joins("A", "B")
        assert link.joins("B", "A")
        assert not link.joins("A", "C")


class TestNetworkConstruction:
    def test_add_and_lookup(self, square):
        assert len(square) == 4
        assert square.num_links == 5
        assert square.node("A").id == "A"
        assert square.link("AC").capacity_gbps == 5.0

    def test_duplicate_node_rejected(self, square):
        with pytest.raises(DuplicateIdError):
            square.add_node(make_node("A"))

    def test_duplicate_link_rejected(self, square):
        with pytest.raises(DuplicateIdError):
            square.add_link(Link(id="AB", u="A", v="B", capacity_gbps=1.0))

    def test_link_requires_existing_endpoints(self, square):
        with pytest.raises(UnknownNodeError):
            square.add_link(Link(id="AZ", u="A", v="Z", capacity_gbps=1.0))

    def test_ensure_node_idempotent(self, square):
        original = square.node("A")
        returned = square.ensure_node(make_node("A", 5.0, 5.0))
        assert returned is original

    def test_unknown_lookups_raise(self, square):
        with pytest.raises(UnknownNodeError):
            square.node("Z")
        with pytest.raises(UnknownLinkError):
            square.link("ZZ")

    def test_parallel_links_allowed(self, square):
        square.add_link(Link(id="AB2", u="A", v="B", capacity_gbps=7.0))
        assert len(square.links_between("A", "B")) == 2

    def test_remove_link(self, square):
        removed = square.remove_link("AC")
        assert removed.id == "AC"
        assert not square.has_link("AC")
        assert "C" not in {l.other("A") for l in square.incident_links("A")} or True
        with pytest.raises(UnknownLinkError):
            square.remove_link("AC")


class TestNetworkQueries:
    def test_neighbors(self, square):
        assert square.neighbors("A") == {"B", "C", "D"}

    def test_degree_counts_parallels(self, square):
        assert square.degree("A") == 3
        square.add_link(Link(id="AB2", u="A", v="B", capacity_gbps=1.0))
        assert square.degree("A") == 4

    def test_is_connected(self, square):
        assert square.is_connected()

    def test_disconnected_after_cuts(self, square):
        for lid in ("AB", "DA", "AC"):
            square.remove_link(lid)
        assert not square.is_connected()

    def test_empty_network_is_connected(self):
        assert Network().is_connected()

    def test_total_capacity(self, square):
        assert square.total_capacity_gbps() == pytest.approx(45.0)


class TestDerivedViews:
    def test_restricted_to_links(self, square):
        sub = square.restricted_to_links(["AB", "BC"])
        assert sub.num_links == 2
        assert len(sub) == 4  # nodes are kept
        assert not sub.is_connected()

    def test_restricted_unknown_link(self, square):
        with pytest.raises(UnknownLinkError):
            square.restricted_to_links(["nope"])

    def test_restriction_does_not_mutate_original(self, square):
        square.restricted_to_links(["AB"])
        assert square.num_links == 5

    def test_without_links(self, square):
        sub = square.without_links(["AC"])
        assert sub.num_links == 4
        assert square.num_links == 5

    def test_to_networkx_roundtrip(self, square):
        g = square.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 5
        assert g["A"]["C"]["AC"]["capacity"] == 5.0
