"""Tests for the fluid-flow transfer timeline."""

import pytest

from repro.exceptions import FlowError
from repro.dataplane.flows import Flow
from repro.dataplane.shaping import DiscriminatoryEdge
from repro.dataplane.sim import DataplaneSim
from repro.dataplane.timeline import Transfer, simulate_transfers

from tests.conftest import square_network


@pytest.fixture
def sim():
    s = DataplaneSim(square_network())
    s.attach("flix", "A", access_gbps=8.0)
    s.attach("tube", "B", access_gbps=8.0)
    s.attach("eyeballs", "C", access_gbps=6.0)
    return s


def transfer(fid, src, volume, arrival=0.0, demand=100.0, **kwargs):
    return Transfer(
        flow=Flow(id=fid, source_party=src, dest_party="eyeballs",
                  demand_gbps=demand, **kwargs),
        arrival_s=arrival,
        volume_gbit=volume,
    )


class TestSingleTransfer:
    def test_completion_is_volume_over_rate(self, sim):
        # Lone flow A->C: bottleneck 5G (backbone diagonal).
        result = simulate_transfers(sim, [transfer("t", "flix", volume=50.0)])
        assert result.completion("t") == pytest.approx(10.0)
        assert result.duration("t") == pytest.approx(10.0)
        assert result.outcomes["t"].mean_rate_gbps == pytest.approx(5.0)

    def test_arrival_offset(self, sim):
        result = simulate_transfers(
            sim, [transfer("t", "flix", volume=50.0, arrival=7.0)]
        )
        assert result.completion("t") == pytest.approx(17.0)
        assert result.duration("t") == pytest.approx(10.0)

    def test_demand_cap_limits_rate(self, sim):
        result = simulate_transfers(
            sim, [transfer("t", "flix", volume=10.0, demand=2.0)]
        )
        assert result.duration("t") == pytest.approx(5.0)


class TestSharing:
    def test_concurrent_transfers_slow_each_other(self, sim):
        solo = simulate_transfers(sim, [transfer("a", "flix", volume=30.0)])
        shared = simulate_transfers(sim, [
            transfer("a", "flix", volume=30.0),
            transfer("b", "tube", volume=30.0),
        ])
        assert shared.duration("a") > solo.duration("a")

    def test_completion_frees_bandwidth(self, sim):
        # A small transfer finishes first; the big one then speeds up, so
        # its completion beats a permanent 50/50 split.
        result = simulate_transfers(sim, [
            transfer("small", "flix", volume=6.0),
            transfer("big", "tube", volume=60.0),
        ])
        # Shared eyeball access 6G: 3G each until small drains (t=2),
        # then big runs at its own bottleneck.
        assert result.completion("small") == pytest.approx(2.0)
        assert result.completion("big") < 60.0 / 3.0  # faster than no-release

    def test_staggered_arrivals(self, sim):
        result = simulate_transfers(sim, [
            transfer("first", "flix", volume=10.0, arrival=0.0),
            transfer("second", "tube", volume=10.0, arrival=100.0),
        ])
        # No overlap: both run solo.  flix's bottleneck is the 5G A-C
        # diagonal; tube's is the 6G eyeball access (B-C backbone is 10G).
        assert result.duration("first") == pytest.approx(10.0 / 5.0)
        assert result.completion("second") == pytest.approx(100.0 + 10.0 / 6.0)

    def test_makespan(self, sim):
        result = simulate_transfers(sim, [
            transfer("a", "flix", volume=10.0),
            transfer("b", "tube", volume=30.0),
        ])
        assert result.makespan() == pytest.approx(
            max(result.completion("a"), result.completion("b"))
        )


class TestThrottlingInTime:
    def test_throttled_download_takes_longer(self):
        net = square_network()
        neutral = DataplaneSim(net)
        neutral.attach("flix", "A", access_gbps=8.0)
        neutral.attach("tube", "B", access_gbps=8.0)
        neutral.attach("eyeballs", "C", access_gbps=6.0)

        throttling = DataplaneSim(square_network())
        throttling.attach("flix", "A", access_gbps=8.0)
        throttling.attach("tube", "B", access_gbps=8.0)
        throttling.attach(
            "eyeballs", "C", access_gbps=6.0,
            behavior=DiscriminatoryEdge(
                throttle_sources=frozenset({"tube"}), factor=0.25
            ),
        )
        # A persistent elephant from the favoured source keeps the edge
        # contended for vid's whole lifetime (with equal volumes, work
        # conservation would let the throttled flow catch up after the
        # other finished — the harm shows against sustained competition,
        # which is exactly the §2.4.2 own-video-service pattern).
        schedule = [
            transfer("vid", "tube", volume=30.0),
            transfer("other", "flix", volume=300.0),
        ]
        fair = simulate_transfers(neutral, schedule)
        unfair = simulate_transfers(throttling, schedule)
        # Fair: 3G each -> vid done in 10 s.  Throttled: 1.2G -> 25 s.
        assert fair.duration("vid") == pytest.approx(10.0)
        assert unfair.duration("vid") == pytest.approx(25.0)

    def test_blocked_transfer_never_completes(self):
        sim = DataplaneSim(square_network())
        sim.attach("flix", "A", access_gbps=8.0)
        sim.attach(
            "eyeballs", "C", access_gbps=6.0,
            behavior=DiscriminatoryEdge(blocked_sources=frozenset({"flix"})),
        )
        result = simulate_transfers(sim, [transfer("t", "flix", volume=1.0)])
        assert result.outcomes["t"].blocked
        assert result.completion("t") == float("inf")
        assert result.makespan() == 0.0


class TestValidation:
    def test_duplicate_ids(self, sim):
        with pytest.raises(FlowError):
            simulate_transfers(sim, [
                transfer("t", "flix", volume=1.0),
                transfer("t", "tube", volume=1.0),
            ])

    def test_transfer_validation(self, sim):
        with pytest.raises(FlowError):
            transfer("t", "flix", volume=0.0)
        with pytest.raises(FlowError):
            transfer("t", "flix", volume=1.0, arrival=-1.0)

    def test_empty_schedule(self, sim):
        result = simulate_transfers(sim, [])
        assert result.makespan() == 0.0
