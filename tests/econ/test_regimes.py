"""Tests for the NN and unilateral-UR regimes (§4.3–§4.4)."""

import pytest

from repro.econ.csp import CSP, optimal_price
from repro.econ.demand import (
    STANDARD_FAMILIES,
    ExponentialDemand,
    LinearDemand,
)
from repro.econ.neutrality import nn_outcome
from repro.econ.unilateral import optimal_unilateral_fee, unilateral_outcome
from repro.econ.welfare import social_welfare


def catalogue():
    return [CSP(name=name, demand=d) for name, d in STANDARD_FAMILIES.items()]


class TestNNOutcome:
    def test_prices_are_monopoly_prices(self):
        out = nn_outcome(catalogue())
        for csp in catalogue():
            assert out.prices[csp.name] == pytest.approx(optimal_price(csp.demand, 0.0))

    def test_welfare_is_sum(self):
        csps = catalogue()
        out = nn_outcome(csps)
        expected = sum(
            social_welfare(c.demand, optimal_price(c.demand, 0.0)) for c in csps
        )
        assert out.social_welfare == pytest.approx(expected)

    def test_revenue_positive(self):
        out = nn_outcome(catalogue())
        assert all(r > 0 for r in out.csp_revenues.values())
        assert out.total_csp_revenue == pytest.approx(sum(out.csp_revenues.values()))


class TestUnilateralFee:
    def test_linear_closed_form(self):
        # t* = v/2, p* = 3v/4 for linear demand.
        d = LinearDemand(v_max=20.0)
        assert optimal_unilateral_fee(d) == pytest.approx(10.0)
        assert optimal_price(d, 10.0) == pytest.approx(15.0)

    def test_exponential_closed_form(self):
        d = ExponentialDemand(scale=4.0)
        assert optimal_unilateral_fee(d) == pytest.approx(4.0)

    def test_numeric_families_maximize_lmp_revenue(self):
        for name, d in STANDARD_FAMILIES.items():
            t_star = optimal_unilateral_fee(d)
            best = t_star * d.demand(optimal_price(d, t_star))
            for t in (t_star * 0.7, t_star * 0.9, t_star * 1.1, t_star * 1.4):
                alt = t * d.demand(optimal_price(d, t))
                assert alt <= best + 1e-6, name


class TestUROutcome:
    def test_double_marginalization_raises_prices(self):
        csps = catalogue()
        nn = nn_outcome(csps)
        ur = unilateral_outcome(csps)
        for name in nn.prices:
            assert ur.prices[name] >= nn.prices[name] - 1e-9

    def test_welfare_ranking(self):
        """The paper's core §4.4 result: fees strictly decrease welfare
        (weakly on the Pareto corner case, documented in EXPERIMENTS.md)."""
        csps = catalogue()
        nn = nn_outcome(csps)
        ur = unilateral_outcome(csps)
        assert ur.social_welfare <= nn.social_welfare + 1e-9
        # Strict for the families satisfying Lemma 1's hypotheses.
        smooth = [c for c in csps if c.name in ("linear", "exponential", "logit")]
        assert unilateral_outcome(smooth).social_welfare < nn_outcome(smooth).social_welfare

    def test_fees_positive(self):
        ur = unilateral_outcome(catalogue())
        assert all(t > 0 for t in ur.fees.values())

    def test_lmp_extracts_revenue(self):
        ur = unilateral_outcome(catalogue())
        assert ur.total_fee_revenue > 0
        for name, rev in ur.lmp_fee_revenues.items():
            assert rev == pytest.approx(
                ur.fees[name]
                * STANDARD_FAMILIES[name].demand(ur.prices[name])
            )

    def test_csp_revenue_lower_than_nn(self):
        csps = catalogue()
        nn = nn_outcome(csps)
        ur = unilateral_outcome(csps)
        # Fees transfer and destroy CSP margin: each CSP is worse off.
        for name in nn.csp_revenues:
            assert ur.csp_revenues[name] <= nn.csp_revenues[name] + 1e-9

    def test_consumer_welfare_falls(self):
        csps = catalogue()
        assert (
            unilateral_outcome(csps).consumer_welfare
            <= nn_outcome(csps).consumer_welfare + 1e-9
        )
