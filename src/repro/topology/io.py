"""GraphML import/export for Network objects.

TopologyZoo publishes operator maps as GraphML.  This module lets a user
with the real dataset feed it straight into the BP-formation pipeline in
place of the synthetic generator, and lets any Network round-trip to
GraphML for inspection in standard tooling.

The importer is tolerant by design: TopologyZoo files vary wildly in
attribute names, so coordinates are looked up under several conventional
keys and missing capacities fall back to a default wave size.
"""

from __future__ import annotations

import itertools
import pathlib
from typing import Dict, Optional, Union

import networkx as nx

from repro.exceptions import TopologyError
from repro.topology.geo import GeoPoint, haversine_km
from repro.topology.graph import Link, Network, Node

#: Attribute keys, in priority order, where node coordinates may live.
_LAT_KEYS = ("Latitude", "latitude", "lat", "y")
_LON_KEYS = ("Longitude", "longitude", "lon", "x")
#: Keys where a link capacity (Gbps) may live.
_CAP_KEYS = ("capacity", "Capacity", "LinkSpeedRaw", "bandwidth")
#: Capacity assumed when the file carries none.
DEFAULT_CAPACITY_GBPS = 10.0


def _first_float(attrs: Dict, keys) -> Optional[float]:
    for key in keys:
        if key in attrs:
            try:
                return float(attrs[key])
            except (TypeError, ValueError):
                continue
    return None


def _coerce_point(attrs: Dict) -> Optional[GeoPoint]:
    lat = _first_float(attrs, _LAT_KEYS)
    lon = _first_float(attrs, _LON_KEYS)
    if lat is None or lon is None:
        return None
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        return None
    return GeoPoint(lat, lon)


def network_from_graphml(
    path: Union[str, pathlib.Path],
    *,
    name: Optional[str] = None,
    owner: Optional[str] = None,
    default_capacity_gbps: float = DEFAULT_CAPACITY_GBPS,
) -> Network:
    """Load a GraphML operator map as a Network.

    Node ids become node ids (labels are kept as the ``city`` attribute
    when present); parallel edges are preserved; self-loops (which some
    zoo files contain) are dropped.  Edge lengths are taken from node
    coordinates when both endpoints have them, else 0.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TopologyError(f"no such GraphML file: {path}")
    try:
        g = nx.read_graphml(path)
    except Exception as exc:
        raise TopologyError(f"cannot parse GraphML {path}: {exc}") from exc

    net = Network(name=name or path.stem)
    for node_id, attrs in g.nodes(data=True):
        label = attrs.get("label") or attrs.get("Label")
        net.add_node(
            Node(
                id=str(node_id),
                point=_coerce_point(attrs),
                city=str(label) if label else None,
            )
        )

    counter = itertools.count()
    edge_iter = (
        g.edges(data=True, keys=False)
        if isinstance(g, (nx.MultiGraph, nx.MultiDiGraph))
        else g.edges(data=True)
    )
    for u, v, attrs in edge_iter:
        if u == v:
            continue  # some zoo files contain self-loops
        capacity = _first_float(attrs, _CAP_KEYS)
        if capacity is None or capacity <= 0:
            capacity = default_capacity_gbps
        elif capacity > 1e6:
            # LinkSpeedRaw is in bits/s in zoo files; convert to Gbps.
            capacity = capacity / 1e9
        nu, nv = net.node(str(u)), net.node(str(v))
        length = 0.0
        if nu.point is not None and nv.point is not None:
            length = haversine_km(nu.point, nv.point)
        net.add_link(
            Link(
                # 7-digit padding: ids must stay lexicographically ordered
                # (incident_links and sweep determinism rely on it) past the
                # 9,999 links where 4 digits overflow — T2 mints >100k.
                id=f"{net.name}-E{next(counter):07d}",
                u=str(u),
                v=str(v),
                capacity_gbps=capacity,
                length_km=length,
                owner=owner,
            )
        )
    return net


def network_to_graphml(network: Network, path: Union[str, pathlib.Path]) -> None:
    """Write a Network as GraphML (coordinates and capacities included)."""
    g = nx.MultiGraph(name=network.name)
    for node in network.nodes:
        attrs = {"kind": node.kind}
        if node.city:
            attrs["label"] = node.city
        if node.point is not None:
            attrs["Latitude"] = node.point.lat
            attrs["Longitude"] = node.point.lon
        g.add_node(node.id, **attrs)
    for link in network.iter_links():
        g.add_edge(
            link.u,
            link.v,
            key=link.id,
            id=link.id,
            capacity=link.capacity_gbps,
            length_km=link.length_km,
            owner=link.owner or "",
            virtual=link.virtual,
        )
    nx.write_graphml(g, pathlib.Path(path))


def roundtrip_check(network: Network, path: Union[str, pathlib.Path]) -> Network:
    """Write then re-read a network; returns the re-read copy.

    Useful in tests and as a sanity tool: node count, link count, and
    total capacity must survive the round trip.
    """
    network_to_graphml(network, path)
    copy = network_from_graphml(path, name=network.name)
    if len(copy) != len(network) or copy.num_links != network.num_links:
        raise TopologyError(
            f"GraphML round trip changed the graph: "
            f"{len(network)}/{network.num_links} -> {len(copy)}/{copy.num_links}"
        )
    return copy
