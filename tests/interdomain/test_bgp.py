"""Tests for Gao–Rexford route computation."""

import pytest

from repro.exceptions import PolicyError
from repro.interdomain.bgp import (
    RouteType,
    is_valley_free,
    reachability_matrix,
    routes_to,
)
from repro.interdomain.relationships import ASGraph, Relationship, small_internet


@pytest.fixture
def g():
    return small_internet()


class TestRoutesTo:
    def test_destination_in_table(self, g):
        table = routes_to(g, "eyeball1")
        assert table["eyeball1"].as_path_length == 0

    def test_full_reachability_in_clean_hierarchy(self, g):
        for dst in g.as_names:
            table = routes_to(g, dst)
            assert set(table) == set(g.as_names), dst

    def test_unknown_destination(self, g):
        with pytest.raises(PolicyError):
            routes_to(g, "nowhere")

    def test_provider_has_customer_route(self, g):
        table = routes_to(g, "eyeball1")
        assert table["trA"].route_type is RouteType.CUSTOMER
        assert table["trA"].path == ("trA", "eyeball1")

    def test_peer_route_single_hop(self, g):
        # trB peers with trA; reaches eyeball1 via that peering.
        table = routes_to(g, "eyeball1")
        assert table["trB"].route_type is RouteType.PEER
        assert table["trB"].path == ("trB", "trA", "eyeball1")

    def test_customer_preferred_over_peer(self, g):
        # trA reaches content1 directly as its customer even though a
        # peer path via trB doesn't exist; verify preference ordering by
        # checking trC, which is content1's other provider.
        table = routes_to(g, "content1")
        assert table["trA"].route_type is RouteType.CUSTOMER
        assert table["trC"].route_type is RouteType.CUSTOMER

    def test_provider_route_used_when_needed(self, g):
        # eyeball3 reaches eyeball1 only via its provider trC.
        table = routes_to(g, "eyeball1")
        assert table["eyeball3"].route_type is RouteType.PROVIDER
        assert table["eyeball3"].path[0] == "eyeball3"
        assert table["eyeball3"].path[-1] == "eyeball1"

    def test_paths_are_valley_free(self, g):
        for dst in g.as_names:
            for src, route in routes_to(g, dst).items():
                assert is_valley_free(g, route.path), (src, dst, route.path)

    def test_next_hop(self, g):
        table = routes_to(g, "eyeball1")
        assert table["trA"].next_hop == "eyeball1"
        with pytest.raises(PolicyError):
            table["eyeball1"].next_hop


class TestValleyFree:
    def test_up_peer_down(self, g):
        assert is_valley_free(g, ("eyeball1", "trA", "trB", "eyeball2"))

    def test_down_then_up_invalid(self, g):
        # trA -> eyeball1 (down) then back up is a valley.
        assert not is_valley_free(g, ("trA", "eyeball1", "trA")) or True
        # A realistic valley: content1 -> trA (up) ... trA -> content1 is
        # down; then content1 -> trC up again.
        assert not is_valley_free(g, ("trA", "content1", "trC"))

    def test_two_peer_hops_invalid(self, g):
        # trA - trB are peers; T1a - T1b are peers. trA->T1a is up so
        # construct peer-peer: trA -> trB (peer) then trB -> trA? Not a
        # path. Use tier1s: T1a -> T1b (peer), and another peer hop does
        # not exist; craft graph instead.
        g2 = ASGraph()
        for n in ("a", "b", "c"):
            g2.add_as(n, "transit")
        g2.link("a", "b", Relationship.PEER)
        g2.link("b", "c", Relationship.PEER)
        assert not is_valley_free(g2, ("a", "b", "c"))

    def test_non_adjacent_invalid(self, g):
        assert not is_valley_free(g, ("eyeball1", "eyeball2"))

    def test_trivial_paths_valid(self, g):
        assert is_valley_free(g, ("eyeball1",))


class TestFragmentation:
    """The §3.4 worry: refusing to peer/provide fragments the Internet."""

    def test_stub_island_unreachable(self):
        g = ASGraph()
        g.add_as("island")
        g.add_as("core", "tier1")
        g.add_as("stub")
        g.link("stub", "core", Relationship.PROVIDER)
        table = routes_to(g, "island")
        assert "stub" not in table
        assert "core" not in table

    def test_peer_only_periphery_limited(self):
        # Two stubs peering with each other but no provider: they reach
        # each other, nothing else reaches them.
        g = ASGraph()
        g.add_as("s1")
        g.add_as("s2")
        g.add_as("other")
        g.link("s1", "s2", Relationship.PEER)
        table = routes_to(g, "s1")
        assert "s2" in table
        assert "other" not in table

    def test_reachability_matrix(self, g):
        matrix = reachability_matrix(g)
        assert all(matrix.values())
        n = len(g.as_names)
        assert len(matrix) == n * (n - 1)
