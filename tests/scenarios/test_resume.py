"""Archive resume after SIGTERM: the interrupted-run contract end-to-end.

A pack run killed mid-flight must leave the archive at ``status:
running`` with every finished trial persisted; re-running the same
command resumes from the store (cache hits only for completed work) and
seals an archive whose audit comes back clean.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.scenarios import check_archive, load_archive, run_pack
from repro.scenarios.pack import ScenarioPack

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def _pack_payload():
    """12 slow demo trials, 2 supervised workers."""
    return {
        "schema": "repro.scenarios/1",
        "name": "t-sig",
        "experiment": "demo",
        "sweep": {
            "axes": [{"name": "loc", "values": [float(i) for i in range(12)]}],
            "base": {"scale": 1.0, "draws": 4, "sleep_s": 0.4},
            "seed": 3,
        },
        "group_by": [],
        "execution": {"workers": 2, "supervised": True,
                      "start_method": "fork"},
    }


@needs_fork
class TestSigtermResume:
    def test_sigterm_leaves_resumable_archive(self, tmp_path):
        pack_path = tmp_path / "pack.json"
        pack_path.write_text(json.dumps(_pack_payload()))
        archive = tmp_path / "arch"
        script = tmp_path / "run_script.py"
        script.write_text(textwrap.dedent(f"""
            import json
            from repro.scenarios import run_pack
            from repro.scenarios.pack import load_pack

            pack = load_pack({str(pack_path)!r})
            print("READY", flush=True)
            result = run_pack(pack, {str(archive)!r})
            print("DONE", result.executed, flush=True)
        """))
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")

        store = archive / "results.jsonl"
        proc = subprocess.Popen(
            [sys.executable, str(script)], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if store.exists() and sum(1 for _ in open(store)) >= 2:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode != 0
        assert "stopped by SIGTERM" in err

        # The archive is visibly interrupted, not silently half-done.
        manifest = json.loads((archive / "manifest.json").read_text())
        assert manifest["status"] == "running"
        assert not (archive / "aggregates.json").exists()
        problems = check_archive(archive)
        assert any("not 'complete'" in p for p in problems)
        completed = sum(1 for _ in open(store))
        assert 1 <= completed < 12

        # Resume: the same pack into the same directory — completed
        # trials come back as cache hits, only the rest execute.  (An
        # overridden pack would be a different fingerprint, which the
        # archive refuses — resume means *the same study*.)
        pack = ScenarioPack.from_dict(_pack_payload())
        result = run_pack(pack, archive, workers=2)
        assert result.cache_hits == completed
        assert result.executed == 12 - completed

        sealed = load_archive(archive)
        assert sealed.manifest["status"] == "complete"
        assert check_archive(archive) == []
