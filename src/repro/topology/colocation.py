"""POC router placement at multi-BP colocation sites.

Section 3.3: "we ... placed POC routers at points where there were four or
more BPs closely colocated."  A *colocation site* is a city (or a cluster
of cities within a small radius — e.g. Ashburn and Washington) where at
least ``min_bps`` distinct Bandwidth Providers have a PoP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.topology.cities import City, CityCatalog, get_city
from repro.topology.geo import EARTH_RADIUS_KM

#: Default radius within which two PoP cities count as "closely colocated".
DEFAULT_COLOCATION_RADIUS_KM = 60.0

#: The paper's threshold: four or more BPs must be present.
DEFAULT_MIN_BPS = 4


@dataclass(frozen=True)
class ColocationSite:
    """A POC router site: a representative city plus the BPs present there.

    ``member_cities`` lists every clustered city; ``bps`` the providers with
    a PoP in any of them.
    """

    city: str
    member_cities: FrozenSet[str]
    bps: FrozenSet[str]

    @property
    def router_id(self) -> str:
        """The id the POC router at this site uses in the offered network."""
        return f"POC:{self.city}"


def _cluster_cities(
    city_names: Sequence[str],
    radius_km: float,
    catalog: Optional[CityCatalog] = None,
) -> List[Set[str]]:
    """True single-linkage clustering of cities within ``radius_km``.

    Two cities share a cluster iff a chain of pairwise hops, each at most
    ``radius_km``, connects them — the connected components of the
    proximity graph.  (A first-fit scan is not enough: a city bridging two
    existing clusters must merge them, and the answer must not depend on
    iteration order.)  Union-find over the vectorized pairwise haversine
    matrix; deterministic because names are canonicalized to sorted order
    and components are emitted in order of their smallest-index member.
    """
    names = sorted(set(city_names))
    cities: List[City] = [get_city(name, catalog=catalog) for name in names]
    n = len(cities)
    if n == 0:
        return []
    lat = np.radians(np.array([c.lat for c in cities], dtype=np.float64))
    lon = np.radians(np.array([c.lon for c in cities], dtype=np.float64))
    dlat = lat[:, None] - lat[None, :]
    dlon = lon[:, None] - lon[None, :]
    h = (
        np.sin(dlat / 2.0) ** 2
        + np.cos(lat)[:, None] * np.cos(lat)[None, :] * np.sin(dlon / 2.0) ** 2
    )
    dist = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))

    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    ii, jj = np.nonzero(np.triu(dist <= radius_km, k=1))
    for i, j in zip(ii.tolist(), jj.tolist()):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[max(ri, rj)] = min(ri, rj)

    groups: Dict[int, Set[str]] = {}
    for idx, name in enumerate(names):
        groups.setdefault(find(idx), set()).add(name)
    return [groups[root] for root in sorted(groups)]


def find_colocation_sites(
    bp_cities: Mapping[str, Set[str]],
    *,
    min_bps: int = DEFAULT_MIN_BPS,
    radius_km: float = DEFAULT_COLOCATION_RADIUS_KM,
    catalog: Optional[CityCatalog] = None,
) -> List[ColocationSite]:
    """Find all sites where at least ``min_bps`` BPs are closely colocated.

    ``bp_cities`` maps each BP name to the set of city names where it has a
    PoP.  Returns sites sorted by (descending BP count, city name) so the
    ordering is deterministic.
    """
    if min_bps < 1:
        raise ValueError(f"min_bps must be >= 1, got {min_bps}")
    all_cities = sorted({c for cities in bp_cities.values() for c in cities})
    clusters = _cluster_cities(all_cities, radius_km, catalog=catalog)

    sites: List[ColocationSite] = []
    for cluster in clusters:
        present = frozenset(
            bp for bp, cities in bp_cities.items() if cities & cluster
        )
        if len(present) < min_bps:
            continue
        # Representative city: the most populous member (population ties
        # broken by name, so the pick never depends on set order).
        rep = max(
            sorted(cluster),
            key=lambda name: get_city(name, catalog=catalog).population_m,
        )
        sites.append(
            ColocationSite(
                city=rep,
                member_cities=frozenset(cluster),
                bps=present,
            )
        )
    sites.sort(key=lambda s: (-len(s.bps), s.city))
    return sites


@dataclass
class PlacementReport:
    """Diagnostics from a placement run, used in benchmarks and docs."""

    sites: List[ColocationSite]
    cities_considered: int
    clusters_formed: int
    min_bps: int
    per_site_bp_count: Dict[str, int] = field(default_factory=dict)

    @property
    def num_sites(self) -> int:
        return len(self.sites)


def place_poc_routers(
    bp_cities: Mapping[str, Set[str]],
    *,
    min_bps: int = DEFAULT_MIN_BPS,
    radius_km: float = DEFAULT_COLOCATION_RADIUS_KM,
    catalog: Optional[CityCatalog] = None,
) -> PlacementReport:
    """Run placement and return sites plus diagnostics."""
    all_cities = {c for cities in bp_cities.values() for c in cities}
    clusters = _cluster_cities(sorted(all_cities), radius_km, catalog=catalog)
    sites = find_colocation_sites(
        bp_cities, min_bps=min_bps, radius_km=radius_km, catalog=catalog
    )
    return PlacementReport(
        sites=sites,
        cities_considered=len(all_cities),
        clusters_formed=len(clusters),
        min_bps=min_bps,
        per_site_bp_count={s.city: len(s.bps) for s in sites},
    )
