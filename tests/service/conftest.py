"""Shared workload + helpers for service-layer tests.

Everything here runs on the virtual clock so tests are deterministic
and effectively instant regardless of the modeled service times.
"""

from __future__ import annotations

import pytest

from repro.auction.provider import make_external_contract
from repro.service import PocService, ServiceConfig, VirtualClock

from tests.conftest import square_network, square_offers, square_tm


def service_workload():
    """The square + an external shadow ring (keeps VCG feasible)."""
    net = square_network()
    offers = square_offers(net)
    contract = make_external_contract(
        "ext", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")],
        capacity_gbps=10.0, price_per_link=500.0, length_km=100.0,
    )
    for link in contract.links:
        net.add_link(link)
    return net, list(offers) + [contract.to_offer()], square_tm(load=1.0)


def make_service(**kwargs) -> PocService:
    """A PocService over the square workload on a fresh virtual clock."""
    net, offers, tm = service_workload()
    kwargs.setdefault("clock", VirtualClock())
    kwargs.setdefault("config", ServiceConfig())
    return PocService(net, offers, tm, **kwargs)


@pytest.fixture
def workload():
    return service_workload()
