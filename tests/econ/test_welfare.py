"""Tests for welfare accounting."""

import pytest

from repro.exceptions import EconError
from repro.econ.demand import STANDARD_FAMILIES, LinearDemand
from repro.econ.welfare import (
    consumer_welfare,
    deadweight_fraction,
    social_welfare,
    total_social_welfare,
    welfare_loss,
)

ALL = list(STANDARD_FAMILIES.items())


class TestIdentities:
    @pytest.mark.parametrize("name,demand", ALL)
    def test_welfare_decomposition(self, name, demand):
        """W(p) = CW(p) + revenue(p) — §4.6's accounting identity."""
        for p in (0.5, 2.0, 8.0, 15.0):
            assert social_welfare(demand, p) == pytest.approx(
                consumer_welfare(demand, p) + demand.revenue(p)
            )

    @pytest.mark.parametrize("name,demand", ALL)
    def test_welfare_monotone_decreasing_in_price(self, name, demand):
        """'social welfare is monotonically decreasing in the prices' (§4.3)."""
        prices = [0.0, 1.0, 3.0, 8.0, 15.0, 30.0]
        values = [social_welfare(demand, p) for p in prices]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-9

    @pytest.mark.parametrize("name,demand", ALL)
    def test_welfare_nonnegative(self, name, demand):
        for p in (0.0, 5.0, 50.0):
            assert social_welfare(demand, p) >= 0
            assert consumer_welfare(demand, p) >= 0

    def test_linear_closed_form(self):
        d = LinearDemand(v_max=10.0)
        # At p=0 everyone buys: W = mean value = 5.
        assert social_welfare(d, 0.0) == pytest.approx(5.0)
        # At the monopoly price 5: W = ∫_5^10 v/10 dv = 3.75.
        assert social_welfare(d, 5.0) == pytest.approx(3.75)
        assert consumer_welfare(d, 5.0) == pytest.approx(1.25)


class TestAggregation:
    def test_total_over_csps(self):
        d1 = LinearDemand(v_max=10.0)
        d2 = LinearDemand(v_max=20.0)
        total = total_social_welfare([(d1, 5.0), (d2, 10.0)])
        assert total == pytest.approx(
            social_welfare(d1, 5.0) + social_welfare(d2, 10.0)
        )


class TestLossMetrics:
    def test_welfare_loss_sign(self):
        d = LinearDemand(v_max=10.0)
        assert welfare_loss(d, price=7.5, reference_price=5.0) > 0
        assert welfare_loss(d, price=5.0, reference_price=5.0) == 0.0

    def test_deadweight_fraction(self):
        d = LinearDemand(v_max=10.0)
        frac = deadweight_fraction(d, price=7.5, reference_price=5.0)
        # W(5)=3.75, W(7.5) = ∫_7.5^10 v/10 = 2.1875 -> loss 41.7%.
        assert frac == pytest.approx(1.0 - 2.1875 / 3.75)

    def test_negative_price_rejected(self):
        with pytest.raises(EconError):
            social_welfare(LinearDemand(), -1.0)
        with pytest.raises(EconError):
            consumer_welfare(LinearDemand(), -0.5)
