#!/usr/bin/env python
"""Recurring bandwidth auctions with cloud-provider capacity recall.

§3.3 predicts large CSPs will lease their spare backbone capacity to the
POC precisely *because* they can recall it when their own traffic surges.
This example re-clears the auction monthly for a year with the two
largest BPs acting as such cloud providers, and reports what a POC
operator would watch: cost stability, backbone churn, and fallback
events.

Run:  python examples/bandwidth_recall.py
"""

from repro.auction.rounds import RecallModel, RecurringAuction
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo
from repro.topology.zoo import ZooConfig, build_zoo
from repro.units import fmt_money

MONTHS = 12


def main() -> None:
    zoo = build_zoo(ZooConfig.tiny())
    tm = traffic_for_zoo(zoo)
    offers = offers_for_zoo(zoo)
    cloud = frozenset(zoo.largest_bps(2))
    print(f"zoo: {len(zoo.bps)} BPs over {len(zoo.sites)} POC sites; "
          f"cloud BPs subject to recall: {', '.join(sorted(cloud))}\n")

    recall = RecallModel(
        cloud_bps=cloud,
        recall_probability=0.25,  # ~3 hard recalls per BP per year
        recall_floor=0.4,
        min_availability=0.75,
    )
    auction = RecurringAuction(
        zoo.offered, offers, tm,
        recall=recall, seed=11, engine="greedy", method="add-prune",
    )
    outcome = auction.run(MONTHS)

    print(f"{'month':>6}{'offered links':>15}{'POC cost':>16}{'notes':>20}")
    for r in outcome.rounds:
        recalled = [
            bp for bp, a in sorted(r.availability.items())
            if bp in cloud and a <= recall.recall_floor + 1e-9
        ]
        notes = f"recall: {','.join(recalled)}" if recalled else ""
        if r.fallback:
            notes = (notes + " FALLBACK").strip()
        print(f"{r.round_index:>6}{r.offered_links:>15}"
              f"{fmt_money(r.poc_cost):>16}{notes:>20}")

    costs = outcome.cost_series()
    print(f"\ncost mean {fmt_money(sum(costs) / len(costs))}, "
          f"volatility {outcome.cost_volatility():.1%}, "
          f"backbone churn {outcome.winner_churn():.1%}, "
          f"fallback months {outcome.fallback_rate():.0%}")
    print("\ntakeaway: the auction absorbs hard recalls by re-selecting from")
    print("the remaining supply each month; external contracts (modelled")
    print("here as reverting to the full offer book) backstop the months")
    print("when fluctuating supply cannot meet the constraint on its own.")


if __name__ == "__main__":
    main()
