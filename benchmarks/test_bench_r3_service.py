"""R3 — extension: online POC service under load with mid-run chaos.

R1/R2 measure the *control plane's* failure tolerance in batch; R3
measures the operational claim that makes §3 a service anyone can
attach to: the POC daemon keeps answering — bounded latency, explicit
shedding, degraded-but-real answers — while links fail and the exact
solver stalls underneath it.

One deterministic virtual-clock campaign over the chaos micro-scenario:

- sustained load (150 qps) with a mid-run flash crowd (×12 for 2 s);
- a two-link fault at t=4 s (healthy solver path: re-clear heals it);
- a second fault at t=13 s *inside* a solver-stall window, so the
  re-clear must go through the circuit breaker to the fallback engine;
- SIGTERM-equivalent drain at t=20 s with snapshot persistence.

Headlines asserted, not just reported: **shed, don't stall** (p99 within
the deadline budget, zero unanswered requests), **degrade, don't
refuse** (degraded-mode answers while the breaker is open), **recover**
(healthy snapshot after each background re-clear, in exactly the modeled
re-clear latency), and the whole report byte-identical per seed.
"""

import json

from repro.resilience.policy import CircuitBreaker
from repro.service import (
    ChaosPlan,
    LoadgenConfig,
    ServiceConfig,
    run_service_benchmark,
)

SEED = 7

LOAD = LoadgenConfig(
    duration_s=20.0,
    base_rate_qps=150.0,
    flash_start_s=10.0,
    flash_duration_s=2.0,
    flash_multiplier=12.0,
)
CHAOS = ChaosPlan(
    fault_times=(4.0, 13.0),
    links_per_fault=2,
    stall_window=(12.5, 16.0),
)
CONFIG = ServiceConfig(
    queue_limit=64,
    batch_max=8,
    default_deadline_s=0.25,
    per_request_cost_s=0.001,
    reclear_delay_s=0.8,
    milp_time_limit_s=30.0,
)


def run_r3(seed: int = SEED):
    return run_service_benchmark(
        seed,
        load=LOAD,
        chaos=CHAOS,
        config=CONFIG,
        breaker=CircuitBreaker(failure_threshold=1, cooldown_calls=10),
    )


def test_bench_r3_service(benchmark, report):
    rep = benchmark.pedantic(run_r3, rounds=1, iterations=1)

    # -- shed, don't stall ---------------------------------------------------
    assert rep.unanswered == 0, "every submitted request must be answered"
    assert rep.counts.get("overloaded", 0) > 0, "flash crowd must shed"
    assert rep.latency_p99_ms <= CONFIG.default_deadline_s * 1000.0
    assert rep.latency_max_ms <= CONFIG.default_deadline_s * 1000.0
    assert 0.0 < rep.shed_rate < 0.5

    # -- degrade, don't refuse ----------------------------------------------
    assert rep.faults_injected == 4
    assert rep.degraded_served > 0, "mid-outage answers must keep flowing"

    # -- recover --------------------------------------------------------------
    assert rep.reclears == 2
    assert rep.reclear_failures == 0
    assert rep.recoveries == (0.8, 0.8), "re-clears heal in modeled latency"
    assert rep.final_health == "healthy"
    # The second re-clear ran inside the stall window: the primary
    # engine was down, so the fallback produced it and the breaker is
    # still open at drain time.
    assert rep.final_breaker_state == "open"
    stalled_publishes = [
        e for t, e in rep.events
        if e.startswith("publish") and CHAOS.stall_window[0] <= t <= CHAOS.stall_window[1]
    ]
    assert any("health=healthy" in e for e in stalled_publishes)

    # -- shed accounting closes ----------------------------------------------
    # The per-kind shed breakdown must sum back to the shed totals: no
    # refusal is uncategorized, none is double-counted.
    for status, by_kind in rep.shed_breakdown.items():
        assert sum(by_kind.values()) == rep.counts.get(status, 0), (
            f"shed breakdown for {status!r} does not sum to its total"
        )
    # An in-process campaign never touches the wire: the transport-side
    # reliability columns exist but stay empty.
    assert sum(rep.retry_breakdown.values()) == 0
    assert rep.failovers == ()

    # -- determinism -----------------------------------------------------------
    assert run_r3().to_json() == rep.to_json(), "campaign must replay exactly"

    payload = rep.to_dict()
    events = payload.pop("events")
    lines = [
        "R3: online service, 20 s campaign (virtual clock), seed "
        f"{SEED}; flash x{LOAD.flash_multiplier:g} at "
        f"{LOAD.flash_start_s:g}s; faults at "
        f"{', '.join(f'{t:g}s' for t in CHAOS.fault_times)}; solver stall "
        f"{CHAOS.stall_window[0]:g}-{CHAOS.stall_window[1]:g}s",
        "",
        f"{'offered':>10} {rep.submitted} requests ({rep.qps_offered:g} qps)",
        f"{'served':>10} {rep.counts.get('ok', 0)} ok + "
        f"{rep.degraded_served} degraded ({rep.qps_served:g} qps)",
        f"{'shed':>10} {rep.counts.get('overloaded', 0)} overloaded, "
        f"{rep.counts.get('deadline-exceeded', 0)} deadline, "
        f"{rep.counts.get('draining', 0)} draining "
        f"(rate {rep.shed_rate:.1%}); unanswered {rep.unanswered}",
        f"{'latency':>10} p50 {rep.latency_p50_ms:g} ms, "
        f"p99 {rep.latency_p99_ms:g} ms, max {rep.latency_max_ms:g} ms "
        f"(budget {CONFIG.default_deadline_s * 1000:g} ms)",
        f"{'faults':>10} {rep.faults_injected} links failed, "
        f"{rep.reclears} re-clears, recovery {rep.recovery_s:g} s each",
        f"{'final':>10} snapshot v{rep.final_version} {rep.final_health}, "
        f"breaker {rep.final_breaker_state} (fallback engine cleared "
        "during the stall)",
        "",
        "timeline:",
    ]
    lines += [f"  {t:>7.3f}s  {e}" for t, e in events]
    lines += ["", "canonical report:", json.dumps(payload, sort_keys=True, indent=2)]
    report("\n".join(lines))
