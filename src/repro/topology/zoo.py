"""The SyntheticZoo: the full §3.3 input pipeline.

The paper's auction experiment starts from TopologyZoo, "filtered out some
of the small networks, combined some networks to form 20 BPs, and then
placed POC routers at points where there were four or more BPs closely
colocated."  This module reproduces that pipeline with a seeded synthetic
generator (DESIGN.md §3 documents the substitution):

1. each BP is the union of one or more synthetic operator backbones drawn
   over the built-in city database, with heterogeneous footprint sizes so
   that logical-link shares spread out (the paper reports 2%–12%);
2. POC routers are placed at colocation sites (≥ ``min_bps_colocated``
   BPs within ``colocation_radius_km``);
3. every BP offers logical links between the POC sites its own network
   connects (see :mod:`repro.topology.logical`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.rand import SeedLike, make_rng
from repro.topology.cities import (
    BUILTIN_CATALOG,
    REGIONS,
    City,
    CityCatalog,
)
from repro.topology.colocation import (
    ColocationSite,
    PlacementReport,
    place_poc_routers,
)
from repro.topology.generators import merge_networks, waxman_network
from repro.topology.graph import Network
from repro.topology.logical import (
    LogicalLink,
    bp_logical_links,
    build_offered_network,
    share_of_links,
)


@dataclass(frozen=True)
class ZooConfig:
    """Parameters of the synthetic zoo.

    The defaults are the *paper-scale* preset (20 BPs).  Use
    :meth:`small` for unit tests and fast examples.
    """

    num_bps: int = 20
    seed: int = 2020
    #: Cities in the smallest / largest BP footprint.
    min_cities_per_bp: int = 16
    max_cities_per_bp: int = 46
    #: Exponent skewing BP sizes: higher → more small BPs, few giants.
    size_skew: float = 1.6
    #: Number of operator networks merged to form each BP (min, max).
    operators_per_bp: Tuple[int, int] = (1, 3)
    #: Fraction of a BP's cities drawn from its home region.
    home_region_bias: float = 0.7
    #: Colocation threshold (paper: four or more BPs).
    min_bps_colocated: int = 4
    colocation_radius_km: float = 60.0
    #: Waxman extra-edge parameters for operator backbones.
    waxman_alpha: float = 0.4
    waxman_beta: float = 0.3
    #: Scales all drawn wave capacities.
    capacity_scale: float = 1.0
    #: Maximum internal-path detour for an offered logical link.
    max_detour: float = 2.5
    regions: Tuple[str, ...] = REGIONS

    def __post_init__(self) -> None:
        if self.num_bps < 1:
            raise ValueError(f"num_bps must be >= 1, got {self.num_bps}")
        if self.min_cities_per_bp < 2:
            raise ValueError("BP footprints need at least two cities")
        if self.max_cities_per_bp < self.min_cities_per_bp:
            raise ValueError("max_cities_per_bp < min_cities_per_bp")
        lo, hi = self.operators_per_bp
        if lo < 1 or hi < lo:
            raise ValueError(f"bad operators_per_bp: {self.operators_per_bp}")
        if not 0.0 <= self.home_region_bias <= 1.0:
            raise ValueError("home_region_bias must be in [0, 1]")

    @classmethod
    def small(cls, seed: int = 2020) -> "ZooConfig":
        """A fast preset for tests and examples (~8 BPs, small footprints)."""
        return cls(
            num_bps=8,
            seed=seed,
            min_cities_per_bp=8,
            max_cities_per_bp=18,
            operators_per_bp=(1, 2),
            min_bps_colocated=3,
            home_region_bias=0.5,
            regions=("na", "eu"),
        )

    @classmethod
    def tiny(cls, seed: int = 2020) -> "ZooConfig":
        """A minimal preset for the fastest unit tests (~5 BPs, one region)."""
        return cls(
            num_bps=5,
            seed=seed,
            min_cities_per_bp=8,
            max_cities_per_bp=14,
            operators_per_bp=(1, 1),
            min_bps_colocated=2,
            home_region_bias=1.0,
            regions=("na",),
        )

    @classmethod
    def paper(cls, seed: int = 2020) -> "ZooConfig":
        """The paper-scale preset: 20 BPs, thousands of logical links."""
        return cls(seed=seed)

    def with_seed(self, seed: int) -> "ZooConfig":
        return replace(self, seed=seed)


@dataclass
class BPFootprint:
    """One Bandwidth Provider: its merged physical network and PoP cities."""

    name: str
    network: Network
    cities: Set[str]
    home_region: str
    operator_names: List[str] = field(default_factory=list)

    @property
    def num_pops(self) -> int:
        return len(self.cities)


@dataclass
class ZooResult:
    """Everything downstream stages need from the zoo."""

    config: ZooConfig
    bps: Dict[str, BPFootprint]
    sites: List[ColocationSite]
    offers_by_bp: Dict[str, List[LogicalLink]]
    offered: Network
    placement: PlacementReport
    #: City catalog the topology was drawn from (None = built-in database).
    #: Downstream stages that resolve city names (gravity traffic, region
    #: sharding) must thread this through.
    catalog: Optional[CityCatalog] = None

    @property
    def num_logical_links(self) -> int:
        return sum(len(v) for v in self.offers_by_bp.values())

    @property
    def link_shares(self) -> Dict[str, float]:
        return share_of_links(self.offers_by_bp)

    def largest_bps(self, count: int) -> List[str]:
        """BP names ordered by descending logical-link contribution."""
        shares = self.link_shares
        ranked = sorted(shares, key=lambda bp: (-shares[bp], bp))
        return ranked[:count]


class SyntheticZoo:
    """Builds a :class:`ZooResult` from a :class:`ZooConfig`.

    ``catalog`` selects the city database the footprints draw from; the
    default is the built-in world-city list (paper scale).  The
    continental generator passes a much larger synthetic catalog through
    the same pipeline.
    """

    def __init__(self, config: ZooConfig, catalog: Optional[CityCatalog] = None) -> None:
        self.config = config
        self.catalog = catalog or BUILTIN_CATALOG
        for region in config.regions:
            if region not in self.catalog.regions:
                raise ValueError(
                    f"config region {region!r} absent from catalog "
                    f"{self.catalog.name!r} (has {self.catalog.regions})"
                )

    def _bp_sizes(self, rng) -> List[int]:
        """Heterogeneous footprint sizes via a power-law-skewed draw."""
        cfg = self.config
        u = rng.random(cfg.num_bps)
        # Inverse-CDF of a bounded power law: small u → small footprint.
        span = cfg.max_cities_per_bp - cfg.min_cities_per_bp
        sizes = cfg.min_cities_per_bp + (u ** cfg.size_skew) * span
        return sorted((int(round(s)) for s in sizes), reverse=True)

    def _pick_cities(self, rng, count: int, home_region: str) -> List[City]:
        """Population-weighted sampling, biased toward the home region."""
        cfg = self.config
        home = self.catalog.in_region(home_region)
        away = [
            c
            for c in self.catalog.cities
            if c.region != home_region and c.region in cfg.regions
        ]
        n_home = min(len(home), max(2, int(round(count * cfg.home_region_bias))))
        n_away = min(len(away), count - n_home)

        def weighted_sample(pool: Sequence[City], k: int) -> List[City]:
            if k <= 0:
                return []
            weights = [c.population_m for c in pool]
            total = sum(weights)
            probs = [w / total for w in weights]
            idx = rng.choice(len(pool), size=min(k, len(pool)), replace=False, p=probs)
            return [pool[int(i)] for i in idx]

        picked = weighted_sample(home, n_home) + weighted_sample(away, n_away)
        # Dedupe by name while preserving order.
        seen: Set[str] = set()
        unique = []
        for city in picked:
            if city.name not in seen:
                seen.add(city.name)
                unique.append(city)
        return unique

    def _build_bp(self, rng, name: str, size: int) -> BPFootprint:
        cfg = self.config
        region_weights = [len(self.catalog.in_region(r)) for r in cfg.regions]
        total_w = sum(region_weights)
        probs = [w / total_w for w in region_weights]
        home_region = cfg.regions[int(rng.choice(len(cfg.regions), p=probs))]

        n_ops = int(rng.integers(cfg.operators_per_bp[0], cfg.operators_per_bp[1] + 1))
        cities = self._pick_cities(rng, size, home_region)
        if len(cities) < 2:
            cities = self._pick_cities(rng, max(size, 4), home_region)

        # Split the footprint into overlapping operator city sets.
        operators: List[Network] = []
        op_names: List[str] = []
        for k in range(n_ops):
            if n_ops == 1:
                op_cities = cities
            else:
                lo = max(2, len(cities) // n_ops)
                take = min(len(cities), lo + int(rng.integers(0, max(1, lo))))
                idx = rng.choice(len(cities), size=take, replace=False)
                op_cities = [cities[int(i)] for i in sorted(idx)]
                if len(op_cities) < 2:
                    op_cities = cities[:2]
            op_name = f"{name}-op{k}"
            op_names.append(op_name)
            operators.append(
                waxman_network(
                    op_cities,
                    name=op_name,
                    seed=rng,
                    alpha=cfg.waxman_alpha,
                    beta=cfg.waxman_beta,
                    capacity_scale=cfg.capacity_scale,
                )
            )
        network = merge_networks(operators, name=name) if len(operators) > 1 else operators[0]
        return BPFootprint(
            name=name,
            network=network,
            cities={node.city for node in network.nodes if node.city},
            home_region=home_region,
            operator_names=op_names,
        )

    def build(self) -> ZooResult:
        """Run the full pipeline deterministically from the config seed."""
        cfg = self.config
        rng = make_rng(cfg.seed)
        sizes = self._bp_sizes(rng)
        # Keep 2-digit names at paper scale (committed bench text says
        # "BP01"); widen past 99 BPs so ids stay lexicographically ordered.
        width = max(2, len(str(cfg.num_bps)))
        bps: Dict[str, BPFootprint] = {}
        for idx, size in enumerate(sizes):
            name = f"BP{idx + 1:0{width}d}"
            bps[name] = self._build_bp(rng, name, size)

        placement = place_poc_routers(
            {name: fp.cities for name, fp in bps.items()},
            min_bps=cfg.min_bps_colocated,
            radius_km=cfg.colocation_radius_km,
            catalog=self.catalog,
        )
        sites = placement.sites

        offers_by_bp: Dict[str, List[LogicalLink]] = {}
        for name, fp in bps.items():
            offers_by_bp[name] = bp_logical_links(
                name, fp.network, sites, max_detour=cfg.max_detour,
                catalog=self.catalog,
            )

        offered = build_offered_network(sites, offers_by_bp, catalog=self.catalog)
        return ZooResult(
            config=cfg,
            bps=bps,
            sites=sites,
            offers_by_bp=offers_by_bp,
            offered=offered,
            placement=placement,
            catalog=self.catalog,
        )


def build_zoo(config: ZooConfig, catalog: Optional[CityCatalog] = None) -> ZooResult:
    """Convenience wrapper: ``SyntheticZoo(config, catalog).build()``."""
    return SyntheticZoo(config, catalog=catalog).build()
