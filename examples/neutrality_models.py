#!/usr/bin/env python
"""The Section 4 economic models, end to end.

Reproduces the paper's analytical narrative:

1. NN regime: CSPs post monopoly prices; welfare is the benchmark.
2. UR with unilateral fees: double marginalization; welfare falls.
3. UR with Nash bargaining: fees t = (p − r·c)/2, the renegotiation
   equilibrium, and the incumbency advantage.

Run:  python examples/neutrality_models.py
"""

from repro.econ.bargaining import fee_schedule, incumbency_comparison
from repro.econ.csp import CSP
from repro.econ.demand import STANDARD_FAMILIES, LinearDemand
from repro.econ.equilibrium import bargaining_equilibrium, compare_regimes
from repro.econ.lmp import LMP, entrant, incumbent


def regime_table() -> None:
    print("=" * 78)
    print("Regime comparison across demand families (W = social welfare)")
    print("=" * 78)
    lmps = [incumbent(), entrant()]
    header = (f"{'family':<13}{'W_nn':>8}{'W_barg':>8}{'W_uni':>8}"
              f"{'t_barg':>8}{'t_uni':>8}{'p_nn':>7}{'p_barg':>8}{'p_uni':>7}")
    print(header)
    print("-" * len(header))
    for name, demand in STANDARD_FAMILIES.items():
        rc = compare_regimes(CSP(name=name, demand=demand), lmps)
        print(f"{name:<13}{rc.nn_welfare:>8.2f}{rc.bargaining_welfare:>8.2f}"
              f"{rc.unilateral_welfare:>8.2f}{rc.bargaining_fee:>8.2f}"
              f"{rc.unilateral_fee:>8.2f}{rc.nn_price:>7.2f}"
              f"{rc.bargaining_price:>8.2f}{rc.unilateral_price:>7.2f}")
    print("\ntakeaway: W_nn >= W_barg >= W_uni in every family; fees always")
    print("push prices up and welfare down (weakly at the Pareto corner).")


def incumbency_table() -> None:
    print()
    print("=" * 78)
    print("The incumbency advantage under bargained termination fees")
    print("=" * 78)
    price = 15.0
    comparison = incumbency_comparison(
        incumbent(), entrant(),
        CSP(name="incumbent-csp", demand=LinearDemand(v_max=30.0), incumbency=1.0),
        CSP(name="entrant-csp", demand=LinearDemand(v_max=30.0), incumbency=0.1),
        price=price,
    )
    print(f"at a posted price of ${price:.0f}/mo:")
    print(f"  incumbent LMP extracts : ${comparison.incumbent_lmp_fee:6.2f}/subscriber")
    print(f"  entrant   LMP extracts : ${comparison.entrant_lmp_fee:6.2f}/subscriber")
    print(f"  -> incumbent LMP advantage ${comparison.lmp_fee_gap:.2f}")
    print(f"  incumbent CSP pays     : ${comparison.incumbent_csp_fee:6.2f}/subscriber")
    print(f"  entrant   CSP pays     : ${comparison.entrant_csp_fee:6.2f}/subscriber")
    print(f"  -> incumbent CSP advantage ${comparison.csp_fee_gap:.2f}")
    print("\n'it is clear that such fees will systematically favor established")
    print("incumbents in both the LMP and CSP markets.'  (§4.5)")


def equilibrium_walkthrough() -> None:
    print()
    print("=" * 78)
    print("Renegotiation equilibrium for one CSP against a mixed LMP population")
    print("=" * 78)
    csp = CSP(name="videoco", demand=LinearDemand(v_max=30.0), incumbency=0.9)
    lmps = [
        LMP(name="mega", num_customers=3.0, access_price=55.0, vulnerability=0.05),
        LMP(name="regional", num_customers=1.0, access_price=45.0, vulnerability=0.2),
        LMP(name="startup", num_customers=0.2, access_price=40.0, vulnerability=0.5),
    ]
    eq = bargaining_equilibrium(csp, lmps)
    print(f"equilibrium fee t* = {eq.fee:.3f}, price p* = {eq.price:.2f} "
          f"(converged in {eq.iterations} iterations)")
    print(f"CSP keeps {eq.csp_revenue:.2f}/customer-mass; "
          f"LMPs extract {eq.lmp_fee_revenue:.2f}")
    print("\nper-LMP fees at the equilibrium price:")
    for name, fee in fee_schedule(csp, lmps, price=eq.price).items():
        print(f"  {name:<10} t = {max(0.0, fee):6.3f}")
    print("\nnote the ordering: the harder an LMP is to leave, the more it")
    print("extracts — market power, not cost, sets the fee.")


def main() -> None:
    regime_table()
    incumbency_table()
    equilibrium_walkthrough()


if __name__ == "__main__":
    main()
