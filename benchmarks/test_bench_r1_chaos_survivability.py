"""R1 — extension: served-demand survivability under fault injection.

The paper's Constraints #2/#3 buy failure tolerance at selection time;
this bench measures what that tolerance is worth operationally.  A
seeded chaos campaign injects link flaps, router-site outages, and
shared-risk-group cuts into the micro workload and reports the
served-demand fraction per fault class — once for the baseline
Constraint #1 selection and once for the survivable Constraint #2
selection.  The headline: under Constraint #2 a single link flap costs
*zero* demand (the selection rerouted it by construction), while the
baseline near-tree strands a third or more.
"""

import pytest

from repro.resilience.chaos import (
    TOPOLOGY_KINDS,
    ChaosConfig,
    micro_scenario,
    run_campaign,
)

SEED = 7
EPOCHS_PER_KIND = 2
KINDS = tuple(sorted(TOPOLOGY_KINDS))  # link-flap, node-outage, srlg-cut


def run_topology_campaign(*, constraint):
    net, offers, tm = micro_scenario(seed=SEED)
    cfg = ChaosConfig(
        seed=SEED, scenarios=EPOCHS_PER_KIND * len(KINDS), kinds=KINDS
    )
    # Constraint #2 is outside the MILP's language: clear heuristically.
    method = "milp" if constraint == 1 else "greedy-drop"
    fallback = "greedy-drop" if method == "milp" else "add-prune"
    return run_campaign(
        net, offers, tm, cfg,
        primary_method=method, fallback_method=fallback,
        constraint=constraint, engine="mcf",
    )


def test_bench_r1_chaos_survivability(benchmark, report):
    baseline = run_topology_campaign(constraint=1)
    survivable = benchmark.pedantic(
        lambda: run_topology_campaign(constraint=2), rounds=1, iterations=1
    )

    base = baseline.served_by_class()
    surv = survivable.served_by_class()
    lines = [
        f"campaign: seed={SEED}, {EPOCHS_PER_KIND} epochs per fault class",
        f"{'fault class':<14}{'constraint #1':>14}{'constraint #2':>14}",
    ]
    for kind in KINDS:
        lines.append(f"{kind:<14}{base[kind]:>14.1%}{surv[kind]:>14.1%}")
    lines.append(
        f"{'overall':<14}{baseline.mean_served_fraction:>14.1%}"
        f"{survivable.mean_served_fraction:>14.1%}"
    )
    report("Served-demand fraction under fault injection:\n" + "\n".join(lines))

    # Every epoch completed: no crash, no infeasible round.
    for rep in (baseline, survivable):
        assert len(rep.scenarios) == EPOCHS_PER_KIND * len(KINDS)
        assert all(not s.infeasible for s in rep.scenarios)
        assert all(0.0 <= s.served_fraction <= 1.0 for s in rep.scenarios)

    # Constraint #2's guarantee, observed: a single selected-link failure
    # is rerouted with zero unserved demand.
    for s in survivable.scenarios:
        if s.kind == "link-flap":
            assert s.served_fraction == pytest.approx(1.0)
            assert s.rerouted
            assert s.unserved_gbps == pytest.approx(0.0)

    # The baseline near-tree must actually lose demand on link flaps —
    # otherwise the comparison is vacuous.
    assert base["link-flap"] < 1.0
    # Survivable selection weakly dominates the baseline per fault class.
    for kind in KINDS:
        assert surv[kind] >= base[kind] - 1e-9


def test_bench_r1_chaos_determinism(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    net, offers, tm = micro_scenario(seed=SEED)
    cfg = ChaosConfig(seed=SEED, scenarios=4)
    a = run_campaign(net, offers, tm, cfg)
    net2, offers2, tm2 = micro_scenario(seed=SEED)
    b = run_campaign(net2, offers2, tm2, cfg)
    report(
        f"two seed-{SEED} campaigns: identical="
        f"{a.to_json() == b.to_json()}, "
        f"mean served={a.mean_served_fraction:.1%}, "
        f"fallbacks={a.fallback_count}"
    )
    # Same seed => byte-identical campaign report (the acceptance bar).
    assert a.to_json() == b.to_json()
