#!/usr/bin/env python
"""Two regional POCs, one federated fabric (§1.2).

"there could be several coexisting (and interconnected) POCs, run by
different entities but adopting the same basic principles."  This
example provisions an American and a European POC from separate
regional zoos, interconnects them with two trans-Atlantic gateways, and
shows cross-POC transit plus federated break-even billing.

Run:  python examples/federated_pocs.py
"""

from dataclasses import replace

from repro.core.federation import POCFederation
from repro.core.poc import PublicOptionCore
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo
from repro.topology.zoo import ZooConfig, build_zoo
from repro.units import fmt_money


def regional_poc(region: str, seed: int):
    cfg = replace(
        ZooConfig.tiny(seed=seed),
        regions=(region,),
        home_region_bias=1.0,
    )
    zoo = build_zoo(cfg)
    poc = PublicOptionCore.from_zoo(zoo)
    poc.provision(offers_for_zoo(zoo), traffic_for_zoo(zoo), method="add-prune")
    return zoo, poc


def main() -> None:
    na_zoo, na_poc = regional_poc("na", seed=2020)
    eu_zoo, eu_poc = regional_poc("eu", seed=2021)
    print(f"POC-America: {len(na_zoo.sites)} sites, "
          f"{na_poc.backbone.num_links} links, "
          f"{fmt_money(na_poc.monthly_cost)}/mo")
    print(f"POC-Europe:  {len(eu_zoo.sites)} sites, "
          f"{eu_poc.backbone.num_links} links, "
          f"{fmt_money(eu_poc.monthly_cost)}/mo")

    na_poc.attach("us-eyeballs", na_zoo.sites[0].router_id, "lmp")
    na_poc.attach("us-video", na_zoo.sites[-1].router_id, "csp")
    eu_poc.attach("eu-eyeballs", eu_zoo.sites[0].router_id, "lmp")

    federation = POCFederation({"america": na_poc, "europe": eu_poc})
    for idx in (1, 2):
        federation.interconnect(
            "america", na_zoo.sites[idx].router_id,
            "europe", eu_zoo.sites[idx].router_id,
            capacity_gbps=400.0, monthly_cost=180_000.0,
        )
    print(f"\nfederation: {len(federation.gateways)} trans-Atlantic gateways, "
          f"total cost {fmt_money(federation.monthly_cost)}/mo")

    path = federation.transit_path(("europe", "eu-eyeballs"), ("america", "us-video"))
    gateways_used = [lid for lid in path.link_ids if lid.startswith("gw")]
    print(f"eu-eyeballs -> us-video: {path.num_hops} hops via "
          f"{len(gateways_used)} gateway(s)")

    usage = {
        ("america", "us-eyeballs"): 60.0,
        ("america", "us-video"): 90.0,
        ("europe", "eu-eyeballs"): 50.0,
    }
    print("\nfederated break-even invoices:")
    invoices = federation.monthly_invoices(usage)
    for (member, name), charge in sorted(invoices.items()):
        print(f"  {member:<8} {name:<12} {fmt_money(charge)}")
    print(f"  {'TOTAL':<21} {fmt_money(sum(invoices.values()))} "
          f"(= federation cost)")
    print("\ntakeaway: federation preserves both core properties — the")
    print("transparent fabric (every attachment reaches every other,")
    print("across operators) and the nonprofit books (global break-even).")


if __name__ == "__main__":
    main()
