"""Federated POCs (§1.2).

"We should note that there could be several coexisting (and
interconnected) POCs, run by different entities but adopting the same
basic principles (nonprofit, focusing on transit, enforcing network
neutrality)."

A :class:`POCFederation` joins provisioned POCs through explicitly-priced
gateway links.  Node ids are namespaced per member (two regional zoos
can share city names), transit crosses members transparently, and the
combined books still break even: every member recovers its own cost and
the gateway costs are split by usage like any other cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import MarketError, ReproError, UnknownNodeError
from repro.core.billing import settlement
from repro.core.poc import PublicOptionCore
from repro.netflow.paths import Path, shortest_path
from repro.topology.graph import Link, Network, Node


def _qualified(member: str, node_id: str) -> str:
    return f"{member}/{node_id}"


@dataclass(frozen=True)
class GatewayLink:
    """An interconnect between two member POCs."""

    id: str
    member_a: str
    site_a: str
    member_b: str
    site_b: str
    capacity_gbps: float
    monthly_cost: float

    def __post_init__(self) -> None:
        if self.member_a == self.member_b:
            raise MarketError("a gateway must join two different POCs")
        if self.capacity_gbps <= 0:
            raise MarketError("gateway capacity must be positive")
        if self.monthly_cost < 0:
            raise MarketError("gateway cost cannot be negative")


class POCFederation:
    """Several POCs, one transparent fabric."""

    def __init__(self, members: Dict[str, PublicOptionCore]) -> None:
        if len(members) < 2:
            raise MarketError("a federation needs at least two member POCs")
        for name, poc in members.items():
            if not poc.provisioned:
                raise ReproError(f"member {name} is not provisioned yet")
        self.members = dict(members)
        self._gateways: List[GatewayLink] = []

    def interconnect(
        self,
        member_a: str,
        site_a: str,
        member_b: str,
        site_b: str,
        *,
        capacity_gbps: float,
        monthly_cost: float,
    ) -> GatewayLink:
        """Add a gateway between two members' router sites."""
        for member, site in ((member_a, site_a), (member_b, site_b)):
            if member not in self.members:
                raise MarketError(f"unknown federation member: {member}")
            if not self.members[member].backbone.has_node(site):
                raise UnknownNodeError(site)
        gateway = GatewayLink(
            id=f"gw{len(self._gateways):03d}:{member_a}--{member_b}",
            member_a=member_a,
            site_a=site_a,
            member_b=member_b,
            site_b=site_b,
            capacity_gbps=capacity_gbps,
            monthly_cost=monthly_cost,
        )
        self._gateways.append(gateway)
        return gateway

    @property
    def gateways(self) -> List[GatewayLink]:
        return list(self._gateways)

    def combined_backbone(self) -> Network:
        """The federated fabric: namespaced member backbones + gateways."""
        net = Network(name="federation")
        for member, poc in sorted(self.members.items()):
            backbone = poc.backbone
            for node in backbone.nodes:
                net.add_node(
                    Node(
                        id=_qualified(member, node.id),
                        point=node.point,
                        city=node.city,
                        kind=node.kind,
                    )
                )
            for link in backbone.iter_links():
                net.add_link(
                    Link(
                        id=_qualified(member, link.id),
                        u=_qualified(member, link.u),
                        v=_qualified(member, link.v),
                        capacity_gbps=link.capacity_gbps,
                        length_km=link.length_km,
                        owner=link.owner,
                    )
                )
        for gw in self._gateways:
            net.add_link(
                Link(
                    id=gw.id,
                    u=_qualified(gw.member_a, gw.site_a),
                    v=_qualified(gw.member_b, gw.site_b),
                    capacity_gbps=gw.capacity_gbps,
                    length_km=0.0,
                    owner=None,
                    virtual=True,
                )
            )
        return net

    # -- transit ---------------------------------------------------------------

    def transit_path(
        self, src: Tuple[str, str], dst: Tuple[str, str]
    ) -> Optional[Path]:
        """Path between two attachments, given as (member, attachment).

        Cross-member paths ride the gateways; the federation, like each
        member, exercises no policy — any attachment reaches any other.
        """
        src_member, src_name = src
        dst_member, dst_name = dst
        src_att = self.members[src_member].attachment(src_name)
        dst_att = self.members[dst_member].attachment(dst_name)
        net = self.combined_backbone()
        a = _qualified(src_member, src_att.site)
        b = _qualified(dst_member, dst_att.site)
        if a == b:
            return Path(nodes=(a,), link_ids=())
        return shortest_path(net, a, b)

    def reachable(self, src: Tuple[str, str], dst: Tuple[str, str]) -> bool:
        return self.transit_path(src, dst) is not None

    # -- economics -----------------------------------------------------------------

    @property
    def monthly_cost(self) -> float:
        """All member costs plus all gateway costs."""
        return (
            sum(poc.monthly_cost for poc in self.members.values())
            + sum(gw.monthly_cost for gw in self._gateways)
        )

    def monthly_invoices(
        self, usage_gbps: Dict[Tuple[str, str], float]
    ) -> Dict[Tuple[str, str], float]:
        """Break-even invoices over all attachments of all members.

        Usage keys are (member, attachment).  The total equals the
        federation's full cost — each member stays a nonprofit and so
        does the federation.
        """
        for member, name in usage_gbps:
            if member not in self.members:
                raise MarketError(f"unknown federation member: {member}")
            self.members[member].attachment(name)  # validates existence
        rows = settlement(sorted(usage_gbps.items()), self.monthly_cost)
        return dict(rows)
