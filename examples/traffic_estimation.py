#!/usr/bin/env python
"""From noisy measurements to an auction-ready traffic bound (§3.3).

"We assume that the POC has some upper-bound estimate of its traffic
matrix."  This example produces that estimate the way an operator would:
four days of hourly snapshots with lognormal burstiness, a 95th-
percentile per-pair figure, a safety factor — then provisions against
the bound and verifies the real traffic fits with headroom.

Run:  python examples/traffic_estimation.py
"""

from repro.auction.constraints import make_constraint
from repro.auction.selection import select_links
from repro.experiments.pipeline import offers_for_zoo, traffic_for_zoo
from repro.netflow.mcf import max_concurrent_flow
from repro.topology.zoo import ZooConfig, build_zoo
from repro.traffic.estimation import (
    EstimatorConfig,
    coverage_ratio,
    overprovision_factor,
    simulate_measurement_window,
)
from repro.units import fmt_bandwidth, fmt_money


def main() -> None:
    zoo = build_zoo(ZooConfig.tiny())
    actual = traffic_for_zoo(zoo)
    offers = offers_for_zoo(zoo)
    print(f"actual traffic matrix: {actual.num_pairs} pairs, "
          f"{fmt_bandwidth(actual.total_gbps())}")

    sampler = simulate_measurement_window(
        actual, snapshots=96, burstiness=0.25, seed=5
    )
    print(f"measurement window: {sampler.num_samples} samples "
          f"(96 snapshots x {actual.num_pairs} pairs)")

    print(f"\n{'safety':>8}{'bound':>12}{'over-prov':>11}{'cost/mo':>14}"
          f"{'actual λ':>10}")
    for safety in (1.0, 1.25, 1.5):
        estimate = sampler.estimate(EstimatorConfig(safety_factor=safety))
        constraint = make_constraint(1, zoo.offered, estimate, engine="greedy")
        outcome = select_links(offers, constraint, method="add-prune")
        backbone = zoo.offered.restricted_to_links(outcome.selected)
        fit = max_concurrent_flow(backbone, actual)
        print(f"{safety:>8.2f}{estimate.total_gbps():>8.0f} Gbps"
              f"{overprovision_factor(estimate, actual):>10.2f}x"
              f"{fmt_money(outcome.total_cost):>15}{fit.lam:>10.2f}")
        assert fit.feasible

    estimate = sampler.estimate()
    print(f"\nper-pair coverage of the default bound: "
          f"{coverage_ratio(estimate, actual):.0%}")
    print("\nreading: the 95th-percentile base absorbs burstiness (rare")
    print("spikes are forgiven, as in commercial transit billing); the")
    print("safety factor then converts measurement risk into priced,")
    print("auditable headroom on the provisioned backbone.")


if __name__ == "__main__":
    main()
