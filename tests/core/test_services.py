"""Tests for QoS classes, anycast, and multicast."""

import pytest

from repro.exceptions import ReproError, UnknownNodeError
from repro.core.services import (
    AnycastGroup,
    QoSClass,
    ServiceCatalogue,
    build_multicast_tree,
)

from tests.conftest import square_network


class TestQoS:
    def test_default_catalogue(self):
        catalogue = ServiceCatalogue.default()
        assert "best-effort" in catalogue.qos_classes
        assert catalogue.qos_classes["premium"].weight > 1.0

    def test_charge_is_posted_and_uniform(self):
        catalogue = ServiceCatalogue.default()
        assert catalogue.qos_charge("assured", 2.0) == pytest.approx(160.0)
        assert catalogue.qos_charge("best-effort", 100.0) == 0.0

    def test_unknown_class(self):
        with pytest.raises(ReproError):
            ServiceCatalogue.default().qos_charge("platinum", 1.0)

    def test_add_class(self):
        catalogue = ServiceCatalogue.default()
        catalogue.add_qos_class(QoSClass("bulk", weight=0.5, posted_price_per_gbps=10.0))
        assert catalogue.qos_charge("bulk", 1.0) == 10.0
        with pytest.raises(ReproError):
            catalogue.add_qos_class(QoSClass("bulk", weight=1.0, posted_price_per_gbps=0.0))

    def test_qos_validation(self):
        with pytest.raises(ReproError):
            QoSClass("x", weight=0.0, posted_price_per_gbps=1.0)
        with pytest.raises(ReproError):
            QoSClass("x", weight=1.0, posted_price_per_gbps=-1.0)

    def test_negative_usage_rejected(self):
        with pytest.raises(ReproError):
            ServiceCatalogue.default().qos_charge("assured", -1.0)


class TestAnycast:
    def test_resolves_nearest(self, square):
        group = AnycastGroup(name="dns", replicas={"B", "D"})
        replica, path = group.resolve(square, "A")
        assert replica in ("B", "D")
        assert path.num_hops == 1

    def test_local_replica_trivial(self, square):
        group = AnycastGroup(name="dns", replicas={"A"})
        replica, path = group.resolve(square, "A")
        assert replica == "A"
        assert path.num_hops == 0

    def test_unreachable_replicas(self, square):
        sub = square.restricted_to_links(["AB"])
        group = AnycastGroup(name="dns", replicas={"C"})
        replica, path = group.resolve(sub, "A")
        assert replica == ""
        assert path is None

    def test_empty_replicas_rejected(self):
        with pytest.raises(ReproError):
            AnycastGroup(name="dns", replicas=set())

    def test_unknown_replica_site(self, square):
        group = AnycastGroup(name="dns", replicas={"Z"})
        with pytest.raises(UnknownNodeError):
            group.resolve(square, "A")

    def test_catalogue_registration(self):
        catalogue = ServiceCatalogue.default()
        catalogue.register_anycast(AnycastGroup(name="dns", replicas={"A"}))
        with pytest.raises(ReproError):
            catalogue.register_anycast(AnycastGroup(name="dns", replicas={"B"}))


class TestMulticast:
    def test_tree_reaches_all_members(self, square):
        tree = build_multicast_tree(square, "g1", "A", ["B", "C", "D"])
        assert tree.members == frozenset({"B", "C", "D"})
        assert tree.size == 3
        # A spanning structure over 4 nodes needs at least 3 links.
        assert len(tree.links) >= 3

    def test_tree_is_acyclic(self, square):
        tree = build_multicast_tree(square, "g1", "A", ["B", "C", "D"])
        touched_nodes = set()
        for lid in tree.links:
            link = square.link(lid)
            touched_nodes.update(link.ends)
        assert len(tree.links) == len(touched_nodes) - 1

    def test_source_in_members_ignored(self, square):
        tree = build_multicast_tree(square, "g1", "A", ["A", "B"])
        assert tree.members == frozenset({"B"})

    def test_empty_members_rejected(self, square):
        with pytest.raises(ReproError):
            build_multicast_tree(square, "g1", "A", ["A"])

    def test_unreachable_member_rejected(self, square):
        sub = square.restricted_to_links(["AB"])
        with pytest.raises(ReproError):
            build_multicast_tree(sub, "g1", "A", ["C"])

    def test_total_km_consistent(self, square):
        tree = build_multicast_tree(square, "g1", "A", ["C"])
        assert tree.total_km == pytest.approx(
            sum(square.link(lid).length_km for lid in tree.links)
        )
