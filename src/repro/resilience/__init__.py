"""Operational resilience: fault injection, degraded mode, retry/fallback.

The paper's survivability constraints (§3.3) make the *selected* link set
tolerate failures on paper; this package makes the running system tolerate
them in practice:

- :mod:`repro.resilience.policy` — retry with exponential backoff +
  jitter, a circuit breaker, and the MILP→heuristic fallback used to
  clear auctions under solver stalls.
- :mod:`repro.resilience.controller` — the degraded-mode POC controller:
  reroute demand over surviving selected links when a link fails
  mid-epoch, defer re-auction to the next round.
- :mod:`repro.resilience.chaos` — a deterministic fault-injection
  harness and end-to-end survivability campaigns (``poc-repro chaos``).
- :mod:`repro.resilience.supervisor` — supervised trial execution for
  sweeps: per-trial deadlines, a hang watchdog, crashed-worker respawn,
  and poison-trial quarantine.
- :mod:`repro.resilience.netfaults` — a seeded TCP fault proxy (drop,
  delay, truncate, duplicate, reset) for breaking the service's wire.
"""

from repro.resilience.chaos import (
    CampaignReport,
    ChaosConfig,
    FaultEvent,
    ScenarioResult,
    injected_link_faults,
    micro_scenario,
    plan_campaign,
    run_campaign,
)
from repro.resilience.controller import DegradedModeController, DegradedState
from repro.resilience.netfaults import FAULT_KINDS, FaultProxy, NetFaultConfig
from repro.resilience.policy import (
    CircuitBreaker,
    ClearingProvenance,
    ResilientAuctioneer,
    RetryPolicy,
    call_with_retry,
)
from repro.resilience.supervisor import (
    IncidentRecord,
    QuarantineLog,
    SupervisionOutcome,
    TrialSupervisor,
    format_incidents,
)

__all__ = [
    "CampaignReport",
    "ChaosConfig",
    "CircuitBreaker",
    "ClearingProvenance",
    "DegradedModeController",
    "DegradedState",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultProxy",
    "NetFaultConfig",
    "IncidentRecord",
    "QuarantineLog",
    "ResilientAuctioneer",
    "RetryPolicy",
    "ScenarioResult",
    "SupervisionOutcome",
    "TrialSupervisor",
    "call_with_retry",
    "format_incidents",
    "injected_link_faults",
    "micro_scenario",
    "plan_campaign",
    "run_campaign",
]
