"""E2 — §4.3 vs §4.4: NN welfare vs unilateral-fee (double-marginalized) UR.

Shape targets: t* > 0 for every family; prices rise; social welfare falls
(strictly for Lemma-1 families, weakly at the Pareto corner).
"""

import pytest

from repro.econ.csp import CSP
from repro.econ.demand import STANDARD_FAMILIES
from repro.econ.neutrality import nn_outcome
from repro.econ.unilateral import unilateral_outcome


def run_comparison():
    csps = [CSP(name=name, demand=d) for name, d in STANDARD_FAMILIES.items()]
    return nn_outcome(csps), unilateral_outcome(csps)


def test_bench_e2_nn_vs_ur(benchmark, report):
    nn, ur = benchmark(run_comparison)

    header = (f"{'family':<14}{'p_nn':>8}{'p_ur':>8}{'t*':>8}"
              f"{'W_nn':>9}{'W_ur':>9}{'loss%':>8}")
    lines = [header, "-" * len(header)]
    total_nn = total_ur = 0.0
    for name, demand in STANDARD_FAMILIES.items():
        from repro.econ.welfare import social_welfare

        w_nn = social_welfare(demand, nn.prices[name])
        w_ur = social_welfare(demand, ur.prices[name])
        total_nn += w_nn
        total_ur += w_ur
        loss = 100.0 * (w_nn - w_ur) / w_nn if w_nn > 0 else 0.0
        lines.append(
            f"{name:<14}{nn.prices[name]:>8.2f}{ur.prices[name]:>8.2f}"
            f"{ur.fees[name]:>8.2f}{w_nn:>9.3f}{w_ur:>9.3f}{loss:>8.1f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'TOTAL':<14}{'':>8}{'':>8}{'':>8}{total_nn:>9.3f}{total_ur:>9.3f}"
        f"{100.0 * (total_nn - total_ur) / total_nn:>8.1f}"
    )
    report("NN vs UR (unilateral fees):\n" + "\n".join(lines))

    assert all(t > 0 for t in ur.fees.values())
    for name in nn.prices:
        assert ur.prices[name] >= nn.prices[name] - 1e-9
    assert ur.social_welfare < nn.social_welfare
    # Strict loss on the smooth families individually.
    from repro.econ.welfare import social_welfare

    for name in ("linear", "exponential", "logit"):
        demand = STANDARD_FAMILIES[name]
        assert social_welfare(demand, ur.prices[name]) < social_welfare(
            demand, nn.prices[name]
        )
