"""Entrant dynamics: how newcomers build (or fail to build) incumbency.

The paper's innovation argument (§4.1, §4.5) is dynamic: fair competition
lets entrants grow, and future welfare comes from that growth.  We model
the minimal version:

- a CSP's *incumbency* (≈ brand stickiness β_s, which feeds the churn
  parameter r of the bargaining model) grows toward 1 at a rate
  proportional to its profitable subscriber base;
- an LMP's *vulnerability* γ_l falls (it becomes harder to leave) as it
  accumulates profitable operation, and its customer base drifts toward
  LMPs that run profitably.

These are deliberately simple first-order dynamics; the benchmark claim
they support is comparative (NN vs UR growth trajectories), not any
absolute growth number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MarketError
from repro.market.entities import CSPAgent, LMPAgent


@dataclass(frozen=True)
class GrowthParams:
    """Rates of the entrant-growth dynamics."""

    #: Incumbency gained per epoch per unit of subscriber mass (CSPs).
    csp_growth_rate: float = 0.08
    #: Incumbency decay per epoch with no subscribers (reputation fades).
    csp_decay_rate: float = 0.01
    #: Vulnerability reduction per epoch of profitable LMP operation.
    lmp_hardening_rate: float = 0.03
    #: Customer drift per epoch toward profitable LMPs (share of base).
    lmp_drift_rate: float = 0.02

    def __post_init__(self) -> None:
        for name in ("csp_growth_rate", "csp_decay_rate", "lmp_hardening_rate", "lmp_drift_rate"):
            if getattr(self, name) < 0:
                raise MarketError(f"{name} cannot be negative")


def grow_csp(agent: CSPAgent, subscribers: float, profit: float, params: GrowthParams) -> None:
    """Advance one CSP's incumbency by one epoch.

    Profitable subscribers compound brand stickiness; an unprofitable or
    unsubscribed service decays toward the entrant floor.
    """
    if subscribers < 0:
        raise MarketError(f"subscribers cannot be negative: {subscribers}")
    if profit > 0 and subscribers > 0:
        gain = params.csp_growth_rate * subscribers
        agent.incumbency = min(1.0, agent.incumbency + gain)
    else:
        agent.incumbency = max(0.05, agent.incumbency - params.csp_decay_rate)


def harden_lmp(agent: LMPAgent, profit: float, params: GrowthParams) -> None:
    """Advance one LMP's vulnerability by one epoch."""
    if profit > 0:
        agent.vulnerability = max(0.02, agent.vulnerability - params.lmp_hardening_rate)
    else:
        agent.vulnerability = min(1.0, agent.vulnerability + params.lmp_hardening_rate / 2.0)


def drift_customers(lmps, profits, params: GrowthParams) -> None:
    """Shift a small share of customers toward profitable LMPs.

    Conserves total customer mass.  ``profits`` maps LMP name → epoch
    profit; drift flows from loss-makers to profit-makers pro rata.
    """
    gainers = [l for l in lmps if profits.get(l.name, 0.0) > 0]
    losers = [l for l in lmps if profits.get(l.name, 0.0) <= 0]
    if not gainers or not losers:
        return
    moved = 0.0
    for loser in losers:
        delta = loser.num_customers * params.lmp_drift_rate
        # Never drain an LMP below a viability floor; zero mass is exit,
        # which the simulator handles separately.
        delta = min(delta, max(0.0, loser.num_customers - 1e-3))
        loser.num_customers -= delta
        moved += delta
    total_gainer_mass = sum(g.num_customers for g in gainers)
    for gainer in gainers:
        gainer.num_customers += moved * gainer.num_customers / total_gainer_mass
