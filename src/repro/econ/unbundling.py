"""Loop unbundling and the POC as complements (§2.5).

"the POC and loop unbundling are highly complementary solutions; one
eases the construction of last-mile infrastructure, and the other ensures
that new entrants need not build their own core or contract with
potentially competing providers for transit and will not face unfair
competition (via higher termination fees) from incumbent LMPs."

We quantify the 2×2 the paragraph describes.  An entrant LMP's monthly
economics have three cost blocks the policy environment controls:

- **last-mile plant**: owned build vs unbundled lease (unbundling),
- **transit**: marked-up contract from a competing incumbent vs
  cost-recovery POC attachment (the POC),
- **fee handicap**: under UR, the incumbent extracts higher termination
  fees from CSPs than the entrant can (the §4.5 gap), which we charge
  against the entrant as foregone per-customer revenue.

The model's output is the entrant's viable-customer-base threshold in
each quadrant; complementarity = the threshold falls more when both
levers flip together than the sum of single-lever improvements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import EconError


@dataclass(frozen=True)
class EntrantCostModel:
    """Monthly cost/revenue parameters for an entrant LMP."""

    #: Revenue per customer (access price).
    access_price: float = 45.0
    #: Monthly cost per customer of an *owned* last-mile build
    #: (amortized capex + opex).
    owned_lastmile_cost: float = 38.0
    #: Monthly cost per customer of an *unbundled* leased loop.
    unbundled_lastmile_cost: float = 22.0
    #: Transit traffic per customer, Gbps.
    gbps_per_customer: float = 0.004
    #: Competing incumbent's transit rate per Gbps (markup included).
    rival_transit_rate: float = 1500.0
    #: POC cost-recovery transit rate per Gbps.
    poc_transit_rate: float = 600.0
    #: Per-customer termination-fee revenue the *incumbent* earns under
    #: UR that the entrant cannot match (the §4.5 incumbency gap),
    #: charged against the entrant as a competitive handicap.
    ur_fee_handicap: float = 6.0
    #: Fixed monthly overhead (NOC, staff, interconnects).
    fixed_cost: float = 120_000.0

    def __post_init__(self) -> None:
        for name in (
            "access_price", "owned_lastmile_cost", "unbundled_lastmile_cost",
            "gbps_per_customer", "rival_transit_rate", "poc_transit_rate",
            "ur_fee_handicap", "fixed_cost",
        ):
            if getattr(self, name) < 0:
                raise EconError(f"{name} cannot be negative")


@dataclass(frozen=True)
class QuadrantOutcome:
    """The entrant's economics in one policy quadrant."""

    unbundling: bool
    poc: bool
    margin_per_customer: float
    #: Customers needed to cover fixed costs (inf if margin <= 0).
    breakeven_customers: float

    @property
    def viable(self) -> bool:
        return self.margin_per_customer > 0


def quadrant(model: EntrantCostModel, *, unbundling: bool, poc: bool) -> QuadrantOutcome:
    """The entrant's margin and break-even scale in one quadrant.

    Without the POC the entrant buys marked-up rival transit *and* faces
    the UR fee handicap (no contractual neutrality to shield it); with
    the POC it gets cost-recovery transit and the handicap disappears
    (the POC's terms-of-service bar termination fees entirely).
    """
    lastmile = (
        model.unbundled_lastmile_cost if unbundling else model.owned_lastmile_cost
    )
    transit_rate = model.poc_transit_rate if poc else model.rival_transit_rate
    transit = transit_rate * model.gbps_per_customer
    handicap = 0.0 if poc else model.ur_fee_handicap
    margin = model.access_price - lastmile - transit - handicap
    breakeven = model.fixed_cost / margin if margin > 0 else float("inf")
    return QuadrantOutcome(
        unbundling=unbundling,
        poc=poc,
        margin_per_customer=margin,
        breakeven_customers=breakeven,
    )


def policy_matrix(model: EntrantCostModel) -> Dict[str, QuadrantOutcome]:
    """All four quadrants, keyed 'neither'/'unbundling'/'poc'/'both'."""
    return {
        "neither": quadrant(model, unbundling=False, poc=False),
        "unbundling": quadrant(model, unbundling=True, poc=False),
        "poc": quadrant(model, unbundling=False, poc=True),
        "both": quadrant(model, unbundling=True, poc=True),
    }


def complementarity(model: EntrantCostModel) -> float:
    """Supermodularity of the entrant's margin in the two levers.

        Δ = [m(both) − m(poc)] − [m(unbundling) − m(neither)]

    In margin terms the levers are additive (Δ = 0); the economically
    meaningful complementarity appears in the *break-even scale*, which
    is convex in the margin — so we report the scale version:

        C = [1/b(neither) − 1/b(unbundling)] vs [1/b(poc) − 1/b(both)]

    Positive return = flipping unbundling helps more when the POC is
    already in place (per dollar of fixed cost, viable-scale reduction).
    """
    m = policy_matrix(model)

    def inv(b: float) -> float:
        return 0.0 if b == float("inf") else 1.0 / b

    gain_without_poc = inv(m["unbundling"].breakeven_customers) - inv(
        m["neither"].breakeven_customers
    )
    gain_with_poc = inv(m["both"].breakeven_customers) - inv(
        m["poc"].breakeven_customers
    )
    return gain_with_poc - gain_without_poc
