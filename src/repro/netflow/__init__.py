"""Flow and routing substrate.

The auction's core primitive is a *feasibility oracle*: can a candidate
set of links carry the POC's traffic matrix (Section 3.3, the acceptable
sets A(OL))?  This package provides:

- exact feasibility via a max-concurrent-flow LP (:mod:`repro.netflow.mcf`),
- fast heuristic oracles (:mod:`repro.netflow.feasibility`),
- path utilities and shortest-path routing (:mod:`repro.netflow.paths`,
  :mod:`repro.netflow.routing`),
- failure-scenario enumeration for the survivability constraints
  (:mod:`repro.netflow.failures`).
"""

from repro.netflow.feasibility import (
    FeasibilityResult,
    GreedyOracle,
    MCFOracle,
    PathOracle,
    ShortestPathOracle,
    make_oracle,
)
from repro.netflow.latency import LatencyReport, latency_report
from repro.netflow.mcf import max_concurrent_flow, mcf_feasible
from repro.netflow.model import McfModel, ModelCache, get_model, model_cache
from repro.netflow.pathmcf import PathMcfModel, k_diverse_paths
from repro.netflow.paths import Path, k_shortest_paths, shortest_path

__all__ = [
    "FeasibilityResult",
    "GreedyOracle",
    "MCFOracle",
    "PathOracle",
    "ShortestPathOracle",
    "make_oracle",
    "PathMcfModel",
    "k_diverse_paths",
    "LatencyReport",
    "latency_report",
    "max_concurrent_flow",
    "mcf_feasible",
    "McfModel",
    "ModelCache",
    "get_model",
    "model_cache",
    "Path",
    "k_shortest_paths",
    "shortest_path",
]
