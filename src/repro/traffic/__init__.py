"""Traffic substrate: synthetic traffic matrices over POC routers.

Section 3.3 uses "a synthetic traffic matrix between all POC routers" as
the auction's demand input.  This package provides the standard synthetic
TM models (gravity, uniform, hotspot) plus scaling utilities.
"""

from repro.traffic.estimation import EstimatorConfig, TrafficSampler
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.gravity import gravity_matrix
from repro.traffic.synthetic import hotspot_matrix, uniform_matrix

__all__ = [
    "EstimatorConfig",
    "TrafficSampler",
    "TrafficMatrix",
    "gravity_matrix",
    "uniform_matrix",
    "hotspot_matrix",
]
