"""Tests for unit helpers."""

import pytest

from repro.units import (
    close,
    fmt_bandwidth,
    fmt_money,
    fmt_pct,
    gbps,
    mbps,
    per_month,
    per_year,
    tbps,
)


class TestConversions:
    def test_mbps(self):
        assert mbps(250.0) == pytest.approx(0.25)

    def test_tbps(self):
        assert tbps(1.5) == pytest.approx(1500.0)

    def test_gbps_identity(self):
        assert gbps(7) == 7.0

    def test_annualize_roundtrip(self):
        assert per_month(per_year(123.0)) == pytest.approx(123.0)


class TestFormatting:
    def test_bandwidth_scales(self):
        assert fmt_bandwidth(0.25) == "250 Mbps"
        assert fmt_bandwidth(40.0) == "40 Gbps"
        assert fmt_bandwidth(2500.0) == "2.5 Tbps"

    def test_bandwidth_negative_rejected(self):
        with pytest.raises(ValueError):
            fmt_bandwidth(-1.0)

    def test_money(self):
        assert fmt_money(1234567.891) == "$1,234,567.89"
        assert fmt_money(-5.0) == "-$5.00"

    def test_pct(self):
        assert fmt_pct(0.1234) == "12.3%"
        assert fmt_pct(0.1234, digits=2) == "12.34%"


class TestClose:
    def test_close(self):
        assert close(1.0, 1.0 + 1e-12)
        assert not close(1.0, 1.01)
