"""The Public Option for the Core itself.

This package assembles the substrates into the system of Section 3:

- :mod:`repro.core.poc` — the POC: provisions its backbone through the
  bandwidth auction, attaches LMPs/CSPs/external ISPs, carries transit,
  and recoups its costs from attached customers.
- :mod:`repro.core.tos` — the terms-of-service of §3.4: the three peering
  conditions, their security/maintenance exceptions, and the distinction
  between (allowed) posted-price QoS and (forbidden) service
  discrimination.
- :mod:`repro.core.billing` — customer charging schemes (flat, usage,
  tiered) and the POC's break-even transit pricing.
- :mod:`repro.core.services` — §3.1's optional services: QoS classes,
  anycast, and multicast, all offered openly at posted prices.
"""

from repro.core.billing import (
    BillingScheme,
    FlatRate,
    TieredRate,
    UsageBasedRate,
    break_even_rate,
)
from repro.core.poc import Attachment, PublicOptionCore
from repro.core.tos import (
    Clause,
    PolicyAction,
    PolicyReason,
    TermsOfService,
    TrafficPolicy,
)

__all__ = [
    "BillingScheme",
    "FlatRate",
    "TieredRate",
    "UsageBasedRate",
    "break_even_rate",
    "Attachment",
    "PublicOptionCore",
    "Clause",
    "PolicyAction",
    "PolicyReason",
    "TermsOfService",
    "TrafficPolicy",
]
