"""Tests for de-peering disputes and fragmentation accounting."""

import pytest

from repro.exceptions import PolicyError
from repro.interdomain.disputes import (
    DisputeScenario,
    copy_graph,
    depeer,
    reachability_impact,
    single_homed_stubs,
)
from repro.interdomain.relationships import ASGraph, Relationship, small_internet


@pytest.fixture
def g():
    return small_internet()


class TestCopyAndDepeer:
    def test_copy_is_independent(self, g):
        clone = copy_graph(g)
        assert clone.as_names == g.as_names
        clone2 = depeer(clone, "trA", "trB")
        # Original untouched.
        assert g.relationship("trA", "trB") is Relationship.PEER
        assert clone2.relationship("trA", "trB") is None

    def test_depeer_removes_both_directions(self, g):
        after = depeer(g, "eyeball1", "trA")
        assert after.relationship("eyeball1", "trA") is None
        assert after.relationship("trA", "eyeball1") is None

    def test_depeer_requires_edge(self, g):
        with pytest.raises(PolicyError):
            depeer(g, "eyeball1", "eyeball2")


class TestImpact:
    def test_redundant_edge_no_damage(self, g):
        # content1 multihomes to trA and trC: losing one provider hurts
        # nothing (reachability-wise).
        after = depeer(g, "content1", "trA")
        impact = reachability_impact(g, after)
        assert impact.lost_pairs == ()
        assert impact.lost_fraction == 0.0

    def test_single_homed_stub_stranded(self, g):
        after = depeer(g, "eyeball3", "trC")
        impact = reachability_impact(g, after)
        assert impact.lost_fraction > 0
        assert impact.strands("eyeball3")
        # Every lost pair involves the stranded stub.
        assert all("eyeball3" in pair for pair in impact.lost_pairs)

    def test_tier1_depeering_partitions(self, g):
        """The nightmare §3.4 alludes to: the two tier-1s stop peering
        and the Internet splits along the hierarchy."""
        after = depeer(g, "T1a", "T1b")
        impact = reachability_impact(g, after)
        assert impact.lost_fraction > 0.3
        # Both sides lose someone.
        assert impact.strands("eyeball1")
        assert impact.strands("eyeball3")


class TestScenario:
    def test_sequential_events(self, g):
        scenario = DisputeScenario(graph=g)
        scenario.add_dispute("content1", "trA")  # harmless (multihomed)
        scenario.add_dispute("content1", "trC")  # now stranded
        results = scenario.run()
        assert len(results) == 2
        first_impact = results[0][1]
        second_impact = results[1][1]
        assert first_impact.lost_fraction == 0.0
        assert second_impact.strands("content1")

    def test_cumulative_equals_final_state(self, g):
        scenario = DisputeScenario(graph=g)
        scenario.add_dispute("content1", "trA")
        scenario.add_dispute("content1", "trC")
        cumulative = scenario.cumulative_impact()
        assert cumulative.strands("content1")
        # Original graph untouched by the scenario run.
        assert g.relationship("content1", "trA") is Relationship.PROVIDER

    def test_scenario_does_not_mutate_input(self, g):
        scenario = DisputeScenario(graph=g)
        scenario.add_dispute("T1a", "T1b")
        scenario.run()
        assert g.relationship("T1a", "T1b") is Relationship.PEER


class TestSingleHomed:
    def test_finds_fragile_stubs(self, g):
        fragile = single_homed_stubs(g)
        assert "eyeball1" in fragile
        assert "eyeball3" in fragile
        assert "content1" not in fragile  # multihomed

    def test_transits_not_listed(self, g):
        assert "trA" not in single_homed_stubs(g)
