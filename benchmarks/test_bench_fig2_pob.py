"""F2 — Figure 2: payment-over-bid margins, 5 largest BPs × 3 constraints.

Paper setup: TopologyZoo → 20 BPs → POC routers at ≥4-BP colocations →
4674 logical links → synthetic TM → VCG auction under Constraints #1/2/3.
Reproduction: the seeded SyntheticZoo at the ``tiny`` preset (the
paper-scale preset is exercised in the T1 bench; the auction itself is
preset-independent).  Shape targets, per the paper:

- PoB ≥ 0 for every BP (individual rationality);
- "high variation in the PoB" across BPs and constraints;
- stricter constraints select weakly costlier link sets.
"""

import pytest

from repro.experiments.figure2 import Figure2Config, run_figure2


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(Figure2Config(preset="tiny", seed=2020, method="add-prune"))


def test_bench_fig2_pob(benchmark, report, figure2):
    # The heavy run happened once in the fixture; benchmark the cheap
    # constraint-1 leg so timing is still recorded without re-running
    # the full three-constraint sweep.
    benchmark.pedantic(
        lambda: run_figure2(
            Figure2Config(preset="tiny", seed=2020, constraints=(1,))
        ),
        rounds=1,
        iterations=1,
    )
    report(figure2.formatted())

    rows = figure2.rows
    assert len(rows) == 3 * len(figure2.largest_bps)

    # Individual rationality: every defined PoB is non-negative.
    for row in rows:
        if row.pob is not None:
            assert row.pob >= -1e-9, row

    # The paper's headline: high variation in PoB.
    variation = figure2.variation()
    assert variation["spread"] > 0.1

    # Constraint stringency: total declared cost weakly increases
    # from constraint 1 to the survivability constraints.
    costs = {s.constraint: s.total_declared_cost for s in figure2.summaries}
    assert costs["constraint-2"] >= costs["constraint-1"] - 1e-6
    assert costs["constraint-3"] >= costs["constraint-1"] - 1e-6


def test_bench_fig2_largest_bps_ordering(benchmark, figure2):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """Figure 2 lists the five largest BPs in decreasing size order."""
    shares = figure2.zoo.link_shares
    sizes = [shares[bp] for bp in figure2.largest_bps]
    assert sizes == sorted(sizes, reverse=True)
    assert len(figure2.largest_bps) == 5


def test_bench_fig2_tm_ablation(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """DESIGN.md §5.4: the PoB variation shape holds across TM models."""
    lines = []
    for model in ("gravity", "uniform", "hotspot"):
        result = run_figure2(
            Figure2Config(preset="tiny", seed=2020, constraints=(1,), tm_model=model)
        )
        var = result.variation()
        lines.append(
            f"{model:<9} spread={var['spread']:.3f} "
            f"min={var['min']:.3f} max={var['max']:.3f}"
        )
        for row in result.rows:
            if row.pob is not None:
                assert row.pob >= -1e-9
    report("PoB spread by TM model (constraint-1):\n" + "\n".join(lines))
