"""Span-based tracing on the monotonic clock.

A :class:`TraceCollector` records a tree of named spans per trial.  All
timing uses ``time.perf_counter()`` (monotonic, highest available
resolution) — wall-clock time never enters elapsed math, so an NTP step
mid-solve cannot produce a negative or inflated duration.

Each finished span knows its *inclusive* duration and its *self* time
(inclusive minus direct children), which is what phase attribution
wants: time inside ``mcf.solve`` must not be double-counted against the
enclosing ``auction.pivot``.  Self times per span name therefore
partition the root span's duration exactly — the ``perf`` report's
"attributes 100% of trial wall time" property is by construction, not
by luck.

Spans are recorded through :func:`repro.obs.span`, which resolves the
active collector at ``__enter__`` time and is a shared no-op when
tracing is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ObservabilityError

#: Span tag values must be JSON scalars so trace lines encode canonically.
_TAG_SCALARS = (str, int, float, bool, type(None))


def _clean_tags(tags: Mapping[str, object]) -> Dict[str, object]:
    return {
        key: value if isinstance(value, _TAG_SCALARS) else str(value)
        for key, value in tags.items()
    }


@dataclass
class SpanRecord:
    """One finished span."""

    index: int  # start order, 0-based; stable across identical runs
    name: str
    t0_s: float  # start offset from the collector's origin
    dur_s: float  # inclusive duration
    self_s: float  # duration minus direct children
    depth: int  # 0 = root
    parent: int  # parent span index, -1 for the root
    tags: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "span": self.index,
            "name": self.name,
            "t0_s": self.t0_s,
            "dur_s": self.dur_s,
            "self_s": self.self_s,
            "depth": self.depth,
            "parent": self.parent,
            "tags": self.tags,
        }


class _OpenSpan:
    __slots__ = ("index", "name", "started", "t0_s", "parent", "tags", "child_s")

    def __init__(self, index, name, started, t0_s, parent, tags) -> None:
        self.index = index
        self.name = name
        self.started = started
        self.t0_s = t0_s
        self.parent = parent
        self.tags = tags
        self.child_s = 0.0


class TraceCollector:
    """Collects one process-local tree (or forest) of spans."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._stack: List[_OpenSpan] = []
        self._next_index = 0
        self.spans: List[SpanRecord] = []

    def start(self, name: str, tags: Mapping[str, object]) -> _OpenSpan:
        now = time.perf_counter()
        open_span = _OpenSpan(
            index=self._next_index,
            name=name,
            started=now,
            t0_s=now - self._origin,
            parent=self._stack[-1].index if self._stack else -1,
            tags=_clean_tags(tags) if tags else {},
        )
        self._next_index += 1
        self._stack.append(open_span)
        return open_span

    def finish(self, open_span: _OpenSpan) -> SpanRecord:
        if not self._stack or self._stack[-1] is not open_span:
            raise ObservabilityError(
                f"span {open_span.name!r} finished out of order; spans must "
                "nest (exit the innermost span first)"
            )
        self._stack.pop()
        dur = time.perf_counter() - open_span.started
        if self._stack:
            self._stack[-1].child_s += dur
        record = SpanRecord(
            index=open_span.index,
            name=open_span.name,
            t0_s=open_span.t0_s,
            dur_s=dur,
            self_s=max(0.0, dur - open_span.child_s),
            depth=len(self._stack),
            parent=open_span.parent,
            tags=open_span.tags,
        )
        self.spans.append(record)
        return record

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def close_open(self, *, keep_depth: int = 0) -> None:
        """Finish still-open spans innermost-first down to ``keep_depth``.

        Used when an exception (trial timeout, solver failure) unwinds
        past ``with span(...)`` blocks that a ``BaseException`` skipped,
        so the trace stays balanced and self-times stay exact.
        """
        while len(self._stack) > keep_depth:
            self.finish(self._stack[-1])

    def ordered_spans(self) -> List[SpanRecord]:
        """Spans in start order (finish order puts children first)."""
        return sorted(self.spans, key=lambda s: s.index)

    def self_times(self) -> Tuple[Dict[str, float], Dict[str, int]]:
        """Per-name self time and call counts over all finished spans."""
        totals: Dict[str, float] = {}
        calls: Dict[str, int] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.self_s
            calls[span.name] = calls.get(span.name, 0) + 1
        return totals, calls
