"""repro — a reproduction of "A Public Option for the Core" (SIGCOMM 2020).

The library builds, from scratch, every system the paper describes:

- ``repro.topology`` — synthetic TopologyZoo-style operator networks,
  BP formation, POC router placement, logical links (§3.3's input).
- ``repro.traffic`` — synthetic traffic matrices.
- ``repro.netflow`` — multi-commodity-flow feasibility and routing.
- ``repro.auction`` — the strategy-proof VCG bandwidth auction (§3.3).
- ``repro.econ`` — the network-neutrality economic model (§4).
- ``repro.market`` — an agent-based ecosystem simulator with a ledger.
- ``repro.interdomain`` — the status-quo BGP/transit baseline (§2).
- ``repro.core`` — the POC itself: provisioning, attachment, transit,
  break-even billing, and terms-of-service enforcement (§3).

Quick start::

    from repro.topology import ZooConfig, SyntheticZoo
    from repro.traffic import gravity_matrix
    from repro.core import PublicOptionCore

See ``examples/quickstart.py`` for a complete walk-through and DESIGN.md
for the system inventory and experiment index.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
