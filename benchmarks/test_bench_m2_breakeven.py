"""M2 — §3.2's payment structure: the POC breaks even, money flows align.

Audits the simulator's ledger: the POC's surplus is zero every epoch,
every payment class flows in the §3.2 direction, and money is conserved
globally.
"""

import pytest

from repro.market.entities import founding_catalogue, founding_lmps
from repro.market.sim import MarketConfig, MarketSim, Regime

EPOCHS = 12
POC_COST = 7.5


def run():
    sim = MarketSim(
        MarketConfig(regime=Regime.UR, epochs=EPOCHS, poc_monthly_cost=POC_COST),
        founding_catalogue(), founding_lmps(),
    )
    history = sim.run()
    return sim, history


def test_bench_m2_breakeven(benchmark, report):
    sim, history = benchmark.pedantic(run, rounds=1, iterations=1)
    ledger = sim.ledger

    flows = {
        "service (consumers -> CSPs)": sum(
            t.amount for t in ledger.journal(memo_prefix="service")
        ),
        "access (consumers -> LMPs)": sum(
            t.amount for t in ledger.journal(memo_prefix="access")
        ),
        "termination (CSPs -> LMPs)": sum(
            t.amount for t in ledger.journal(memo_prefix="termination")
        ),
        "transit (all -> POC)": sum(
            t.amount for t in ledger.journal(memo_prefix="transit")
        ),
        "leases (POC -> BPs)": sum(
            t.amount for t in ledger.journal(memo_prefix="leases")
        ),
    }
    lines = [f"{name:<32}{amount:>12.2f}" for name, amount in flows.items()]
    lines.append(f"{'POC final balance':<32}{ledger.balance('POC'):>12.2f}")
    lines.append(f"{'global imbalance':<32}{ledger.total_balance:>12.2e}")
    report(f"Money flows over {EPOCHS} months (UR regime):\n" + "\n".join(lines))

    # Nonprofit invariant, every epoch and at the end.
    for record in history.records:
        assert record.poc_surplus == pytest.approx(0.0, abs=1e-9)
    assert ledger.balance("POC") == pytest.approx(0.0, abs=1e-6)

    # Transit collected == leases disbursed == cost × months.
    assert flows["transit (all -> POC)"] == pytest.approx(EPOCHS * POC_COST)
    assert flows["leases (POC -> BPs)"] == pytest.approx(EPOCHS * POC_COST)

    # Conservation and journal/balance consistency.
    assert ledger.total_balance == pytest.approx(0.0, abs=1e-6)
    ledger.audit()

    # Directionality: consumers only pay, BP pool only receives.
    for name, acct in sorted(ledger.balances_by_kind("consumer").items()):
        assert acct <= 1e-9, name
    assert ledger.balance("BP-pool") == pytest.approx(EPOCHS * POC_COST)
