"""M3 — §5's deployment story: incremental adoption and commoditization.

"hoping that a radically different way of structuring the Internet could
start off almost as a demonstration project, and then grow over time
into a true alternative" — plus Spolsky's force: as the POC grows, it
commoditizes incumbent transit, which accelerates its own adoption.
"""

import pytest

from repro.market.adoption import (
    AdoptionConfig,
    expected_trajectory,
    simulate_adoption,
)


def run():
    base = AdoptionConfig(num_lmps=100, epochs=60, seed=7)
    stochastic = simulate_adoption(base)
    mean_field = expected_trajectory(base)
    no_confidence = expected_trajectory(
        AdoptionConfig(num_lmps=100, epochs=60, confidence_weight=0.0)
    )
    # No price advantage AND no herding: only the base trickle remains.
    # (With confidence left on, herding alone eventually compounds the
    # trickle to full adoption — slower, but the model is honest that
    # pure bandwagon dynamics exist; zeroing both isolates the savings
    # force.)
    no_savings = expected_trajectory(
        AdoptionConfig(num_lmps=100, epochs=60, confidence_weight=0.0,
                       poc_price=1200.0, incumbent_price0=1200.0)
    )
    return stochastic, mean_field, no_confidence, no_savings


def test_bench_m3_adoption(benchmark, report):
    stochastic, mean_field, no_confidence, no_savings = benchmark(run)

    checkpoints = [0, 5, 10, 20, 40, 59]
    lines = [f"{'epoch':>6}{'share':>8}{'incumbent $/Gbps':>18}{'hazard':>9}"]
    for e in checkpoints:
        r = mean_field.records[e]
        lines.append(
            f"{r.epoch:>6}{r.share:>8.0%}{r.incumbent_price:>18,.0f}"
            f"{r.hazard:>9.3f}"
        )
    lines += [
        "",
        f"epochs to 50% share: mean-field={mean_field.epochs_to_share(0.5)}"
        f"  stochastic={stochastic.epochs_to_share(0.5)}",
        f"final share without confidence effect: {no_confidence.final_share:.0%}",
        f"final share, no advantage & no herding: {no_savings.final_share:.0%}",
    ]
    report("POC adoption (mean-field trajectory):\n" + "\n".join(lines))

    # The S-curve takes off and saturates.
    assert mean_field.final_share > 0.95
    assert stochastic.final_share > 0.9
    # Commoditization: incumbent prices fall monotonically with share.
    prices = mean_field.price_series()
    assert prices[-1] < prices[0]
    assert all(b <= a + 1e-9 for a, b in zip(prices, prices[1:]))
    # Both forces matter: removing either slows or kills adoption.
    t_full = mean_field.epochs_to_share(0.5)
    t_shy = no_confidence.epochs_to_share(0.5)
    assert t_shy is None or t_shy >= t_full
    assert no_savings.final_share < 0.5


def test_bench_m3_price_advantage_sensitivity(benchmark, report):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """Adoption speed vs the POC's cost advantage."""
    lines = [f"{'poc $/Gbps':>11}{'advantage':>11}{'t(50%)':>8}{'final':>8}"]
    for poc_price in (1000.0, 800.0, 600.0, 400.0):
        cfg = AdoptionConfig(num_lmps=100, epochs=80, poc_price=poc_price)
        h = expected_trajectory(cfg)
        adv = (cfg.incumbent_price0 - poc_price) / cfg.incumbent_price0
        t50 = h.epochs_to_share(0.5)
        lines.append(
            f"{poc_price:>11,.0f}{adv:>11.0%}"
            f"{str(t50 if t50 is not None else '—'):>8}{h.final_share:>8.0%}"
        )
    report("Adoption speed vs POC price advantage:\n" + "\n".join(lines))
