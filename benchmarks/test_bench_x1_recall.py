"""X1 — extension: recurring auctions under capacity recall (§3.3).

The paper argues large CSPs will lease spare capacity to the POC because
they "can quickly recall it ... when needed."  The operational question
that raises: how stable are the POC's costs and its selected backbone
when supply fluctuates?  This bench runs 12 monthly re-clears with two
cloud BPs subject to hard recalls and reports volatility/churn.
"""

import pytest

from repro.auction.rounds import RecallModel, RecurringAuction

ROUNDS = 12


def run_recurring(zoo, tm, offers, *, recall_probability):
    cloud = frozenset(zoo.largest_bps(2))
    recall = RecallModel(
        cloud_bps=cloud,
        recall_probability=recall_probability,
        recall_floor=0.25,
        min_availability=0.6,
    )
    auction = RecurringAuction(
        zoo.offered, offers, tm, recall=recall, seed=11, engine="greedy",
        method="add-prune",
    )
    return auction.run(ROUNDS)


def test_bench_x1_recall(benchmark, report, tiny_workload):
    zoo, tm, offers = tiny_workload
    outcome = benchmark.pedantic(
        lambda: run_recurring(zoo, tm, offers, recall_probability=0.25),
        rounds=1, iterations=1,
    )

    costs = outcome.cost_series()
    lines = [
        f"rounds:              {ROUNDS}",
        f"cloud BPs (recall):  {', '.join(sorted(zoo.largest_bps(2)))}",
        f"POC cost mean:       {sum(costs) / len(costs):>14,.0f}",
        f"POC cost min..max:   {min(costs):>14,.0f} .. {max(costs):,.0f}",
        f"cost volatility:     {outcome.cost_volatility():>14.3f} (coeff. of variation)",
        f"backbone churn:      {outcome.winner_churn():>14.3f} (mean Jaccard distance)",
        f"fallback rounds:     {outcome.fallback_rate():>14.1%}",
    ]
    report("Recurring auction under capacity recall:\n" + "\n".join(lines))

    assert len(costs) == ROUNDS
    assert all(c > 0 for c in costs)
    # Re-clearing keeps the POC functional every round.
    assert all(r.result is not None for r in outcome.rounds)
    # Fluctuating supply must actually move the backbone (else the recall
    # model is inert and the bench is vacuous).
    assert outcome.winner_churn() > 0.05


def test_bench_x1_recall_severity(benchmark, report, tiny_workload):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """More recall pressure => weakly more churn (coarse monotonicity)."""
    zoo, tm, offers = tiny_workload
    calm = run_recurring(zoo, tm, offers, recall_probability=0.0)
    stormy = run_recurring(zoo, tm, offers, recall_probability=0.6)
    report(
        f"churn calm={calm.winner_churn():.3f} "
        f"stormy={stormy.winner_churn():.3f}; "
        f"volatility calm={calm.cost_volatility():.3f} "
        f"stormy={stormy.cost_volatility():.3f}"
    )
    assert stormy.winner_churn() >= calm.winner_churn() - 0.1
