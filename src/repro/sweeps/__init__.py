"""Parallel scenario sweeps: declarative grids, pooled execution, caching.

The subsystem the ROADMAP's "as many scenarios as you can imagine" goal
rests on.  Dataflow::

    SweepSpec ──trials()──► shard ──workers──► ResultStore ──► aggregate
      (grid)    (seeded)    (round-robin)      (JSONL cache)    (group-by)

See DESIGN.md §8 for the full design, trial-key hashing rules, and the
resume semantics.
"""

from repro.sweeps.aggregate import (
    GroupStat,
    MetricStat,
    aggregate,
    format_report,
    report_json,
)
from repro.sweeps.cache import ResultStore, trial_key
from repro.sweeps.registry import (
    Experiment,
    get_experiment,
    register,
    registered_names,
)
from repro.sweeps.runner import (
    SweepProgress,
    SweepResult,
    SweepRunner,
    TrialOutcome,
    run_sweep,
)
from repro.sweeps.spec import Axis, SweepSpec, Trial, load_payload

__all__ = [
    "Axis",
    "Experiment",
    "GroupStat",
    "MetricStat",
    "ResultStore",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "Trial",
    "TrialOutcome",
    "aggregate",
    "format_report",
    "get_experiment",
    "load_payload",
    "register",
    "registered_names",
    "report_json",
    "run_sweep",
    "trial_key",
]
