"""Tests for weighted max-min allocation."""

import pytest

from repro.exceptions import FlowError
from repro.dataplane.fairshare import is_max_min_fair, max_min_allocation


class TestSingleLink:
    def test_equal_split(self):
        rates = max_min_allocation(
            {"a": ["l"], "b": ["l"]},
            {"a": 10.0, "b": 10.0},
            {"a": 1.0, "b": 1.0},
            {"l": 10.0},
        )
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_weighted_split(self):
        rates = max_min_allocation(
            {"a": ["l"], "b": ["l"]},
            {"a": 10.0, "b": 10.0},
            {"a": 3.0, "b": 1.0},
            {"l": 8.0},
        )
        assert rates["a"] == pytest.approx(6.0)
        assert rates["b"] == pytest.approx(2.0)

    def test_demand_capped_flow_releases_share(self):
        rates = max_min_allocation(
            {"a": ["l"], "b": ["l"]},
            {"a": 2.0, "b": 10.0},
            {"a": 1.0, "b": 1.0},
            {"l": 10.0},
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_uncongested_gives_full_demand(self):
        rates = max_min_allocation(
            {"a": ["l"]}, {"a": 3.0}, {"a": 1.0}, {"l": 100.0}
        )
        assert rates["a"] == pytest.approx(3.0)


class TestMultiLink:
    def test_bottleneck_propagates(self):
        # a crosses l1 (thin) and l2; b crosses only l2 and inherits
        # a's leftover on l2.
        rates = max_min_allocation(
            {"a": ["l1", "l2"], "b": ["l2"]},
            {"a": 10.0, "b": 10.0},
            {"a": 1.0, "b": 1.0},
            {"l1": 2.0, "l2": 10.0},
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_classic_parking_lot(self):
        # Long flow across both links, one short flow per link.
        rates = max_min_allocation(
            {"long": ["l1", "l2"], "s1": ["l1"], "s2": ["l2"]},
            {"long": 10.0, "s1": 10.0, "s2": 10.0},
            {"long": 1.0, "s1": 1.0, "s2": 1.0},
            {"l1": 10.0, "l2": 10.0},
        )
        assert rates["long"] == pytest.approx(5.0)
        assert rates["s1"] == pytest.approx(5.0)
        assert rates["s2"] == pytest.approx(5.0)

    def test_capacity_respected(self):
        rates = max_min_allocation(
            {"a": ["l1", "l2"], "b": ["l1"], "c": ["l2"]},
            {"a": 100.0, "b": 100.0, "c": 100.0},
            {"a": 1.0, "b": 2.0, "c": 1.0},
            {"l1": 9.0, "l2": 6.0},
        )
        assert rates["a"] + rates["b"] <= 9.0 + 1e-6
        assert rates["a"] + rates["c"] <= 6.0 + 1e-6

    def test_result_is_max_min_fair(self):
        paths = {"a": ["l1", "l2"], "b": ["l1"], "c": ["l2"], "d": ["l2"]}
        demands = {"a": 100.0, "b": 3.0, "c": 100.0, "d": 100.0}
        weights = {"a": 1.0, "b": 1.0, "c": 2.0, "d": 1.0}
        capacities = {"l1": 9.0, "l2": 6.0}
        rates = max_min_allocation(paths, demands, weights, capacities)
        assert is_max_min_fair(rates, paths, demands, weights, capacities)


class TestValidation:
    def test_empty_path_rejected(self):
        with pytest.raises(FlowError):
            max_min_allocation({"a": []}, {"a": 1.0}, {"a": 1.0}, {"l": 1.0})

    def test_repeated_link_rejected(self):
        with pytest.raises(FlowError):
            max_min_allocation(
                {"a": ["l", "l"]}, {"a": 1.0}, {"a": 1.0}, {"l": 1.0}
            )

    def test_unknown_link_rejected(self):
        with pytest.raises(FlowError):
            max_min_allocation({"a": ["x"]}, {"a": 1.0}, {"a": 1.0}, {"l": 1.0})

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(FlowError):
            max_min_allocation({"a": ["l"]}, {"a": 0.0}, {"a": 1.0}, {"l": 1.0})

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(FlowError):
            max_min_allocation({"a": ["l"]}, {"a": 1.0}, {"a": 1.0}, {"l": 0.0})

    def test_no_flows(self):
        assert max_min_allocation({}, {}, {}, {"l": 5.0}) == {}


class TestKernelEquivalence:
    """The vector kernel is the scalar specification, bit for bit."""

    def _random_case(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n_links = int(rng.integers(2, 9))
        links = [f"l{i}" for i in range(n_links)]
        capacities = {
            lid: float(np.round(rng.uniform(0.5, 40.0), 3)) for lid in links
        }
        n_flows = int(rng.integers(1, 13))
        flow_paths, demands, weights = {}, {}, {}
        for f in range(n_flows):
            length = int(rng.integers(1, n_links + 1))
            path = [links[int(i)] for i in
                    rng.choice(n_links, size=length, replace=False)]
            fid = f"f{f}"
            flow_paths[fid] = path
            demands[fid] = float(np.round(rng.uniform(0.1, 25.0), 3))
            weights[fid] = float(np.round(rng.uniform(0.2, 5.0), 3))
        return flow_paths, demands, weights, capacities

    @pytest.mark.parametrize("seed", range(60))
    def test_vector_matches_scalar_exactly(self, seed):
        flow_paths, demands, weights, capacities = self._random_case(seed)
        scalar = max_min_allocation(
            flow_paths, demands, weights, capacities, kernel="scalar"
        )
        vector = max_min_allocation(
            flow_paths, demands, weights, capacities, kernel="vector"
        )
        assert vector == scalar  # exact float equality, not approx

    def test_default_kernel_is_vector(self):
        """Parking-lot instance: default must equal an explicit vector run."""
        args = (
            {"long": ["l1", "l2"], "s1": ["l1"], "s2": ["l2"]},
            {"long": 10.0, "s1": 10.0, "s2": 10.0},
            {"long": 1.0, "s1": 1.0, "s2": 1.0},
            {"l1": 10.0, "l2": 10.0},
        )
        assert max_min_allocation(*args) == max_min_allocation(
            *args, kernel="vector"
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(FlowError, match="unknown fairshare kernel"):
            max_min_allocation(
                {"a": ["l"]}, {"a": 1.0}, {"a": 1.0}, {"l": 1.0},
                kernel="numpy",
            )
