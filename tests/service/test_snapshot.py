"""Tests for ServiceSnapshot: build, queries, persistence, rebuild."""

import pytest

from repro.exceptions import ServiceError
from repro.core.poc import PublicOptionCore
from repro.service.snapshot import (
    SNAPSHOT_STAGE,
    ServiceSnapshot,
    load_snapshot,
    load_snapshot_payload,
    save_snapshot,
    snapshot_network,
    snapshot_tm,
)

from tests.service.conftest import service_workload


def provisioned_poc():
    net, offers, tm = service_workload()
    poc = PublicOptionCore(offered=net)
    poc.provision(offers, tm, constraint=1, method="greedy-drop")
    return poc, tm


class TestBuildAndQueries:
    def test_healthy_snapshot_exposes_clearing(self):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        assert snap.version == 1
        assert snap.health == "healthy"
        assert set(snap.selected) == set(poc.auction_result.selected)
        assert snap.failed_links == ()
        assert snap.serviceable_links == snap.selected
        assert set(snap.sites) == {"A", "B", "C", "D"}
        # Posted per-link prices decompose the winners' payments.
        winner_payments = sum(
            r.payment for r in poc.auction_result.providers.values() if r.won
        )
        assert sum(snap.prices.values()) == pytest.approx(winner_payments)

    def test_admission_is_open(self):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        yes = snap.admit("some-lmp", "A")
        assert yes["admitted"] is True and yes["reason"] == ""
        no = snap.admit("some-lmp", "nowhere")
        assert no["admitted"] is False and no["reason"] == "unknown site"

    def test_allocation_and_pricing_queries(self):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        alloc = snap.allocate("A", "C")
        assert alloc["connected"] is True
        assert alloc["rate_gbps"] > 0
        assert alloc["hops"] >= 1
        totals = snap.price()
        assert totals["total_payments"] == pytest.approx(snap.total_payments, abs=1e-6)
        some_link = snap.selected[0]
        row = snap.price(some_link)
        assert row["known"] is True and row["serviceable"] is True
        ghost = snap.price("no-such-link")
        assert ghost["known"] is False and ghost["price"] == 0.0

    def test_degraded_build_reflects_failures(self):
        poc, tm = provisioned_poc()
        victim = sorted(poc.auction_result.selected)[0]
        poc.apply_link_failures([victim])
        snap = ServiceSnapshot.build(poc, tm, version=2, seed=0)
        assert snap.health == "degraded"
        assert victim in snap.failed_links
        assert victim not in snap.serviceable_links
        health = snap.health_summary()
        assert health["health"] == "degraded"
        assert health["failed_links"] == [victim]
        assert 0.0 <= health["served_fraction"] <= 1.0

    def test_validation_rejects_bad_states(self):
        poc, tm = provisioned_poc()
        with pytest.raises(ServiceError):
            ServiceSnapshot.build(poc, tm, version=0, seed=0)
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        with pytest.raises(ServiceError):
            ServiceSnapshot(**{**snap.__dict__, "health": "on-fire"})


class TestPersistence:
    def test_round_trip_preserves_answers(self, tmp_path):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=3, seed=11)
        path = tmp_path / "snap.json"
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.version == 3
        assert loaded.seed == 11
        assert loaded.health == snap.health
        assert loaded.selected == snap.selected
        assert loaded.allocate("A", "C") == snap.allocate("A", "C")
        assert loaded.price(snap.selected[0]) == snap.price(snap.selected[0])
        assert loaded.served_fraction == pytest.approx(snap.served_fraction)

    def test_degraded_round_trip_keeps_residual_view(self, tmp_path):
        poc, tm = provisioned_poc()
        victim = sorted(poc.auction_result.selected)[0]
        poc.apply_link_failures([victim])
        snap = ServiceSnapshot.build(poc, tm, version=2, seed=0)
        path = tmp_path / "snap.json"
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.health == "degraded"
        assert loaded.failed_links == snap.failed_links
        # The rebuilt allocation runs over the *serviceable* backbone.
        assert victim not in snapshot_network(loaded.control).link_ids

    def test_payload_shape_is_canonical(self, tmp_path):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        d1 = snap.to_dict()
        d2 = ServiceSnapshot.build(poc, tm, version=1, seed=0).to_dict()
        assert d1 == d2
        assert d1["rates"] == sorted(d1["rates"])

    def test_missing_or_malformed_files_raise(self, tmp_path):
        with pytest.raises(ServiceError):
            load_snapshot_payload(tmp_path / "absent.json")
        with pytest.raises(ServiceError):
            ServiceSnapshot.from_dict({"version": 1})
        with pytest.raises(ServiceError):
            snapshot_network({"nodes": [{"id": "A"}], "links": []})
        with pytest.raises(ServiceError):
            snapshot_tm({"tm": [["A"]], "control": {"nodes": []}})


class TestRebuildHelpers:
    def test_snapshot_network_rebuilds_geometry(self):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        net = snapshot_network(snap.control, serviceable_only=False)
        assert set(net.node_ids) == set(snap.sites)
        assert set(net.link_ids) == set(snap.selected)

    def test_snapshot_tm_matches_original_pairs(self):
        poc, tm = provisioned_poc()
        snap = ServiceSnapshot.build(poc, tm, version=1, seed=0)
        rebuilt = snapshot_tm(snap.to_dict())
        assert sorted(rebuilt.pairs()) == sorted(tm.pairs())
