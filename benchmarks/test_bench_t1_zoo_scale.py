"""T1 — §3.3's in-text facts about the auction input.

Paper: "combined some networks to form 20 BPs ... The resulting POC
network has 4674 point-to-point connections ... The BPs vary in size,
contributing from roughly 2% to roughly 12% of the logical links."
"""

import pytest

from repro.topology.zoo import ZooConfig, build_zoo


@pytest.fixture(scope="module")
def paper_zoo():
    return build_zoo(ZooConfig.paper())


def test_bench_t1_zoo_scale(benchmark, report, paper_zoo):
    benchmark.pedantic(
        lambda: build_zoo(ZooConfig.paper()), rounds=1, iterations=1
    )
    shares = sorted(paper_zoo.link_shares.values())
    lines = [
        f"BPs:                {len(paper_zoo.bps):>6}     (paper: 20)",
        f"POC router sites:   {len(paper_zoo.sites):>6}",
        f"logical links:      {paper_zoo.num_logical_links:>6}     (paper: 4674)",
        f"BP share range:     {shares[0]:.1%} .. {shares[-1]:.1%}  (paper: ~2% .. ~12%)",
    ]
    report("\n".join(lines))

    assert len(paper_zoo.bps) == 20
    assert 3000 <= paper_zoo.num_logical_links <= 7000
    assert shares[-1] == pytest.approx(0.12, abs=0.04)
    assert shares[-1] / max(shares[0], 1e-9) >= 3.0  # strong size spread


def test_bench_t1_colocation_threshold(benchmark, paper_zoo):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    """Every POC router site satisfies the ≥4-BP colocation rule."""
    for site in paper_zoo.sites:
        assert len(site.bps) >= 4


def test_bench_t1_offered_network_connected(benchmark, paper_zoo):
    # Shape-check companion: the trivial benchmark call keeps this
    # test active under --benchmark-only (its value is the asserts).
    benchmark(lambda: None)

    assert paper_zoo.offered.is_connected()
