"""Property tests for colocation placement on random BP footprints."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.topology.cities import ALL_CITIES
from repro.topology.colocation import find_colocation_sites, place_poc_routers

CITY_NAMES = [c.name for c in ALL_CITIES]


@st.composite
def bp_city_maps(draw):
    n_bps = draw(st.integers(min_value=1, max_value=6))
    out = {}
    for i in range(n_bps):
        cities = draw(
            st.lists(st.sampled_from(CITY_NAMES), min_size=1, max_size=12,
                     unique=True)
        )
        out[f"BP{i}"] = set(cities)
    return out


class TestPlacementProperties:
    @given(bp_city_maps(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_threshold_respected(self, bp_cities, min_bps):
        sites = find_colocation_sites(bp_cities, min_bps=min_bps)
        for site in sites:
            assert len(site.bps) >= min_bps
            # Every listed BP really has a PoP in the cluster.
            for bp in site.bps:
                assert bp_cities[bp] & site.member_cities

    @given(bp_city_maps(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_threshold(self, bp_cities, min_bps):
        lenient = find_colocation_sites(bp_cities, min_bps=min_bps)
        strict = find_colocation_sites(bp_cities, min_bps=min_bps + 1)
        assert len(strict) <= len(lenient)
        strict_cities = {s.city for s in strict}
        lenient_cities = {s.city for s in lenient}
        assert strict_cities <= lenient_cities

    @given(bp_city_maps())
    @settings(max_examples=60, deadline=None)
    def test_clusters_partition_cities(self, bp_cities):
        report = place_poc_routers(bp_cities, min_bps=1)
        members = [city for site in report.sites for city in site.member_cities]
        # min_bps=1 keeps every cluster; clusters never overlap.
        assert len(members) == len(set(members))
        all_cities = {c for cities in bp_cities.values() for c in cities}
        assert set(members) == all_cities

    @given(bp_city_maps(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, bp_cities, min_bps):
        a = find_colocation_sites(bp_cities, min_bps=min_bps)
        b = find_colocation_sites(bp_cities, min_bps=min_bps)
        assert [(s.city, s.bps) for s in a] == [(s.city, s.bps) for s in b]

    @given(bp_city_maps())
    @settings(max_examples=40, deadline=None)
    def test_zero_radius_no_clustering(self, bp_cities):
        """At radius 0 every site is a single city, so per-site BP counts
        equal exact-city presence."""
        sites = find_colocation_sites(bp_cities, min_bps=1, radius_km=0.0)
        for site in sites:
            assert site.member_cities == frozenset({site.city})
            expected = frozenset(
                bp for bp, cities in bp_cities.items() if site.city in cities
            )
            assert site.bps == expected
